"""Synthetic dataset generators.

The generators reproduce the *schema and bias structure* of the public
benchmark datasets the explaining-unfairness literature uses (Adult income,
German credit, COMPAS recidivism, loan approval, hiring), without requiring
network access.  Every generator exposes explicit knobs for the amount of
direct bias (the sensitive attribute shifts the label), proxy bias (a
non-sensitive attribute correlates with the sensitive one and shifts the
label), and label noise, so experiments can sweep bias strength.
"""

from __future__ import annotations

import numpy as np

from ..utils import check_random_state, sigmoid
from .schema import Dataset, FeatureSpec

__all__ = [
    "make_adult_like",
    "make_german_credit_like",
    "make_compas_like",
    "make_loan_dataset",
    "make_hiring_dataset",
    "make_scm_loan_dataset",
]


def _bernoulli(rng: np.random.Generator, p) -> np.ndarray:
    return (rng.random(np.shape(p)) < p).astype(float)


def make_adult_like(
    n_samples: int = 2000,
    *,
    direct_bias: float = 1.0,
    proxy_bias: float = 0.8,
    label_noise: float = 0.05,
    random_state=None,
) -> Dataset:
    """Adult-census-like income prediction dataset.

    Features: ``sex`` (sensitive, 1 = protected/female), ``age``,
    ``education_years``, ``hours_per_week``, ``capital_gain``,
    ``occupation_score`` (a proxy correlated with sex), ``marital_status``.
    Label: 1 = income above threshold (favourable).

    ``direct_bias`` lowers the favourable-label log-odds for the protected
    group; ``proxy_bias`` routes part of the disadvantage through
    ``occupation_score`` instead of the sensitive attribute itself.
    """
    rng = check_random_state(random_state)
    sex = _bernoulli(rng, np.full(n_samples, 0.48))
    age = np.clip(rng.normal(38, 12, n_samples), 18, 80)
    education = np.clip(rng.normal(12 - 0.4 * sex, 2.5, n_samples), 4, 20)
    hours = np.clip(rng.normal(40 - 4.0 * sex, 9, n_samples), 5, 90)
    capital_gain = np.clip(rng.exponential(1200, n_samples) * (1 - 0.3 * sex), 0, 50000)
    # occupation_score is a proxy: its distribution depends on sex.
    occupation = np.clip(rng.normal(5.0 - proxy_bias * 2.0 * sex, 1.5, n_samples), 0, 10)
    marital = _bernoulli(rng, np.full(n_samples, 0.55))

    logits = (
        -6.0
        + 0.045 * age
        + 0.28 * education
        + 0.05 * hours
        + 0.0004 * capital_gain
        + 0.35 * occupation
        + 0.4 * marital
        - direct_bias * sex
    )
    probability = sigmoid(logits)
    y = _bernoulli(rng, probability)
    flip = _bernoulli(rng, np.full(n_samples, label_noise)).astype(bool)
    y[flip] = 1 - y[flip]

    X = np.column_stack([sex, age, education, hours, capital_gain, occupation, marital])
    features = [
        FeatureSpec("sex", kind="binary", immutable=True),
        FeatureSpec("age", kind="numeric", actionable=False, lower=18, upper=80),
        FeatureSpec("education_years", kind="numeric", monotone=1, lower=4, upper=20),
        FeatureSpec("hours_per_week", kind="numeric", lower=5, upper=90),
        FeatureSpec("capital_gain", kind="numeric", lower=0, upper=50000),
        FeatureSpec("occupation_score", kind="numeric", lower=0, upper=10),
        FeatureSpec("marital_status", kind="binary"),
    ]
    return Dataset(X=X, y=y.astype(int), features=features, sensitive="sex", name="adult_like")


def make_german_credit_like(
    n_samples: int = 1500,
    *,
    direct_bias: float = 0.8,
    proxy_bias: float = 0.5,
    label_noise: float = 0.05,
    random_state=None,
) -> Dataset:
    """German-credit-like credit-risk dataset.

    Features: ``age_group`` (sensitive, 1 = protected/young), ``credit_amount``,
    ``duration_months``, ``savings``, ``employment_years``,
    ``existing_credits``, ``housing_owned`` (proxy).  Label: 1 = good credit.
    """
    rng = check_random_state(random_state)
    young = _bernoulli(rng, np.full(n_samples, 0.35))
    credit_amount = np.clip(rng.lognormal(8.0, 0.7, n_samples), 250, 20000)
    duration = np.clip(rng.normal(21, 11, n_samples), 4, 72)
    savings = np.clip(rng.exponential(2000, n_samples) * (1 - 0.3 * young), 0, 20000)
    employment = np.clip(rng.normal(6 - 3.0 * young, 3, n_samples), 0, 40)
    existing_credits = np.clip(rng.poisson(1.4, n_samples), 0, 6).astype(float)
    housing = _bernoulli(rng, 0.6 - proxy_bias * 0.35 * young)

    logits = (
        1.2
        - 0.00008 * credit_amount
        - 0.03 * duration
        + 0.0002 * savings
        + 0.06 * employment
        - 0.2 * existing_credits
        + 0.5 * housing
        - direct_bias * young
    )
    y = _bernoulli(rng, sigmoid(logits))
    flip = _bernoulli(rng, np.full(n_samples, label_noise)).astype(bool)
    y[flip] = 1 - y[flip]

    X = np.column_stack(
        [young, credit_amount, duration, savings, employment, existing_credits, housing]
    )
    features = [
        FeatureSpec("age_group", kind="binary", immutable=True),
        FeatureSpec("credit_amount", kind="numeric", lower=250, upper=20000),
        FeatureSpec("duration_months", kind="numeric", lower=4, upper=72),
        FeatureSpec("savings", kind="numeric", monotone=1, lower=0, upper=20000),
        FeatureSpec("employment_years", kind="numeric", monotone=1, lower=0, upper=40),
        FeatureSpec("existing_credits", kind="numeric", lower=0, upper=6),
        FeatureSpec("housing_owned", kind="binary"),
    ]
    return Dataset(
        X=X, y=y.astype(int), features=features, sensitive="age_group",
        name="german_credit_like",
    )


def make_compas_like(
    n_samples: int = 2000,
    *,
    direct_bias: float = 0.9,
    label_noise: float = 0.08,
    random_state=None,
) -> Dataset:
    """COMPAS-like recidivism dataset.

    Features: ``race`` (sensitive, 1 = protected), ``age``, ``priors_count``,
    ``charge_degree`` (1 = felony), ``juvenile_offenses``, ``employment``.
    Label: 1 = *no* recidivism (favourable outcome), so base-rate and
    error-based disparities have the usual sign convention.
    """
    rng = check_random_state(random_state)
    race = _bernoulli(rng, np.full(n_samples, 0.45))
    age = np.clip(rng.normal(32, 10, n_samples), 18, 70)
    priors = np.clip(rng.poisson(2.0 + 1.2 * race, n_samples), 0, 25).astype(float)
    charge_degree = _bernoulli(rng, 0.35 + 0.1 * race)
    juvenile = np.clip(rng.poisson(0.4 + 0.3 * race, n_samples), 0, 8).astype(float)
    employment = _bernoulli(rng, 0.6 - 0.15 * race)

    logits = (
        1.0
        + 0.03 * (age - 30)
        - 0.35 * priors
        - 0.5 * charge_degree
        - 0.4 * juvenile
        + 0.6 * employment
        - direct_bias * race
    )
    y = _bernoulli(rng, sigmoid(logits))
    flip = _bernoulli(rng, np.full(n_samples, label_noise)).astype(bool)
    y[flip] = 1 - y[flip]

    X = np.column_stack([race, age, priors, charge_degree, juvenile, employment])
    features = [
        FeatureSpec("race", kind="binary", immutable=True),
        FeatureSpec("age", kind="numeric", actionable=False, lower=18, upper=70),
        FeatureSpec("priors_count", kind="numeric", actionable=False, lower=0, upper=25),
        FeatureSpec("charge_degree", kind="binary", actionable=False),
        FeatureSpec("juvenile_offenses", kind="numeric", actionable=False, lower=0, upper=8),
        FeatureSpec("employment", kind="binary"),
    ]
    return Dataset(X=X, y=y.astype(int), features=features, sensitive="race", name="compas_like")


def make_loan_dataset(
    n_samples: int = 1500,
    *,
    direct_bias: float = 1.0,
    recourse_gap: float = 0.0,
    label_noise: float = 0.03,
    random_state=None,
) -> Dataset:
    """Loan-approval dataset designed for recourse experiments.

    Features: ``group`` (sensitive), ``income``, ``credit_score``, ``debt``,
    ``employment_years``, ``has_collateral``.  Label: 1 = loan approved.

    ``recourse_gap`` > 0 places negatively-classified protected individuals
    further from the favourable region (lower income and credit score), so
    the *cost of recourse* differs between groups even when base rates are
    similar — the setting that burden / NAWB / FACTS / recourse-equalization
    experiments need.
    """
    rng = check_random_state(random_state)
    group = _bernoulli(rng, np.full(n_samples, 0.5))
    income = np.clip(
        rng.normal(55 - 10 * recourse_gap * group, 15, n_samples), 10, 150
    )
    credit_score = np.clip(
        rng.normal(650 - 60 * recourse_gap * group, 80, n_samples), 300, 850
    )
    debt = np.clip(rng.normal(20 + 4 * group, 8, n_samples), 0, 80)
    employment = np.clip(rng.normal(8, 5, n_samples), 0, 40)
    collateral = _bernoulli(rng, np.full(n_samples, 0.4))

    logits = (
        -9.0
        + 0.05 * income
        + 0.012 * credit_score
        - 0.06 * debt
        + 0.05 * employment
        + 0.8 * collateral
        - direct_bias * group
    )
    y = _bernoulli(rng, sigmoid(logits))
    flip = _bernoulli(rng, np.full(n_samples, label_noise)).astype(bool)
    y[flip] = 1 - y[flip]

    X = np.column_stack([group, income, credit_score, debt, employment, collateral])
    features = [
        FeatureSpec("group", kind="binary", immutable=True),
        FeatureSpec("income", kind="numeric", monotone=1, lower=10, upper=150),
        FeatureSpec("credit_score", kind="numeric", monotone=1, lower=300, upper=850),
        FeatureSpec("debt", kind="numeric", monotone=-1, lower=0, upper=80),
        FeatureSpec("employment_years", kind="numeric", monotone=1, lower=0, upper=40),
        FeatureSpec("has_collateral", kind="binary"),
    ]
    return Dataset(X=X, y=y.astype(int), features=features, sensitive="group", name="loan")


def make_hiring_dataset(
    n_samples: int = 1200,
    *,
    direct_bias: float = 0.7,
    proxy_bias: float = 0.9,
    label_noise: float = 0.05,
    random_state=None,
) -> Dataset:
    """Hiring dataset where a resume-keyword score acts as a gender proxy.

    Features: ``gender`` (sensitive), ``experience_years``, ``skill_score``,
    ``education_level``, ``keyword_score`` (proxy), ``referral``.
    Label: 1 = interview offered.
    """
    rng = check_random_state(random_state)
    gender = _bernoulli(rng, np.full(n_samples, 0.5))
    experience = np.clip(rng.normal(7, 4, n_samples), 0, 35)
    skill = np.clip(rng.normal(6, 1.8, n_samples), 0, 10)
    education = np.clip(rng.integers(1, 5, n_samples).astype(float), 1, 4)
    keyword = np.clip(rng.normal(5 - proxy_bias * 2.5 * gender, 1.5, n_samples), 0, 10)
    referral = _bernoulli(rng, np.full(n_samples, 0.25))

    logits = (
        -5.5
        + 0.12 * experience
        + 0.45 * skill
        + 0.3 * education
        + 0.35 * keyword
        + 0.9 * referral
        - direct_bias * gender
    )
    y = _bernoulli(rng, sigmoid(logits))
    flip = _bernoulli(rng, np.full(n_samples, label_noise)).astype(bool)
    y[flip] = 1 - y[flip]

    X = np.column_stack([gender, experience, skill, education, keyword, referral])
    features = [
        FeatureSpec("gender", kind="binary", immutable=True),
        FeatureSpec("experience_years", kind="numeric", monotone=1, lower=0, upper=35),
        FeatureSpec("skill_score", kind="numeric", monotone=1, lower=0, upper=10),
        FeatureSpec("education_level", kind="numeric", monotone=1, lower=1, upper=4),
        FeatureSpec("keyword_score", kind="numeric", lower=0, upper=10),
        FeatureSpec("referral", kind="binary"),
    ]
    return Dataset(X=X, y=y.astype(int), features=features, sensitive="gender", name="hiring")


def make_scm_loan_dataset(n_samples: int = 1500, *, direct_bias: float = 0.8, random_state=None):
    """Loan dataset generated from an explicit structural causal model.

    Returns ``(dataset, scm)`` where the SCM has the graph
    ``group -> education -> income -> approval`` and ``group -> income``,
    so causal-recourse and causal-path-decomposition experiments can compare
    against the ground-truth mechanism.
    """
    from ..causal.scm import StructuralCausalModel, StructuralEquation

    rng = check_random_state(random_state)

    scm = StructuralCausalModel(
        equations=[
            StructuralEquation("group", parents=(), func=lambda p, u: (u > 0.5).astype(float),
                               noise=lambda r, n: r.random(n)),
            StructuralEquation(
                "education",
                parents=("group",),
                func=lambda p, u: np.clip(12 - 1.5 * p["group"] + u, 4, 20),
                noise=lambda r, n: r.normal(0, 2, n),
            ),
            StructuralEquation(
                "income",
                parents=("group", "education"),
                func=lambda p, u: np.clip(
                    20 + 3.0 * p["education"] - 8.0 * p["group"] + u, 5, 200
                ),
                noise=lambda r, n: r.normal(0, 10, n),
            ),
            StructuralEquation(
                "savings",
                parents=("income",),
                func=lambda p, u: np.clip(0.3 * p["income"] + u, 0, 100),
                noise=lambda r, n: r.normal(0, 5, n),
            ),
        ],
        random_state=rng,
    )
    sample = scm.sample(n_samples)
    group = sample["group"]
    education = sample["education"]
    income = sample["income"]
    savings = sample["savings"]

    logits = -8.0 + 0.07 * income + 0.18 * education + 0.05 * savings - direct_bias * group
    y = (rng.random(n_samples) < sigmoid(logits)).astype(int)

    X = np.column_stack([group, education, income, savings])
    features = [
        FeatureSpec("group", kind="binary", immutable=True),
        FeatureSpec("education", kind="numeric", monotone=1, lower=4, upper=20),
        FeatureSpec("income", kind="numeric", monotone=1, lower=5, upper=200),
        FeatureSpec("savings", kind="numeric", monotone=1, lower=0, upper=100),
    ]
    dataset = Dataset(X=X, y=y, features=features, sensitive="group", name="scm_loan",
                      scm=scm)
    return dataset, scm
