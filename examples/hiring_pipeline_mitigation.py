"""Explanation-guided mitigation of a biased hiring pipeline.

The hiring dataset hides most of its gender bias behind a resume-keyword proxy.
This example (1) diagnoses the bias with fairness-Shapley values, probabilistic
contrastive counterfactuals and Gopher-style data explanations, (2) uses what
the explanations point at to choose mitigations at all three pipeline stages,
and (3) compares the resulting fairness/accuracy trade-offs — the full
explain -> understand -> mitigate loop of the survey.

Run with:  python examples/hiring_pipeline_mitigation.py
"""

import numpy as np

from fairexp.core import (
    DexerExplainer,
    FairnessShapExplainer,
    GopherExplainer,
    ProbabilisticContrastiveExplainer,
)
from fairexp.datasets import make_hiring_dataset, proxy_correlation
from fairexp.fairness import group_fairness_report, statistical_parity_difference
from fairexp.fairness.mitigation import (
    FairLogisticRegression,
    GroupThresholdOptimizer,
    disparate_impact_repair,
    reweighing_weights,
)
from fairexp.models import LogisticRegression
from fairexp.ranking import RankedCandidates, ScoreRanker


def main() -> None:
    dataset = make_hiring_dataset(1200, direct_bias=0.8, proxy_bias=1.0, random_state=0)
    train, test = dataset.split(test_size=0.3, random_state=1)
    model = LogisticRegression(n_iter=1500, random_state=0).fit(train.X, train.y)

    report = group_fairness_report(test.y, model.predict(test.X), test.sensitive_values)
    print("== Baseline screening model")
    print(f"   accuracy {model.score(test.X, test.y):.3f}, "
          f"statistical parity difference {report.statistical_parity_difference:+.3f}")
    print(f"   keyword_score <-> gender correlation: "
          f"{proxy_correlation(dataset, 'keyword_score'):+.2f}\n")

    print("== Diagnosis 1: fairness-Shapley decomposition of the parity gap")
    shap = FairnessShapExplainer(model, train.X[:100], feature_names=dataset.feature_names,
                                 method="exact", n_background=10, random_state=0).explain(
        test.X[:150], test.sensitive_values[:150]
    )
    for name, value in shap.top(3):
        print(f"   {name:18s} {value:+.4f}")
    print()

    print("== Diagnosis 2: probabilistic contrastive counterfactuals")
    contrastive = ProbabilisticContrastiveExplainer(model, dataset.feature_names,
                                                    dataset.sensitive_index)
    sensitive_scores = contrastive.explain_sensitive(test.X)
    print(f"   necessity of NOT being in the protected group for an interview: "
          f"{sensitive_scores.necessity:.2f}\n")

    print("== Diagnosis 3: Gopher data patterns driving the disparity")
    gopher = GopherExplainer(lambda: LogisticRegression(n_iter=600, random_state=0),
                             feature_names=dataset.feature_names, min_support=0.1, top_k=3)
    data_result = gopher.explain(train.X, train.y, train.sensitive_values)
    for pattern in data_result.top(2):
        print(f"   {pattern.describe()}")
    print()

    print("== Diagnosis 4: is the interview shortlist representative? (Dexer)")
    ranker = ScoreRanker(np.maximum(model.coef_, 0.0))
    candidates = RankedCandidates(X=test.X, groups=test.sensitive_values,
                                  feature_names=dataset.feature_names)
    detection = DexerExplainer(ranker, k=30, random_state=0).detect(candidates)
    print(f"   top-30 protected share {detection.topk_share:.0%} vs pool "
          f"{detection.pool_share:.0%} (p = {detection.p_value:.3f})\n")

    print("== Mitigation at the three pipeline stages")
    baseline_gap = statistical_parity_difference(model.predict(test.X), test.sensitive_values)

    # Pre-processing: repair the proxy the explanations pointed at + reweighing.
    repaired_train = disparate_impact_repair(train, columns=["keyword_score"],
                                             repair_level=1.0)
    weights = reweighing_weights(repaired_train.y, repaired_train.sensitive_values)
    pre_model = LogisticRegression(n_iter=1500, random_state=0).fit(
        repaired_train.X, repaired_train.y, sample_weight=weights
    )
    repaired_test = disparate_impact_repair(test, columns=["keyword_score"], repair_level=1.0)
    pre_gap = statistical_parity_difference(pre_model.predict(repaired_test.X),
                                            test.sensitive_values)

    # In-processing: parity-penalized training.
    in_model = FairLogisticRegression(fairness_weight=5.0, n_iter=1500, random_state=0).fit(
        train.X, train.y, sensitive=train.sensitive_values
    )
    in_gap = statistical_parity_difference(in_model.predict(test.X), test.sensitive_values)

    # Post-processing: per-group thresholds.
    optimizer = GroupThresholdOptimizer().fit(model.predict_proba(train.X)[:, 1], train.y,
                                              train.sensitive_values)
    post_predictions = optimizer.predict(model.predict_proba(test.X)[:, 1],
                                         test.sensitive_values)
    post_gap = statistical_parity_difference(post_predictions, test.sensitive_values)

    print(f"   baseline          SPD {baseline_gap:+.3f}  acc {model.score(test.X, test.y):.3f}")
    print(f"   pre-processing    SPD {pre_gap:+.3f}  acc "
          f"{pre_model.score(repaired_test.X, test.y):.3f}")
    print(f"   in-processing     SPD {in_gap:+.3f}  acc {in_model.score(test.X, test.y):.3f}")
    print(f"   post-processing   SPD {post_gap:+.3f}  acc "
          f"{float(np.mean(post_predictions == test.y)):.3f}")


if __name__ == "__main__":
    main()
