"""Data preprocessing utilities: scaling, encoding and splitting."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..exceptions import NotFittedError, ValidationError
from ..utils import check_array, check_consistent_length, check_random_state

__all__ = [
    "StandardScaler",
    "MinMaxScaler",
    "OneHotEncoder",
    "LabelEncoder",
    "train_test_split",
]


class StandardScaler:
    """Standardize features to zero mean and unit variance."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X) -> "StandardScaler":
        """Learn per-feature mean and scale; returns ``self``."""
        X = check_array(X, ndim=2, name="X")
        self.mean_ = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0] = 1.0
        self.scale_ = scale
        return self

    def transform(self, X) -> np.ndarray:
        """Standardize ``X`` with the fitted mean and scale."""
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("StandardScaler is not fitted")
        X = check_array(X, ndim=2, name="X")
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X) -> np.ndarray:
        """Fit on ``X`` and return its standardized values."""
        return self.fit(X).transform(X)

    def inverse_transform(self, X) -> np.ndarray:
        """Map standardized values back to the original scale."""
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("StandardScaler is not fitted")
        X = check_array(X, ndim=2, name="X")
        return X * self.scale_ + self.mean_


class MinMaxScaler:
    """Scale features to the ``[0, 1]`` range."""

    def __init__(self) -> None:
        self.min_: np.ndarray | None = None
        self.range_: np.ndarray | None = None

    def fit(self, X) -> "MinMaxScaler":
        """Learn per-feature minima and ranges; returns ``self``."""
        X = check_array(X, ndim=2, name="X")
        self.min_ = X.min(axis=0)
        data_range = X.max(axis=0) - self.min_
        data_range[data_range == 0] = 1.0
        self.range_ = data_range
        return self

    def transform(self, X) -> np.ndarray:
        """Scale ``X`` into the unit interval feature-wise."""
        if self.min_ is None or self.range_ is None:
            raise NotFittedError("MinMaxScaler is not fitted")
        X = check_array(X, ndim=2, name="X")
        return (X - self.min_) / self.range_

    def fit_transform(self, X) -> np.ndarray:
        """Fit on ``X`` and return its scaled values."""
        return self.fit(X).transform(X)

    def inverse_transform(self, X) -> np.ndarray:
        """Map unit-interval values back to the original range."""
        if self.min_ is None or self.range_ is None:
            raise NotFittedError("MinMaxScaler is not fitted")
        X = check_array(X, ndim=2, name="X")
        return X * self.range_ + self.min_


class LabelEncoder:
    """Encode arbitrary labels as integers ``0..n_classes-1``."""

    def __init__(self) -> None:
        self.classes_: np.ndarray | None = None

    def fit(self, y) -> "LabelEncoder":
        """Learn the sorted label vocabulary; returns ``self``."""
        self.classes_ = np.unique(np.asarray(y))
        return self

    def transform(self, y) -> np.ndarray:
        """Integer codes for ``y`` under the fitted vocabulary."""
        if self.classes_ is None:
            raise NotFittedError("LabelEncoder is not fitted")
        y = np.asarray(y)
        unknown = set(np.unique(y)) - set(self.classes_)
        if unknown:
            raise ValidationError(f"unknown labels: {sorted(unknown)}")
        return np.searchsorted(self.classes_, y)

    def fit_transform(self, y) -> np.ndarray:
        """Fit on ``y`` and return its integer codes."""
        return self.fit(y).transform(y)

    def inverse_transform(self, codes) -> np.ndarray:
        """Original labels for the given integer codes."""
        if self.classes_ is None:
            raise NotFittedError("LabelEncoder is not fitted")
        return self.classes_[np.asarray(codes, dtype=int)]


class OneHotEncoder:
    """One-hot encode columns of categorical codes.

    The encoder accepts a 2-D array of integer (or string) categories and
    produces a dense float matrix with one indicator column per category.
    """

    def __init__(self) -> None:
        self.categories_: list[np.ndarray] | None = None

    def fit(self, X) -> "OneHotEncoder":
        """Learn per-column category vocabularies; returns ``self``."""
        X = np.asarray(X)
        if X.ndim != 2:
            raise ValidationError("OneHotEncoder expects a 2-D array")
        self.categories_ = [np.unique(X[:, j]) for j in range(X.shape[1])]
        return self

    def transform(self, X) -> np.ndarray:
        """One-hot encode ``X`` with the fitted vocabularies."""
        if self.categories_ is None:
            raise NotFittedError("OneHotEncoder is not fitted")
        X = np.asarray(X)
        if X.ndim != 2 or X.shape[1] != len(self.categories_):
            raise ValidationError("shape mismatch with fitted categories")
        blocks = []
        for j, categories in enumerate(self.categories_):
            block = np.zeros((X.shape[0], categories.shape[0]))
            for k, category in enumerate(categories):
                block[:, k] = (X[:, j] == category).astype(float)
            blocks.append(block)
        return np.hstack(blocks)

    def fit_transform(self, X) -> np.ndarray:
        """Fit on ``X`` and return its one-hot encoding."""
        return self.fit(X).transform(X)

    def feature_names(self, input_names: Sequence[str] | None = None) -> list[str]:
        """Return output column names of the form ``<input>=<category>``."""
        if self.categories_ is None:
            raise NotFittedError("OneHotEncoder is not fitted")
        if input_names is None:
            input_names = [f"x{j}" for j in range(len(self.categories_))]
        names = []
        for name, categories in zip(input_names, self.categories_):
            names.extend(f"{name}={category}" for category in categories)
        return names


def train_test_split(*arrays, test_size: float = 0.25, random_state=None, stratify=None):
    """Split arrays into random train and test subsets.

    Parameters
    ----------
    arrays:
        One or more arrays sharing the same first dimension.
    test_size:
        Fraction of samples assigned to the test split, in ``(0, 1)``.
    random_state:
        Seed or :class:`numpy.random.Generator`.
    stratify:
        Optional label array; when given, the class proportions are preserved
        in both splits.

    Returns
    -------
    list
        ``[a_train, a_test, b_train, b_test, ...]`` in the order of the inputs.
    """
    if not arrays:
        raise ValidationError("at least one array is required")
    if not 0.0 < test_size < 1.0:
        raise ValidationError("test_size must be in (0, 1)")
    check_consistent_length(*arrays)
    n_samples = len(arrays[0])
    rng = check_random_state(random_state)

    if stratify is not None:
        stratify = np.asarray(stratify)
        test_idx: list[int] = []
        for value in np.unique(stratify):
            value_idx = np.flatnonzero(stratify == value)
            value_idx = rng.permutation(value_idx)
            n_test = max(1, int(round(test_size * value_idx.shape[0])))
            test_idx.extend(value_idx[:n_test].tolist())
        test_mask = np.zeros(n_samples, dtype=bool)
        test_mask[test_idx] = True
    else:
        permutation = rng.permutation(n_samples)
        n_test = max(1, int(round(test_size * n_samples)))
        test_mask = np.zeros(n_samples, dtype=bool)
        test_mask[permutation[:n_test]] = True

    result = []
    for array in arrays:
        array = np.asarray(array)
        result.append(array[~test_mask])
        result.append(array[test_mask])
    return result
