"""Command-line interface: ``python -m fairexp``.

The only command family today is ``store`` — operational tooling for the
cross-process :class:`~fairexp.explanations.store.CounterfactualStore`:

``python -m fairexp store inspect [--dir DIR] [--json]``
    List every published entry: fingerprint, rows, bytes on disk, age since
    the last recency bump, and manifest format version.

``python -m fairexp store evict [--dir DIR] [--fingerprint PREFIX]
[--max-entries N] [--max-bytes BYTES]``
    Discard one entry by fingerprint prefix, or the oldest entries until
    the directory fits the given bounds.

``python -m fairexp store clear [--dir DIR]``
    Remove every entry (manifests, payloads, leftover temp files).

The store directory resolves from ``--dir`` or, when omitted, from the
``FAIREXP_STORE_DIR`` environment variable — the same variable the
experiment runners opt in with, so the CLI inspects exactly what a sweep
would warm-start from.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from .explanations.store import CounterfactualStore

__all__ = ["main"]


def _resolve_store(directory: str | None) -> CounterfactualStore:
    """Store rooted at ``--dir`` or ``$FAIREXP_STORE_DIR`` (required).

    The directory must already exist: the CLI is an inspection/maintenance
    surface, and silently creating a typo'd path would report a fresh
    "empty store" instead of the error the operator needs.
    """
    resolved = (directory or os.environ.get("FAIREXP_STORE_DIR", "")).strip()
    if not resolved:
        raise SystemExit(
            "no store directory: pass --dir or set FAIREXP_STORE_DIR"
        )
    if not os.path.isdir(resolved):
        raise SystemExit(f"store directory does not exist: {resolved}")
    return CounterfactualStore(resolved)


def _format_age(seconds: float) -> str:
    """Human-readable age: seconds, minutes, hours or days."""
    if seconds < 60:
        return f"{seconds:.0f}s"
    if seconds < 3600:
        return f"{seconds / 60:.0f}m"
    if seconds < 86400:
        return f"{seconds / 3600:.1f}h"
    return f"{seconds / 86400:.1f}d"


def _cmd_inspect(args: argparse.Namespace) -> int:
    store = _resolve_store(args.dir)
    details = store.entry_details()
    if args.json:
        print(json.dumps({"directory": str(store.directory), "entries": details},
                         indent=2))
        return 0
    if not details:
        print(f"{store.directory}: empty store")
        return 0
    print(f"{store.directory}: {len(details)} entries, "
          f"{sum(d['bytes'] for d in details)} bytes (oldest first)")
    print(f"{'FINGERPRINT':<16} {'ROWS':>6} {'BYTES':>10} {'AGE':>6} "
          f"{'FMT':>3}  UPDATED")
    for entry in details:
        print(f"{entry['fingerprint'][:16]:<16} {entry['n_rows']:>6} "
              f"{entry['bytes']:>10} {_format_age(entry['age_seconds']):>6} "
              f"{str(entry['format_version']):>3}  {entry['updated_at']}")
    return 0


def _cmd_evict(args: argparse.Namespace) -> int:
    if args.fingerprint is None and args.max_entries is None and args.max_bytes is None:
        raise SystemExit(
            "evict needs --fingerprint, --max-entries and/or --max-bytes"
        )
    store = _resolve_store(args.dir)
    try:
        removed = store.evict(fingerprint=args.fingerprint,
                              max_entries=args.max_entries,
                              max_bytes=args.max_bytes)
    except ValueError as error:  # ambiguous fingerprint prefix
        raise SystemExit(str(error)) from None
    print(f"evicted {removed} entries from {store.directory}")
    return 0


def _cmd_clear(args: argparse.Namespace) -> int:
    store = _resolve_store(args.dir)
    n_entries = len(store.entries())
    store.clear()
    print(f"cleared {n_entries} entries from {store.directory}")
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="fairexp",
        description="fairexp operational tooling (currently: the counterfactual store)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    store_parser = commands.add_parser(
        "store", help="inspect / evict / clear the persistent counterfactual store"
    )
    actions = store_parser.add_subparsers(dest="action", required=True)

    def add_dir(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--dir", default=None,
            help="store directory (default: $FAIREXP_STORE_DIR)",
        )

    inspect_parser = actions.add_parser(
        "inspect", help="list entry fingerprints, ages and sizes"
    )
    add_dir(inspect_parser)
    inspect_parser.add_argument("--json", action="store_true",
                                help="emit machine-readable JSON")
    inspect_parser.set_defaults(func=_cmd_inspect)

    evict_parser = actions.add_parser(
        "evict", help="discard entries by fingerprint prefix or LRU bounds"
    )
    add_dir(evict_parser)
    evict_parser.add_argument("--fingerprint", default=None,
                              help="fingerprint (or unambiguous prefix) to discard")
    evict_parser.add_argument("--max-entries", type=int, default=None,
                              help="evict oldest entries beyond this count")
    evict_parser.add_argument("--max-bytes", type=int, default=None,
                              help="evict oldest entries beyond this total size")
    evict_parser.set_defaults(func=_cmd_evict)

    clear_parser = actions.add_parser("clear", help="remove every entry")
    add_dir(clear_parser)
    clear_parser.set_defaults(func=_cmd_clear)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m fairexp``; returns the process exit code."""
    args = _build_parser().parse_args(argv if argv is not None else sys.argv[1:])
    return args.func(args)
