"""Smoke tests for the experiment runners that back the benchmark harness."""

import pytest

from fairexp.experiments import (
    ALL_EXPERIMENTS,
    run_e1_e2_burden_nawb,
    run_e11_ranking,
    run_e14_mitigation,
    run_fig1_taxonomy,
    run_fig2_taxonomy,
    run_table1,
)


class TestDisplayItemRunners:
    def test_fig1_contains_render_and_structure(self):
        result = run_fig1_taxonomy()
        assert "Individual" in result["rendered"]
        assert "Group" in result["rendered"]
        assert result["n_nodes"] > result["n_leaves"]

    def test_fig2_contains_post_hoc_subtree(self):
        result = run_fig2_taxonomy()
        assert "Post-hoc" in result["rendered"]
        assert "Model access" in result["rendered"]

    def test_table1_fully_implemented(self):
        result = run_table1()
        assert result["n_implemented"] == result["n_rows"]
        assert 0.0 <= result["share_cfe"] <= 1.0


class TestRegistry:
    def test_all_experiment_ids_present(self):
        expected = {"FIG1", "FIG2", "TAB1", "E1/E2", "E3", "E4", "E5", "E6", "E7", "E8",
                    "E9", "E10", "E11", "E12", "E13", "E14"}
        assert expected == set(ALL_EXPERIMENTS)

    def test_runners_are_callable(self):
        assert all(callable(fn) for fn in ALL_EXPERIMENTS.values())


class TestScaledDownRunners:
    """Run a few representative experiments at reduced size to keep tests fast."""

    def test_burden_runner_keys(self):
        result = run_e1_e2_burden_nawb(n_samples=300, audit_size=30)
        assert {"burden_gap_biased", "nawb_gap_biased", "burden_gap_fair"} <= set(result)
        assert result["burden_gap_biased"] > result["burden_gap_fair"]

    def test_ranking_runner_detects_bias(self):
        result = run_e11_ranking(n_candidates=150)
        assert result["representation_gap"] < 0
        assert result["detection_p_value"] < 0.2

    def test_mitigation_runner_reduces_gap(self):
        result = run_e14_mitigation(n_samples=400)
        assert abs(result["spd_postprocessing"]) <= abs(result["spd_baseline"]) + 1e-9
