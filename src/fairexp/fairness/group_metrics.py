"""Group fairness metrics.

Covers the fairness-model families in the paper's taxonomy (Figure 1):

* base-rates metrics — statistical parity difference, disparate impact;
* accuracy-based metrics — equal opportunity (TPR parity), equalized odds
  (TPR + FPR parity), predictive parity, FNR/FPR differences;
* calibration-based metrics — per-group expected calibration error gap;
* aggregate indices — generalized entropy index (between-group inequality).

All "difference" metrics follow the convention *protected minus reference*,
so a negative statistical parity difference means the protected group
receives the favourable outcome less often.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..models.calibration import expected_calibration_error
from ..models.metrics import (
    false_negative_rate,
    false_positive_rate,
    true_positive_rate,
)
from ..utils import safe_divide
from .groups import group_masks

__all__ = [
    "statistical_parity_difference",
    "disparate_impact",
    "equal_opportunity_difference",
    "equalized_odds_difference",
    "average_odds_difference",
    "predictive_parity_difference",
    "false_negative_rate_difference",
    "false_positive_rate_difference",
    "calibration_gap",
    "generalized_entropy_index",
    "between_group_generalized_entropy",
    "GroupFairnessReport",
    "group_fairness_report",
]


def statistical_parity_difference(y_pred, sensitive, *, protected_value=1) -> float:
    """P(ŷ=1 | protected) - P(ŷ=1 | reference)."""
    y_pred = np.asarray(y_pred, dtype=float)
    masks = group_masks(sensitive, protected_value=protected_value)
    return float(y_pred[masks.protected].mean() - y_pred[masks.reference].mean())


def disparate_impact(y_pred, sensitive, *, protected_value=1) -> float:
    """P(ŷ=1 | protected) / P(ŷ=1 | reference); 1.0 is parity, <0.8 the classic 80% rule."""
    y_pred = np.asarray(y_pred, dtype=float)
    masks = group_masks(sensitive, protected_value=protected_value)
    return float(
        safe_divide(y_pred[masks.protected].mean(), y_pred[masks.reference].mean(), default=0.0)
    )


def equal_opportunity_difference(y_true, y_pred, sensitive, *, protected_value=1) -> float:
    """TPR(protected) - TPR(reference)."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    masks = group_masks(sensitive, protected_value=protected_value)
    return float(
        true_positive_rate(y_true[masks.protected], y_pred[masks.protected])
        - true_positive_rate(y_true[masks.reference], y_pred[masks.reference])
    )


def false_positive_rate_difference(y_true, y_pred, sensitive, *, protected_value=1) -> float:
    """FPR(protected) - FPR(reference)."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    masks = group_masks(sensitive, protected_value=protected_value)
    return float(
        false_positive_rate(y_true[masks.protected], y_pred[masks.protected])
        - false_positive_rate(y_true[masks.reference], y_pred[masks.reference])
    )


def false_negative_rate_difference(y_true, y_pred, sensitive, *, protected_value=1) -> float:
    """FNR(protected) - FNR(reference)."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    masks = group_masks(sensitive, protected_value=protected_value)
    return float(
        false_negative_rate(y_true[masks.protected], y_pred[masks.protected])
        - false_negative_rate(y_true[masks.reference], y_pred[masks.reference])
    )


def equalized_odds_difference(y_true, y_pred, sensitive, *, protected_value=1) -> float:
    """max(|TPR gap|, |FPR gap|) — zero iff equalized odds holds."""
    tpr_gap = equal_opportunity_difference(y_true, y_pred, sensitive,
                                           protected_value=protected_value)
    fpr_gap = false_positive_rate_difference(y_true, y_pred, sensitive,
                                             protected_value=protected_value)
    return float(max(abs(tpr_gap), abs(fpr_gap)))


def average_odds_difference(y_true, y_pred, sensitive, *, protected_value=1) -> float:
    """Mean of the TPR and FPR gaps (signed)."""
    tpr_gap = equal_opportunity_difference(y_true, y_pred, sensitive,
                                           protected_value=protected_value)
    fpr_gap = false_positive_rate_difference(y_true, y_pred, sensitive,
                                             protected_value=protected_value)
    return float((tpr_gap + fpr_gap) / 2.0)


def predictive_parity_difference(y_true, y_pred, sensitive, *, protected_value=1) -> float:
    """Precision(protected) - Precision(reference)."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    masks = group_masks(sensitive, protected_value=protected_value)

    def precision(mask):
        predicted_positive = y_pred[mask] == 1
        if not predicted_positive.any():
            return 0.0
        return float(np.mean(y_true[mask][predicted_positive] == 1))

    return precision(masks.protected) - precision(masks.reference)


def calibration_gap(y_true, y_proba, sensitive, *, n_bins: int = 10, protected_value=1) -> float:
    """Difference in expected calibration error between the groups (protected - reference)."""
    y_true = np.asarray(y_true)
    y_proba = np.asarray(y_proba, dtype=float)
    masks = group_masks(sensitive, protected_value=protected_value)
    ece_protected = expected_calibration_error(
        y_true[masks.protected], y_proba[masks.protected], n_bins=n_bins
    )
    ece_reference = expected_calibration_error(
        y_true[masks.reference], y_proba[masks.reference], n_bins=n_bins
    )
    return float(ece_protected - ece_reference)


def generalized_entropy_index(benefits, *, alpha: float = 2.0) -> float:
    """Generalized entropy index of a non-negative benefit vector.

    With ``b_i = ŷ_i - y_i + 1`` this is the individual+group unfairness index
    of Speicher et al.; 0 means perfectly equal benefits.
    """
    benefits = np.asarray(benefits, dtype=float)
    mean = benefits.mean()
    if mean == 0:
        return 0.0
    ratios = benefits / mean
    if alpha == 0:
        with np.errstate(divide="ignore"):
            return float(-np.mean(np.log(np.where(ratios > 0, ratios, 1e-12))))
    if alpha == 1:
        with np.errstate(divide="ignore", invalid="ignore"):
            terms = np.where(ratios > 0, ratios * np.log(ratios), 0.0)
        return float(np.mean(terms))
    return float(np.mean(ratios**alpha - 1) / (alpha * (alpha - 1)))


def between_group_generalized_entropy(
    y_true, y_pred, sensitive, *, alpha: float = 2.0, protected_value=1
) -> float:
    """Between-group component of the generalized entropy index of benefits."""
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    benefits = y_pred - y_true + 1.0
    masks = group_masks(sensitive, protected_value=protected_value)
    group_benefits = np.empty_like(benefits)
    group_benefits[masks.protected] = benefits[masks.protected].mean()
    group_benefits[masks.reference] = benefits[masks.reference].mean()
    return generalized_entropy_index(group_benefits, alpha=alpha)


@dataclass
class GroupFairnessReport:
    """Container for the standard battery of group fairness metrics."""

    statistical_parity_difference: float
    disparate_impact: float
    equal_opportunity_difference: float
    equalized_odds_difference: float
    average_odds_difference: float
    predictive_parity_difference: float
    false_negative_rate_difference: float
    false_positive_rate_difference: float
    between_group_entropy: float
    calibration_gap: float | None = None
    extras: dict = field(default_factory=dict)

    def as_dict(self) -> dict[str, float]:
        """The per-group metrics as a plain JSON-serializable dict."""
        out = {
            "statistical_parity_difference": self.statistical_parity_difference,
            "disparate_impact": self.disparate_impact,
            "equal_opportunity_difference": self.equal_opportunity_difference,
            "equalized_odds_difference": self.equalized_odds_difference,
            "average_odds_difference": self.average_odds_difference,
            "predictive_parity_difference": self.predictive_parity_difference,
            "false_negative_rate_difference": self.false_negative_rate_difference,
            "false_positive_rate_difference": self.false_positive_rate_difference,
            "between_group_entropy": self.between_group_entropy,
        }
        if self.calibration_gap is not None:
            out["calibration_gap"] = self.calibration_gap
        out.update(self.extras)
        return out

    def worst_violation(self) -> tuple[str, float]:
        """Return the metric with the largest absolute deviation from its ideal value."""
        deviations = {}
        for name, value in self.as_dict().items():
            ideal = 1.0 if name == "disparate_impact" else 0.0
            deviations[name] = abs(value - ideal)
        worst = max(deviations, key=deviations.get)
        return worst, deviations[worst]


def group_fairness_report(
    y_true, y_pred, sensitive, *, y_proba=None, protected_value=1
) -> GroupFairnessReport:
    """Compute the full battery of group fairness metrics in one call."""
    return GroupFairnessReport(
        statistical_parity_difference=statistical_parity_difference(
            y_pred, sensitive, protected_value=protected_value
        ),
        disparate_impact=disparate_impact(y_pred, sensitive, protected_value=protected_value),
        equal_opportunity_difference=equal_opportunity_difference(
            y_true, y_pred, sensitive, protected_value=protected_value
        ),
        equalized_odds_difference=equalized_odds_difference(
            y_true, y_pred, sensitive, protected_value=protected_value
        ),
        average_odds_difference=average_odds_difference(
            y_true, y_pred, sensitive, protected_value=protected_value
        ),
        predictive_parity_difference=predictive_parity_difference(
            y_true, y_pred, sensitive, protected_value=protected_value
        ),
        false_negative_rate_difference=false_negative_rate_difference(
            y_true, y_pred, sensitive, protected_value=protected_value
        ),
        false_positive_rate_difference=false_positive_rate_difference(
            y_true, y_pred, sensitive, protected_value=protected_value
        ),
        between_group_entropy=between_group_generalized_entropy(
            y_true, y_pred, sensitive, protected_value=protected_value
        ),
        calibration_gap=(
            None
            if y_proba is None
            else calibration_gap(y_true, y_proba, sensitive, protected_value=protected_value)
        ),
    )
