"""Tests for the recommendation substrate."""

import numpy as np
import pytest

from fairexp.exceptions import NotFittedError, ValidationError
from fairexp.recsys import (
    InteractionMatrix,
    ItemKNNRecommender,
    MatrixFactorization,
    RecWalkRecommender,
    exposure_disparity,
    item_group_exposure,
    make_biased_interactions,
    ndcg_at_k,
    popularity_lift,
    precision_at_k,
    recall_at_k,
    user_group_quality_gap,
)


class TestInteractionMatrix:
    def test_validation(self):
        with pytest.raises(ValidationError):
            InteractionMatrix(matrix=np.ones((3, 2)), item_groups=np.array([1]))
        with pytest.raises(ValidationError):
            InteractionMatrix(matrix=np.ones(3), item_groups=np.array([1, 0, 1]))

    def test_popularity_and_activity(self, interactions):
        assert interactions.item_popularity().shape == (interactions.n_items,)
        assert interactions.user_activity().shape == (interactions.n_users,)
        assert interactions.item_popularity().sum() == interactions.user_activity().sum()

    def test_remove_interaction_is_copy(self, interactions):
        users, items = np.nonzero(interactions.matrix > 0)
        user, item = int(users[0]), int(items[0])
        modified = interactions.remove_interaction(user, item)
        assert modified.matrix[user, item] == 0.0
        assert interactions.matrix[user, item] > 0.0

    def test_bipartite_edges_count(self, interactions):
        edges = interactions.to_bipartite_edges()
        assert len(edges) == int((interactions.matrix > 0).sum())

    def test_generator_popularity_bias(self):
        biased = make_biased_interactions(150, 60, popularity_bias=4.0, random_state=0)
        popularity = biased.item_popularity()
        protected_popularity = popularity[biased.item_groups == 1].mean()
        reference_popularity = popularity[biased.item_groups == 0].mean()
        assert protected_popularity < reference_popularity

    def test_generator_activity_gap(self):
        biased = make_biased_interactions(200, 40, activity_gap=0.4, random_state=0)
        activity = biased.user_activity()
        assert activity[biased.user_groups == 1].mean() < activity[biased.user_groups == 0].mean()


RECOMMENDERS = [
    lambda: ItemKNNRecommender(n_neighbors=10),
    lambda: RecWalkRecommender(n_steps=10),
    lambda: MatrixFactorization(n_epochs=5, n_factors=8, random_state=0),
]


class TestRecommenders:
    @pytest.mark.parametrize("factory", RECOMMENDERS)
    def test_recommendations_exclude_seen_items(self, factory, interactions):
        recommender = factory().fit(interactions)
        for user in range(5):
            recommended = recommender.recommend(user, k=5)
            seen = np.flatnonzero(interactions.matrix[user] > 0)
            assert not set(recommended.tolist()) & set(seen.tolist())

    @pytest.mark.parametrize("factory", RECOMMENDERS)
    def test_recommend_all_shape(self, factory, interactions):
        recommender = factory().fit(interactions)
        recs = recommender.recommend_all(k=7)
        assert recs.shape == (interactions.n_users, 7)

    @pytest.mark.parametrize("factory", RECOMMENDERS)
    def test_score_matrix_shape(self, factory, interactions):
        recommender = factory().fit(interactions)
        scores = recommender.score_matrix()
        assert scores.shape == (interactions.n_users, interactions.n_items)

    def test_unfitted_raises(self, interactions):
        with pytest.raises(NotFittedError):
            ItemKNNRecommender().recommend(0)

    def test_recwalk_alpha_validation(self):
        with pytest.raises(ValidationError):
            RecWalkRecommender(alpha=2.0)

    def test_recwalk_scores_are_probabilities(self, recwalk):
        scores = recwalk.score(0)
        assert np.all(scores >= 0)
        assert scores.sum() <= 1.0 + 1e-9

    def test_recwalk_refit_without_changes_scores(self, recwalk, interactions):
        users, items = np.nonzero(interactions.matrix > 0)
        user, item = int(users[0]), int(items[0])
        refitted = recwalk.refit_without(user, item)
        assert refitted.score(user)[item] <= recwalk.score(user)[item] + 1e-12

    def test_recommenders_recover_block_structure(self, rng):
        # Users in two taste blocks; recommenders should prefer in-block items.
        matrix = np.zeros((40, 20))
        for user in range(40):
            block = 0 if user < 20 else 1
            items = rng.choice(np.arange(10) + 10 * block, size=5, replace=False)
            matrix[user, items] = 1.0
        inter = InteractionMatrix(matrix=matrix, item_groups=np.zeros(20, dtype=int))
        recommender = ItemKNNRecommender(n_neighbors=10).fit(inter)
        recs = recommender.recommend(0, k=5)
        assert np.mean(recs < 10) > 0.8


class TestRecMetrics:
    def test_precision_recall_perfect(self):
        holdout = np.zeros((2, 10))
        holdout[0, [1, 2]] = 1
        holdout[1, [3]] = 1
        recommendations = np.array([[1, 2], [3, 4]])
        assert precision_at_k(recommendations, holdout) == pytest.approx(0.75)
        assert recall_at_k(recommendations, holdout) == pytest.approx(1.0)

    def test_ndcg_bounds(self, rng):
        holdout = (rng.random((20, 30)) < 0.2).astype(float)
        recommendations = np.argsort(-rng.random((20, 30)), axis=1)[:, :10]
        value = ndcg_at_k(recommendations, holdout)
        assert 0.0 <= value <= 1.0

    def test_ndcg_perfect_ranking_is_one(self):
        holdout = np.zeros((1, 10))
        holdout[0, [0, 1]] = 1
        assert ndcg_at_k(np.array([[0, 1, 2]]), holdout) == pytest.approx(1.0)

    def test_exposure_disparity_zero_when_proportional(self):
        item_groups = np.array([1, 0, 1, 0])
        # Symmetric lists: protected items get rank 0 in one list and rank 1 in
        # the other, so exposure matches the 50% catalog share exactly.
        recommendations = np.array([[0, 1], [3, 2]])
        assert exposure_disparity(recommendations, item_groups) == pytest.approx(0.0, abs=1e-9)

    def test_exposure_disparity_one_when_protected_absent(self):
        item_groups = np.array([1, 0, 1, 0])
        recommendations = np.array([[1, 3], [3, 1]])
        assert exposure_disparity(recommendations, item_groups) == pytest.approx(1.0)

    def test_item_group_exposure_total(self, interactions, recwalk):
        recs = recwalk.recommend_all(k=5)
        exposures = item_group_exposure(recs, interactions.item_groups)
        from fairexp.fairness import position_weights

        expected_total = position_weights(5).sum() * interactions.n_users
        assert sum(exposures.values()) == pytest.approx(expected_total)

    def test_popularity_lift_above_one_for_biased_recommender(self, interactions, recwalk):
        recs = recwalk.recommend_all(k=5)
        assert popularity_lift(recs, interactions) > 1.0

    def test_user_group_quality_gap_sign(self, rng):
        holdout = np.zeros((10, 20))
        holdout[:, :5] = 1
        user_groups = np.array([0] * 5 + [1] * 5)
        # Reference users get perfect recommendations, protected users useless ones.
        recommendations = np.vstack([
            np.tile(np.arange(5), (5, 1)),
            np.tile(np.arange(15, 20), (5, 1)),
        ])
        assert user_group_quality_gap(recommendations, holdout, user_groups) > 0.9
