"""Serving-layer acceptance benchmarks (BENCH_SERVING.json trajectory).

Three claims from the serving PR are asserted here:

* **Coalescing**: N = 4 concurrent sessions scoring through ONE shared
  :class:`~fairexp.explanations.CoalescingScoringClient` issue strictly
  fewer wire calls than the same 4 sessions with private clients — the
  concurrent batches landing inside the dispatch window are stacked into
  shared ``POST /score`` calls;
* **Accounting**: per-session predict-row accounting is untouched by the
  stacking — each coalescing session reports exactly the rows its
  independent twin reports, and the totals match;
* **Shared pool**: the same 4 concurrent sessions on
  ``pool="shared"`` with ``executor="process"`` construct exactly ONE
  ``ProcessPoolExecutor`` between them (counted via an injected factory
  double).

Everything runs against a real loopback HTTP scoring server over the
exported compute graph — the identical serving path
``python -m fairexp serve`` runs in a separate process (CI exercises that
variant via ``benchmarks/serving_workload.py``).
"""

import threading
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from conftest import record

from fairexp.datasets import make_loan_dataset
from fairexp.explanations import (
    ActionabilityConstraints,
    AuditSession,
    CoalescingScoringClient,
    ExecutorPool,
    GrowingSpheresCounterfactual,
    RemoteScoringBackend,
    serve_model,
)
from fairexp.models import LogisticRegression

N_SESSIONS = 4
ROWS_PER_SESSION = 6


def _workload(n_samples=400):
    dataset = make_loan_dataset(n_samples, direct_bias=1.2, recourse_gap=1.0,
                                random_state=0)
    train, test = dataset.split(test_size=0.3, random_state=1)
    model = LogisticRegression(n_iter=1000, random_state=0).fit(train.X, train.y)
    constraints = ActionabilityConstraints.from_feature_specs(dataset.features)
    rejected = test.X[model.predict(test.X) == 0]
    # One distinct population slice per session, so no cross-session result
    # sharing can hide predict traffic.
    populations = [rejected[k * ROWS_PER_SESSION:(k + 1) * ROWS_PER_SESSION]
                   for k in range(N_SESSIONS)]
    assert all(len(p) == ROWS_PER_SESSION for p in populations)
    return train, model, constraints, populations


def _generator(train, model, constraints):
    return GrowingSpheresCounterfactual(model, train.X, constraints=constraints,
                                        random_state=0)


def _run_session(train, model, constraints, population, backend):
    """One audit session's engine pass through the given predict backend."""
    with AuditSession(_generator(train, model, constraints),
                      backend=backend) as session:
        results = session.counterfactuals_for(population,
                                              np.arange(len(population)))
        rows = session.predict_row_count
    return results, rows


def test_coalescing_sessions_issue_fewer_wire_calls(benchmark):
    train, model, constraints, populations = _workload()

    with serve_model(model) as server:
        # Independent baseline: each session scores through its own client,
        # so every predict batch is its own wire call.
        independent_clients = [
            CoalescingScoringClient(server.url, window=0.0)
            for _ in range(N_SESSIONS)
        ]
        independent_rows = []
        independent_results = []
        for k in range(N_SESSIONS):
            backend = RemoteScoringBackend(independent_clients[k])
            results, rows = _run_session(train, model, constraints,
                                         populations[k], backend)
            backend.close()
            independent_results.append(results)
            independent_rows.append(rows)
        independent_wire_calls = sum(c.wire_call_count
                                     for c in independent_clients)

        # Coalescing run: the same four sessions, concurrent, one shared
        # client — batches landing in the window share wire calls.
        def coalesced_run():
            client = CoalescingScoringClient(server.url, window=0.25)
            outputs = [None] * N_SESSIONS
            rows = [0] * N_SESSIONS
            barrier = threading.Barrier(N_SESSIONS)

            def run(k):
                backend = RemoteScoringBackend(client)
                barrier.wait(timeout=30)
                try:
                    outputs[k], rows[k] = _run_session(
                        train, model, constraints, populations[k], backend)
                finally:
                    # Leaving the window: later dispatchers must not wait
                    # for a session that already finished its sweep.
                    backend.close()

            threads = [threading.Thread(target=run, args=(k,))
                       for k in range(N_SESSIONS)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            return client, outputs, rows

        client, outputs, coalesced_rows = benchmark.pedantic(
            coalesced_run, rounds=1, iterations=1)

    # (a) strictly fewer wire calls than the independent sessions issued.
    assert 0 < client.wire_call_count < independent_wire_calls, (
        f"coalesced: {client.wire_call_count} wire calls, "
        f"independent: {independent_wire_calls}"
    )
    assert client.coalesced_count > 0

    # (b) identical audit results, session by session.
    for k in range(N_SESSIONS):
        assert set(outputs[k]) == set(independent_results[k])
        for i in independent_results[k]:
            assert np.array_equal(outputs[k][i].counterfactual,
                                  independent_results[k][i].counterfactual)

    # (c) per-session row accounting is untouched by the stacking: each
    # coalescing session reports its independent twin's rows, the totals
    # match, and the shared client's wire rows account for every row once.
    assert coalesced_rows == independent_rows
    assert sum(coalesced_rows) == sum(independent_rows)
    assert client.wire_row_count == sum(coalesced_rows)

    record(benchmark, {
        "n_sessions": N_SESSIONS,
        "independent_wire_calls": independent_wire_calls,
        "coalesced_wire_calls": client.wire_call_count,
        "coalescing_factor": independent_wire_calls / max(client.wire_call_count, 1),
        "batches_coalesced": client.coalesced_count,
        "wire_rows": client.wire_row_count,
        "rows_per_session": coalesced_rows,
    }, experiment="SERVING")


class _CountingProcessFactory:
    """ProcessPoolExecutor factory double counting constructions."""

    def __init__(self):
        self.constructed = 0

    def __call__(self, *args, **kwargs):
        self.constructed += 1
        return ProcessPoolExecutor(*args, **kwargs)


def test_shared_pool_constructs_one_process_executor_across_sessions(benchmark):
    """Four concurrent process-sharded sessions on pool="shared" build ONE
    ProcessPoolExecutor between them — the shared-pool acceptance criterion."""
    train, model, constraints, populations = _workload()
    factory = _CountingProcessFactory()
    shared = ExecutorPool.shared(max_workers=2, process_factory=factory)
    try:
        reference = {}
        for k in range(N_SESSIONS):
            with AuditSession(_generator(train, model, constraints)) as session:
                reference[k] = session.counterfactuals_for(
                    populations[k], np.arange(len(populations[k])))

        def concurrent_sessions():
            outputs = [None] * N_SESSIONS
            barrier = threading.Barrier(N_SESSIONS)

            def run(k):
                barrier.wait(timeout=30)
                with AuditSession(_generator(train, model, constraints),
                                  n_jobs=2, executor="process",
                                  pool="shared") as session:
                    outputs[k] = session.counterfactuals_for(
                        populations[k], np.arange(len(populations[k])))

            threads = [threading.Thread(target=run, args=(k,))
                       for k in range(N_SESSIONS)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=300)
            return outputs

        outputs = benchmark.pedantic(concurrent_sessions, rounds=1, iterations=1)

        assert factory.constructed == 1, (
            f"{factory.constructed} ProcessPoolExecutors constructed across "
            f"{N_SESSIONS} concurrent shared-pool sessions"
        )
        assert shared.created_counts["process"] == 1
        # Session closes released their references; ours is the only holder
        # left, and the workers are still alive for it.
        assert shared.refcount == 1
        for k in range(N_SESSIONS):
            assert set(outputs[k]) == set(reference[k])
            for i in reference[k]:
                assert np.array_equal(outputs[k][i].counterfactual,
                                      reference[k][i].counterfactual)
        stats = shared.stats()["process"]
        record(benchmark, {
            "n_sessions": N_SESSIONS,
            "process_executors_created": factory.constructed,
            "shared_pool_workers": stats["workers"],
        }, experiment="SERVING_POOL")
    finally:
        shared.shutdown()
