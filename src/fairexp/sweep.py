"""Declarative sweep orchestration: factorial experiment designs.

Every experiment in this repository used to be a hand-written ``run_eN``
function.  This module replaces that idiom with a declarative one — an
experiment is a :class:`SweepSpec` that *crosses* independent variables
(:class:`Factor` levels: explainers, schedules, predict backends, kernel
paths, model families, datasets) into an execution tree of
:class:`SweepCell` s, the factorial-``Design`` idiom of experiment
orchestration frameworks.  The spec composes pieces that already exist
elsewhere in the package instead of re-implementing them:

* **Pruning** — the raw cross product usually contains infeasible cells
  (a gradient-based explainer over a model without gradients, a numba
  kernel path in a numpy-only environment).  :meth:`SweepSpec.plan`
  partitions the raw product *exhaustively* into emitted
  :class:`SweepCell` s and :class:`PrunedCell` s: registry-backed factors
  are checked through :meth:`ExplainerRegistry.compatible`'s structured
  model/data/resource requirements (against lightweight proxies built
  from the spec's declared workload capabilities), and every factor level
  may declare free-form resource requirements checked against what the
  spec's workload :attr:`~SweepSpec.resources` provide.  Each pruned cell
  carries the reasons it was dropped — nothing disappears silently.
* **Execution** — :func:`run_sweep` executes emitted cells sequentially
  or over an :class:`~fairexp.explanations.pool.ExecutorPool` (``jobs >
  1``; pass ``pool="shared"`` for the process-wide refcounted pool).
  Cells whose runner takes a ``backend`` factor level of ``"remote"``
  score against a loopback fleet server exactly like ``python -m fairexp
  serve``.  Every :class:`~fairexp.explanations.session.AuditSession` a
  cell builds registers itself with the sweep (see :func:`track_session`),
  so each :class:`CellResult` carries uniform accounting — wall time,
  predict calls, engine predict calls, store row hits, pool gauges —
  regardless of which runner produced it.
* **Resume** — with a persistent
  :class:`~fairexp.explanations.store.CounterfactualStore` attached, a
  :class:`SweepJournal` (one atomic JSON file next to the store) records
  every completed cell.  ``resume`` *replays* completed cells: they
  re-execute against the warm store, which costs **zero engine predict
  calls** (the store serves the counterfactual matrices a previous
  process already paid for), and the replayed metrics are verified
  against the journaled ones — a divergence is surfaced as a
  ``"diverged"`` cell status instead of silently overwritten.

The default specs for the paper's experiments (FIG1/FIG2/TAB1 and
E1–E14) are registered by :mod:`fairexp.experiments`;
:class:`SweepRegistry` imports it lazily, so ``SweepRegistry.ids()`` is
always the complete experiment list — the CLI derives its choices from
it rather than maintaining its own.
"""

from __future__ import annotations

import contextvars
import hashlib
import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, Sequence

from .exceptions import ValidationError
from .explanations.base import ExplainerRegistry

__all__ = [
    "Factor",
    "SweepSpec",
    "SweepCell",
    "PrunedCell",
    "SweepPlan",
    "CellResult",
    "SweepResult",
    "SweepJournal",
    "SweepRegistry",
    "run_sweep",
    "track_session",
    "active_store_dir",
    "is_accounting_key",
]


# --------------------------------------------------------------------------
# Per-cell context: session tracking + store injection
# --------------------------------------------------------------------------
#: Sessions created while a cell executes register here (one bucket per
#: executing cell, context-local so parallel cells never mix).
_SESSION_BUCKET: contextvars.ContextVar[list | None] = contextvars.ContextVar(
    "fairexp_sweep_sessions", default=None
)

#: Store directory the current sweep injects into the workload runners
#: (checked by the runners before ``$FAIREXP_STORE_DIR``), so a sweep can be
#: pointed at a store without mutating process-global environment.
_STORE_DIR: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    "fairexp_sweep_store_dir", default=None
)


def track_session(session):
    """Register ``session`` with the sweep cell currently executing (if any).

    The workload runners wrap every :class:`AuditSession` they build with
    this hook; outside a sweep it is a no-op passthrough, inside one it is
    how :func:`run_sweep` aggregates uniform per-cell accounting (predict
    calls, engine predict calls, store row hits, pool gauges) without the
    runners having to report anything themselves.
    """
    bucket = _SESSION_BUCKET.get()
    if bucket is not None:
        bucket.append(session)
    return session


def active_store_dir() -> str | None:
    """The store directory the enclosing sweep injected, or ``None``.

    Workload runners consult this before ``$FAIREXP_STORE_DIR`` so
    ``run_sweep(store=...)`` wins over the environment without mutating it.
    """
    return _STORE_DIR.get()


#: Substrings marking a runner result key as *accounting* (predict-call,
#: schedule, cache and pool counters) rather than a metric.  Accounting
#: legitimately differs between a cold run and a store-warmed replay —
#: metric keys must stay bitwise identical, which is exactly what the
#: journal verifies on resume.
_ACCOUNTING_MARKERS = (
    "predict_call",
    "engine_predict",
    "schedule_step",
    "schedule_draw",
    "cf_reused",
    "store_row",
    "cache_hit",
    "pool_",
)


def is_accounting_key(key: str) -> bool:
    """Whether a runner result key is accounting (run-dependent) rather than
    a metric that must replay bitwise from the persistent store."""
    return any(marker in key for marker in _ACCOUNTING_MARKERS)


def _metric_items(results: Mapping[str, Any]) -> dict[str, Any]:
    """The non-accounting (replay-stable) slice of a runner result dict."""
    return {k: v for k, v in results.items() if not is_accounting_key(k)}


def _sanitize(value):
    """Coerce a runner result value to a JSON-serializable equivalent."""
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, (int, float, str)):
        return value
    if hasattr(value, "item"):  # numpy scalars / 0-d arrays
        try:
            return _sanitize(value.item())
        except (TypeError, ValueError):
            pass
    if isinstance(value, Mapping):
        return {str(k): _sanitize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize(v) for v in value]
    return str(value)


# --------------------------------------------------------------------------
# Factors and specs
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class Factor:
    """One independent variable of a factorial design.

    Parameters
    ----------
    name:
        The runner keyword argument this factor assigns.
    levels:
        The factor's levels: either a sequence of ``(label, value)`` pairs
        or a mapping ``label -> value``.  The *label* addresses the level in
        cell ids and ``--where`` filters; the *value* is what the runner
        receives.  The first level is the factor's default (used by
        :meth:`SweepSpec.cell` and the legacy-compatible single-cell path),
        so it must reproduce the pre-sweep behaviour.
    registry:
        When ``True`` the labels are :class:`ExplainerRegistry` names and
        the planner prunes levels through the registry's structured
        compatibility check (modality, model requirements, data
        requirements, resource requirements) against the spec's declared
        workload capabilities.
    capability:
        With ``registry=True``, additionally require the entry to carry
        this capability flag (e.g. ``"counterfactual-generator"``) — a
        level without it is pruned, not an error, so specs can cross over
        broad registry slices.
    requires:
        Mapping ``label -> resource names`` that the spec's workload must
        provide (:attr:`SweepSpec.resources`) for the level to be feasible,
        e.g. ``{"numba": ("numba",)}`` or ``{"remote": ("servable",)}``.
    """

    name: str
    levels: tuple[tuple[str, Any], ...]
    registry: bool = False
    capability: str | None = None
    requires: Mapping[str, tuple[str, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        levels = self.levels
        if isinstance(levels, Mapping):
            levels = tuple(levels.items())
        else:
            levels = tuple(
                pair if isinstance(pair, tuple) else (str(pair), pair)
                for pair in levels
            )
        if not levels:
            raise ValidationError(f"factor {self.name!r} needs at least one level")
        labels = [label for label, _ in levels]
        if len(set(labels)) != len(labels):
            raise ValidationError(
                f"factor {self.name!r} has duplicate level labels: {labels}"
            )
        object.__setattr__(self, "levels", levels)

    @property
    def labels(self) -> tuple[str, ...]:
        """The level labels, in declaration order (first = default)."""
        return tuple(label for label, _ in self.levels)

    def value(self, label: str) -> Any:
        """The runner value behind ``label`` (raises on unknown labels)."""
        for name, value in self.levels:
            if name == label:
                return value
        raise KeyError(
            f"factor {self.name!r} has no level {label!r}; known: {list(self.labels)}"
        )


class _ModelProxy:
    """Plan-time stand-in for the workload's model: exposes declared attributes.

    The planner must decide feasibility *before* building any workload, so
    compatibility checks run against a proxy that ``hasattr``-answers for
    exactly the capabilities the spec declares (``model_provides``).
    """

    def __init__(self, attrs: Iterable[str]) -> None:
        for attr in attrs:
            setattr(self, attr, True)


class _DatasetProxy:
    """Plan-time stand-in for the workload's dataset (modality + provisions)."""

    def __init__(self, modality: str, provides: Iterable[str]) -> None:
        self.modality = modality
        provides = set(provides)
        if "labels" in provides:
            self.y = (1,)
        if "scm" in provides:
            self.scm = object()
        if "feature-specs" in provides:
            self.features = (object(),)


@dataclass(frozen=True)
class SweepSpec:
    """A declarative factorial experiment: factors crossed into cells.

    Parameters
    ----------
    experiment:
        Stable experiment id (``"E1/E2"``, ``"FIG1"``, ...).
    runner:
        The parameterized workload callable; each cell calls it with
        ``{**fixed, **overrides, **factor_assignments}`` and expects a flat
        result dict back.
    factors:
        The crossed independent variables.  A spec with no factors is a
        single-cell design (the display items FIG1/FIG2/TAB1, e.g.).
    fixed:
        Constant runner kwargs (workload sizes); per-run ``overrides``
        (e.g. CLI ``--set n_samples=250``) replace them for every cell.
    modality / model_provides / data_provides:
        What the workload offers, for registry-backed pruning: the dataset
        modality, the attributes of the audited model (``predict``,
        ``predict_proba``, ``gradient_input``, ``recommend_all``, ...) and
        the dataset provisions (``"labels"``, ``"scm"``,
        ``"feature-specs"``).
    resources:
        Free-form resource tokens the workload provides, checked against
        factor-level ``requires`` (e.g. ``"servable"`` — the model family
        exports to a compute graph, so onnx/remote backends apply — or
        ``"numba"`` when the compiled kernel path is importable).
    description:
        One line for ``fairexp sweep plan`` listings.
    """

    experiment: str
    runner: Callable[..., dict]
    factors: tuple[Factor, ...] = ()
    fixed: Mapping[str, Any] = field(default_factory=dict)
    modality: str = "tabular"
    model_provides: tuple[str, ...] = ("predict",)
    data_provides: tuple[str, ...] = ()
    resources: frozenset[str] = frozenset()
    description: str = ""

    def __post_init__(self) -> None:
        names = [factor.name for factor in self.factors]
        if len(set(names)) != len(names):
            raise ValidationError(
                f"spec {self.experiment!r} has duplicate factor names: {names}"
            )

    # ----------------------------------------------------------------- sizes
    def raw_size(self) -> int:
        """Size of the raw cross product (before pruning)."""
        size = 1
        for factor in self.factors:
            size *= len(factor.levels)
        return size

    def factor(self, name: str) -> Factor | None:
        """The factor named ``name``, or ``None`` when the spec lacks it."""
        for factor in self.factors:
            if factor.name == name:
                return factor
        return None

    # -------------------------------------------------------------- planning
    def _proxies(self) -> tuple[_ModelProxy, _DatasetProxy]:
        return (_ModelProxy(self.model_provides),
                _DatasetProxy(self.modality, self.data_provides))

    def _level_violations(self, factor: Factor, label: str,
                          model: _ModelProxy, dataset: _DatasetProxy) -> list[str]:
        """Why ``factor=label`` is infeasible for this workload ([] = feasible)."""
        reasons: list[str] = []
        for resource in factor.requires.get(label, ()):
            if resource not in self.resources:
                reasons.append(
                    f"{factor.name}={label} requires resource {resource!r} "
                    f"which the {self.experiment} workload does not provide"
                )
        if factor.registry:
            try:
                entry = ExplainerRegistry.entry(label)
            except KeyError:
                reasons.append(f"{factor.name}={label} is not a registered explainer")
                return reasons
            if factor.capability is not None and factor.capability not in entry.capabilities:
                reasons.append(
                    f"{factor.name}={label} lacks capability {factor.capability!r}"
                )
            check = entry.is_compatible(model, dataset)
            reasons.extend(f"{factor.name}={label}: {reason}" for reason in check.reasons)
        return reasons

    def _where_labels(self, factor: Factor,
                      where: Mapping[str, set[str]] | None) -> tuple[str, ...]:
        if not where or factor.name not in where:
            return factor.labels
        wanted = set(where[factor.name])
        unknown = wanted - set(factor.labels)
        if unknown:
            raise ValidationError(
                f"unknown level(s) {sorted(unknown)} for factor "
                f"{factor.name!r} of {self.experiment}; known: {list(factor.labels)}"
            )
        selected = tuple(label for label in factor.labels if label in wanted)
        return selected

    def plan(self, where: Mapping[str, Iterable[str]] | None = None,
             overrides: Mapping[str, Any] | None = None) -> "SweepPlan":
        """Cross the factors and partition the product into emitted/pruned cells.

        ``where`` restricts factors to subsets of their levels (factors the
        spec lacks are ignored, so one filter can apply across many specs);
        ``overrides`` replace ``fixed`` runner kwargs for every cell.  The
        partition is exhaustive: every point of the (restricted) raw cross
        product appears exactly once, either as a :class:`SweepCell` or as a
        :class:`PrunedCell` carrying the reasons it was dropped.
        """
        where = {name: set(labels) for name, labels in (where or {}).items()}
        model, dataset = self._proxies()
        assignments: list[tuple[tuple[str, str], ...]] = [()]
        for factor in self.factors:
            labels = self._where_labels(factor, where)
            if not labels:
                assignments = []
                break
            assignments = [
                (*prefix, (factor.name, label))
                for prefix in assignments for label in labels
            ]
        emitted: list[SweepCell] = []
        pruned: list[PrunedCell] = []
        for assignment in assignments:
            reasons: list[str] = []
            for name, label in assignment:
                reasons.extend(
                    self._level_violations(self.factor(name), label, model, dataset)
                )
            if reasons:
                pruned.append(PrunedCell(spec=self, assignment=assignment,
                                         reasons=tuple(reasons)))
            else:
                emitted.append(SweepCell(spec=self, assignment=assignment,
                                         overrides=dict(overrides or {})))
        return SweepPlan(emitted=emitted, pruned=pruned,
                         raw_size=len(assignments))

    def cell(self, where: Mapping[str, Iterable[str]] | None = None,
             overrides: Mapping[str, Any] | None = None) -> "SweepCell":
        """The design's *default* cell: the first feasible level of each factor.

        This is the cell that reproduces the legacy ``run_eN`` call —
        factor defaults are defined to match the old hard-coded behaviour.
        ``where`` can pin factors first (e.g. ``{"backend": ["onnx"]}``).
        """
        plan = self.plan(where=where, overrides=overrides)
        if not plan.emitted:
            raise ValidationError(
                f"no feasible cell for {self.experiment} under {where!r}: "
                + "; ".join(plan.pruned[0].reasons if plan.pruned else ("empty selection",))
            )
        return plan.emitted[0]


@dataclass(frozen=True)
class SweepCell:
    """One feasible point of a spec's cross product (an executable cell)."""

    spec: SweepSpec
    assignment: tuple[tuple[str, str], ...]
    overrides: Mapping[str, Any] = field(default_factory=dict)

    @property
    def experiment(self) -> str:
        """The owning spec's experiment id."""
        return self.spec.experiment

    @property
    def cell_id(self) -> str:
        """Stable address of the cell: experiment id + factor assignment."""
        return format_cell_id(self.experiment, self.assignment)

    def params(self) -> dict[str, Any]:
        """The runner kwargs this cell executes with."""
        params = {**self.spec.fixed, **self.overrides}
        for name, label in self.assignment:
            params[name] = self.spec.factor(name).value(label)
        return params

    def digest(self) -> str:
        """Content digest of the cell's full parameterization.

        Folded into the journal so a resume with different overrides (a
        different ``--set n_samples``) re-runs the cell instead of replaying
        results computed under other parameters.
        """
        payload = json.dumps(
            {"experiment": self.experiment,
             "assignment": list(self.assignment),
             "params": _sanitize(self.params())},
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class PrunedCell:
    """One infeasible point of the cross product, with every violated reason."""

    spec: SweepSpec
    assignment: tuple[tuple[str, str], ...]
    reasons: tuple[str, ...]

    @property
    def experiment(self) -> str:
        """The owning spec's experiment id."""
        return self.spec.experiment

    @property
    def cell_id(self) -> str:
        """Stable address of the pruned point (same scheme as emitted cells)."""
        return format_cell_id(self.experiment, self.assignment)


def format_cell_id(experiment: str,
                   assignment: Sequence[tuple[str, str]]) -> str:
    """``"E1/E2[backend=onnx,schedule=adaptive]"`` (bare id for 0 factors)."""
    if not assignment:
        return experiment
    inner = ",".join(f"{name}={label}" for name, label in assignment)
    return f"{experiment}[{inner}]"


@dataclass
class SweepPlan:
    """Exhaustive partition of one or more specs' cross products."""

    emitted: list[SweepCell]
    pruned: list[PrunedCell]
    raw_size: int

    def extend(self, other: "SweepPlan") -> "SweepPlan":
        """Fold another spec's plan into this one (multi-spec sweeps)."""
        self.emitted.extend(other.emitted)
        self.pruned.extend(other.pruned)
        self.raw_size += other.raw_size
        return self

    def summary(self) -> dict[str, int]:
        """Raw / emitted / pruned cell counts."""
        return {"raw_cells": self.raw_size, "emitted_cells": len(self.emitted),
                "pruned_cells": len(self.pruned)}


# --------------------------------------------------------------------------
# Registry of experiment specs
# --------------------------------------------------------------------------
class SweepRegistry:
    """Process-wide registry of experiment :class:`SweepSpec` s.

    The default specs (FIG1/FIG2/TAB1, E1–E14) register when
    :mod:`fairexp.experiments` imports; the accessors trigger that import
    lazily, so :meth:`ids` is always the complete experiment list.  The CLI
    derives its ``run`` choices from here — an experiment that exists
    without being registered is unreachable, which is the point: there is
    no second, hand-maintained list to forget to update.
    """

    _specs: dict[str, SweepSpec] = {}
    _loading = False

    @classmethod
    def register(cls, spec: SweepSpec) -> SweepSpec:
        """Add ``spec`` under its experiment id (re-registration must be identical)."""
        existing = cls._specs.get(spec.experiment)
        if existing is not None and existing.runner is not spec.runner:
            raise ValidationError(
                f"experiment {spec.experiment!r} already registered"
            )
        cls._specs[spec.experiment] = spec
        return spec

    @classmethod
    def _ensure_loaded(cls) -> None:
        if not cls._specs and not cls._loading:
            cls._loading = True
            try:
                from . import experiments  # noqa: F401  (registers default specs)
            finally:
                cls._loading = False

    @classmethod
    def ids(cls) -> list[str]:
        """Every registered experiment id, in registration order."""
        cls._ensure_loaded()
        return list(cls._specs)

    @classmethod
    def specs(cls) -> list[SweepSpec]:
        """Every registered spec, in registration order."""
        cls._ensure_loaded()
        return list(cls._specs.values())

    @classmethod
    def get(cls, experiment: str) -> SweepSpec:
        """The spec registered for ``experiment`` (raises ``KeyError``)."""
        cls._ensure_loaded()
        if experiment not in cls._specs:
            raise KeyError(
                f"no experiment registered as {experiment!r}; "
                f"known: {list(cls._specs)}"
            )
        return cls._specs[experiment]


# --------------------------------------------------------------------------
# Execution results
# --------------------------------------------------------------------------
@dataclass
class CellResult:
    """Outcome of executing one cell: results + uniform accounting."""

    cell_id: str
    experiment: str
    assignment: tuple[tuple[str, str], ...]
    results: dict[str, Any]
    wall_time_seconds: float
    stats: dict[str, Any]
    replayed: bool = False
    status: str = "completed"

    def to_json(self) -> dict[str, Any]:
        """JSON-ready representation (what the journal and ``--json`` emit)."""
        return {
            "cell_id": self.cell_id,
            "experiment": self.experiment,
            "assignment": [list(pair) for pair in self.assignment],
            "status": self.status,
            "replayed": self.replayed,
            "wall_time_seconds": self.wall_time_seconds,
            "stats": self.stats,
            "results": self.results,
        }


@dataclass
class SweepResult:
    """Outcome of a whole sweep: per-cell results plus the pruned partition."""

    cells: list[CellResult]
    pruned: list[PrunedCell]
    raw_size: int
    wall_time_seconds: float
    store_dir: str | None = None

    def summary(self) -> dict[str, Any]:
        """Aggregate counts and accounting totals across all executed cells."""
        totals: dict[str, float] = {}
        for cell in self.cells:
            for key in ("predict_call_count", "engine_predict_calls",
                        "store_row_hits", "n_results_reused"):
                totals[key] = totals.get(key, 0) + cell.stats.get(key, 0)
        return {
            "raw_cells": self.raw_size,
            "emitted_cells": len(self.cells),
            "pruned_cells": len(self.pruned),
            "replayed_cells": sum(1 for c in self.cells if c.replayed),
            "diverged_cells": sum(1 for c in self.cells if c.status == "diverged"),
            "wall_time_seconds": self.wall_time_seconds,
            **{key: int(value) for key, value in totals.items()},
        }

    def to_json(self) -> dict[str, Any]:
        """JSON-ready representation of the full sweep outcome."""
        return {
            "summary": self.summary(),
            "store_dir": self.store_dir,
            "cells": [cell.to_json() for cell in self.cells],
            "pruned": [
                {"cell_id": cell.cell_id, "reasons": list(cell.reasons)}
                for cell in self.pruned
            ],
        }

    def bench_point(self) -> dict[str, Any]:
        """Flat record for the ``BENCH_SWEEP.json`` trajectory."""
        point = {"store_dir": self.store_dir, **self.summary()}
        for cell in self.cells:
            prefix = cell.cell_id
            point[f"{prefix}:wall_time_seconds"] = cell.wall_time_seconds
            point[f"{prefix}:engine_predict_calls"] = cell.stats.get(
                "engine_predict_calls", 0)
            point[f"{prefix}:store_row_hits"] = cell.stats.get("store_row_hits", 0)
        return point


# --------------------------------------------------------------------------
# Journal (crash-safe resume bookkeeping)
# --------------------------------------------------------------------------
class SweepJournal:
    """Atomic JSON journal of completed cells, for mid-sweep crash resume.

    One file, rewritten atomically (`tmp` + ``os.replace``) after every
    completed cell, so a killed sweep leaves a readable journal of exactly
    the cells that finished.  Each record carries the cell's parameter
    :meth:`~SweepCell.digest` (a resume with different overrides re-runs
    instead of replaying), its accounting stats, and its sanitized results
    (so a replay can verify the warm re-execution reproduced the journaled
    metrics bitwise).
    """

    VERSION = 1

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self._records: dict[str, dict] = self._read()

    def _read(self) -> dict[str, dict]:
        try:
            payload = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return {}
        if not isinstance(payload, dict) or payload.get("version") != self.VERSION:
            return {}
        cells = payload.get("cells")
        return dict(cells) if isinstance(cells, dict) else {}

    def __len__(self) -> int:
        return len(self._records)

    def completed(self, cell: SweepCell) -> dict | None:
        """The journaled record for ``cell`` (same digest), else ``None``."""
        record = self._records.get(cell.cell_id)
        if record is None or record.get("digest") != cell.digest():
            return None
        if record.get("status") != "completed":
            return None
        return record

    def record(self, cell: SweepCell, result: CellResult) -> None:
        """Journal a finished cell (atomic write; thread-safe)."""
        entry = {
            "digest": cell.digest(),
            "status": result.status,
            "completed_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "wall_time_seconds": result.wall_time_seconds,
            "stats": result.stats,
            "results": result.results,
        }
        with self._lock:
            self._records[cell.cell_id] = entry
            payload = {"version": self.VERSION, "cells": self._records}
            tmp = self.path.with_name(self.path.name + ".tmp")
            tmp.write_text(json.dumps(payload, indent=2) + "\n")
            os.replace(tmp, self.path)

    def reset(self) -> None:
        """Drop every record (a fresh ``run`` starts a fresh journal)."""
        with self._lock:
            self._records = {}
            if self.path.exists():
                self.path.unlink()

    @staticmethod
    def default_path(store_dir) -> Path:
        """Where a sweep journals next to a persistent store directory."""
        return Path(store_dir) / "SWEEP_JOURNAL.json"


# --------------------------------------------------------------------------
# Execution
# --------------------------------------------------------------------------
def _fold_session_stats(sessions: list) -> dict[str, Any]:
    """Aggregate the tracked sessions' accounting into one flat dict.

    Numeric stats sum across sessions (predict calls, store hits, pool
    gauges); string-valued ones (``kernel_path``) keep the last session's
    value.  Cells that build no session (display items, mitigation) report
    zeros, which keeps the :class:`CellResult` schema uniform.
    """
    stats: dict[str, Any] = {
        "n_sessions": len(sessions),
        "predict_call_count": 0,
        "engine_predict_calls": 0,
        "store_row_hits": 0,
        "n_results_reused": 0,
    }
    for session in sessions:
        for key, value in session.stats().items():
            if isinstance(value, bool):
                continue
            if isinstance(value, (int, float)):
                stats[key] = stats.get(key, 0) + value
            else:
                stats[key] = value
    return stats


def _execute_cell(cell: SweepCell, store_dir: str | None) -> CellResult:
    """Run one cell in its own tracking context and fold its accounting."""
    bucket: list = []
    bucket_token = _SESSION_BUCKET.set(bucket)
    store_token = _STORE_DIR.set(store_dir)
    start = time.perf_counter()
    try:
        results = cell.spec.runner(**cell.params())
    finally:
        _SESSION_BUCKET.reset(bucket_token)
        _STORE_DIR.reset(store_token)
    wall = time.perf_counter() - start
    return CellResult(
        cell_id=cell.cell_id,
        experiment=cell.experiment,
        assignment=cell.assignment,
        results={key: _sanitize(value) for key, value in results.items()},
        wall_time_seconds=wall,
        stats=_sanitize(_fold_session_stats(bucket)),
    )


def _resolve_specs(specs) -> list[SweepSpec]:
    if specs is None:
        return SweepRegistry.specs()
    resolved: list[SweepSpec] = []
    for spec in specs:
        if isinstance(spec, SweepSpec):
            resolved.append(spec)
        else:
            try:
                resolved.append(SweepRegistry.get(spec))
            except KeyError as error:
                raise ValidationError(str(error)) from None
    return resolved


def sweep_plan(specs=None, *, where=None, overrides=None) -> SweepPlan:
    """Plan (but do not execute) a sweep over ``specs``.

    ``specs`` is a list of experiment ids and/or :class:`SweepSpec` objects
    (``None`` = every registered spec); ``where``/``overrides`` as in
    :meth:`SweepSpec.plan`.
    """
    plan = SweepPlan(emitted=[], pruned=[], raw_size=0)
    for spec in _resolve_specs(specs):
        plan.extend(spec.plan(where=where, overrides=overrides))
    return plan


def run_sweep(specs=None, *, where=None, overrides=None, store=None,
              journal=None, resume: bool = False, jobs: int = 1, pool=None,
              on_cell: Callable[[CellResult, int, int], None] | None = None
              ) -> SweepResult:
    """Plan and execute a sweep; returns the full :class:`SweepResult`.

    Parameters
    ----------
    specs, where, overrides:
        As in :func:`sweep_plan`.
    store:
        Directory of a persistent
        :class:`~fairexp.explanations.store.CounterfactualStore` injected
        into every cell's sessions (``None`` falls back to
        ``$FAIREXP_STORE_DIR``, matching the standalone runners).
    journal:
        Path of the :class:`SweepJournal`; defaults to
        ``SWEEP_JOURNAL.json`` inside ``store`` when one is given.  A fresh
        run resets the journal; a ``resume=True`` run requires it.
    resume:
        Resume semantics: cells already journaled (same digest) are
        *replayed* — re-executed against the warm store, which costs zero
        engine predict calls — and their metric (non-accounting) results
        are verified against the journal; a mismatch marks the cell
        ``"diverged"``.  Cells not journaled run normally.
    jobs, pool:
        ``jobs > 1`` distributes cells over an
        :class:`~fairexp.explanations.pool.ExecutorPool`'s thread executor
        (``pool="shared"`` uses the process-wide refcounted pool; a pool
        instance is used as-is and left running for its owner).
    on_cell:
        Callback ``(cell_result, n_done, n_total)`` after every completed
        cell — progress reporting, or crash-injection in tests.
    """
    from .explanations.pool import ExecutorPool

    plan = sweep_plan(specs, where=where, overrides=overrides)
    store_dir = str(store) if store is not None else \
        (os.environ.get("FAIREXP_STORE_DIR", "").strip() or None)
    journal_path = journal
    if journal_path is None and store_dir is not None:
        journal_path = SweepJournal.default_path(store_dir)
    book = SweepJournal(journal_path) if journal_path is not None else None
    if resume:
        if book is None:
            raise ValidationError(
                "resume needs a journal: pass journal= or store= (the journal "
                "lives next to the store)"
            )
    elif book is not None:
        book.reset()
    if store_dir is not None:
        Path(store_dir).mkdir(parents=True, exist_ok=True)

    replay_records = {
        cell.cell_id: book.completed(cell)
        for cell in plan.emitted
    } if book is not None else {}
    total = len(plan.emitted)
    done_lock = threading.Lock()
    done = 0
    start = time.perf_counter()

    def run_one(cell: SweepCell) -> CellResult:
        nonlocal done
        journaled = replay_records.get(cell.cell_id)
        result = _execute_cell(cell, store_dir)
        if journaled is not None:
            result.replayed = True
            if _metric_items(result.results) != _metric_items(journaled["results"]):
                result.status = "diverged"
        if book is not None:
            book.record(cell, result)
        with done_lock:
            done += 1
            n_done = done
        if on_cell is not None:
            on_cell(result, n_done, total)
        return result

    if jobs > 1 and total > 1:
        owns_pool = pool is None or pool == "shared"
        executor_pool = (ExecutorPool(max_workers=jobs) if pool is None
                         else ExecutorPool.ensure(pool))
        try:
            cells = executor_pool.map("thread", run_one, plan.emitted)
        finally:
            if owns_pool:
                executor_pool.shutdown()
    else:
        cells = [run_one(cell) for cell in plan.emitted]

    return SweepResult(
        cells=list(cells),
        pruned=plan.pruned,
        raw_size=plan.raw_size,
        wall_time_seconds=time.perf_counter() - start,
        store_dir=store_dir,
    )
