"""Tests for the ranking substrate."""

import numpy as np
import pytest

from fairexp.exceptions import ValidationError
from fairexp.fairness import top_k_representation
from fairexp.ranking import (
    RankedCandidates,
    ScoreRanker,
    fair_topk_rerank,
    make_ranking_candidates,
)


class TestRankedCandidates:
    def test_validation(self):
        with pytest.raises(ValidationError):
            RankedCandidates(X=np.ones((3, 2)), groups=np.array([0, 1]))

    def test_default_feature_names(self):
        candidates = RankedCandidates(X=np.ones((3, 2)), groups=np.array([0, 1, 0]))
        assert candidates.feature_names == ["x0", "x1"]

    def test_ranked_groups_requires_ranking(self):
        candidates = RankedCandidates(X=np.ones((3, 2)), groups=np.array([0, 1, 0]))
        with pytest.raises(ValidationError):
            candidates.ranked_groups()


class TestScoreRanker:
    def test_rank_descending_by_score(self, rng):
        X = rng.normal(size=(50, 2))
        candidates = RankedCandidates(X=X, groups=rng.integers(0, 2, 50))
        ranked = ScoreRanker([1.0, 0.0]).rank(candidates)
        scores_in_order = ranked.scores[ranked.order]
        assert np.all(np.diff(scores_in_order) <= 1e-12)

    def test_dimension_mismatch(self, rng):
        with pytest.raises(ValidationError):
            ScoreRanker([1.0]).score(rng.normal(size=(5, 3)))

    def test_top_k(self, rng):
        X = rng.normal(size=(20, 2))
        candidates = RankedCandidates(X=X, groups=rng.integers(0, 2, 20))
        ranked = ScoreRanker([1.0, 1.0]).rank(candidates)
        assert ranked.top_k(5).shape == (5,)


class TestGenerator:
    def test_penalty_produces_underrepresentation(self):
        candidates, ranker = make_ranking_candidates(400, score_penalty=1.5, random_state=0)
        ranked = ranker.rank(candidates)
        groups_in_order = ranked.ranked_groups()
        pool_share = candidates.groups.mean()
        assert top_k_representation(groups_in_order, 40) < pool_share - 0.1

    def test_no_penalty_not_significantly_biased(self):
        from fairexp.fairness import ranking_binomial_pvalue

        p_values = []
        for seed in range(3):
            candidates, ranker = make_ranking_candidates(400, score_penalty=0.0,
                                                         random_state=seed)
            ranked = ranker.rank(candidates)
            p_values.append(ranking_binomial_pvalue(ranked.ranked_groups(), 60))
        # Without a score penalty the prefix composition is compatible with a
        # random draw for most seeds (no systematic under-representation).
        assert max(p_values) > 0.05

    def test_reproducible(self):
        a, _ = make_ranking_candidates(100, random_state=3)
        b, _ = make_ranking_candidates(100, random_state=3)
        assert np.array_equal(a.X, b.X)


class TestFairRerank:
    def test_prefix_constraint_met(self):
        candidates, ranker = make_ranking_candidates(300, score_penalty=2.0, random_state=0)
        ranked = ranker.rank(candidates)
        top = fair_topk_rerank(ranked, k=30, min_protected_share=0.4)
        share = np.mean(candidates.groups[top] == 1)
        assert share >= 0.4 - 1e-9

    def test_no_constraint_returns_original_prefix(self):
        candidates, ranker = make_ranking_candidates(100, random_state=0)
        ranked = ranker.rank(candidates)
        top = fair_topk_rerank(ranked, k=10, min_protected_share=0.0)
        assert np.array_equal(top, ranked.order[:10])

    def test_requires_ranked_candidates(self):
        candidates, _ = make_ranking_candidates(50, random_state=0)
        with pytest.raises(ValidationError):
            fair_topk_rerank(candidates, k=5, min_protected_share=0.3)
