"""Data-based explanations for fairness debugging (Gopher; Salimi et al. [63], Zhu et al. [83]).

Instead of explaining the model, these explanations point at the *training
data*: they search for patterns — conjunctions of predicates over the feature
values — such that removing (or relabeling) the training instances covered by
the pattern most reduces the model's unfairness.  The returned top-k patterns
are both causal-understanding artifacts ("this slice of the data drives the
disparity") and mitigation recipes ("clean or rebalance this slice").

Two influence estimators are available:

* ``"retrain"`` — exact: retrain the model without the pattern's rows;
* ``"influence"`` — first-order influence-function approximation (only for
  :class:`fairexp.models.LogisticRegression`), far cheaper on large data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..exceptions import ValidationError
from ..explanations.base import ExplainerInfo, ExplainerRegistry
from ..explanations.influence import influence_functions_logistic
from ..explanations.rules import Predicate, discretize_features, frequent_predicate_sets
from ..fairness.group_metrics import statistical_parity_difference
from ..models.logistic import LogisticRegression
from ..utils import sigmoid

__all__ = ["PatternExplanation", "DataExplanationResult", "GopherExplainer"]


@dataclass
class PatternExplanation:
    """One data pattern and its estimated effect on the fairness metric."""

    predicates: tuple[Predicate, ...]
    support: float
    n_rows: int
    unfairness_reduction: float
    new_unfairness: float
    interestingness: float

    def describe(self) -> str:
        """Human-readable one-line summary of the pattern."""
        clauses = " AND ".join(str(p) for p in self.predicates) or "TRUE"
        return (
            f"[{clauses}] support={self.support:.2f} "
            f"reduces |unfairness| by {self.unfairness_reduction:+.4f} "
            f"(new value {self.new_unfairness:+.4f})"
        )


@dataclass
class DataExplanationResult:
    """Top-k patterns plus the baseline unfairness they are measured against."""

    baseline_unfairness: float
    patterns: list[PatternExplanation]
    estimator: str
    meta: dict = field(default_factory=dict)

    def top(self, k: int = 3) -> list[PatternExplanation]:
        """The ``k`` highest-scoring pattern explanations."""
        return self.patterns[:k]


@ExplainerRegistry.register("gopher", capabilities=("fairness-explainer", "data-based"),
                            data_requirements=("labels",))
class GopherExplainer:
    """Search for training-data patterns responsible for model unfairness.

    Parameters
    ----------
    model_factory:
        Callable returning an unfitted model (used by the retraining
        estimator and for the final verification).
    metric:
        Group fairness metric ``metric(y_pred, sensitive) -> float``;
        the magnitude |metric| is what removal should reduce.
    n_bins, min_support, max_pattern_length:
        Pattern-mining granularity.
    estimator:
        ``"retrain"`` (exact) or ``"influence"`` (first-order approximation,
        LogisticRegression only).
    """

    info = ExplainerInfo(
        stage="post-hoc",
        access="white-box",
        agnostic=False,
        coverage="global",
        explanation_type="example",
        multiplicity="multiple",
    )

    def __init__(
        self,
        model_factory: Callable[[], object],
        *,
        metric: Callable[[np.ndarray, np.ndarray], float] | None = None,
        feature_names: Sequence[str] | None = None,
        n_bins: int = 3,
        min_support: float = 0.05,
        max_pattern_length: int = 2,
        estimator: str = "retrain",
        top_k: int = 5,
    ) -> None:
        if estimator not in ("retrain", "influence"):
            raise ValidationError(f"unknown estimator {estimator!r}")
        self.model_factory = model_factory
        self.metric = metric or statistical_parity_difference
        self.feature_names = feature_names
        self.n_bins = n_bins
        self.min_support = min_support
        self.max_pattern_length = max_pattern_length
        self.estimator = estimator
        self.top_k = top_k

    # ------------------------------------------------------------- helpers
    def _unfairness(self, model, X_eval, sensitive_eval) -> float:
        predictions = np.asarray(model.predict(X_eval))
        return float(self.metric(predictions, sensitive_eval))

    def _retrain_without(self, X, y, mask_remove, X_eval, sensitive_eval) -> float:
        keep = ~mask_remove
        if keep.sum() < 10 or len(np.unique(y[keep])) < 2:
            return np.nan
        model = self.model_factory()
        model.fit(X[keep], y[keep])
        return self._unfairness(model, X_eval, sensitive_eval)

    def _influence_estimate(
        self, model: LogisticRegression, X, y, mask_remove, X_eval, sensitive_eval
    ) -> float:
        """First-order estimate of the unfairness after removing the pattern's rows."""
        baseline = self._unfairness(model, X_eval, sensitive_eval)
        # Gradient of the (smoothed) parity metric w.r.t. [coef, intercept]:
        # use probabilities instead of hard predictions for differentiability.
        X_eval = np.asarray(X_eval, dtype=float)
        sensitive_eval = np.asarray(sensitive_eval)
        protected = sensitive_eval == 1
        probabilities = sigmoid(X_eval @ model.coef_ + model.intercept_)
        local_grad = probabilities * (1 - probabilities)
        design = np.hstack([X_eval, np.ones((X_eval.shape[0], 1))])
        grad_protected = (local_grad[protected][:, None] * design[protected]).mean(axis=0)
        grad_reference = (local_grad[~protected][:, None] * design[~protected]).mean(axis=0)
        metric_gradient = grad_protected - grad_reference

        influences = influence_functions_logistic(model, X, y, metric_gradient)
        # Removing a group of points ~ -sum of their upweighting influences.
        delta = -float(influences[mask_remove].sum()) / X.shape[0]
        return baseline + delta

    # ---------------------------------------------------------------- main
    def explain(
        self, X, y, sensitive, *, X_eval=None, sensitive_eval=None
    ) -> DataExplanationResult:
        """Return the top-k patterns whose removal most reduces |unfairness|."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=int)
        sensitive = np.asarray(sensitive)
        X_eval = X if X_eval is None else np.asarray(X_eval, dtype=float)
        sensitive_eval = sensitive if sensitive_eval is None else np.asarray(sensitive_eval)

        base_model = self.model_factory()
        base_model.fit(X, y)
        baseline = self._unfairness(base_model, X_eval, sensitive_eval)

        if self.estimator == "influence" and not isinstance(base_model, LogisticRegression):
            raise ValidationError("the influence estimator requires LogisticRegression")

        predicates = discretize_features(X, feature_names=self.feature_names, n_bins=self.n_bins)
        itemsets = frequent_predicate_sets(
            X, predicates, min_support=self.min_support, max_length=self.max_pattern_length
        )

        patterns: list[PatternExplanation] = []
        for itemset, mask in itemsets:
            if self.estimator == "retrain":
                new_value = self._retrain_without(X, y, mask, X_eval, sensitive_eval)
            else:
                new_value = self._influence_estimate(
                    base_model, X, y, mask, X_eval, sensitive_eval
                )
            if not np.isfinite(new_value):
                continue
            reduction = abs(baseline) - abs(new_value)
            support = float(mask.mean())
            # Interestingness favours large reductions achieved by small patterns.
            interestingness = reduction / max(support, 1e-9)
            patterns.append(
                PatternExplanation(
                    predicates=tuple(itemset),
                    support=support,
                    n_rows=int(mask.sum()),
                    unfairness_reduction=float(reduction),
                    new_unfairness=float(new_value),
                    interestingness=float(interestingness),
                )
            )

        patterns.sort(key=lambda p: -p.unfairness_reduction)
        return DataExplanationResult(
            baseline_unfairness=baseline,
            patterns=patterns[: self.top_k],
            estimator=self.estimator,
            meta={"n_candidate_patterns": len(itemsets)},
        )

    def verify_pattern(self, X, y, sensitive, pattern: PatternExplanation) -> float:
        """Retrain without the pattern's rows and return the achieved unfairness (exact check)."""
        X = np.asarray(X, dtype=float)
        mask = np.ones(X.shape[0], dtype=bool)
        for predicate in pattern.predicates:
            mask &= predicate.mask(X)
        return self._retrain_without(X, np.asarray(y), mask, X, np.asarray(sensitive))
