"""Burden: counterfactual-based fairness metric (CERTIFAI, Sharma et al. [72]).

The *burden* of a group is the average distance between its negatively
classified members and their counterfactuals,

    Burden(G) = (1/|G|) * sum_i distance(x_i, x_i'),

reflecting how much change the model demands from the group to reach the
favourable outcome.  A burden gap between the protected and reference groups
is a fairness-metric-enhancing explanation (goal "E") and simultaneously
explains *where* the model is harder to satisfy (goal "U").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..explanations.base import Counterfactual, ExplainerInfo, ExplainerRegistry
from ..explanations.counterfactual import BaseCounterfactualGenerator
from ..explanations.session import AuditSession
from ..fairness.groups import group_masks

__all__ = ["GroupBurden", "BurdenResult", "BurdenExplainer"]


@dataclass
class GroupBurden:
    """Burden statistics for one group."""

    group: int
    n_negative: int
    n_with_recourse: int
    burden: float
    distances: np.ndarray = field(repr=False)

    @property
    def coverage(self) -> float:
        """Fraction of negatively classified members for which a counterfactual was found."""
        if self.n_negative == 0:
            return 0.0
        return self.n_with_recourse / self.n_negative


@dataclass
class BurdenResult:
    """Burden for the protected and reference groups and their gap."""

    protected: GroupBurden
    reference: GroupBurden
    counterfactuals: dict[int, list[Counterfactual]] = field(repr=False, default_factory=dict)

    @property
    def gap(self) -> float:
        """Burden(protected) - Burden(reference); positive means the protected group pays more."""
        return self.protected.burden - self.reference.burden

    @property
    def ratio(self) -> float:
        """Burden(protected) / Burden(reference); 1.0 is parity."""
        if self.reference.burden == 0:
            return float("inf") if self.protected.burden > 0 else 1.0
        return self.protected.burden / self.reference.burden

    def as_dict(self) -> dict[str, float]:
        """The burden metrics as a plain JSON-serializable dict."""
        return {
            "burden_protected": self.protected.burden,
            "burden_reference": self.reference.burden,
            "burden_gap": self.gap,
            "burden_ratio": self.ratio,
            "coverage_protected": self.protected.coverage,
            "coverage_reference": self.reference.coverage,
        }


@ExplainerRegistry.register("burden", capabilities=("fairness-explainer", "counterfactual-based"))
class BurdenExplainer:
    """Compute per-group burden from counterfactual explanations.

    Parameters
    ----------
    generator:
        Any counterfactual generator from :mod:`fairexp.explanations`
        (the model and constraints travel with it).  Generation runs through
        the batched :class:`~fairexp.explanations.engine.CounterfactualEngine`,
        so one audit issues a handful of large ``model.predict`` batches
        instead of dozens of tiny per-instance calls.
    error_based:
        When ``False`` (parity fairness), counterfactuals are generated for
        *all* negatively classified members of each group.  When ``True``
        (error-based fairness), only false negatives (negatively classified
        members whose true label is favourable) are considered — this is the
        population the NAWB metric [73] amortizes over.
    session:
        An :class:`~fairexp.explanations.session.AuditSession` to share
        counterfactual results and predict batches with other audits of the
        same population (burden + NAWB + PreCoF through one session cost one
        engine pass).  When omitted, a private session is created around
        ``generator``.
    """

    info = ExplainerInfo(
        stage="post-hoc",
        access="black-box",
        agnostic=True,
        coverage="local",
        explanation_type="example",
        multiplicity="multiple",
    )

    def __init__(self, generator: BaseCounterfactualGenerator | None = None, *,
                 error_based: bool = False, session: AuditSession | None = None) -> None:
        # A private session is refit-safe: no predict memo, and its result
        # cache is dropped at the start of every explain().  A shared session
        # pins a frozen model instead and keeps results across audits.
        self.session, self._owns_session = AuditSession.ensure(generator, session)
        self.generator = self.session.generator
        self.engine = self.session.engine
        self.error_based = error_based

    def _selection_mask(self, predictions, y_true) -> np.ndarray:
        negative = predictions == 0
        if not self.error_based:
            return negative
        if y_true is None:
            raise ValueError("error_based burden requires ground-truth labels")
        return negative & (np.asarray(y_true) == 1)

    def explain(self, X, sensitive, *, y_true=None, protected_value=1) -> BurdenResult:
        """Return per-group burden on the given data."""
        X = np.asarray(X, dtype=float)
        sensitive = np.asarray(sensitive)
        if self._owns_session:
            self.session.reset_results()
        predictions = np.asarray(self.session.predict(X))
        selected = self._selection_mask(predictions, y_true)
        masks = group_masks(sensitive, protected_value=protected_value)

        per_group: dict[int, GroupBurden] = {}
        counterfactuals: dict[int, list[Counterfactual]] = {}
        for group_value, mask in ((1, masks.protected), (0, masks.reference)):
            member_idx = np.flatnonzero(mask & selected)
            generated = self.session.counterfactuals_for(X, member_idx)
            group_counterfactuals: list[Counterfactual] = [
                generated[i] for i in member_idx if i in generated
            ]
            distances = np.asarray(
                [counterfactual.distance for counterfactual in group_counterfactuals],
                dtype=float,
            )
            per_group[group_value] = GroupBurden(
                group=group_value,
                n_negative=int(member_idx.shape[0]),
                n_with_recourse=int(distances.shape[0]),
                burden=float(distances.mean()) if distances.size else 0.0,
                distances=distances,
            )
            counterfactuals[group_value] = group_counterfactuals

        return BurdenResult(
            protected=per_group[1], reference=per_group[0], counterfactuals=counterfactuals
        )
