"""Shared helpers for the benchmark harness.

Every benchmark wraps one experiment runner from :mod:`fairexp.experiments`,
records its headline numbers in ``benchmark.extra_info`` (so they appear in
the pytest-benchmark output next to the timings), and asserts the qualitative
*shape* claims listed in DESIGN.md / EXPERIMENTS.md.
"""

from __future__ import annotations


def record(benchmark, results: dict) -> dict:
    """Attach experiment results (minus long renders) to the benchmark record."""
    for key, value in results.items():
        if key == "rendered":
            continue
        benchmark.extra_info[key] = value
    return results
