"""Scaling *curves* for the E1/E3/E5 trajectories (1x → 10x → 100x).

``BENCH_E1_E2.json`` (from ``test_bench_burden.py``) records the standard
600-sample configuration; this module grows that into wall-time scaling
curves: a **10x** point (6000 samples, 800 audited rows) and a **100x**
point (60000 samples, 8000 audited rows) for E1, plus 10x points for E3
(PreCoF) and E5 (group counterfactuals).  Every point is appended to the
experiment's ``BENCH_<experiment>_XL.json`` trajectory with the active
kernel path stamped in (see ``conftest.record``), so curves from numba and
numpy-only environments stay comparable.

Two shape claims are asserted *across* curve points, not per run:

* predict **calls** grow with the number of search steps, not the number of
  audited rows — a 10x workload costs far fewer than 10x the predict calls
  (rows per call grow instead);
* wall time grows sub-quadratically in the row count: each 10x step in rows
  may cost at most ``MAX_STEP_GROWTH``x the previous point's wall time.
  Before the kernel layer the inner Python loops made the 100x point scale
  super-linearly in practice; the vectorized/compiled kernels keep the
  per-row cost flat.
"""

import time

from conftest import record

from fairexp.experiments import (
    run_e1_e2_burden_nawb,
    run_e3_precof,
    run_e5_group_counterfactuals,
)

SMALL = {"n_samples": 600, "audit_size": 80}
LARGE = {"n_samples": 6000, "audit_size": 800}
XLARGE = {"n_samples": 60000, "audit_size": 8000}

# One 10x step in rows may cost at most this factor in wall time.  Linear
# scaling is ~10x; the margin absorbs cache effects and CI timer noise while
# still rejecting the quadratic regime (a 10x step costing 100x).
MAX_STEP_GROWTH = 30.0
# Ratios of sub-second runs are noise; clamp the denominator.
MIN_TIMED_SECONDS = 0.05


def _timed(runner, **kwargs):
    """Run ``runner`` once, returning ``(results, wall_seconds)``."""
    start = time.perf_counter()
    results = runner(**kwargs)
    return results, time.perf_counter() - start


def test_e1_at_10x_samples(benchmark):
    small = run_e1_e2_burden_nawb(**SMALL)
    large = benchmark.pedantic(run_e1_e2_burden_nawb, kwargs=LARGE,
                               rounds=1, iterations=1)

    # The paper's qualitative claims hold at 10x scale.
    assert large["burden_gap_biased"] > 0.5
    assert large["nawb_gap_biased"] > 0.05
    assert abs(large["burden_gap_fair"]) < large["burden_gap_biased"] / 2

    # Lockstep batching: 10x rows must NOT cost 10x predict calls (the
    # whole point of the batched engine; calls scale with search steps).
    assert large["predict_calls_biased"] < 5 * small["predict_calls_biased"]
    assert large["predict_calls_biased"] < 200

    record(benchmark, {
        **{f"small_{key}": small[key]
           for key in ("predict_calls_biased", "burden_gap_biased",
                       "schedule_steps_biased", "schedule_draws_biased")},
        **{key: large[key] for key in large if "rendered" not in key},
        "scale_factor": LARGE["n_samples"] / SMALL["n_samples"],
        "predict_call_growth": (
            large["predict_calls_biased"] / max(small["predict_calls_biased"], 1)
        ),
    }, experiment="E1_E2_XL")


def test_e1_scaling_curve_to_100x(benchmark):
    """E1 wall time must scale sub-quadratically from 1x through 100x rows."""
    small, t_small = _timed(run_e1_e2_burden_nawb, **SMALL)
    large, t_large = _timed(run_e1_e2_burden_nawb, **LARGE)
    xl = benchmark.pedantic(run_e1_e2_burden_nawb, kwargs=XLARGE,
                            rounds=1, iterations=1)
    t_xl = benchmark.stats.stats.mean

    # The paper's qualitative claims survive at 100x scale.
    assert xl["burden_gap_biased"] > 0.5
    assert xl["nawb_gap_biased"] > 0.05
    assert abs(xl["burden_gap_fair"]) < xl["burden_gap_biased"] / 2

    # Predict-call flatness across the whole curve: 100x the rows costs a
    # bounded number of extra search steps, never 100x the calls.
    assert xl["predict_calls_biased"] < 5 * small["predict_calls_biased"]
    assert xl["predict_calls_biased"] < 250

    # Wall-time curve: each 10x step in rows stays well below quadratic
    # growth.  Asserted per step so a single pathological point fails even
    # when the other step is comfortably linear.
    assert t_large <= MAX_STEP_GROWTH * max(t_small, MIN_TIMED_SECONDS)
    assert t_xl <= MAX_STEP_GROWTH * max(t_large, MIN_TIMED_SECONDS)

    record(benchmark, {
        **{key: xl[key] for key in xl if "rendered" not in key},
        "scale_factor": XLARGE["n_samples"] / SMALL["n_samples"],
        "wall_time_1x_seconds": t_small,
        "wall_time_10x_seconds": t_large,
        "wall_time_100x_seconds": t_xl,
        "wall_time_step_growth_10x": t_large / max(t_small, MIN_TIMED_SECONDS),
        "wall_time_step_growth_100x": t_xl / max(t_large, MIN_TIMED_SECONDS),
        "predict_call_growth": (
            xl["predict_calls_biased"] / max(small["predict_calls_biased"], 1)
        ),
    }, experiment="E1_E2_XL")


def test_e3_scaling_curve_at_10x(benchmark):
    """E3 (PreCoF) at 10x rows: same bias findings, sub-quadratic wall time."""
    small, t_small = _timed(run_e3_precof, **SMALL)
    large = benchmark.pedantic(run_e3_precof, kwargs=LARGE,
                               rounds=1, iterations=1)
    t_large = benchmark.stats.stats.mean

    # Explicit and implicit (proxy) bias signals survive at scale.
    assert large["explicit_sensitive_change_rate"] > 0.1
    assert large["implicit_top_attribute"] in {
        "occupation_score", "hours_per_week", "education_years", "capital_gain",
    }
    assert large["implicit_top_gap"] > 0.1

    # Curve claims: predict calls and wall time both stay far below 10x.
    assert large["predict_calls_explicit"] < 5 * small["predict_calls_explicit"]
    assert t_large <= MAX_STEP_GROWTH * max(t_small, MIN_TIMED_SECONDS)

    record(benchmark, {
        **{key: large[key] for key in large if "rendered" not in key},
        "scale_factor": LARGE["n_samples"] / SMALL["n_samples"],
        "wall_time_1x_seconds": t_small,
        "wall_time_10x_seconds": t_large,
        "wall_time_step_growth_10x": t_large / max(t_small, MIN_TIMED_SECONDS),
        "predict_call_growth": (
            large["predict_calls_explicit"]
            / max(small["predict_calls_explicit"], 1)
        ),
    }, experiment="E3_XL")


def test_e5_scaling_curve_at_10x(benchmark):
    """E5 (group counterfactuals) at 10x rows: summaries hold, wall time sub-quadratic."""
    small, t_small = _timed(run_e5_group_counterfactuals,
                            n_samples=SMALL["n_samples"])
    large = benchmark.pedantic(run_e5_group_counterfactuals,
                               kwargs={"n_samples": LARGE["n_samples"]},
                               rounds=1, iterations=1)
    t_large = benchmark.stats.stats.mean

    # Group-level findings survive at scale.
    assert large["globe_cost_gap"] > 0.2
    assert 1 <= large["cftree_n_leaves"] <= 8
    assert large["recourse_set_coverage"] > 0.3

    # Curve claims: predict calls and wall time both stay far below 10x.
    assert large["predict_calls"] < 5 * small["predict_calls"]
    assert t_large <= MAX_STEP_GROWTH * max(t_small, MIN_TIMED_SECONDS)

    record(benchmark, {
        **{key: large[key] for key in large if "rendered" not in key},
        "scale_factor": LARGE["n_samples"] / SMALL["n_samples"],
        "wall_time_1x_seconds": t_small,
        "wall_time_10x_seconds": t_large,
        "wall_time_step_growth_10x": t_large / max(t_small, MIN_TIMED_SECONDS),
        "predict_call_growth": (
            large["predict_calls"] / max(small["predict_calls"], 1)
        ),
    }, experiment="E5_XL")
