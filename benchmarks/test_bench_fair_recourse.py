"""E7: equalizing recourse across groups [79] and fair causal recourse [80]."""

from conftest import record

from fairexp.experiments import run_e7_fair_recourse


def test_recourse_equalization_and_causal_recourse_fairness(benchmark):
    results = record(benchmark, benchmark.pedantic(
        run_e7_fair_recourse, kwargs={"n_samples": 600}, rounds=1, iterations=1,
    ), experiment="E7")
    # The unconstrained model leaves the protected group further from the
    # boundary; the recourse-regularized classifier shrinks that gap at a
    # bounded accuracy cost.
    assert results["recourse_gap_base"] > 0.2
    assert abs(results["recourse_gap_regularized"]) < results["recourse_gap_base"]
    assert results["accuracy_regularized"] > results["accuracy_base"] - 0.2
    # Fair causal recourse: flipping the sensitive attribute (with causal
    # propagation) would change the recourse cost for most audited individuals,
    # i.e. recourse is individually unfair under the biased model.
    assert results["causal_recourse_unfairness"] > 0.0
    assert results["causal_fraction_disadvantaged"] > 0.5
