"""Tests for FACTS [77], GLOBE-CE [75], counterfactual explanation trees [76]
and two-level recourse sets [74]."""

import numpy as np
import pytest

from fairexp.core import (
    Action,
    CounterfactualExplanationTree,
    FACTSExplainer,
    GlobeCEExplainer,
    RecourseSetExplainer,
)
from fairexp.explanations import ActionabilityConstraints


@pytest.fixture(scope="module")
def facts_setup(loan_data, loan_model):
    dataset, train, test = loan_data
    explainer = FACTSExplainer(
        loan_model, dataset.feature_names, dataset.sensitive_index, random_state=0
    )
    actions = explainer._candidate_actions(train.X, loan_model.predict(train.X))
    return dataset, train, test, loan_model, explainer, actions


class TestActions:
    def test_apply_sets_target_values(self):
        action = Action(changes=((1, 5.0), (2, 7.0)))
        X = np.zeros((3, 4))
        modified = action.apply(X)
        assert np.all(modified[:, 1] == 5.0)
        assert np.all(modified[:, 2] == 7.0)
        assert np.all(modified[:, 0] == 0.0)
        assert np.all(X == 0.0)  # original untouched

    def test_cost_is_scaled_l1(self):
        action = Action(changes=((0, 10.0),))
        X = np.array([[4.0, 0.0]])
        cost = action.cost(X, np.array([2.0, 1.0]))
        assert cost[0] == pytest.approx(3.0)

    def test_describe(self):
        action = Action(changes=((0, 1.0),))
        assert "income := 1" in action.describe(["income", "debt"])


class TestFACTS:
    def test_candidate_actions_exclude_sensitive(self, facts_setup):
        dataset, *_rest, actions = facts_setup
        for action in actions:
            assert all(feature != dataset.sensitive_index for feature, _ in action.changes)

    def test_global_audit_shows_bias_against_protected(self, facts_setup):
        dataset, _, test, _, explainer, _ = facts_setup
        result = explainer.explain(test.X, test.sensitive_values)
        assert result.global_audit.effectiveness_gap > 0.05
        assert not result.is_fair(tolerance=0.02)

    def test_effectiveness_values_are_rates(self, facts_setup):
        _, _, test, _, explainer, _ = facts_setup
        result = explainer.explain(test.X, test.sensitive_values)
        for audit in [result.global_audit, *result.subgroups]:
            assert 0.0 <= audit.effectiveness_protected <= 1.0
            assert 0.0 <= audit.effectiveness_reference <= 1.0
            assert audit.n_effective_actions_protected >= 0

    def test_subgroups_meet_min_size(self, facts_setup):
        _, _, test, _, explainer, _ = facts_setup
        result = explainer.explain(test.X, test.sensitive_values, min_group_size=5)
        for audit in result.subgroups:
            assert audit.n_protected >= 5
            assert audit.n_reference >= 5

    def test_top_biased_sorted(self, facts_setup):
        _, _, test, _, explainer, _ = facts_setup
        result = explainer.explain(test.X, test.sensitive_values)
        gaps = [audit.effectiveness_gap for audit in result.top_biased(5)]
        assert gaps == sorted(gaps, reverse=True)

    def test_describe_subgroup(self, facts_setup):
        _, _, test, _, explainer, _ = facts_setup
        result = explainer.explain(test.X, test.sensitive_values)
        if result.subgroups:
            text = result.subgroups[0].describe()
            assert "eff(G-)" in text


class TestGlobeCE:
    def test_direction_audit_shows_cost_gap(self, loan_data, loan_model):
        dataset, train, test = loan_data
        constraints = ActionabilityConstraints.from_feature_specs(dataset.features)
        explainer = GlobeCEExplainer(
            loan_model, train.X, constraints=constraints,
            feature_names=dataset.feature_names, random_state=0,
        )
        result = explainer.explain(test.X, test.sensitive_values)
        assert result.protected.coverage > 0.5
        assert result.reference.coverage > 0.5
        # The protected group needs larger multiples of the direction.
        assert result.cost_gap > 0.0

    def test_direction_respects_immutability(self, loan_data, loan_model):
        dataset, train, test = loan_data
        constraints = ActionabilityConstraints.from_feature_specs(dataset.features)
        explainer = GlobeCEExplainer(loan_model, train.X, constraints=constraints,
                                     feature_names=dataset.feature_names, random_state=0)
        result = explainer.explain(test.X, test.sensitive_values)
        assert result.direction.direction[dataset.sensitive_index] == pytest.approx(0.0)

    def test_direction_is_unit_norm(self, loan_data, loan_model):
        dataset, train, test = loan_data
        explainer = GlobeCEExplainer(loan_model, train.X, feature_names=dataset.feature_names,
                                     random_state=0)
        result = explainer.explain(test.X, test.sensitive_values)
        assert np.linalg.norm(result.direction.direction) == pytest.approx(1.0)

    def test_top_components_and_dict(self, loan_data, loan_model):
        dataset, train, test = loan_data
        explainer = GlobeCEExplainer(loan_model, train.X, feature_names=dataset.feature_names,
                                     random_state=0)
        result = explainer.explain(test.X, test.sensitive_values)
        top = result.direction.top_components(2)
        assert len(top) == 2
        assert set(result.as_dict()) >= {"coverage_gap", "cost_gap"}


class TestCounterfactualTree:
    def test_tree_assigns_actions_and_flips(self, facts_setup):
        dataset, _, test, model, _, actions = facts_setup
        tree = CounterfactualExplanationTree(
            model, actions, feature_names=dataset.feature_names, max_depth=2
        ).fit(test.X)
        audit = tree.audit(test.X, test.sensitive_values)
        assert audit.n_leaves >= 1
        assert audit.overall_validity > 0.3

    def test_validity_gap_reflects_recourse_bias(self, facts_setup):
        dataset, _, test, model, _, actions = facts_setup
        tree = CounterfactualExplanationTree(
            model, actions, feature_names=dataset.feature_names, max_depth=2
        ).fit(test.X)
        audit = tree.audit(test.X, test.sensitive_values)
        # With a uniform action per leaf, the protected group (further from the
        # boundary) flips less often or pays at least as much.
        assert audit.validity_gap >= -0.05 or audit.cost_gap >= -0.05

    def test_describe_lists_one_rule_per_leaf(self, facts_setup):
        dataset, _, test, model, _, actions = facts_setup
        tree = CounterfactualExplanationTree(
            model, actions, feature_names=dataset.feature_names, max_depth=1
        ).fit(test.X)
        audit = tree.audit(test.X, test.sensitive_values)
        assert len(tree.describe()) == audit.n_leaves

    def test_audit_before_fit_raises(self, facts_setup):
        dataset, _, test, model, _, actions = facts_setup
        tree = CounterfactualExplanationTree(model, actions)
        with pytest.raises(RuntimeError):
            tree.audit(test.X, test.sensitive_values)


class TestRecourseSets:
    def test_rules_have_positive_correctness(self, facts_setup):
        dataset, _, test, model, _, actions = facts_setup
        result = RecourseSetExplainer(
            model, actions, feature_names=dataset.feature_names,
            sensitive_index=dataset.sensitive_index, max_rules=3,
        ).explain(test.X, test.sensitive_values)
        assert len(result.rules) >= 1
        for rule in result.rules:
            assert rule.correctness > 0.0
            assert 0.0 <= rule.coverage <= 1.0

    def test_total_coverage_bounded(self, facts_setup):
        dataset, _, test, model, _, actions = facts_setup
        result = RecourseSetExplainer(
            model, actions, feature_names=dataset.feature_names,
            sensitive_index=dataset.sensitive_index,
        ).explain(test.X, test.sensitive_values)
        assert 0.0 <= result.total_coverage <= 1.0
        assert 0.0 <= result.coverage_protected <= 1.0

    def test_coverage_gap_against_protected(self, facts_setup):
        dataset, _, test, model, _, actions = facts_setup
        result = RecourseSetExplainer(
            model, actions, feature_names=dataset.feature_names,
            sensitive_index=dataset.sensitive_index,
        ).explain(test.X, test.sensitive_values)
        # The protected group is harder to cover with shared actions.
        assert result.coverage_gap >= -0.05

    def test_describe_readable(self, facts_setup):
        dataset, _, test, model, _, actions = facts_setup
        result = RecourseSetExplainer(
            model, actions, feature_names=dataset.feature_names,
            sensitive_index=dataset.sensitive_index,
        ).explain(test.X, test.sensitive_values)
        for line in result.describe():
            assert line.startswith("IF ")
