"""FX007 — no ``time.sleep`` in library code outside retry/backoff helpers.

A sleep on a library code path stalls every caller sharing the thread —
under the serving fleet that is a whole coalescing lane.  Deliberate
pacing belongs in a helper whose name says so (``*retry*``, ``*backoff*``,
``*poll*``, ``*wait*``, ``*sleep*``, ``*throttle*``), which both documents
the intent and gives the scheduler one place to patch in tests.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING

from ..engine import Rule
from .common import dotted_name, is_test_path

if TYPE_CHECKING:  # pragma: no cover - typing only
    from collections.abc import Iterable

    from ..engine import FileContext, Finding

_PACING_MARKERS = ("retry", "backoff", "poll", "wait", "sleep", "throttle")


class SleepRule(Rule):
    """Flag ``time.sleep`` outside named pacing helpers."""

    code = "FX007"
    summary = "time.sleep in library code outside retry/backoff helpers"
    node_types = (ast.Call,)

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        """Flag time.sleep calls whose enclosing functions are not pacing."""
        assert isinstance(node, ast.Call)
        if is_test_path(ctx.path):
            return
        if dotted_name(node.func) != "time.sleep":
            return
        current: ast.AST = node
        while True:
            function = ctx.enclosing_function(current)
            if function is None:
                break
            if any(marker in function.name.lower() for marker in _PACING_MARKERS):
                return
            current = function
        yield self.finding(
            ctx,
            node,
            "time.sleep() in library code; move the pause into a helper "
            "named for its pacing role (*retry*/*backoff*/*poll*/*wait*)",
        )
