"""Cross-validation and simple hyper-parameter search."""

from __future__ import annotations

from itertools import product
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from ..exceptions import ValidationError
from ..utils import check_random_state
from .base import BaseClassifier
from .metrics import accuracy_score

__all__ = ["k_fold_indices", "cross_val_score", "GridSearch"]


def k_fold_indices(
    n_samples: int, n_folds: int = 5, *, shuffle: bool = True, random_state=None
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Return a list of ``(train_idx, test_idx)`` pairs for k-fold cross-validation."""
    if n_folds < 2 or n_folds > n_samples:
        raise ValidationError("n_folds must be between 2 and n_samples")
    indices = np.arange(n_samples)
    if shuffle:
        indices = check_random_state(random_state).permutation(indices)
    folds = np.array_split(indices, n_folds)
    splits = []
    for i in range(n_folds):
        test_idx = folds[i]
        train_idx = np.concatenate([folds[j] for j in range(n_folds) if j != i])
        splits.append((train_idx, test_idx))
    return splits


def cross_val_score(
    model: BaseClassifier,
    X,
    y,
    *,
    n_folds: int = 5,
    scoring: Callable[[np.ndarray, np.ndarray], float] = accuracy_score,
    random_state=None,
) -> np.ndarray:
    """Return the per-fold score of ``model`` under k-fold cross-validation."""
    X = np.asarray(X, dtype=float)
    y = np.asarray(y)
    scores = []
    for train_idx, test_idx in k_fold_indices(len(y), n_folds, random_state=random_state):
        fold_model = model.clone()
        fold_model.fit(X[train_idx], y[train_idx])
        scores.append(scoring(y[test_idx], fold_model.predict(X[test_idx])))
    return np.asarray(scores)


class GridSearch:
    """Exhaustive search over a parameter grid with cross-validation.

    Parameters
    ----------
    model_factory:
        Callable that builds an unfitted model from keyword parameters.
    param_grid:
        Mapping from parameter name to the list of values to try.
    """

    def __init__(
        self,
        model_factory: Callable[..., BaseClassifier],
        param_grid: Mapping[str, Sequence],
        *,
        n_folds: int = 3,
        scoring: Callable[[np.ndarray, np.ndarray], float] = accuracy_score,
        random_state=None,
    ) -> None:
        self.model_factory = model_factory
        self.param_grid = dict(param_grid)
        self.n_folds = n_folds
        self.scoring = scoring
        self.random_state = random_state
        self.results_: list[dict] = []
        self.best_params_: dict | None = None
        self.best_score_: float = -np.inf
        self.best_model_: BaseClassifier | None = None

    def _iter_grid(self) -> Iterable[dict]:
        keys = sorted(self.param_grid)
        for values in product(*(self.param_grid[k] for k in keys)):
            yield dict(zip(keys, values))

    def fit(self, X, y) -> "GridSearch":
        """Cross-validate every parameter combination; keeps the best model."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        self.results_ = []
        for params in self._iter_grid():
            model = self.model_factory(**params)
            scores = cross_val_score(
                model, X, y, n_folds=self.n_folds, scoring=self.scoring,
                random_state=self.random_state,
            )
            mean_score = float(scores.mean())
            self.results_.append({"params": params, "mean_score": mean_score,
                                  "scores": scores.tolist()})
            if mean_score > self.best_score_:
                self.best_score_ = mean_score
                self.best_params_ = params
        self.best_model_ = self.model_factory(**self.best_params_).fit(X, y)
        return self
