"""Compiled hot-path kernels with runtime dispatch.

The engine's inner loops — candidate projection, hit-distance scoring, the
sparsifier's prefix-revert trial chains and its greedy feature ranking — are
the wall-time story of a large audit now that predict-call counts are
optimized.  This module concentrates those loops behind four kernels:

* :func:`batch_counterfactual_distance` — distances for many ``(x, x')``
  pairs in one call (replaces the per-hit Python list comprehension);
* :func:`project_candidates` — the actionability projection cascade over any
  stacked candidate tensor, with masked in-place passes instead of a chain
  of full-tensor ``np.where`` temporaries;
* :func:`build_prefix_revert_trials` — one instance's cumulative
  prefix-revert trial matrix in a single allocation (replaces the
  per-feature ``trial.copy()`` chain);
* :func:`rank_changed_features` — the sparsifier's greedy revert order for a
  whole batch of instances at once.

Each kernel has a vectorized NumPy reference implementation and an optional
`numba <https://numba.pydata.org>`_ ``@njit`` fast path, selected at runtime
by :func:`resolve_kernels`:

* the ``FAIREXP_KERNELS`` environment variable (``auto`` / ``numpy`` /
  ``numba``, default ``auto``: numba when importable, NumPy otherwise);
* the ``kernels=`` parameter on
  :class:`~fairexp.explanations.engine.CounterfactualEngine` /
  :class:`~fairexp.explanations.session.AuditSession`, which overrides the
  environment for one generator.

Requesting ``numba`` in an environment without it falls back to the NumPy
reference (with a one-time warning) rather than failing — the numpy-only
test environment runs the identical suite.

**Bitwise parity is the contract for the exact tiers.**  The ``numpy`` and
``numba`` kernel sets reproduce the pre-refactor loop implementations bit
for bit (asserted in ``tests/explanations/test_kernels.py``), which is why
the *exact* kernel choice is deliberately **excluded** from
``generator_config`` and hence from store fingerprints: numpy- and
numba-computed populations are interchangeable.
Three exactness notes worth knowing about:

* L1/L0 reductions use NumPy's pairwise-summation order; the numba path
  replicates that algorithm exactly for rows of up to 128 features and
  silently defers to the NumPy path beyond (reduction order would differ);
* L2 always runs on the NumPy path (batched BLAS dot products, bitwise-equal
  to the per-row ``np.linalg.norm`` the loops used; BLAS accumulation order
  cannot be reproduced in nopython code);
* :func:`rank_changed_features` keeps its (tiny, per-row) ``np.argsort`` on
  NumPy in both kernel sets so unstable-sort tie order never diverges — the
  numba set still vectorizes the magnitude/changed-mask computation.

**The opt-in ``turbo`` tier trades exactness for throughput.**  Selecting
``FAIREXP_KERNELS=turbo`` (or ``kernels="turbo"``) dispatches to
``@njit(fastmath=True, parallel=True)`` variants of all four kernels that
``prange`` over rows, drop the pairwise-summation replication and the
128-feature cap, and compile L2 instead of deferring to BLAS.  Outputs may
therefore differ from the exact tiers within the documented
:data:`TURBO_KERNEL_TOLERANCES` bounds, so — inverting the rule above for
this tier only — the resolved turbo tier **joins** ``generator_config`` and
store fingerprints: turbo-computed populations never alias exact ones.
When numba (or its parallel support) is absent the tier still resolves, to
a threaded-NumPy fallback set that is bitwise-equal to the exact ``numpy``
kernels but keeps the turbo name and fingerprint visibility.
"""

from __future__ import annotations

import os
import threading
import warnings
from typing import Callable

import numpy as np

from ..exceptions import ValidationError

__all__ = [
    "KernelSet",
    "TURBO_KERNEL_TOLERANCES",
    "TURBO_METRIC_ATOL",
    "TURBO_METRIC_RTOL",
    "active_kernel_info",
    "batch_counterfactual_distance",
    "build_prefix_revert_trials",
    "numba_parallel_supported",
    "numba_threading_layer",
    "numba_version",
    "project_candidates",
    "rank_changed_features",
    "resolve_kernels",
]

#: Largest feature count the numba reduction kernels handle themselves;
#: beyond it NumPy's pairwise summation recurses, and replicating that
#: bitwise is not worth it — the dispatcher defers such rows to NumPy.
NUMBA_MAX_REDUCE_FEATURES = 128

_VALID_CHOICES = ("auto", "numpy", "numba", "turbo")
_ISCLOSE_ATOL = 1e-8  # np.isclose defaults the legacy loops relied on
_ISCLOSE_RTOL = 1e-5

#: Documented per-kernel tolerance of the ``turbo`` tier relative to the
#: exact tiers, asserted in ``tests/explanations/test_kernels_turbo.py``.
#: Distances may drift by fastmath reassociation/reciprocal rewrites
#: (≤ rtol·|exact| + atol per row); projection and prefix-revert trials are
#: pure comparisons/copies, so they stay bitwise for finite inputs; the
#: greedy revert ranking must select the same changed-feature *set* per row,
#: though near-tie magnitudes may legally reorder.
TURBO_KERNEL_TOLERANCES: dict = {
    "batch_counterfactual_distance": {"rtol": 1e-6, "atol": 1e-9},
    "project_candidates": {"rtol": 0.0, "atol": 0.0},
    "build_prefix_revert_trials": {"rtol": 0.0, "atol": 0.0},
    "rank_changed_features": {"set_equal": True},
}

#: Documented audit-metric tolerance of the turbo tier: every audited E1
#: metric (hit rates, burden means/gaps, NAWB) must satisfy
#: ``|turbo - exact| <= TURBO_METRIC_ATOL + TURBO_METRIC_RTOL * |exact|``.
#: Kernel-level drift can flip which near-tied candidate a search keeps, so
#: the bound is deliberately wider than the per-kernel numeric tolerances.
TURBO_METRIC_ATOL = 0.05
TURBO_METRIC_RTOL = 0.25


def numba_version() -> str | None:
    """The installed numba version, or ``None`` when numba is absent."""
    try:
        import numba
    except Exception:
        return None
    return getattr(numba, "__version__", "unknown")


def numba_parallel_supported() -> bool:
    """Whether the fastmath+parallel ``turbo`` kernels can compile here.

    Definitive once the turbo tier has been resolved (the probe compile has
    run); before that, a cheap import check — numba present and its parallel
    ufunc machinery importable.  This backs the ``numba_parallel`` sweep
    resource that gates the ``kernels=turbo`` factor level.
    """
    kernels = _TURBO_STATE["kernels"]
    if kernels is not None:
        return bool(kernels)
    if numba_version() is None:
        return False
    try:
        from numba.np.ufunc import parallel  # noqa: F401
    except Exception:
        return False
    return True


def numba_threading_layer() -> str | None:
    """The numba threading layer backing parallel kernels, or ``None``.

    After the first parallel kernel has executed this is the layer that
    actually loaded (``tbb`` / ``omp`` / ``workqueue``); before that, the
    requested/configured layer name.  ``None`` when numba is absent — the
    benchmark harness stamps it into every ``BENCH_*.json`` record so perf
    trajectories stay comparable across tiers and thread backends.
    """
    try:
        import numba
    except Exception:
        return None
    try:
        return str(numba.threading_layer())
    except Exception:
        return str(getattr(numba.config, "THREADING_LAYER", "default"))


# ---------------------------------------------------------------------------
# NumPy reference kernels
# ---------------------------------------------------------------------------
def _sanitized_scale(scale, n_features: int) -> np.ndarray:
    """Per-feature scale with zeros replaced by 1 (ones when ``scale=None``).

    Dividing by 1.0 is a bitwise identity, so the no-scale case can share
    the scaled code path.
    """
    if scale is None:
        return np.ones(n_features, dtype=float)
    scale = np.asarray(scale, dtype=float).copy()
    scale[scale == 0] = 1.0
    return scale


def _np_batch_distance(X, candidates, *, scale=None, metric: str = "l1") -> np.ndarray:
    """Vectorized reference: one distance per candidate row.

    ``X`` is either ``(n, d)`` row-aligned with ``candidates`` or a single
    ``(d,)`` instance broadcast against every candidate.  Bitwise-equal to
    calling the scalar ``counterfactual_distance`` per row: L1/L0 reduce
    with NumPy's per-row pairwise summation (identical to the 1-D sum), L2
    uses batched BLAS dot products (identical to the 1-D ``np.linalg.norm``).
    """
    candidates = np.atleast_2d(np.asarray(candidates, dtype=float))
    X = np.asarray(X, dtype=float)
    if X.ndim == 1:
        X = X[None, :]
    delta = candidates - X
    if scale is not None:
        delta = delta / _sanitized_scale(scale, delta.shape[-1])
    if metric == "l1":
        return np.sum(np.abs(delta), axis=-1)
    if metric == "l2":
        # matmul's batched 1x1 products route through the same BLAS dot as
        # np.linalg.norm on a 1-D vector — np.sum(delta**2, axis=-1) would
        # NOT be bitwise-equal (pairwise summation vs. BLAS accumulation).
        return np.sqrt(np.matmul(delta[:, None, :], delta[:, :, None])[:, 0, 0])
    if metric == "l0":
        return np.sum(~np.isclose(delta, 0.0), axis=-1).astype(float)
    raise ValidationError(f"unknown metric {metric!r}")


def _np_project(x_original, candidates, *, immutable, lower, upper, monotone) -> np.ndarray:
    """Vectorized reference projection onto the feasible set.

    Same semantics (and bitwise-identical output) as the historical
    clip → ``np.where`` cascade, but the monotone/immutable passes write
    in-place through ``where=`` masks instead of allocating a full-tensor
    temporary per pass, and passes whose mask is empty are skipped entirely.
    """
    candidates = np.asarray(candidates, dtype=float)
    x_original = np.asarray(x_original, dtype=float)
    immutable = np.asarray(immutable, dtype=bool)
    monotone = np.asarray(monotone)
    lower = np.asarray(lower, dtype=float)
    upper = np.asarray(upper, dtype=float)
    lower = np.where(np.isnan(lower), -np.inf, lower)
    upper = np.where(np.isnan(upper), np.inf, upper)
    if np.isfinite(lower).any() or np.isfinite(upper).any():
        projected = np.clip(candidates, lower, upper)
    else:
        projected = candidates.copy()
    originals = np.broadcast_to(x_original, projected.shape)
    increasing = monotone == 1
    if increasing.any():
        np.maximum(projected, originals, out=projected, where=increasing)
    decreasing = monotone == -1
    if decreasing.any():
        np.minimum(projected, originals, out=projected, where=decreasing)
    if immutable.any():
        np.copyto(projected, originals, where=immutable)
    return projected


def _np_prefix_revert_trials(candidate, x_row, order, out=None) -> np.ndarray:
    """Cumulative prefix-revert trial matrix for one instance.

    Row ``j`` is ``candidate`` with features ``order[:j + 1]`` reverted to
    their original values — exactly the chain the sequential sparsifier
    builds with one ``trial.copy()`` per feature, produced here with a
    single allocation (or written into ``out``) and one column-slice
    assignment per reverted feature.
    """
    candidate = np.asarray(candidate, dtype=float)
    x_row = np.asarray(x_row, dtype=float)
    n_trials = len(order)
    if out is None:
        out = np.empty((n_trials, candidate.shape[0]), dtype=float)
    out[:] = candidate
    for j, column in enumerate(order):
        out[j:, column] = x_row[column]
    return out


def _np_rank_changed_features(X_rows, candidates, scale) -> list[np.ndarray]:
    """Greedy revert order for every instance of a batch.

    Per row: the indices of features where candidate and original differ
    (``~np.isclose``), sorted by scaled absolute delta — identical to the
    historical per-row loop, but the delta/magnitude/changed-mask arithmetic
    runs once over the whole batch.  The per-row ``argsort`` stays on the
    (few-element) feature subset so tie order matches the legacy loop
    exactly even though the default sort is unstable.
    """
    X_rows = np.atleast_2d(np.asarray(X_rows, dtype=float))
    candidates = np.atleast_2d(np.asarray(candidates, dtype=float))
    if candidates.shape[0] == 0:
        return []
    changed = ~np.isclose(candidates, X_rows)
    magnitudes = np.abs((candidates - X_rows) / np.asarray(scale, dtype=float))
    orders = []
    for k in range(candidates.shape[0]):
        columns = np.flatnonzero(changed[k])
        orders.append(columns[np.argsort(magnitudes[k, columns])])
    return orders


# ---------------------------------------------------------------------------
# numba fast path (compiled lazily, absent-dependency safe)
# ---------------------------------------------------------------------------
_NUMBA_STATE: dict = {"kernels": None}  # None = not tried, False = unavailable
_TURBO_STATE: dict = {"kernels": None}  # same protocol for the turbo tier
_NUMBA_LOCK = threading.Lock()
_warned_numba_missing = False
_warned_turbo_fallback = False


def _compile_numba_kernels():
    """Compile the ``@njit`` kernels once; ``False`` when numba is absent."""
    try:
        from numba import njit
    except Exception:
        return False

    @njit(cache=True)
    def pairwise_sum_block(values, n):  # pragma: no cover - compiled
        # NumPy's pairwise_sum for n <= 128: sequential below 8 elements,
        # otherwise eight partial accumulators combined as a balanced tree
        # plus a sequential remainder.  Replicating the order is what makes
        # the compiled L1 reduction bitwise-equal to np.sum.
        if n < 8:
            res = 0.0
            for i in range(n):
                res += values[i]
            return res
        r0 = values[0]
        r1 = values[1]
        r2 = values[2]
        r3 = values[3]
        r4 = values[4]
        r5 = values[5]
        r6 = values[6]
        r7 = values[7]
        i = 8
        while i < n - (n % 8):
            r0 += values[i]
            r1 += values[i + 1]
            r2 += values[i + 2]
            r3 += values[i + 3]
            r4 += values[i + 4]
            r5 += values[i + 5]
            r6 += values[i + 6]
            r7 += values[i + 7]
            i += 8
        res = ((r0 + r1) + (r2 + r3)) + ((r4 + r5) + (r6 + r7))
        while i < n:
            res += values[i]
            i += 1
        return res

    @njit(cache=True)
    def l1_distances(X, candidates, scale):  # pragma: no cover - compiled
        n, d = candidates.shape
        out = np.empty(n, dtype=np.float64)
        buffer = np.empty(d, dtype=np.float64)
        for i in range(n):
            for j in range(d):
                buffer[j] = abs((candidates[i, j] - X[i, j]) / scale[j])
            out[i] = pairwise_sum_block(buffer, d)
        return out

    @njit(cache=True)
    def l0_distances(X, candidates, scale):  # pragma: no cover - compiled
        # ~np.isclose(delta, 0.0): |delta| <= atol (rtol term vanishes at 0);
        # NaN/inf deltas compare False under <=, so they count as changed —
        # exactly np.isclose's behaviour.  Integer counting has no float
        # accumulation order, so no pairwise replication is needed.
        n, d = candidates.shape
        out = np.empty(n, dtype=np.float64)
        for i in range(n):
            count = 0
            for j in range(d):
                delta = (candidates[i, j] - X[i, j]) / scale[j]
                if not (abs(delta) <= 1e-8):
                    count += 1
            out[i] = float(count)
        return out

    @njit(cache=True)
    def project_rows(x_rows, candidates, immutable, lower, upper,
                     monotone):  # pragma: no cover - compiled
        # One fused elementwise pass: clip -> monotone -> immutable, the
        # same per-element result as the reference's staged masked passes.
        n, d = candidates.shape
        out = np.empty((n, d), dtype=np.float64)
        for i in range(n):
            for j in range(d):
                value = candidates[i, j]
                if value < lower[j]:
                    value = lower[j]
                if value > upper[j]:
                    value = upper[j]
                original = x_rows[i, j]
                if monotone[j] == 1 and original > value:
                    value = original
                elif monotone[j] == -1 and original < value:
                    value = original
                if immutable[j]:
                    value = original
                out[i, j] = value
        return out

    @njit(cache=True)
    def prefix_revert_trials(candidate, x_row, order, out):  # pragma: no cover
        n_trials = order.shape[0]
        d = candidate.shape[0]
        for j in range(n_trials):
            for column in range(d):
                out[j, column] = candidate[column]
        for j in range(n_trials):
            column = order[j]
            value = x_row[column]
            for t in range(j, n_trials):
                out[t, column] = value
        return out

    @njit(cache=True)
    def changed_magnitudes(X_rows, candidates, scale):  # pragma: no cover
        # np.isclose(a, b): |a - b| <= atol + rtol * |b| for finite pairs;
        # equal infinities are close, NaN never is.  The legacy loop used
        # the defaults, so they are hard-coded here.
        n, d = candidates.shape
        changed = np.empty((n, d), dtype=np.bool_)
        magnitudes = np.empty((n, d), dtype=np.float64)
        for i in range(n):
            for j in range(d):
                a = candidates[i, j]
                b = X_rows[i, j]
                delta = a - b
                if np.isfinite(a) and np.isfinite(b):
                    close = abs(delta) <= (1e-8 + 1e-5 * abs(b))
                else:
                    close = a == b
                changed[i, j] = not close
                magnitudes[i, j] = abs(delta / scale[j])
        return changed, magnitudes

    return {
        "pairwise_sum_block": pairwise_sum_block,
        "l1_distances": l1_distances,
        "l0_distances": l0_distances,
        "project_rows": project_rows,
        "prefix_revert_trials": prefix_revert_trials,
        "changed_magnitudes": changed_magnitudes,
    }


def _numba_kernels():
    """The compiled kernel table, or ``False`` when numba is unavailable."""
    kernels = _NUMBA_STATE["kernels"]
    if kernels is None:
        with _NUMBA_LOCK:
            kernels = _NUMBA_STATE["kernels"]
            if kernels is None:
                kernels = _compile_numba_kernels()
                _NUMBA_STATE["kernels"] = kernels
    return kernels


def _nb_batch_distance(X, candidates, *, scale=None, metric: str = "l1") -> np.ndarray:
    """Numba-dispatched distances; defers to NumPy where exactness demands.

    L2 (BLAS accumulation order) and rows wider than
    :data:`NUMBA_MAX_REDUCE_FEATURES` (recursive pairwise splits) stay on
    the NumPy reference so the compiled path never changes a bit.
    """
    candidates = np.ascontiguousarray(np.atleast_2d(np.asarray(candidates, dtype=float)))
    n, d = candidates.shape
    if metric == "l2" or d > NUMBA_MAX_REDUCE_FEATURES or n == 0:
        return _np_batch_distance(X, candidates, scale=scale, metric=metric)
    if metric not in ("l1", "l0"):
        raise ValidationError(f"unknown metric {metric!r}")
    kernels = _numba_kernels()
    X = np.asarray(X, dtype=float)
    if X.ndim == 1:
        X = np.broadcast_to(X, candidates.shape)
    X = np.ascontiguousarray(X)
    clean_scale = _sanitized_scale(scale, d)
    if metric == "l1":
        return kernels["l1_distances"](X, candidates, clean_scale)
    return kernels["l0_distances"](X, candidates, clean_scale)


def _nb_project(x_original, candidates, *, immutable, lower, upper, monotone) -> np.ndarray:
    """Numba-dispatched projection over the shapes the hot paths produce.

    Handles ``(n, c, d)`` tensors against ``(n, 1, d)`` originals (the
    lockstep wave), row-aligned 2-D pairs, one-original-many-candidates and
    single rows; anything more exotic falls back to the NumPy reference.
    """
    candidates_arr = np.asarray(candidates, dtype=float)
    x_arr = np.asarray(x_original, dtype=float)
    kernels = _numba_kernels()
    numpy_fallback = lambda: _np_project(  # noqa: E731 - local alias
        x_original, candidates, immutable=immutable, lower=lower,
        upper=upper, monotone=monotone,
    )
    if candidates_arr.ndim == 0 or candidates_arr.size == 0:
        return numpy_fallback()
    d = candidates_arr.shape[-1]
    if candidates_arr.ndim == 3 and x_arr.ndim == 3 \
            and x_arr.shape[0] == candidates_arr.shape[0] and x_arr.shape[1] == 1 \
            and x_arr.shape[2] == d:
        n, c, _ = candidates_arr.shape
        flat = np.ascontiguousarray(candidates_arr).reshape(n * c, d)
        x_rows = np.ascontiguousarray(np.repeat(x_arr[:, 0, :], c, axis=0))
    elif candidates_arr.ndim == 2 and x_arr.ndim == 1 and x_arr.shape[0] == d:
        flat = np.ascontiguousarray(candidates_arr)
        x_rows = np.ascontiguousarray(np.broadcast_to(x_arr, flat.shape))
    elif candidates_arr.ndim == 2 and x_arr.shape == candidates_arr.shape:
        flat = np.ascontiguousarray(candidates_arr)
        x_rows = np.ascontiguousarray(x_arr)
    elif candidates_arr.ndim == 1 and x_arr.ndim == 1 and x_arr.shape[0] == d:
        flat = np.ascontiguousarray(candidates_arr).reshape(1, d)
        x_rows = np.ascontiguousarray(x_arr).reshape(1, d)
    else:
        return numpy_fallback()
    lower_arr = np.asarray(lower, dtype=float)
    upper_arr = np.asarray(upper, dtype=float)
    lower_arr = np.ascontiguousarray(np.where(np.isnan(lower_arr), -np.inf, lower_arr))
    upper_arr = np.ascontiguousarray(np.where(np.isnan(upper_arr), np.inf, upper_arr))
    projected = kernels["project_rows"](
        x_rows, flat,
        np.ascontiguousarray(np.asarray(immutable, dtype=np.bool_)),
        lower_arr, upper_arr,
        np.ascontiguousarray(np.asarray(monotone, dtype=np.int64)),
    )
    return projected.reshape(candidates_arr.shape)


def _nb_prefix_revert_trials(candidate, x_row, order, out=None) -> np.ndarray:
    """Numba-dispatched prefix-revert trial construction."""
    candidate = np.ascontiguousarray(np.asarray(candidate, dtype=float))
    x_row = np.ascontiguousarray(np.asarray(x_row, dtype=float))
    order_arr = np.ascontiguousarray(np.asarray(order, dtype=np.int64))
    if out is None:
        out = np.empty((order_arr.shape[0], candidate.shape[0]), dtype=float)
    return _numba_kernels()["prefix_revert_trials"](candidate, x_row, order_arr, out)


def _nb_rank_changed_features(X_rows, candidates, scale) -> list[np.ndarray]:
    """Numba-dispatched greedy revert ordering.

    The changed-mask / magnitude arithmetic is compiled; the per-row subset
    ``argsort`` stays on NumPy in both kernel sets so unstable-sort tie
    order can never diverge between paths.
    """
    X_rows = np.ascontiguousarray(np.atleast_2d(np.asarray(X_rows, dtype=float)))
    candidates = np.ascontiguousarray(np.atleast_2d(np.asarray(candidates, dtype=float)))
    if candidates.shape[0] == 0:
        return []
    changed, magnitudes = _numba_kernels()["changed_magnitudes"](
        X_rows, candidates,
        np.ascontiguousarray(np.asarray(scale, dtype=float)),
    )
    orders = []
    for k in range(candidates.shape[0]):
        columns = np.flatnonzero(changed[k])
        orders.append(columns[np.argsort(magnitudes[k, columns])])
    return orders


# ---------------------------------------------------------------------------
# turbo tier: fastmath + parallel numba kernels (opt-in, tolerance-bound)
# ---------------------------------------------------------------------------
_METRIC_CODES = {"l1": 0, "l2": 1, "l0": 2}


def _compile_turbo_kernels():
    """Compile the fastmath+parallel kernels once; ``False`` when unavailable.

    Unlike the exact tier, failure here includes numba-present-but-parallel-
    unsupported: each kernel is probe-executed on tiny inputs so ``parallel=
    True`` lowering errors surface now (as ``False``) instead of at first
    real dispatch.
    """
    try:
        from numba import njit, prange
    except Exception:
        return False

    @njit(cache=True, fastmath=True, parallel=True)
    def distances(X, candidates, scale, metric_code):  # pragma: no cover
        # No pairwise-summation replication, no feature cap, L2 compiled:
        # fastmath may reassociate the per-row reduction and rewrite the
        # divisions, which is exactly the drift TURBO_KERNEL_TOLERANCES
        # bounds.
        n, d = candidates.shape
        out = np.empty(n, dtype=np.float64)
        for i in prange(n):
            if metric_code == 0:
                acc = 0.0
                for j in range(d):
                    acc += abs((candidates[i, j] - X[i, j]) / scale[j])
                out[i] = acc
            elif metric_code == 1:
                acc = 0.0
                for j in range(d):
                    delta = (candidates[i, j] - X[i, j]) / scale[j]
                    acc += delta * delta
                out[i] = np.sqrt(acc)
            else:
                count = 0
                for j in range(d):
                    delta = (candidates[i, j] - X[i, j]) / scale[j]
                    if not (abs(delta) <= 1e-8):
                        count += 1
                out[i] = float(count)
        return out

    @njit(cache=True, fastmath=True, parallel=True)
    def project_rows(x_rows, candidates, immutable, lower, upper,
                     monotone):  # pragma: no cover - compiled
        # Comparisons and copies only — no accumulation — so this stays
        # bitwise-equal to the exact projection for finite inputs even
        # under fastmath.
        n, d = candidates.shape
        out = np.empty((n, d), dtype=np.float64)
        for i in prange(n):
            for j in range(d):
                value = candidates[i, j]
                if value < lower[j]:
                    value = lower[j]
                if value > upper[j]:
                    value = upper[j]
                original = x_rows[i, j]
                if monotone[j] == 1 and original > value:
                    value = original
                elif monotone[j] == -1 and original < value:
                    value = original
                if immutable[j]:
                    value = original
                out[i, j] = value
        return out

    @njit(cache=True, fastmath=True, parallel=True)
    def prefix_revert_trials(candidate, x_row, order, out):  # pragma: no cover
        # Each trial row is independent under prange: copy the candidate,
        # then revert the first t+1 ordered features.  Pure copies — bitwise.
        n_trials = order.shape[0]
        d = candidate.shape[0]
        for t in prange(n_trials):
            for column in range(d):
                out[t, column] = candidate[column]
            for j in range(t + 1):
                reverted = order[j]
                out[t, reverted] = x_row[reverted]
        return out

    @njit(cache=True, fastmath=True, parallel=True)
    def changed_magnitudes(X_rows, candidates, scale):  # pragma: no cover
        # Same isclose semantics as the exact kernel; fastmath division may
        # drift a magnitude by an ulp, which can legally reorder near-tie
        # revert ranks (the set of changed features is what the tolerance
        # contract pins down).
        n, d = candidates.shape
        changed = np.empty((n, d), dtype=np.bool_)
        magnitudes = np.empty((n, d), dtype=np.float64)
        for i in prange(n):
            for j in range(d):
                a = candidates[i, j]
                b = X_rows[i, j]
                delta = a - b
                if np.isfinite(a) and np.isfinite(b):
                    close = abs(delta) <= (1e-8 + 1e-5 * abs(b))
                else:
                    close = a == b
                changed[i, j] = not close
                magnitudes[i, j] = abs(delta / scale[j])
        return changed, magnitudes

    try:
        probe_X = np.zeros((4, 3))
        probe_C = np.ones((4, 3))
        probe_scale = np.ones(3)
        distances(probe_X, probe_C, probe_scale, 0)
        project_rows(probe_X, probe_C, np.zeros(3, dtype=np.bool_),
                     np.full(3, -np.inf), np.full(3, np.inf),
                     np.zeros(3, dtype=np.int64))
        prefix_revert_trials(np.ones(3), np.zeros(3),
                             np.arange(2, dtype=np.int64), np.empty((2, 3)))
        changed_magnitudes(probe_X, probe_C, probe_scale)
    except Exception:
        return False

    return {
        "distances": distances,
        "project_rows": project_rows,
        "prefix_revert_trials": prefix_revert_trials,
        "changed_magnitudes": changed_magnitudes,
    }


def _turbo_kernels():
    """The compiled turbo table, or ``False`` when parallel numba is unavailable."""
    kernels = _TURBO_STATE["kernels"]
    if kernels is None:
        with _NUMBA_LOCK:
            kernels = _TURBO_STATE["kernels"]
            if kernels is None:
                kernels = _compile_turbo_kernels()
                _TURBO_STATE["kernels"] = kernels
    return kernels


def _tb_batch_distance(X, candidates, *, scale=None, metric: str = "l1") -> np.ndarray:
    """Turbo distances: fastmath + prange, no feature cap, compiled L2."""
    if metric not in _METRIC_CODES:
        raise ValidationError(f"unknown metric {metric!r}")
    candidates = np.ascontiguousarray(np.atleast_2d(np.asarray(candidates, dtype=float)))
    n, d = candidates.shape
    kernels = _turbo_kernels()
    if not kernels or n == 0:
        return _np_batch_distance(X, candidates, scale=scale, metric=metric)
    X = np.asarray(X, dtype=float)
    if X.ndim == 1:
        X = np.broadcast_to(X, candidates.shape)
    X = np.ascontiguousarray(X)
    return kernels["distances"](
        X, candidates, _sanitized_scale(scale, d), _METRIC_CODES[metric]
    )


def _tb_project(x_original, candidates, *, immutable, lower, upper, monotone) -> np.ndarray:
    """Turbo projection: the exact numba shape dispatch over the prange kernel."""
    candidates_arr = np.asarray(candidates, dtype=float)
    x_arr = np.asarray(x_original, dtype=float)
    kernels = _turbo_kernels()
    numpy_fallback = lambda: _np_project(  # noqa: E731 - local alias
        x_original, candidates, immutable=immutable, lower=lower,
        upper=upper, monotone=monotone,
    )
    if not kernels or candidates_arr.ndim == 0 or candidates_arr.size == 0:
        return numpy_fallback()
    d = candidates_arr.shape[-1]
    if candidates_arr.ndim == 3 and x_arr.ndim == 3 \
            and x_arr.shape[0] == candidates_arr.shape[0] and x_arr.shape[1] == 1 \
            and x_arr.shape[2] == d:
        n, c, _ = candidates_arr.shape
        flat = np.ascontiguousarray(candidates_arr).reshape(n * c, d)
        x_rows = np.ascontiguousarray(np.repeat(x_arr[:, 0, :], c, axis=0))
    elif candidates_arr.ndim == 2 and x_arr.ndim == 1 and x_arr.shape[0] == d:
        flat = np.ascontiguousarray(candidates_arr)
        x_rows = np.ascontiguousarray(np.broadcast_to(x_arr, flat.shape))
    elif candidates_arr.ndim == 2 and x_arr.shape == candidates_arr.shape:
        flat = np.ascontiguousarray(candidates_arr)
        x_rows = np.ascontiguousarray(x_arr)
    elif candidates_arr.ndim == 1 and x_arr.ndim == 1 and x_arr.shape[0] == d:
        flat = np.ascontiguousarray(candidates_arr).reshape(1, d)
        x_rows = np.ascontiguousarray(x_arr).reshape(1, d)
    else:
        return numpy_fallback()
    lower_arr = np.asarray(lower, dtype=float)
    upper_arr = np.asarray(upper, dtype=float)
    lower_arr = np.ascontiguousarray(np.where(np.isnan(lower_arr), -np.inf, lower_arr))
    upper_arr = np.ascontiguousarray(np.where(np.isnan(upper_arr), np.inf, upper_arr))
    projected = kernels["project_rows"](
        x_rows, flat,
        np.ascontiguousarray(np.asarray(immutable, dtype=np.bool_)),
        lower_arr, upper_arr,
        np.ascontiguousarray(np.asarray(monotone, dtype=np.int64)),
    )
    return projected.reshape(candidates_arr.shape)


def _tb_prefix_revert_trials(candidate, x_row, order, out=None) -> np.ndarray:
    """Turbo prefix-revert trials: independent rows under prange."""
    kernels = _turbo_kernels()
    if not kernels:
        return _np_prefix_revert_trials(candidate, x_row, order, out)
    candidate = np.ascontiguousarray(np.asarray(candidate, dtype=float))
    x_row = np.ascontiguousarray(np.asarray(x_row, dtype=float))
    order_arr = np.ascontiguousarray(np.asarray(order, dtype=np.int64))
    if out is None:
        out = np.empty((order_arr.shape[0], candidate.shape[0]), dtype=float)
    return kernels["prefix_revert_trials"](candidate, x_row, order_arr, out)


def _tb_rank_changed_features(X_rows, candidates, scale) -> list[np.ndarray]:
    """Turbo greedy revert ordering (prange magnitudes, NumPy argsort)."""
    kernels = _turbo_kernels()
    if not kernels:
        return _np_rank_changed_features(X_rows, candidates, scale)
    X_rows = np.ascontiguousarray(np.atleast_2d(np.asarray(X_rows, dtype=float)))
    candidates = np.ascontiguousarray(np.atleast_2d(np.asarray(candidates, dtype=float)))
    if candidates.shape[0] == 0:
        return []
    changed, magnitudes = kernels["changed_magnitudes"](
        X_rows, candidates,
        np.ascontiguousarray(np.asarray(scale, dtype=float)),
    )
    orders = []
    for k in range(candidates.shape[0]):
        columns = np.flatnonzero(changed[k])
        orders.append(columns[np.argsort(magnitudes[k, columns])])
    return orders


# ---------------------------------------------------- turbo numba-less fallback
#: Row count below which the threaded fallback stays single-threaded —
#: thread handoff costs more than it saves on small batches.
_TURBO_FALLBACK_MIN_ROWS = 4096


def _tf_batch_distance(X, candidates, *, scale=None, metric: str = "l1") -> np.ndarray:
    """Threaded-NumPy turbo fallback distances.

    Splits the (row-independent) batch across a small thread pool and runs
    the exact NumPy reference per contiguous chunk, so the result is
    bitwise-equal to the exact ``numpy`` kernel while large batches overlap
    NumPy's GIL-releasing inner loops across cores.
    """
    candidates = np.atleast_2d(np.asarray(candidates, dtype=float))
    X_arr = np.asarray(X, dtype=float)
    if X_arr.ndim == 1:
        X_arr = np.broadcast_to(X_arr, candidates.shape)
    n = candidates.shape[0]
    workers = min(4, os.cpu_count() or 1)
    if workers < 2 or n < _TURBO_FALLBACK_MIN_ROWS:
        return _np_batch_distance(X_arr, candidates, scale=scale, metric=metric)
    from .pool import ExecutorPool

    out = np.empty(n, dtype=float)
    chunk = -(-n // workers)
    bounds = [(start, min(start + chunk, n)) for start in range(0, n, chunk)]

    def run_chunk(span):
        start, stop = span
        out[start:stop] = _np_batch_distance(
            X_arr[start:stop], candidates[start:stop], scale=scale, metric=metric
        )

    with ExecutorPool(max_workers=len(bounds)) as pool:
        pool.map("thread", run_chunk, bounds)
    return out



class KernelSet:
    """One resolved set of hot-path kernels (immutable once constructed).

    Attributes
    ----------
    name:
        ``"numpy"``, ``"numba"`` or ``"turbo"`` — the path that actually
        runs (a numba request in a numba-less environment resolves to the
        ``"numpy"`` set, so the name is always truthful; a turbo request
        always resolves to a set *named* ``turbo``, compiled or fallback).
    tier:
        ``"exact"`` (bitwise-parity contract, fingerprint-invariant) or
        ``"turbo"`` (tolerance contract, fingerprint-visible).
    fingerprint_token:
        ``None`` for exact tiers — they never reach store fingerprints.
        For turbo sets, the string folded into ``generator_config`` /
        population fingerprints; it also distinguishes the compiled
        fastmath path from the threaded-NumPy fallback, whose numerics
        differ.
    batch_counterfactual_distance, project_candidates,
    build_prefix_revert_trials, rank_changed_features:
        The four kernels — bitwise-equal across exact sets,
        tolerance-bound (:data:`TURBO_KERNEL_TOLERANCES`) for turbo.
    """

    __slots__ = ("name", "tier", "fingerprint_token",
                 "batch_counterfactual_distance", "project_candidates",
                 "build_prefix_revert_trials", "rank_changed_features")

    def __init__(self, name: str, distance: Callable, project: Callable,
                 prefix_trials: Callable, rank_changed: Callable, *,
                 tier: str = "exact", fingerprint_token: str | None = None) -> None:
        self.name = name
        self.tier = tier
        self.fingerprint_token = fingerprint_token
        self.batch_counterfactual_distance = distance
        self.project_candidates = project
        self.build_prefix_revert_trials = prefix_trials
        self.rank_changed_features = rank_changed

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        """Short identity, e.g. ``KernelSet('numba')``."""
        if self.tier == "exact":
            return f"KernelSet({self.name!r})"
        return f"KernelSet({self.name!r}, tier={self.tier!r})"


_NUMPY_SET = KernelSet("numpy", _np_batch_distance, _np_project,
                       _np_prefix_revert_trials, _np_rank_changed_features)
_NUMBA_SET = KernelSet("numba", _nb_batch_distance, _nb_project,
                       _nb_prefix_revert_trials, _nb_rank_changed_features)
_TURBO_SET = KernelSet(
    "turbo", _tb_batch_distance, _tb_project,
    _tb_prefix_revert_trials, _tb_rank_changed_features,
    tier="turbo",
    fingerprint_token=f"turbo:numba-fastmath-parallel:{numba_version()}",
)
_TURBO_FALLBACK_SET = KernelSet(
    "turbo", _tf_batch_distance, _np_project,
    _np_prefix_revert_trials, _np_rank_changed_features,
    tier="turbo",
    fingerprint_token="turbo:numpy-threaded",
)


def resolve_kernels(choice=None) -> KernelSet:
    """Resolve a kernel choice to the :class:`KernelSet` that will run.

    ``choice`` is ``None`` (consult the ``FAIREXP_KERNELS`` environment
    variable, default ``auto``), one of ``"auto"`` / ``"numpy"`` /
    ``"numba"`` / ``"turbo"``, or an already-resolved :class:`KernelSet`
    (returned as-is).  ``auto`` picks numba exactly when it is importable
    and never selects turbo (the approximate tier is strictly opt-in); an
    explicit ``numba`` request without the dependency falls back to the
    NumPy reference with a one-time warning instead of failing, and an
    explicit ``turbo`` request without parallel numba falls back (also
    warning once) to the threaded-NumPy turbo set — the tier name always
    resolves.
    """
    global _warned_numba_missing, _warned_turbo_fallback
    if isinstance(choice, KernelSet):
        return choice
    if choice is None:
        choice = os.environ.get("FAIREXP_KERNELS", "auto") or "auto"
    choice = str(choice).lower()
    if choice not in _VALID_CHOICES:
        raise ValidationError(
            f"kernels must be one of {_VALID_CHOICES}, got {choice!r}"
        )
    if choice == "numpy":
        return _NUMPY_SET
    if choice == "turbo":
        if _turbo_kernels():
            return _TURBO_SET
        if not _warned_turbo_fallback:
            _warned_turbo_fallback = True
            warnings.warn(
                "FAIREXP_KERNELS/kernels= requested 'turbo' but numba with "
                "parallel support is not available; falling back to the "
                "threaded-NumPy turbo set (bitwise-equal to the exact numpy "
                "kernels, still fingerprinted as a turbo tier)",
                RuntimeWarning,
                stacklevel=2,
            )
        return _TURBO_FALLBACK_SET
    if _numba_kernels():
        return _NUMBA_SET
    if choice == "numba" and not _warned_numba_missing:
        _warned_numba_missing = True
        warnings.warn(
            "FAIREXP_KERNELS/kernels= requested 'numba' but numba is not "
            "installed; falling back to the (bitwise-identical) NumPy "
            "reference kernels",
            RuntimeWarning,
            stacklevel=2,
        )
    return _NUMPY_SET


def active_kernel_info(choice=None) -> dict[str, str]:
    """The kernel path a given choice resolves to, for records and stats.

    Returns ``{"kernel_path": "numpy" | "numba" | "turbo", "kernel_tier":
    "exact" | "turbo", "kernel_numba_version": <numba version> | "numpy"}``
    — the fields the benchmark harness stamps into every ``BENCH_*.json``
    trajectory point so perf curves stay comparable across environments.
    ``kernel_numba_version`` reports ``"numpy"`` whenever the resolved set
    runs on the NumPy reference (including the threaded turbo fallback).
    """
    kernels = resolve_kernels(choice)
    version = numba_version()
    compiled = kernels is _NUMBA_SET or kernels is _TURBO_SET
    return {
        "kernel_path": kernels.name,
        "kernel_tier": kernels.tier,
        "kernel_numba_version": version if compiled and version else "numpy",
    }


# ------------------------------------------------------- module-level kernels
def batch_counterfactual_distance(X, candidates, *, scale=None, metric: str = "l1",
                                  kernels=None) -> np.ndarray:
    """Distances between rows of ``X`` and ``candidates`` in one call.

    ``X`` is ``(n, d)`` aligned with ``candidates`` or a single ``(d,)``
    instance; returns shape ``(n,)``.  Bitwise-equal to the scalar
    :func:`~fairexp.explanations.counterfactual.counterfactual_distance`
    applied per row.  ``kernels`` picks the dispatch set
    (see :func:`resolve_kernels`).
    """
    return resolve_kernels(kernels).batch_counterfactual_distance(
        X, candidates, scale=scale, metric=metric
    )


def project_candidates(x_original, candidates, *, immutable, lower, upper,
                       monotone, kernels=None) -> np.ndarray:
    """Project stacked candidates onto the feasible set (clip → monotone → freeze).

    Accepts any ``(..., d)`` candidate tensor with ``x_original``
    broadcastable against it — the dispatch target of
    :meth:`~fairexp.explanations.counterfactual.ActionabilityConstraints.project`.
    """
    return resolve_kernels(kernels).project_candidates(
        x_original, candidates, immutable=immutable, lower=lower,
        upper=upper, monotone=monotone,
    )


def build_prefix_revert_trials(candidate, x_row, order, out=None, *,
                               kernels=None) -> np.ndarray:
    """One instance's cumulative prefix-revert trial matrix, one allocation.

    Row ``j`` of the result is ``candidate`` with features ``order[:j + 1]``
    reverted to ``x_row``'s values; ``out`` (shape ``(len(order), d)``)
    avoids even the single allocation when the caller stacks trials itself.
    """
    return resolve_kernels(kernels).build_prefix_revert_trials(
        candidate, x_row, order, out
    )


def rank_changed_features(X_rows, candidates, scale, *, kernels=None) -> list[np.ndarray]:
    """Greedy revert order (changed features by scaled magnitude) per instance."""
    return resolve_kernels(kernels).rank_changed_features(X_rows, candidates, scale)
