"""FX001 — executors are constructed only inside ``explanations/pool.py``.

PR 7 centralised executor lifecycles in :class:`ExecutorPool` (reuse,
generation-tagged leases, shared-pool refcounting); ad-hoc
``ThreadPoolExecutor``/``ProcessPoolExecutor``/``multiprocessing.Pool``
construction elsewhere silently bypasses the pool's bookkeeping and the
serving backpressure that sits on top of it.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING

from ..engine import Rule
from .common import dotted_name, is_pool_module, is_test_path

if TYPE_CHECKING:  # pragma: no cover - typing only
    from collections.abc import Iterable

    from ..engine import FileContext, Finding

_EXECUTOR_NAMES = frozenset({"ThreadPoolExecutor", "ProcessPoolExecutor"})
_MULTIPROCESSING_MODULES = frozenset({"multiprocessing", "mp"})


class ExecutorConstructionRule(Rule):
    """Flag executor construction outside the sanctioned pool module."""

    code = "FX001"
    summary = (
        "ThreadPoolExecutor/ProcessPoolExecutor/multiprocessing.Pool may "
        "only be constructed in explanations/pool.py (use ExecutorPool)"
    )
    node_types = (ast.Call, ast.ImportFrom)

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        """Flag executor constructor calls and multiprocessing.Pool imports."""
        if is_pool_module(ctx.path) or is_test_path(ctx.path):
            return
        if isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module.split(".")[0] == "multiprocessing" and any(
                alias.name == "Pool" for alias in node.names
            ):
                yield self.finding(
                    ctx,
                    node,
                    "multiprocessing.Pool imported outside explanations/"
                    "pool.py; route work through ExecutorPool",
                )
            return
        assert isinstance(node, ast.Call)
        name = dotted_name(node.func)
        if name is None:
            return
        leaf = name.rsplit(".", 1)[-1]
        if leaf in _EXECUTOR_NAMES:
            yield self.finding(
                ctx,
                node,
                f"{leaf}() constructed outside explanations/pool.py; "
                "route work through ExecutorPool",
            )
        elif leaf == "Pool" and "." in name:
            head = name.split(".", 1)[0]
            if head in _MULTIPROCESSING_MODULES or "multiprocessing" in name:
                yield self.finding(
                    ctx,
                    node,
                    "multiprocessing.Pool() constructed outside explanations/"
                    "pool.py; route work through ExecutorPool",
                )
