"""Shared helpers for the benchmark harness.

Every benchmark wraps one experiment runner from :mod:`fairexp.experiments`,
records its headline numbers in ``benchmark.extra_info`` (so they appear in
the pytest-benchmark output next to the timings), and asserts the qualitative
*shape* claims listed in DESIGN.md / EXPERIMENTS.md.

Counterfactual-heavy benchmarks additionally record the number of
``model.predict`` invocations (via
:class:`fairexp.explanations.BatchModelAdapter`), so the BENCH_*.json
trajectory tracks predict-call reduction and not just wall time.

Every record additionally carries the active hot-path kernel selection
(``kernel_path``, ``kernel_tier`` and ``kernel_numba_version`` via
:func:`fairexp.explanations.active_kernel_info`, plus the numba
``kernel_threading_layer`` backing parallel kernels), so wall-time
trajectories recorded on numba-equipped, numpy-only and turbo-tier
environments stay comparable.

Passing ``experiment="E1_E2"`` (or any display-item id) to :func:`record`
appends one trajectory point — wall time, predict-call counters and the
headline numbers — to ``benchmarks/artifacts/BENCH_<experiment>.json``.
Each run appends, so the file accumulates the per-run trajectory the ROADMAP
asks for; CI uploads the directory as a build artifact.  Set
``FAIREXP_BENCH_DIR`` to redirect the artifact directory.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from fairexp.explanations import active_kernel_info
from fairexp.explanations.kernels import numba_threading_layer

ARTIFACT_DIR = Path(os.environ.get("FAIREXP_BENCH_DIR",
                                   Path(__file__).resolve().parent / "artifacts"))
MAX_TRAJECTORY_POINTS = 1000


def _scalar(value):
    """Coerce an extra_info value to something JSON-serializable."""
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float, str)) or value is None:
        return value
    if hasattr(value, "item"):  # numpy scalars (and 0-d arrays)
        try:
            return _scalar(value.item())
        except (TypeError, ValueError):
            pass
    return str(value)


def _wall_time_seconds(benchmark) -> float | None:
    """Mean wall time of the benchmark run, if pytest-benchmark captured one."""
    stats = getattr(benchmark, "stats", None)
    inner = getattr(stats, "stats", None)
    try:
        return float(inner.mean) if inner is not None else None
    except (AttributeError, TypeError, ZeroDivisionError):
        return None


def emit_trajectory(experiment: str, benchmark, payload: dict) -> Path:
    """Append one BENCH_<experiment>.json trajectory point and return its path."""
    safe = experiment.replace("/", "_").replace(" ", "_")
    path = ARTIFACT_DIR / f"BENCH_{safe}.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    try:
        trajectory = json.loads(path.read_text())
        if not isinstance(trajectory, list):
            trajectory = []
    except (OSError, ValueError):
        trajectory = []
    point = {
        "experiment": experiment,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "wall_time_seconds": _wall_time_seconds(benchmark),
        **{key: _scalar(value) for key, value in payload.items()},
    }
    trajectory.append(point)
    path.write_text(json.dumps(trajectory[-MAX_TRAJECTORY_POINTS:], indent=2) + "\n")
    return path


def record(benchmark, results: dict, *, adapter=None, experiment: str | None = None) -> dict:
    """Attach experiment results (minus long renders) to the benchmark record.

    When ``adapter`` (a :class:`~fairexp.explanations.BatchModelAdapter` or
    an :class:`~fairexp.explanations.AuditSession`) is given, its
    predict-call counters are recorded alongside the results.  With
    ``experiment`` the record is additionally appended to the experiment's
    ``BENCH_<experiment>.json`` wall-time / predict-call trajectory.
    """
    for key, value in results.items():
        if key == "rendered":
            continue
        benchmark.extra_info[key] = value
    if adapter is not None:
        benchmark.extra_info["predict_call_count"] = adapter.predict_call_count
        benchmark.extra_info["predict_row_count"] = adapter.predict_row_count
        benchmark.extra_info["predict_cache_hits"] = getattr(adapter, "cache_hit_count", 0)
        # Sessions expose richer accounting (schedule steps/draws, store-level
        # bytes read, row hits and entry ages): fold all of it into the
        # trajectory record so the BENCH_*.json curves track the search and
        # store behaviour, not just wall time and predict calls.
        stats = getattr(adapter, "stats", None)
        if callable(stats):
            for key, value in stats().items():
                benchmark.extra_info.setdefault(key, value)
    # Stamp the kernel dispatch outcome into every record (setdefault: a
    # session's own ``kernel_path`` stat, reflecting an explicit ``kernels=``
    # override, wins over the process-wide default).  The resolved tier and
    # the numba threading layer ride along so cross-tier perf trajectories
    # stay attributable (a turbo point on tbb is not comparable to one on
    # the serial workqueue layer).
    for key, value in active_kernel_info().items():
        benchmark.extra_info.setdefault(key, value)
    benchmark.extra_info.setdefault(
        "kernel_threading_layer", numba_threading_layer() or "none"
    )
    if experiment is not None:
        emit_trajectory(experiment, benchmark, dict(benchmark.extra_info))
    return results
