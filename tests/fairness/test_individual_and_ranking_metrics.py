"""Tests for individual fairness and ranking/exposure fairness metrics."""

import numpy as np
import pytest

from fairexp.exceptions import ValidationError
from fairexp.fairness import (
    consistency_score,
    counterfactual_flip_rate,
    exposure,
    group_exposure_ratio,
    lipschitz_violation,
    ndcg_exposure_share,
    position_weights,
    ranking_binomial_pvalue,
    representation_difference,
    top_k_representation,
)
from fairexp.models import LogisticRegression


class TestConsistency:
    def test_constant_predictions_fully_consistent(self, rng):
        X = rng.normal(size=(50, 3))
        assert consistency_score(X, np.ones(50)) == pytest.approx(1.0)

    def test_cluster_consistent_predictions(self, rng):
        X = np.vstack([rng.normal(-5, 0.5, (50, 2)), rng.normal(5, 0.5, (50, 2))])
        y_pred = np.array([0] * 50 + [1] * 50)
        assert consistency_score(X, y_pred, n_neighbors=5) > 0.95

    def test_random_predictions_less_consistent(self, rng):
        X = rng.normal(size=(100, 2))
        y_random = rng.integers(0, 2, 100)
        assert consistency_score(X, y_random) < consistency_score(X, np.ones(100))

    def test_misaligned_inputs_raise(self, rng):
        with pytest.raises(ValidationError):
            consistency_score(rng.normal(size=(10, 2)), np.ones(5))

    def test_too_many_neighbors_raise(self, rng):
        with pytest.raises(ValidationError):
            consistency_score(rng.normal(size=(5, 2)), np.ones(5), n_neighbors=10)


class TestLipschitz:
    def test_constant_scores_zero_violation(self, rng):
        X = rng.normal(size=(30, 2))
        assert lipschitz_violation(X, np.full(30, 0.5)) == pytest.approx(0.0)

    def test_steeper_function_has_larger_violation(self, rng):
        X = rng.normal(size=(50, 1))
        shallow = lipschitz_violation(X, 0.1 * X[:, 0])
        steep = lipschitz_violation(X, 10.0 * X[:, 0])
        assert steep > shallow

    def test_single_point_is_zero(self):
        assert lipschitz_violation(np.ones((1, 2)), np.ones(1)) == 0.0


class TestCounterfactualFlipRate:
    def test_model_ignoring_sensitive_has_zero_flips(self, rng):
        X = rng.normal(size=(200, 3))
        X[:, 0] = rng.integers(0, 2, 200)  # sensitive column, irrelevant to label
        y = (X[:, 1] > 0).astype(int)
        model = LogisticRegression(n_iter=500).fit(X[:, 1:], y)

        class Wrapper:
            def predict(self, Z):
                return model.predict(Z[:, 1:])

        assert counterfactual_flip_rate(Wrapper(), X, sensitive_index=0) == 0.0

    def test_biased_model_has_positive_flips(self, loan_data, loan_model):
        dataset, _, test = loan_data
        rate = counterfactual_flip_rate(loan_model, test.X, dataset.sensitive_index)
        assert rate > 0.02


class TestPositionWeightsAndExposure:
    def test_log_weights_decreasing(self):
        weights = position_weights(10)
        assert np.all(np.diff(weights) < 0)
        assert weights[0] == pytest.approx(1.0)

    def test_uniform_weights(self):
        assert np.allclose(position_weights(5, scheme="uniform"), 1.0)

    def test_unknown_scheme_raises(self):
        with pytest.raises(ValidationError):
            position_weights(5, scheme="exp")

    def test_exposure_sums_to_total_weight(self):
        groups = np.array([1, 0, 1, 0, 0])
        exposures = exposure(groups)
        assert sum(exposures.values()) == pytest.approx(position_weights(5).sum())

    def test_group_exposure_ratio_below_one_when_protected_at_bottom(self):
        groups = np.array([0, 0, 0, 1, 1, 1])
        assert group_exposure_ratio(groups) < 1.0

    def test_group_exposure_ratio_parity_for_alternating(self):
        groups = np.tile([1, 0], 10)
        assert group_exposure_ratio(groups) == pytest.approx(1.0, abs=0.3)


class TestTopKRepresentation:
    def test_representation_counts(self):
        groups = np.array([1, 1, 0, 0, 0, 1])
        assert top_k_representation(groups, 2) == pytest.approx(1.0)
        assert top_k_representation(groups, 4) == pytest.approx(0.5)

    def test_invalid_k(self):
        with pytest.raises(ValidationError):
            top_k_representation(np.array([0, 1]), 0)

    def test_representation_difference_sign(self):
        # Protected half of the pool but absent from the top-3.
        groups = np.array([0, 0, 0, 1, 1, 1])
        assert representation_difference(groups, 3) == pytest.approx(-0.5)

    def test_binomial_pvalue_small_for_skewed_prefix(self):
        groups = np.array([0] * 20 + [1] * 20)
        assert ranking_binomial_pvalue(groups, 15) < 0.01

    def test_binomial_pvalue_large_for_representative_prefix(self):
        groups = np.tile([0, 1], 20)
        assert ranking_binomial_pvalue(groups, 10) > 0.5

    def test_ndcg_exposure_share_bounds(self, rng):
        scores = rng.random(30)
        groups = rng.integers(0, 2, 30)
        share = ndcg_exposure_share(scores, groups, k=10)
        assert 0.0 <= share <= 1.0

    def test_ndcg_exposure_share_zero_when_protected_scores_low(self):
        scores = np.concatenate([np.ones(10), np.zeros(10)])
        groups = np.concatenate([np.zeros(10, dtype=int), np.ones(10, dtype=int)])
        assert ndcg_exposure_share(scores, groups, k=10) == pytest.approx(0.0)
