"""Tests for Gopher data explanations [63, 83], recommendation explanations
[84, 86, 87], Dexer [88] and the graph explainers [89-91, 44]."""

import numpy as np
import pytest

from fairexp.core import (
    CEFExplainer,
    CFairERExplainer,
    DexerExplainer,
    EdgeRemovalExplainer,
    GNNUERSExplainer,
    GopherExplainer,
    NodeInfluenceExplainer,
    PathRecommendation,
    StructuralBiasExplainer,
    fairness_aware_path_rerank,
)
from fairexp.datasets import make_adult_like
from fairexp.exceptions import ValidationError
from fairexp.graphs import GCNClassifier
from fairexp.models import LogisticRegression
from fairexp.ranking import make_ranking_candidates
from fairexp.recsys import RecWalkRecommender


# --------------------------------------------------------------------------
# Gopher data-based explanations
# --------------------------------------------------------------------------
@pytest.fixture(scope="module")
def gopher_setup():
    dataset = make_adult_like(600, direct_bias=1.2, proxy_bias=0.8, random_state=0)
    factory = lambda: LogisticRegression(n_iter=500, random_state=0)  # noqa: E731
    return dataset, factory


class TestGopher:
    def test_retrain_estimator_finds_reducing_pattern(self, gopher_setup):
        dataset, factory = gopher_setup
        explainer = GopherExplainer(factory, feature_names=dataset.feature_names,
                                    min_support=0.1, top_k=3)
        result = explainer.explain(dataset.X, dataset.y, dataset.sensitive_values)
        assert result.baseline_unfairness < 0  # protected group disadvantaged
        assert len(result.patterns) >= 1
        assert result.patterns[0].unfairness_reduction > 0

    def test_patterns_sorted_by_reduction(self, gopher_setup):
        dataset, factory = gopher_setup
        result = GopherExplainer(factory, feature_names=dataset.feature_names,
                                 min_support=0.1, top_k=5).explain(
            dataset.X, dataset.y, dataset.sensitive_values
        )
        reductions = [p.unfairness_reduction for p in result.patterns]
        assert reductions == sorted(reductions, reverse=True)

    def test_verify_pattern_matches_estimate(self, gopher_setup):
        dataset, factory = gopher_setup
        explainer = GopherExplainer(factory, feature_names=dataset.feature_names,
                                    min_support=0.15, top_k=1)
        result = explainer.explain(dataset.X, dataset.y, dataset.sensitive_values)
        pattern = result.patterns[0]
        verified = explainer.verify_pattern(dataset.X, dataset.y, dataset.sensitive_values,
                                            pattern)
        assert verified == pytest.approx(pattern.new_unfairness, abs=1e-9)

    def test_influence_estimator_correlates_with_retraining(self, gopher_setup):
        dataset, factory = gopher_setup
        retrain = GopherExplainer(factory, feature_names=dataset.feature_names,
                                  min_support=0.15, top_k=10, estimator="retrain").explain(
            dataset.X, dataset.y, dataset.sensitive_values
        )
        influence = GopherExplainer(factory, feature_names=dataset.feature_names,
                                    min_support=0.15, top_k=10, estimator="influence").explain(
            dataset.X, dataset.y, dataset.sensitive_values
        )
        retrain_top = {tuple(str(p) for p in pattern.predicates)
                       for pattern in retrain.patterns[:5]}
        influence_top = {tuple(str(p) for p in pattern.predicates)
                         for pattern in influence.patterns[:5]}
        assert retrain_top & influence_top  # agreement on at least one top pattern

    def test_influence_estimator_requires_logistic(self, gopher_setup):
        dataset, _ = gopher_setup
        from fairexp.models import GaussianNaiveBayes

        explainer = GopherExplainer(lambda: GaussianNaiveBayes(), estimator="influence")
        with pytest.raises(ValidationError):
            explainer.explain(dataset.X, dataset.y, dataset.sensitive_values)

    def test_unknown_estimator_rejected(self):
        with pytest.raises(ValidationError):
            GopherExplainer(lambda: None, estimator="magic")

    def test_pattern_description(self, gopher_setup):
        dataset, factory = gopher_setup
        result = GopherExplainer(factory, feature_names=dataset.feature_names,
                                 min_support=0.2, top_k=1).explain(
            dataset.X, dataset.y, dataset.sensitive_values
        )
        assert "support=" in result.patterns[0].describe()


# --------------------------------------------------------------------------
# Recommendation explanations
# --------------------------------------------------------------------------
@pytest.fixture(scope="module")
def rec_setup(interactions, recwalk):
    rng = np.random.default_rng(0)
    item_attributes = (rng.random((interactions.n_items, 5)) < 0.3).astype(float)
    # Attribute 0 marks reference-group (head) items: a known driver of exposure bias.
    item_attributes[:, 0] = (interactions.item_groups == 0).astype(float)
    holdout = (rng.random(interactions.matrix.shape) < 0.1).astype(float)
    return interactions, recwalk, item_attributes, holdout


class TestEdgeRemoval:
    def test_item_score_explanations_cover_user_history(self, rec_setup):
        interactions, recwalk, *_ = rec_setup
        explainer = EdgeRemovalExplainer(recwalk, k=5, random_state=0)
        user = 0
        explanations = explainer.explain_item_score(user, item=3)
        user_items = set(np.flatnonzero(interactions.matrix[user] > 0).tolist())
        assert {e.item for e in explanations} == user_items

    def test_group_exposure_explanations_sorted(self, rec_setup):
        _, recwalk, *_ = rec_setup
        explainer = EdgeRemovalExplainer(recwalk, k=5, max_edges=12, random_state=0)
        explanations = explainer.explain_group_exposure()
        changes = [e.exposure_change for e in explanations]
        assert changes == sorted(changes)
        assert len(explanations) <= 12

    def test_describe(self, rec_setup):
        _, recwalk, *_ = rec_setup
        explainer = EdgeRemovalExplainer(recwalk, k=5, max_edges=5, random_state=0)
        text = explainer.explain_group_exposure()[0].describe()
        assert "remove (user=" in text


class TestCFairERAndCEF:
    def test_cfairer_improves_exposure_fairness(self, rec_setup):
        _, recwalk, item_attributes, _ = rec_setup
        result = CFairERExplainer(recwalk, item_attributes, k=5, max_attributes=2).explain()
        assert result.final_disparity <= result.base_disparity
        assert len(result.selected_attributes) <= 2
        assert result.improvement >= 0

    def test_cfairer_selects_correlated_attribute(self, rec_setup):
        _, recwalk, item_attributes, _ = rec_setup
        result = CFairERExplainer(recwalk, item_attributes, k=5, max_attributes=1).explain()
        if result.selected_attributes:
            assert result.selected_attributes[0] == 0  # the head-item marker attribute

    def test_cef_ranks_bias_driving_feature_first(self, rec_setup):
        _, recwalk, item_attributes, holdout = rec_setup
        result = CEFExplainer(recwalk, item_attributes, holdout, k=5).explain()
        ranked = result.ranked()
        assert ranked[0][0] == "feature_0"
        assert result.fairness_gain[0] > 0

    def test_cef_reports_base_metrics(self, rec_setup):
        _, recwalk, item_attributes, holdout = rec_setup
        result = CEFExplainer(recwalk, item_attributes, holdout, k=5).explain()
        assert result.base_disparity > 0
        assert 0.0 <= result.base_ndcg <= 1.0


# --------------------------------------------------------------------------
# Dexer (ranking)
# --------------------------------------------------------------------------
class TestDexer:
    @pytest.fixture(scope="class")
    def dexer_result(self):
        candidates, ranker = make_ranking_candidates(150, score_penalty=1.5, random_state=0)
        explainer = DexerExplainer(ranker, k=20, n_permutations=40, random_state=0)
        return explainer.explain(candidates), candidates

    def test_detects_underrepresentation(self, dexer_result):
        result, candidates = dexer_result
        assert result.detection.representation_gap < 0
        assert result.detection.p_value < 0.05
        assert result.detection.is_significant

    def test_blames_penalized_attribute(self, dexer_result):
        result, _ = dexer_result
        top = result.top_attributes(1)[0][0]
        assert top == "assessment"

    def test_evidence_covers_all_attributes(self, dexer_result):
        result, candidates = dexer_result
        assert {e.attribute for e in result.evidence} == set(candidates.feature_names)

    def test_distributions_available_for_visualization(self, dexer_result):
        result, _ = dexer_result
        distributions = result.evidence[0].distributions()
        assert set(distributions) == {"group", "topk"}

    def test_unbiased_ranking_not_flagged(self):
        candidates, ranker = make_ranking_candidates(200, score_penalty=0.0, random_state=1)
        explainer = DexerExplainer(ranker, k=30, n_permutations=20, random_state=0)
        detection = explainer.detect(candidates)
        assert detection.p_value > 0.05


# --------------------------------------------------------------------------
# Graph explanations
# --------------------------------------------------------------------------
class TestStructuralBias:
    def test_bias_edges_reduce_soft_parity(self, sbm_graph, gcn):
        explainer = StructuralBiasExplainer(gcn, sbm_graph, max_edges=12, top_k=3)
        explanation = explainer.explain_node(0)
        assert explanation.base_bias > 0
        if explanation.bias_edges:
            assert explanation.bias_after_removal <= explanation.base_bias
            assert explanation.bias_reduction >= 0

    def test_bias_and_fair_edges_disjoint(self, sbm_graph, gcn):
        explainer = StructuralBiasExplainer(gcn, sbm_graph, max_edges=12, top_k=3)
        explanation = explainer.explain_node(1)
        assert not set(explanation.bias_edges) & set(explanation.fair_edges)

    def test_global_edge_set_deduplicated(self, sbm_graph, gcn):
        explainer = StructuralBiasExplainer(gcn, sbm_graph, max_edges=8, top_k=2)
        edges = explainer.explain_global(n_nodes=4, random_state=0)
        assert len(edges) == len(set(edges))


class TestNodeInfluence:
    def test_influences_have_expected_shape(self, sbm_graph):
        explainer = NodeInfluenceExplainer(
            lambda: GCNClassifier(n_epochs=30, random_state=0), sbm_graph
        )
        result = explainer.explain(max_nodes=5, random_state=0)
        assert result.influences.shape == (5,)
        assert result.base_bias > 0

    def test_most_bias_inducing_sorted(self, sbm_graph):
        explainer = NodeInfluenceExplainer(
            lambda: GCNClassifier(n_epochs=30, random_state=0), sbm_graph
        )
        result = explainer.explain(max_nodes=6, random_state=0)
        top = result.most_bias_inducing(3)
        values = [value for _, value in top]
        assert values == sorted(values, reverse=True)


class TestGNNUERSAndPathRerank:
    def test_gnnuers_never_increases_gap(self, rec_setup):
        interactions, recwalk, _, holdout = rec_setup
        explainer = GNNUERSExplainer(recwalk, holdout, k=5, max_removals=2,
                                     candidate_edges=10, random_state=0)
        result = explainer.explain()
        assert result.final_gap <= result.base_gap + 1e-12
        assert len(result.removed_edges) <= 2
        assert result.gap_reduction >= 0

    def test_path_rerank_meets_protected_share(self, rng):
        recommendations = [
            PathRecommendation(user=0, item=i, score=float(s),
                               path=("user", "likes", f"item{i}"), item_group=int(g))
            for i, (s, g) in enumerate(zip(rng.random(30), rng.integers(0, 2, 30)))
        ]
        reranked = fairness_aware_path_rerank(recommendations, k=10, min_protected_share=0.4)
        assert len(reranked) == 10
        assert np.mean([r.item_group for r in reranked]) >= 0.4

    def test_path_rerank_prefers_high_scores_subject_to_constraint(self, rng):
        recommendations = [
            PathRecommendation(user=0, item=i, score=float(i),
                               path=("u", "r", "i"), item_group=int(i % 2))
            for i in range(20)
        ]
        reranked = fairness_aware_path_rerank(recommendations, k=5, min_protected_share=0.0,
                                              diversity_weight=0.0)
        assert [r.item for r in reranked] == [19, 18, 17, 16, 15]

    def test_path_rerank_diversity_penalizes_repeated_patterns(self):
        recommendations = [
            PathRecommendation(0, 0, 1.00, ("a", "x"), 0),
            PathRecommendation(0, 1, 0.99, ("a", "x"), 0),
            PathRecommendation(0, 2, 0.90, ("b", "y"), 0),
        ]
        reranked = fairness_aware_path_rerank(recommendations, k=2, min_protected_share=0.0,
                                              diversity_weight=0.2)
        assert [r.item for r in reranked] == [0, 2]
