"""Recommendation accuracy and fairness (exposure) metrics."""

from __future__ import annotations

import numpy as np

from ..fairness.ranking_metrics import position_weights
from ..utils import safe_divide
from .interactions import InteractionMatrix

__all__ = [
    "precision_at_k",
    "recall_at_k",
    "ndcg_at_k",
    "item_group_exposure",
    "exposure_disparity",
    "user_group_quality_gap",
    "popularity_lift",
]


def precision_at_k(recommendations: np.ndarray, holdout: np.ndarray) -> float:
    """Mean fraction of recommended items that appear in the user's holdout set."""
    recommendations = np.asarray(recommendations, dtype=int)
    holdout = np.asarray(holdout, dtype=float)
    hits = [
        np.mean(holdout[user, recommendations[user]] > 0)
        for user in range(recommendations.shape[0])
    ]
    return float(np.mean(hits))


def recall_at_k(recommendations: np.ndarray, holdout: np.ndarray) -> float:
    """Mean fraction of each user's holdout items that were recommended."""
    recommendations = np.asarray(recommendations, dtype=int)
    holdout = np.asarray(holdout, dtype=float)
    recalls = []
    for user in range(recommendations.shape[0]):
        relevant = np.flatnonzero(holdout[user] > 0)
        if relevant.size == 0:
            continue
        recalls.append(np.isin(relevant, recommendations[user]).mean())
    return float(np.mean(recalls)) if recalls else 0.0


def ndcg_at_k(recommendations: np.ndarray, holdout: np.ndarray) -> float:
    """Mean normalized discounted cumulative gain of the recommendation lists."""
    recommendations = np.asarray(recommendations, dtype=int)
    holdout = np.asarray(holdout, dtype=float)
    k = recommendations.shape[1]
    discounts = position_weights(k, scheme="log")
    scores = []
    for user in range(recommendations.shape[0]):
        gains = (holdout[user, recommendations[user]] > 0).astype(float)
        dcg = float((gains * discounts).sum())
        n_relevant = int((holdout[user] > 0).sum())
        if n_relevant == 0:
            continue
        ideal = float(discounts[: min(k, n_relevant)].sum())
        scores.append(dcg / ideal)
    return float(np.mean(scores)) if scores else 0.0


def item_group_exposure(
    recommendations: np.ndarray, item_groups: np.ndarray, *, scheme: str = "log"
) -> dict[int, float]:
    """Total position-weighted exposure per item group over all recommendation lists."""
    recommendations = np.asarray(recommendations, dtype=int)
    item_groups = np.asarray(item_groups, dtype=int)
    weights = position_weights(recommendations.shape[1], scheme=scheme)
    exposures: dict[int, float] = {int(g): 0.0 for g in np.unique(item_groups)}
    for user in range(recommendations.shape[0]):
        for rank, item in enumerate(recommendations[user]):
            exposures[int(item_groups[item])] += float(weights[rank])
    return exposures


def exposure_disparity(
    recommendations: np.ndarray, item_groups: np.ndarray, *, protected_value=1
) -> float:
    """Relative under-exposure of the protected item group.

    Returns ``1 - (exposure share of protected items) / (catalog share of
    protected items)``; 0 means exposure proportional to catalog presence,
    positive values mean under-exposure.
    """
    exposures = item_group_exposure(recommendations, item_groups)
    total = sum(exposures.values())
    protected_share = safe_divide(exposures.get(int(protected_value), 0.0), total)
    catalog_share = float(np.mean(np.asarray(item_groups) == protected_value))
    return float(1.0 - safe_divide(protected_share, catalog_share, default=0.0))


def user_group_quality_gap(
    recommendations: np.ndarray, holdout: np.ndarray, user_groups: np.ndarray,
    *, protected_value=1,
) -> float:
    """NDCG gap between reference and protected user groups (consumer-side fairness)."""
    user_groups = np.asarray(user_groups, dtype=int)
    protected = user_groups == protected_value
    ndcg_protected = ndcg_at_k(recommendations[protected], holdout[protected])
    ndcg_reference = ndcg_at_k(recommendations[~protected], holdout[~protected])
    return float(ndcg_reference - ndcg_protected)


def popularity_lift(
    recommendations: np.ndarray, interactions: InteractionMatrix
) -> float:
    """Average popularity of recommended items divided by average catalog popularity.

    Values above 1 indicate popularity bias in the recommendations.
    """
    popularity = interactions.item_popularity().astype(float)
    mean_catalog = popularity.mean()
    recommended_popularity = popularity[np.asarray(recommendations, dtype=int).ravel()].mean()
    return float(safe_divide(recommended_popularity, mean_catalog, default=0.0))
