"""Tests for group fairness metrics."""

import numpy as np
import pytest

from fairexp.exceptions import ValidationError
from fairexp.fairness import (
    average_odds_difference,
    between_group_generalized_entropy,
    calibration_gap,
    disparate_impact,
    equal_opportunity_difference,
    equalized_odds_difference,
    false_negative_rate_difference,
    generalized_entropy_index,
    group_fairness_report,
    group_masks,
    groupwise,
    predictive_parity_difference,
    statistical_parity_difference,
)

# Hand-crafted example: protected group selected less often and with worse TPR.
SENSITIVE = np.array([1, 1, 1, 1, 0, 0, 0, 0])
Y_TRUE =    np.array([1, 1, 0, 0, 1, 1, 0, 0])
Y_PRED =    np.array([1, 0, 0, 0, 1, 1, 1, 0])
Y_PROBA =   np.array([0.9, 0.4, 0.3, 0.2, 0.95, 0.85, 0.6, 0.1])


class TestGroupMasks:
    def test_masks_partition(self):
        masks = group_masks(SENSITIVE)
        assert masks.n_protected == 4
        assert masks.n_reference == 4
        assert not np.any(masks.protected & masks.reference)

    def test_single_group_rejected(self):
        with pytest.raises(ValidationError):
            group_masks(np.ones(5))

    def test_custom_protected_value(self):
        masks = group_masks(np.array(["a", "b", "a"]), protected_value="a")
        assert masks.n_protected == 2

    def test_groupwise_statistic(self):
        result = groupwise(Y_PRED, SENSITIVE)
        assert result["protected"] == pytest.approx(0.25)
        assert result["reference"] == pytest.approx(0.75)
        assert result["difference"] == pytest.approx(-0.5)


class TestBaseRateMetrics:
    def test_statistical_parity_difference(self):
        assert statistical_parity_difference(Y_PRED, SENSITIVE) == pytest.approx(-0.5)

    def test_disparate_impact(self):
        assert disparate_impact(Y_PRED, SENSITIVE) == pytest.approx(1 / 3)

    def test_parity_when_equal_rates(self):
        pred = np.array([1, 0, 1, 0, 1, 0, 1, 0])
        assert statistical_parity_difference(pred, SENSITIVE) == pytest.approx(0.0)
        assert disparate_impact(pred, SENSITIVE) == pytest.approx(1.0)

    def test_disparate_impact_zero_reference_rate(self):
        pred = np.array([1, 1, 0, 0, 0, 0, 0, 0])
        assert disparate_impact(pred, SENSITIVE) == 0.0


class TestErrorBasedMetrics:
    def test_equal_opportunity_difference(self):
        # TPR protected = 1/2, reference = 2/2.
        assert equal_opportunity_difference(Y_TRUE, Y_PRED, SENSITIVE) == pytest.approx(-0.5)

    def test_fpr_and_fnr_differences(self):
        # FPR protected = 0, reference = 1/2; FNR protected = 1/2, reference = 0.
        assert false_negative_rate_difference(Y_TRUE, Y_PRED, SENSITIVE) == pytest.approx(0.5)

    def test_equalized_odds_is_max_of_gaps(self):
        assert equalized_odds_difference(Y_TRUE, Y_PRED, SENSITIVE) == pytest.approx(0.5)

    def test_average_odds(self):
        assert average_odds_difference(Y_TRUE, Y_PRED, SENSITIVE) == pytest.approx(
            (-0.5 + -0.5) / 2
        )

    def test_predictive_parity(self):
        # Precision protected = 1/1, reference = 2/3.
        assert predictive_parity_difference(Y_TRUE, Y_PRED, SENSITIVE) == pytest.approx(1 / 3)

    def test_zero_for_identical_groups(self, rng):
        y_true = rng.integers(0, 2, 200)
        y_pred = rng.integers(0, 2, 200)
        sensitive = np.tile([0, 1], 100)
        doubled_true = np.concatenate([y_true, y_true])
        doubled_pred = np.concatenate([y_pred, y_pred])
        doubled_sensitive = np.concatenate([np.zeros(200), np.ones(200)])
        assert equal_opportunity_difference(
            doubled_true, doubled_pred, doubled_sensitive
        ) == pytest.approx(0.0)


class TestEntropyAndCalibration:
    def test_generalized_entropy_zero_for_equal_benefits(self):
        assert generalized_entropy_index(np.ones(10)) == pytest.approx(0.0)

    def test_generalized_entropy_positive_for_unequal(self):
        assert generalized_entropy_index(np.array([0.0, 2.0, 0.0, 2.0])) > 0

    @pytest.mark.parametrize("alpha", [0.0, 1.0, 2.0])
    def test_entropy_alpha_variants_nonnegative(self, alpha, rng):
        benefits = rng.random(100) + 0.1
        assert generalized_entropy_index(benefits, alpha=alpha) >= 0

    def test_between_group_entropy_zero_when_benefits_match(self):
        pred = np.array([1, 0, 1, 0, 1, 0, 1, 0])
        true = np.array([1, 0, 1, 0, 1, 0, 1, 0])
        assert between_group_generalized_entropy(true, pred, SENSITIVE) == pytest.approx(0.0)

    def test_calibration_gap_sign(self, rng):
        n = 2000
        sensitive = np.tile([0, 1], n // 2)
        proba = rng.random(n)
        y = (rng.random(n) < proba).astype(int)
        # Mis-calibrate the protected group only.
        proba_bad = proba.copy()
        proba_bad[sensitive == 1] = np.clip(proba_bad[sensitive == 1] + 0.3, 0, 1)
        assert calibration_gap(y, proba_bad, sensitive) > 0.1


class TestReport:
    def test_report_contains_all_metrics(self):
        report = group_fairness_report(Y_TRUE, Y_PRED, SENSITIVE, y_proba=Y_PROBA)
        as_dict = report.as_dict()
        assert "statistical_parity_difference" in as_dict
        assert "calibration_gap" in as_dict
        assert as_dict["statistical_parity_difference"] == pytest.approx(-0.5)

    def test_worst_violation_identifies_largest_deviation(self):
        report = group_fairness_report(Y_TRUE, Y_PRED, SENSITIVE)
        worst, deviation = report.worst_violation()
        assert deviation >= abs(report.statistical_parity_difference)

    def test_report_without_probabilities_skips_calibration(self):
        report = group_fairness_report(Y_TRUE, Y_PRED, SENSITIVE)
        assert "calibration_gap" not in report.as_dict()

    def test_biased_model_shows_negative_parity(self, loan_data, loan_model):
        _, _, test = loan_data
        report = group_fairness_report(
            test.y, loan_model.predict(test.X), test.sensitive_values
        )
        assert report.statistical_parity_difference < -0.2
        assert report.disparate_impact < 0.8
