"""Explanations *for* fairness — the paper's Section IV, one module per surveyed approach.

The three goals the survey identifies are covered as follows:

* **E — enhance fairness metrics**: burden [72], NAWB [73], FACTS criteria
  [77], recourse gaps [79, 80].
* **U — understand the causes of (un)fairness**: PreCoF [71], group
  counterfactuals [74, 75, 76], fairness Shapley values [81], causal path
  decomposition [82], probabilistic contrastive counterfactuals [10],
  data-based explanations [63, 83], Dexer [88], graph explainers [89-91].
* **M — design mitigation**: actionable recourse [65], recourse-regularized
  training (via :mod:`fairexp.fairness.mitigation`), data cleaning guided by
  Gopher patterns, CFairER / CEF / GNNUERS interventions, fairness-aware KG
  re-ranking [44].
"""

from .actionable_recourse import CausalRecourseExplainer, Flipset, RecourseResult
from .burden import BurdenExplainer, BurdenResult, GroupBurden
from .causal_paths import CausalPathDecomposition, CausalPathExplainer, PathContribution
from .cf_trees import CFTreeResult, CounterfactualExplanationTree
from .data_explanations import DataExplanationResult, GopherExplainer, PatternExplanation
from .facts import Action, FACTSExplainer, FACTSResult, SubgroupAudit
from .fair_recourse import (
    CausalRecourseFairnessResult,
    RecourseGapReport,
    causal_flip_rate,
    causal_recourse_fairness,
    recourse_gap_report,
)
from .fairness_shap import FairnessShapExplainer
from .globe_ce import GlobeCEExplainer, GlobeCEResult
from .graph_explanations import (
    EdgeSetExplanation,
    GNNUERSExplainer,
    GNNUERSResult,
    NodeInfluenceExplainer,
    NodeInfluenceResult,
    PathRecommendation,
    StructuralBiasExplainer,
    fairness_aware_path_rerank,
)
from .nawb import NAWBExplainer, NAWBResult
from .precof import PreCoFExplainer, PreCoFResult
from .probabilistic_contrastive import (
    AttributeContrastiveResult,
    ProbabilisticContrastiveExplainer,
)
from .ranking_explanations import DexerExplainer, DexerResult, GroupDetection
from .rec_explanations import (
    CEFExplainer,
    CEFResult,
    CFairERExplainer,
    CFairERResult,
    EdgeRemovalExplainer,
    EdgeRemovalExplanation,
)
from .recourse_sets import RecourseSetExplainer, TwoLevelRecourseSet
from .report import FairnessAuditor, FairnessAuditReport
from .taxonomy import (
    TABLE_I,
    ApproachEntry,
    TaxonomyNode,
    explanation_taxonomy,
    fairness_taxonomy,
    implemented_class,
    registry_figure2_coverage,
    render_table_i,
    render_taxonomy,
)

__all__ = [
    "BurdenExplainer", "BurdenResult", "GroupBurden",
    "NAWBExplainer", "NAWBResult",
    "PreCoFExplainer", "PreCoFResult",
    "FACTSExplainer", "FACTSResult", "SubgroupAudit", "Action",
    "GlobeCEExplainer", "GlobeCEResult",
    "CounterfactualExplanationTree", "CFTreeResult",
    "RecourseSetExplainer", "TwoLevelRecourseSet",
    "CausalRecourseExplainer", "Flipset", "RecourseResult",
    "RecourseGapReport", "recourse_gap_report",
    "CausalRecourseFairnessResult", "causal_recourse_fairness", "causal_flip_rate",
    "FairnessShapExplainer",
    "CausalPathExplainer", "CausalPathDecomposition", "PathContribution",
    "GopherExplainer", "DataExplanationResult", "PatternExplanation",
    "ProbabilisticContrastiveExplainer", "AttributeContrastiveResult",
    "EdgeRemovalExplainer", "EdgeRemovalExplanation",
    "CFairERExplainer", "CFairERResult",
    "CEFExplainer", "CEFResult",
    "DexerExplainer", "DexerResult", "GroupDetection",
    "StructuralBiasExplainer", "EdgeSetExplanation",
    "NodeInfluenceExplainer", "NodeInfluenceResult",
    "GNNUERSExplainer", "GNNUERSResult",
    "PathRecommendation", "fairness_aware_path_rerank",
    "FairnessAuditor", "FairnessAuditReport",
    "TaxonomyNode", "fairness_taxonomy", "explanation_taxonomy", "render_taxonomy",
    "ApproachEntry", "TABLE_I", "render_table_i", "implemented_class",
    "registry_figure2_coverage",
]
