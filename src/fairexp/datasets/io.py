"""CSV persistence for :class:`fairexp.datasets.Dataset`.

The format is a plain CSV with a small JSON sidecar holding the feature
metadata, so datasets can be exchanged with external tools and reloaded
without losing actionability / immutability information.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

import numpy as np

from ..exceptions import ValidationError
from .schema import Dataset, FeatureSpec

__all__ = ["save_csv", "load_csv"]

_LABEL_COLUMN = "__label__"


def save_csv(dataset: Dataset, path) -> Path:
    """Write the dataset to ``path`` (CSV) plus ``path.meta.json`` (metadata).

    Returns the CSV path.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(dataset.feature_names + [_LABEL_COLUMN])
        for row, label in zip(dataset.X, dataset.y):
            writer.writerow([repr(float(v)) for v in row] + [int(label)])

    metadata = {
        "name": dataset.name,
        "sensitive": dataset.sensitive,
        "features": [
            {
                "name": spec.name,
                "kind": spec.kind,
                "actionable": spec.actionable,
                "immutable": spec.immutable,
                "monotone": spec.monotone,
                "lower": spec.lower,
                "upper": spec.upper,
                "categories": list(spec.categories),
            }
            for spec in dataset.features
        ],
    }
    meta_path = path.with_suffix(path.suffix + ".meta.json")
    meta_path.write_text(json.dumps(metadata, indent=2))
    return path


def load_csv(path) -> Dataset:
    """Load a dataset written by :func:`save_csv`."""
    path = Path(path)
    meta_path = path.with_suffix(path.suffix + ".meta.json")
    if not path.exists():
        raise ValidationError(f"no such file: {path}")
    if not meta_path.exists():
        raise ValidationError(f"missing metadata sidecar: {meta_path}")
    metadata = json.loads(meta_path.read_text())

    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        rows = [row for row in reader if row]

    if header[-1] != _LABEL_COLUMN:
        raise ValidationError("CSV is missing the label column")
    data = np.asarray([[float(v) for v in row] for row in rows])
    X, y = data[:, :-1], data[:, -1].astype(int)

    features = [
        FeatureSpec(
            name=spec["name"],
            kind=spec["kind"],
            actionable=spec["actionable"],
            immutable=spec["immutable"],
            monotone=spec["monotone"],
            lower=spec["lower"],
            upper=spec["upper"],
            categories=tuple(spec["categories"]),
        )
        for spec in metadata["features"]
    ]
    return Dataset(
        X=X, y=y, features=features, sensitive=metadata["sensitive"], name=metadata["name"]
    )
