"""Tests for permutation importance, PDP/ICE, local surrogates and anchors."""

import numpy as np
import pytest

from fairexp.explanations import (
    AnchorExplainer,
    GlobalSurrogateTree,
    LocalSurrogateExplainer,
    PermutationImportanceExplainer,
    individual_conditional_expectation,
    partial_dependence,
    permutation_importance,
)
from fairexp.exceptions import ValidationError
from fairexp.models import LogisticRegression


@pytest.fixture(scope="module")
def linear_setup():
    rng = np.random.default_rng(2)
    X = rng.normal(size=(500, 4))
    y = (2.0 * X[:, 0] - 1.5 * X[:, 1] + 0.1 * rng.normal(size=500) > 0).astype(int)
    model = LogisticRegression(n_iter=800).fit(X, y)
    return model, X, y


class TestPermutationImportance:
    def test_informative_features_rank_higher(self, linear_setup):
        model, X, y = linear_setup
        attribution = permutation_importance(model, X, y, random_state=0,
                                             feature_names=["a", "b", "c", "d"])
        scores = attribution.as_dict()
        assert scores["a"] > scores["c"]
        assert scores["b"] > scores["d"]

    def test_noise_features_near_zero(self, linear_setup):
        model, X, y = linear_setup
        attribution = permutation_importance(model, X, y, random_state=0)
        assert abs(attribution.values[2]) < 0.05

    def test_explainer_wrapper(self, linear_setup):
        model, X, y = linear_setup
        explainer = PermutationImportanceExplainer(model, random_state=0)
        assert explainer.info.coverage == "global"
        attribution = explainer.explain(X, y)
        assert attribution.values.shape == (4,)


class TestPartialDependence:
    def test_monotone_for_positive_coefficient(self, linear_setup):
        model, X, _ = linear_setup
        grid, pd_values = partial_dependence(model, X, 0, grid_size=10)
        assert grid.shape == pd_values.shape == (10,)
        assert pd_values[-1] > pd_values[0]

    def test_decreasing_for_negative_coefficient(self, linear_setup):
        model, X, _ = linear_setup
        _, pd_values = partial_dependence(model, X, 1, grid_size=10)
        assert pd_values[-1] < pd_values[0]

    def test_flatter_for_irrelevant_feature(self, linear_setup):
        model, X, _ = linear_setup
        _, pd_relevant = partial_dependence(model, X, 0, grid_size=10)
        _, pd_irrelevant = partial_dependence(model, X, 2, grid_size=10)
        relevant_range = pd_relevant.max() - pd_relevant.min()
        irrelevant_range = pd_irrelevant.max() - pd_irrelevant.min()
        assert irrelevant_range < 0.3 * relevant_range

    def test_out_of_range_feature(self, linear_setup):
        model, X, _ = linear_setup
        with pytest.raises(ValidationError):
            partial_dependence(model, X, 10)

    def test_ice_shapes(self, linear_setup):
        model, X, _ = linear_setup
        grid, curves = individual_conditional_expectation(
            model, X, 0, grid_size=8, max_samples=20, random_state=0
        )
        assert grid.shape == (8,)
        assert curves.shape == (20, 8)
        # The PDP is the mean of the ICE curves (same feature, same grid).
        _, pd_values = partial_dependence(model, X, 0, grid_size=8)
        assert np.corrcoef(curves.mean(axis=0), pd_values)[0, 1] > 0.95


class TestLocalSurrogate:
    def test_coefficients_match_model_signs(self, linear_setup):
        model, X, _ = linear_setup
        explainer = LocalSurrogateExplainer(model, X, random_state=0,
                                            feature_names=["a", "b", "c", "d"])
        attribution = explainer.explain(X[0])
        scores = attribution.as_dict()
        assert scores["a"] > 0
        assert scores["b"] < 0
        assert abs(scores["a"]) > abs(scores["c"])

    def test_meta_contains_local_prediction(self, linear_setup):
        model, X, _ = linear_setup
        attribution = LocalSurrogateExplainer(model, X, random_state=0).explain(X[1])
        assert 0.0 <= attribution.meta["local_prediction"] <= 1.0


class TestGlobalSurrogateTree:
    def test_high_fidelity_on_simple_model(self, linear_setup):
        model, X, _ = linear_setup
        surrogate = GlobalSurrogateTree(model, max_depth=4).fit(X)
        assert surrogate.fidelity_ > 0.85

    def test_rules_nonempty(self, linear_setup):
        model, X, _ = linear_setup
        surrogate = GlobalSurrogateTree(model, max_depth=3,
                                        feature_names=["a", "b", "c", "d"]).fit(X)
        rules = surrogate.rules()
        assert len(rules) >= 2
        assert all("IF" in rule for rule in rules)

    def test_importances_prefer_used_features(self, linear_setup):
        model, X, _ = linear_setup
        surrogate = GlobalSurrogateTree(model, max_depth=4).fit(X)
        importances = surrogate.feature_importances().values
        assert importances[0] + importances[1] > importances[2] + importances[3]

    def test_requires_fit(self, linear_setup):
        model, X, _ = linear_setup
        with pytest.raises(RuntimeError):
            GlobalSurrogateTree(model).rules()


class TestAnchor:
    def test_anchor_precision_meets_threshold(self, linear_setup):
        model, X, _ = linear_setup
        explainer = AnchorExplainer(model, X, precision_threshold=0.85, n_samples=300,
                                    feature_names=["a", "b", "c", "d"], random_state=0)
        # Pick a confidently classified instance.
        proba = model.predict_proba(X)[:, 1]
        anchor = explainer.explain(X[int(np.argmax(proba))])
        assert anchor.precision >= 0.8
        assert anchor.prediction == 1

    def test_anchor_conditions_use_relevant_features(self, linear_setup):
        model, X, _ = linear_setup
        explainer = AnchorExplainer(model, X, n_samples=300,
                                    feature_names=["a", "b", "c", "d"], random_state=0)
        proba = model.predict_proba(X)[:, 1]
        anchor = explainer.explain(X[int(np.argmax(proba))])
        assert set(anchor.conditions) <= {"a", "b", "c", "d"}
        assert len(anchor.conditions) >= 1

    def test_str_rendering(self, linear_setup):
        model, X, _ = linear_setup
        explainer = AnchorExplainer(model, X, n_samples=200, random_state=0)
        text = str(explainer.explain(X[0]))
        assert text.startswith("IF ")
        assert "precision=" in text
