"""Docstring coverage contract for the whole package.

Every module under ``src/fairexp`` is part of the documented surface, so
its public objects must be self-describing.  CI additionally runs

    ruff check --select D100,D101,D102,D103,D104 src/fairexp

(see ``.github/workflows/ci.yml``); this test enforces the same contract —
module, class, public method and public function docstrings — with the
standard library only, so the guarantee holds in environments without ruff.
Mirrors ruff's visibility rules: underscore-prefixed names and functions
nested inside functions are private; dunder methods are out of scope (D105
is deliberately not selected).
"""

import ast
from pathlib import Path

PACKAGE_DIR = Path(__file__).resolve().parent.parent.parent / "src" / "fairexp"


def _missing_docstrings(tree: ast.Module, path: Path) -> list[str]:
    missing = []
    if ast.get_docstring(tree) is None:
        missing.append(f"{path.name}:1 module docstring (D100/D104)")

    def walk(node, prefix=""):
        for child in ast.iter_child_nodes(node):
            if not isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                      ast.ClassDef)):
                continue
            if child.name.startswith("_"):
                continue  # private (or dunder) — out of the selected rules
            if ast.get_docstring(child) is None:
                kind = "class (D101)" if isinstance(child, ast.ClassDef) \
                    else "function/method (D102/D103)"
                missing.append(f"{path.name}:{child.lineno} {prefix}{child.name} {kind}")
            if isinstance(child, ast.ClassDef):
                walk(child, prefix + child.name + ".")
            # Functions nested in functions are private — do not descend.

    walk(tree)
    return missing


def test_package_public_surface_is_documented():
    modules = sorted(PACKAGE_DIR.rglob("*.py"))
    assert len(modules) >= 50  # the whole package, not a stray subtree
    missing = []
    for path in modules:
        missing += _missing_docstrings(ast.parse(path.read_text()), path)
    assert not missing, (
        "public objects in fairexp lack docstrings "
        "(the docstring contract covers all of src/fairexp):\n"
        + "\n".join(missing)
    )
