"""Example-based explanations: prototypes & criticisms, nearest neighbours, contrastive pairs."""

from __future__ import annotations

import numpy as np
from scipy.spatial.distance import cdist

from ..exceptions import ValidationError
from .base import ExampleExplanation, ExplainerInfo

__all__ = [
    "select_prototypes",
    "select_criticisms",
    "nearest_neighbor_explanation",
    "contrastive_example",
]


def _rbf_kernel(A: np.ndarray, B: np.ndarray, gamma: float) -> np.ndarray:
    return np.exp(-gamma * cdist(A, B, metric="sqeuclidean"))


def select_prototypes(X, *, n_prototypes: int = 5, gamma: float | None = None) -> ExampleExplanation:
    """Greedy MMD-critic prototype selection.

    Prototypes are the instances that, taken together, best match the dataset
    distribution under the maximum mean discrepancy with an RBF kernel.
    """
    X = np.asarray(X, dtype=float)
    n = X.shape[0]
    if n_prototypes > n:
        raise ValidationError("n_prototypes exceeds the number of samples")
    if gamma is None:
        gamma = 1.0 / max(X.shape[1], 1)

    kernel = _rbf_kernel(X, X, gamma)
    column_means = kernel.mean(axis=1)
    selected: list[int] = []
    for _ in range(n_prototypes):
        best_gain, best_idx = -np.inf, -1
        for candidate in range(n):
            if candidate in selected:
                continue
            trial = selected + [candidate]
            m = len(trial)
            gain = 2.0 / m * column_means[trial].sum() - kernel[np.ix_(trial, trial)].sum() / m**2
            if gain > best_gain:
                best_gain, best_idx = gain, candidate
        selected.append(best_idx)
    return ExampleExplanation(indices=tuple(selected), role="prototype",
                              meta={"gamma": gamma})


def select_criticisms(
    X, prototypes: ExampleExplanation, *, n_criticisms: int = 3, gamma: float | None = None
) -> ExampleExplanation:
    """Select criticisms: points worst represented by the chosen prototypes (MMD witness)."""
    X = np.asarray(X, dtype=float)
    if gamma is None:
        gamma = prototypes.meta.get("gamma", 1.0 / max(X.shape[1], 1))
    kernel = _rbf_kernel(X, X, gamma)
    proto_idx = list(prototypes.indices)
    witness = np.abs(kernel.mean(axis=1) - kernel[:, proto_idx].mean(axis=1))
    witness[proto_idx] = -np.inf
    order = np.argsort(-witness)[:n_criticisms]
    return ExampleExplanation(
        indices=tuple(int(i) for i in order), role="criticism", scores=witness[order]
    )


def nearest_neighbor_explanation(
    x, X_reference, y_reference=None, *, n_neighbors: int = 5, metric: str = "euclidean"
) -> ExampleExplanation:
    """Explain a prediction by the most similar reference instances (and their labels)."""
    x = np.atleast_2d(np.asarray(x, dtype=float))
    X_reference = np.asarray(X_reference, dtype=float)
    distances = cdist(x, X_reference, metric=metric)[0]
    order = np.argsort(distances)[:n_neighbors]
    meta = {}
    if y_reference is not None:
        meta["labels"] = np.asarray(y_reference)[order].tolist()
    return ExampleExplanation(
        indices=tuple(int(i) for i in order), role="neighbor", scores=distances[order], meta=meta
    )


def contrastive_example(x, X_reference, predictions, *, target_class: int = 1,
                        metric: str = "euclidean") -> ExampleExplanation:
    """Return the closest reference instance predicted as ``target_class``.

    This is the "nearest contrastive explanation" view of counterfactuals
    (Karimi et al. [13]) restricted to observed data points, sometimes called
    a native counterfactual.
    """
    x = np.atleast_2d(np.asarray(x, dtype=float))
    X_reference = np.asarray(X_reference, dtype=float)
    predictions = np.asarray(predictions)
    candidates = np.flatnonzero(predictions == target_class)
    if candidates.size == 0:
        raise ValidationError("no reference instance has the target class")
    distances = cdist(x, X_reference[candidates], metric=metric)[0]
    best = candidates[int(np.argmin(distances))]
    return ExampleExplanation(
        indices=(int(best),), role="contrastive", scores=np.array([float(distances.min())])
    )


class ExampleBasedExplainer:
    """Facade bundling prototype / neighbour / contrastive example explanations."""

    info = ExplainerInfo(
        stage="post-hoc",
        access="black-box",
        agnostic=True,
        coverage="both",
        explanation_type="example",
        multiplicity="multiple",
    )

    def __init__(self, X_reference, y_reference=None, predictions=None) -> None:
        self.X_reference = np.asarray(X_reference, dtype=float)
        self.y_reference = None if y_reference is None else np.asarray(y_reference)
        self.predictions = None if predictions is None else np.asarray(predictions)

    def prototypes(self, n_prototypes: int = 5) -> ExampleExplanation:
        """Representative prototypes of the reference data (k-medoids style)."""
        return select_prototypes(self.X_reference, n_prototypes=n_prototypes)

    def neighbors(self, x, n_neighbors: int = 5) -> ExampleExplanation:
        """The reference points closest to ``x`` (with labels when known)."""
        return nearest_neighbor_explanation(
            x, self.X_reference, self.y_reference, n_neighbors=n_neighbors
        )

    def contrastive(self, x, target_class: int = 1) -> ExampleExplanation:
        """The closest reference point predicted as ``target_class``."""
        if self.predictions is None:
            raise ValidationError("predictions are required for contrastive examples")
        return contrastive_example(x, self.X_reference, self.predictions,
                                   target_class=target_class)
