"""The FX rule set: one module per rule, registered in :data:`ALL_RULES`.

Each rule encodes one of the conventions the explanations stack grew
over PRs 1–9; ``docs/api/lint.md`` carries the table mapping codes to
the PRs that motivated them.
"""

from .fx001_executors import ExecutorConstructionRule
from .fx002_randomness import LegacyRandomRule
from .fx003_mutable_defaults import MutableDefaultRule
from .fx004_swallowed_except import SwallowedExceptRule
from .fx005_counter_locks import CounterLockRule
from .fx006_fingerprint import FingerprintCoverageRule
from .fx007_sleep import SleepRule
from .fx008_process_env import ProcessEnvRule

ALL_RULES = (
    ExecutorConstructionRule,
    LegacyRandomRule,
    MutableDefaultRule,
    SwallowedExceptRule,
    CounterLockRule,
    FingerprintCoverageRule,
    SleepRule,
    ProcessEnvRule,
)

__all__ = ["ALL_RULES"] + [rule.__name__ for rule in ALL_RULES]
