"""E8: fairness-Shapley decomposition [81] and causal path decomposition [82]."""

from conftest import record

from fairexp.experiments import run_e8_fairness_shap


def test_fairness_shapley_and_causal_paths(benchmark):
    results = record(benchmark, benchmark.pedantic(
        run_e8_fairness_shap, kwargs={"n_samples": 600, "audit_size": 120},
        rounds=1, iterations=1,
    ), experiment="E8")
    # Efficiency: the feature attributions sum exactly to the parity gap.
    assert abs(results["shap_efficiency_gap"]) < 1e-6
    assert abs(results["shap_attribution_sum"] - results["parity_gap"]) < 1e-6
    # The directly-biased sensitive feature receives the largest (most negative) share.
    assert results["shap_sensitive_share"] < 0
    assert abs(results["shap_sensitive_share"]) > abs(results["parity_gap"]) * 0.25
    # Ablation: Monte-Carlo sampling stays close to the exact decomposition.
    assert results["shap_sampling_max_error"] < 0.15
    # Causal path decomposition fully accounts for the disparity and routes the
    # largest share through the group -> income mechanism.
    assert abs(results["path_explained_fraction"] - 1.0) < 1e-6
    assert results["path_top"].startswith("group ->")
    assert results["path_top_contribution"] < 0
