"""Explanations of unfairness in graph machine learning.

Implements, against the :mod:`fairexp.graphs` GCN substrate and the
:mod:`fairexp.recsys` bipartite graphs, the four surveyed graph approaches:

* :class:`StructuralBiasExplainer` (Dong et al. [89]) — for each node, find
  the edge sets in its computational graph that maximally account for the
  exhibited bias and those that maximally contribute to fairness.
* :class:`NodeInfluenceExplainer` (Dong et al. [90]) — estimate the influence
  of each *training node* on the model's bias by leave-one-out retraining
  (exact) so the most bias-inducing nodes can be down-weighted.
* :class:`GNNUERSExplainer` (Medda et al. [91]) — perturb the bipartite
  user–item interaction graph of a graph-based recommender to identify the
  interactions that lead to consumer-side (user-group) unfairness.
* :func:`fairness_aware_path_rerank` (Fu et al. [44]) — re-rank explainable
  KG-path recommendations under a group-exposure constraint, mitigating the
  bias arising from different user activity levels while keeping path-based
  explanations diverse.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..explanations.base import ExplainerInfo, ExplainerRegistry
from ..graphs.generators import AttributedGraph
from ..graphs.gnn import GCNClassifier
from ..recsys.metrics import ndcg_at_k, user_group_quality_gap
from ..recsys.models import BaseRecommender, RecWalkRecommender
from ..utils import check_random_state, safe_divide

__all__ = [
    "EdgeSetExplanation",
    "StructuralBiasExplainer",
    "NodeInfluenceResult",
    "NodeInfluenceExplainer",
    "GNNUERSResult",
    "GNNUERSExplainer",
    "PathRecommendation",
    "fairness_aware_path_rerank",
]


# --------------------------------------------------------------------------
# Structural bias edge sets [89]
# --------------------------------------------------------------------------
@dataclass
class EdgeSetExplanation:
    """Edge sets explaining one node's bias.

    ``bias_edges`` maximally account for the node's contribution to group
    disparity (removing them reduces bias the most); ``fair_edges`` maximally
    contribute to fairness (removing them increases bias the most).
    """

    node: int
    bias_edges: list[tuple[int, int]]
    fair_edges: list[tuple[int, int]]
    base_bias: float
    bias_after_removal: float
    edge_effects: dict[tuple[int, int], float] = field(default_factory=dict, repr=False)

    @property
    def bias_reduction(self) -> float:
        """Bias removed by deleting the edge set (original minus rewired)."""
        return self.base_bias - self.bias_after_removal


@ExplainerRegistry.register("structural_bias", capabilities=("fairness-explainer", "graph"),
                             modality="graph")
class StructuralBiasExplainer:
    """Explain a GCN's bias through edge sets in each node's computational graph.

    The node-level bias proxy is the signed difference between the node's
    predicted favourable probability and the mean predicted probability of the
    other group (a local statistical-parity contribution).  Each incident /
    two-hop edge is removed in turn and the change in the model's global
    statistical parity is recorded; the edges whose removal most reduces
    (resp. increases) disparity form the bias (resp. fair) edge set.
    """

    info = ExplainerInfo(
        stage="post-hoc",
        access="black-box",
        agnostic=True,
        coverage="local",
        explanation_type="example",
        multiplicity="multiple",
    )

    def __init__(self, model: GCNClassifier, graph: AttributedGraph, *, max_edges: int = 20,
                 top_k: int = 5) -> None:
        self.model = model
        self.graph = graph
        self.max_edges = max_edges
        self.top_k = top_k

    def _computational_edges(self, node: int) -> list[tuple[int, int]]:
        """Edges within two hops of the node (its 2-layer GCN receptive field)."""
        adjacency = self.graph.adjacency
        one_hop = set(np.flatnonzero(adjacency[node] > 0).tolist())
        nodes = {node} | one_hop
        for neighbor in list(one_hop):
            nodes |= set(np.flatnonzero(adjacency[neighbor] > 0).tolist())
        edges = []
        for i, j in self.graph.edges():
            if i in nodes and j in nodes:
                edges.append((i, j))
        return edges[: self.max_edges]

    def explain_node(self, node: int) -> EdgeSetExplanation:
        """Return the bias / fair edge sets for one node."""
        base_bias = abs(self.model.soft_statistical_parity(self.graph))
        effects: dict[tuple[int, int], float] = {}
        for edge in self._computational_edges(node):
            perturbed = self.graph.remove_edges([edge])
            new_bias = abs(self.model.soft_statistical_parity(perturbed))
            effects[edge] = new_bias - base_bias  # negative => removing reduces bias

        ranked = sorted(effects.items(), key=lambda item: item[1])
        bias_edges = [edge for edge, effect in ranked[: self.top_k] if effect < 0]
        fair_edges = [edge for edge, effect in ranked[::-1][: self.top_k] if effect > 0]
        after = abs(
            self.model.soft_statistical_parity(self.graph.remove_edges(bias_edges))
        ) if bias_edges else base_bias
        return EdgeSetExplanation(
            node=node,
            bias_edges=bias_edges,
            fair_edges=fair_edges,
            base_bias=base_bias,
            bias_after_removal=after,
            edge_effects=effects,
        )

    def explain_global(self, *, n_nodes: int = 10, random_state=None) -> list[tuple[int, int]]:
        """Union of the bias edges of a sample of nodes (a global debiasing edge set)."""
        rng = check_random_state(random_state)
        nodes = rng.choice(self.graph.n_nodes, size=min(n_nodes, self.graph.n_nodes),
                           replace=False)
        edges: list[tuple[int, int]] = []
        for node in nodes:
            explanation = self.explain_node(int(node))
            edges.extend(explanation.bias_edges)
        # Deduplicate, preserving order.
        seen, unique = set(), []
        for edge in edges:
            if edge in seen:
                continue
            seen.add(edge)
            unique.append(edge)
        return unique


# --------------------------------------------------------------------------
# Training-node influence on bias [90]
# --------------------------------------------------------------------------
@dataclass
class NodeInfluenceResult:
    """Influence of training nodes on the model's bias."""

    node_ids: np.ndarray
    influences: np.ndarray
    base_bias: float

    def most_bias_inducing(self, k: int = 5) -> list[tuple[int, float]]:
        """Nodes whose removal from training most reduces |bias| (largest positive influence)."""
        order = np.argsort(-self.influences)[:k]
        return [(int(self.node_ids[i]), float(self.influences[i])) for i in order]


@ExplainerRegistry.register("node_influence", capabilities=("fairness-explainer", "graph"),
                             modality="graph")
class NodeInfluenceExplainer:
    """Estimate each training node's influence on the GCN's statistical parity.

    The influence of node ``v`` is ``|bias(trained on all)| - |bias(trained
    without v)|``: positive influence means the node *induces* bias.  The
    estimator retrains the (small) GCN per node, which is exact; a sample of
    candidate nodes keeps the cost bounded.
    """

    info = ExplainerInfo(
        stage="post-hoc",
        access="white-box",
        agnostic=False,
        coverage="global",
        explanation_type="example",
        multiplicity="multiple",
    )

    def __init__(self, model_factory, graph: AttributedGraph, *, n_epochs: int = 80) -> None:
        self.model_factory = model_factory
        self.graph = graph
        self.n_epochs = n_epochs

    def explain(self, *, candidate_nodes=None, max_nodes: int = 15,
                random_state=None) -> NodeInfluenceResult:
        """Return per-node bias influences for a sample of training nodes."""
        rng = check_random_state(random_state)
        full_model = self.model_factory()
        full_model.fit(self.graph)
        base_bias = abs(full_model.soft_statistical_parity(self.graph))

        if candidate_nodes is None:
            candidate_nodes = np.arange(self.graph.n_nodes)
        candidate_nodes = np.asarray(candidate_nodes)
        if candidate_nodes.shape[0] > max_nodes:
            candidate_nodes = rng.choice(candidate_nodes, size=max_nodes, replace=False)

        influences = np.zeros(candidate_nodes.shape[0])
        for position, node in enumerate(candidate_nodes):
            train_mask = np.ones(self.graph.n_nodes, dtype=bool)
            train_mask[int(node)] = False
            model = self.model_factory()
            model.fit(self.graph, train_mask=train_mask)
            influences[position] = base_bias - abs(model.soft_statistical_parity(self.graph))
        return NodeInfluenceResult(
            node_ids=candidate_nodes, influences=influences, base_bias=base_bias
        )


# --------------------------------------------------------------------------
# GNNUERS: bipartite perturbation for recommender unfairness [91]
# --------------------------------------------------------------------------
@dataclass
class GNNUERSResult:
    """Interactions whose removal most reduces the user-group quality gap."""

    removed_edges: list[tuple[int, int]]
    base_gap: float
    final_gap: float
    history: list[dict] = field(default_factory=list)

    @property
    def gap_reduction(self) -> float:
        """Utility-gap reduction achieved by the explanation rewiring."""
        return self.base_gap - self.final_gap


@ExplainerRegistry.register("gnnuers", capabilities=("fairness-explainer", "graph"),
                             modality="graph", model_requirements=("recommend_all",),
                             resource_requirements=("recommender",))
class GNNUERSExplainer:
    """Explain consumer-side unfairness of a graph recommender by edge perturbation.

    The unfairness measure is the NDCG gap between the reference and protected
    *user* groups.  Candidate interactions (edges of the bipartite graph) are
    removed greedily while the gap keeps shrinking; the removed set is the
    counterfactual explanation of the unfairness.
    """

    info = ExplainerInfo(
        stage="post-hoc",
        access="black-box",
        agnostic=True,
        coverage="global",
        explanation_type="example",
        multiplicity="multiple",
    )

    def __init__(self, recommender: RecWalkRecommender, holdout: np.ndarray, *, k: int = 10,
                 max_removals: int = 5, candidate_edges: int = 30, random_state=None) -> None:
        self.recommender = recommender
        self.holdout = np.asarray(holdout, dtype=float)
        self.k = k
        self.max_removals = max_removals
        self.candidate_edges = candidate_edges
        self.random_state = random_state

    def _gap(self, recommender: BaseRecommender, protected_value) -> float:
        recs = recommender.recommend_all(self.k)
        user_groups = recommender.interactions_.user_groups
        return abs(
            user_group_quality_gap(recs, self.holdout, user_groups,
                                   protected_value=protected_value)
        )

    def explain(self, *, protected_value=1) -> GNNUERSResult:
        """Greedily remove the interactions that most reduce the user-group NDCG gap."""
        rng = check_random_state(self.random_state)
        interactions = self.recommender.interactions_
        base_gap = self._gap(self.recommender, protected_value)

        edges = interactions.to_bipartite_edges()
        if len(edges) > self.candidate_edges:
            idx = rng.choice(len(edges), size=self.candidate_edges, replace=False)
            edges = [edges[i] for i in idx]

        removed: list[tuple[int, int]] = []
        current_recommender = self.recommender
        current_gap = base_gap
        history = [{"removed": [], "gap": base_gap}]
        for _ in range(self.max_removals):
            best_edge, best_gap, best_recommender = None, current_gap, None
            for edge in edges:
                if edge in removed:
                    continue
                candidate = current_recommender.refit_without(*edge)
                gap = self._gap(candidate, protected_value)
                if gap < best_gap - 1e-12:
                    best_edge, best_gap, best_recommender = edge, gap, candidate
            if best_edge is None:
                break
            removed.append(best_edge)
            current_recommender = best_recommender
            current_gap = best_gap
            history.append({"removed": list(removed), "gap": current_gap})

        return GNNUERSResult(
            removed_edges=removed, base_gap=base_gap, final_gap=current_gap, history=history
        )


# --------------------------------------------------------------------------
# Fairness-aware KG path re-ranking [44]
# --------------------------------------------------------------------------
@dataclass
class PathRecommendation:
    """A recommended item together with its explanation path through the KG."""

    user: int
    item: int
    score: float
    path: tuple[str, ...]
    item_group: int


@ExplainerRegistry.register(
    "kg_path_rerank",
    info=ExplainerInfo(stage="post-hoc", access="black-box", agnostic=True, coverage="both",
                       explanation_type="example", multiplicity="multiple"),
    capabilities=("fairness-explainer", "graph"),
    modality="graph",
)
def fairness_aware_path_rerank(
    recommendations: list[PathRecommendation],
    *,
    k: int,
    min_protected_share: float = 0.3,
    diversity_weight: float = 0.1,
    protected_value: int = 1,
) -> list[PathRecommendation]:
    """Re-rank path-explained recommendations under a group-exposure constraint.

    Items are greedily selected by score, discounted for explanation-path
    pattern repetition (``diversity_weight``), while guaranteeing at least
    ``min_protected_share`` of every prefix comes from the protected item
    group — the fairness constraint of the KG re-ranking approach.
    """
    remaining = sorted(recommendations, key=lambda r: -r.score)
    result: list[PathRecommendation] = []
    used_patterns: dict[tuple[str, ...], int] = {}
    n_protected = 0
    while remaining and len(result) < k:
        required = int(np.ceil(min_protected_share * (len(result) + 1)))
        pool = remaining
        if n_protected < required:
            protected_pool = [r for r in remaining if r.item_group == protected_value]
            if protected_pool:
                pool = protected_pool

        def adjusted(rec: PathRecommendation) -> float:
            pattern = rec.path[:2] if len(rec.path) >= 2 else rec.path
            return rec.score - diversity_weight * used_patterns.get(pattern, 0)

        best = max(pool, key=adjusted)
        result.append(best)
        remaining.remove(best)
        pattern = best.path[:2] if len(best.path) >= 2 else best.path
        used_patterns[pattern] = used_patterns.get(pattern, 0) + 1
        if best.item_group == protected_value:
            n_protected += 1
    return result
