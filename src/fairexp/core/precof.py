"""PreCoF: Predictive Counterfactual Fairness (Goethals, Martens, Calders [71]).

PreCoF uses counterfactual explanations to *understand the causes* of
unfairness by comparing, per group, the relative frequency with which each
attribute is changed in the counterfactuals of negatively classified members:

* **Explicit bias** — with the sensitive attribute available to the model,
  counterfactuals that change (essentially) only the sensitive attribute
  indicate direct discrimination.
* **Implicit bias** — after removing the sensitive attribute from training,
  attributes whose change frequency differs strongly between the protected
  and reference groups reveal proxies through which disadvantage persists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..exceptions import ValidationError
from ..explanations.base import Counterfactual, ExplainerInfo, ExplainerRegistry
from ..explanations.counterfactual import BaseCounterfactualGenerator
from ..explanations.session import AuditSession
from ..fairness.groups import group_masks

__all__ = ["AttributeChangeProfile", "PreCoFResult", "PreCoFExplainer"]


@dataclass
class AttributeChangeProfile:
    """Per-attribute counterfactual change frequencies for one group."""

    group: int
    n_explained: int
    change_frequency: dict[str, float]
    mean_change_magnitude: dict[str, float] = field(default_factory=dict)

    def top_changed(self, k: int = 3) -> list[tuple[str, float]]:
        """Attributes most frequently changed in this group's counterfactuals."""
        ranked = sorted(self.change_frequency.items(), key=lambda item: -item[1])
        return ranked[:k]


@dataclass
class PreCoFResult:
    """Outcome of a PreCoF analysis.

    Attributes
    ----------
    explicit_bias_rate:
        Fraction of protected-group counterfactuals whose only change is the
        sensitive attribute (only populated when the sensitive attribute was
        available to the model).
    sensitive_change_rate:
        Fraction of protected-group counterfactuals that change the sensitive
        attribute at all.
    protected_profile, reference_profile:
        Attribute change profiles per group.
    frequency_gap:
        Per-attribute difference in change frequency
        (protected minus reference) — large positive values identify the
        attributes the protected group is disproportionately asked to change.
    """

    explicit_bias_rate: float
    sensitive_change_rate: float
    protected_profile: AttributeChangeProfile
    reference_profile: AttributeChangeProfile
    frequency_gap: dict[str, float]
    mode: str  # "explicit" or "implicit"

    def implicit_bias_attributes(self, k: int = 3) -> list[tuple[str, float]]:
        """Attributes with the largest protected-vs-reference change-frequency gap."""
        ranked = sorted(self.frequency_gap.items(), key=lambda item: -item[1])
        return ranked[:k]


@ExplainerRegistry.register("precof", capabilities=("fairness-explainer", "counterfactual-based"))
class PreCoFExplainer:
    """Counterfactual attribute-frequency analysis of group unfairness.

    Parameters
    ----------
    generator:
        Counterfactual generator wrapping the model under audit.  For the
        *explicit* analysis the model should have been trained with the
        sensitive attribute and the generator's constraints should allow
        changing it; for the *implicit* analysis the model should have been
        trained without it (``mode="implicit"``).
    feature_names:
        Column names of the feature matrix handed to :meth:`explain`.
    sensitive_feature:
        Name of the sensitive attribute column (ignored in implicit mode if
        the column is absent).
    session:
        Optional shared :class:`~fairexp.explanations.session.AuditSession`;
        when a burden/NAWB audit of the same population already ran through
        it, PreCoF reuses their counterfactuals instead of generating anew.
    """

    info = ExplainerInfo(
        stage="post-hoc",
        access="black-box",
        agnostic=True,
        coverage="local",
        explanation_type="example",
        multiplicity="multiple",
    )

    def __init__(
        self,
        generator: BaseCounterfactualGenerator | None = None,
        feature_names: Sequence[str] = (),
        sensitive_feature: str = "",
        *,
        mode: str = "explicit",
        session: AuditSession | None = None,
    ) -> None:
        if not feature_names:
            raise ValidationError("PreCoFExplainer requires feature_names")
        if not sensitive_feature:
            raise ValidationError("PreCoFExplainer requires sensitive_feature")
        # Private sessions are refit-safe (see BurdenExplainer); shared ones
        # pin a frozen model and keep results across audits.
        self.session, self._owns_session = AuditSession.ensure(generator, session)
        self.generator = self.session.generator
        self.engine = self.session.engine
        self.feature_names = list(feature_names)
        self.sensitive_feature = sensitive_feature
        self.mode = mode

    def _profile(self, counterfactuals: list[Counterfactual]) -> AttributeChangeProfile:
        change_counts = {name: 0 for name in self.feature_names}
        change_magnitudes = {name: [] for name in self.feature_names}
        n_explained = len(counterfactuals)
        scale = self.generator.scale_
        for counterfactual in counterfactuals:
            delta = counterfactual.delta()
            for j in counterfactual.changed_features:
                name = self.feature_names[j]
                change_counts[name] += 1
                change_magnitudes[name].append(abs(delta[j]) / scale[j])
        frequency = {
            name: (count / n_explained if n_explained else 0.0)
            for name, count in change_counts.items()
        }
        magnitude = {
            name: (float(np.mean(values)) if values else 0.0)
            for name, values in change_magnitudes.items()
        }
        return AttributeChangeProfile(
            group=-1, n_explained=n_explained,
            change_frequency=frequency, mean_change_magnitude=magnitude,
        )

    def explain(self, X, sensitive, *, protected_value=1) -> PreCoFResult:
        """Run the PreCoF analysis on the negatively classified members of each group."""
        X = np.asarray(X, dtype=float)
        sensitive = np.asarray(sensitive)
        if self._owns_session:
            self.session.reset_results()
        predictions = np.asarray(self.session.predict(X))
        negative = predictions == 0
        masks = group_masks(sensitive, protected_value=protected_value)

        protected_idx = np.flatnonzero(masks.protected & negative)
        reference_idx = np.flatnonzero(masks.reference & negative)

        # One engine pass per group (shared through the session, so a burden
        # audit of the same population already paid for these rows); the
        # explicit-bias analysis below reuses the protected group's
        # counterfactuals instead of re-generating them.
        protected_counterfactuals = list(
            self.session.counterfactuals_for(X, protected_idx).values()
        )
        reference_counterfactuals = list(
            self.session.counterfactuals_for(X, reference_idx).values()
        )

        protected_profile = self._profile(protected_counterfactuals)
        protected_profile.group = 1
        reference_profile = self._profile(reference_counterfactuals)
        reference_profile.group = 0

        sensitive_in_features = self.sensitive_feature in self.feature_names
        explicit_bias_rate = 0.0
        sensitive_change_rate = 0.0
        if sensitive_in_features and protected_profile.n_explained:
            sensitive_change_rate = protected_profile.change_frequency[self.sensitive_feature]
            sensitive_index = self.feature_names.index(self.sensitive_feature)
            only_sensitive = sum(
                counterfactual.changed_features == (sensitive_index,)
                for counterfactual in protected_counterfactuals
            )
            explicit_bias_rate = only_sensitive / protected_profile.n_explained

        frequency_gap = {
            name: protected_profile.change_frequency[name]
            - reference_profile.change_frequency[name]
            for name in self.feature_names
        }
        return PreCoFResult(
            explicit_bias_rate=explicit_bias_rate,
            sensitive_change_rate=sensitive_change_rate,
            protected_profile=protected_profile,
            reference_profile=reference_profile,
            frequency_gap=frequency_gap,
            mode=self.mode,
        )
