"""Tests for example-based explanations, predicate mining and influence functions."""

import numpy as np
import pytest

from fairexp.exceptions import ValidationError
from fairexp.explanations import (
    ExampleBasedExplainer,
    InfluenceExplainer,
    Predicate,
    contrastive_example,
    discretize_features,
    frequent_predicate_sets,
    influence_functions_logistic,
    leave_one_out_influence,
    logistic_gradients,
    logistic_hessian,
    nearest_neighbor_explanation,
    select_criticisms,
    select_prototypes,
)
from fairexp.models import LogisticRegression


class TestPrototypesAndNeighbors:
    def test_prototypes_cover_clusters(self, rng):
        cluster_a = rng.normal(-5, 0.3, (40, 2))
        cluster_b = rng.normal(5, 0.3, (40, 2))
        X = np.vstack([cluster_a, cluster_b])
        prototypes = select_prototypes(X, n_prototypes=2)
        chosen = X[list(prototypes.indices)]
        # One prototype per cluster.
        assert (chosen[:, 0] < 0).sum() == 1
        assert (chosen[:, 0] > 0).sum() == 1

    def test_too_many_prototypes_rejected(self, rng):
        with pytest.raises(ValidationError):
            select_prototypes(rng.normal(size=(5, 2)), n_prototypes=10)

    def test_criticisms_differ_from_prototypes(self, rng):
        X = np.vstack([rng.normal(0, 1, (60, 2)), rng.normal(8, 0.1, (3, 2))])
        prototypes = select_prototypes(X, n_prototypes=3)
        criticisms = select_criticisms(X, prototypes, n_criticisms=2)
        assert set(criticisms.indices).isdisjoint(set(prototypes.indices))

    def test_nearest_neighbors_sorted(self, rng):
        X = rng.normal(size=(50, 3))
        explanation = nearest_neighbor_explanation(X[0], X[1:], n_neighbors=5)
        assert len(explanation.indices) == 5
        assert np.all(np.diff(explanation.scores) >= -1e-12)

    def test_neighbor_labels_in_meta(self, rng):
        X = rng.normal(size=(20, 2))
        y = rng.integers(0, 2, 20)
        explanation = nearest_neighbor_explanation(X[0], X, y, n_neighbors=3)
        assert len(explanation.meta["labels"]) == 3

    def test_contrastive_returns_target_class_instance(self, rng):
        X = rng.normal(size=(30, 2))
        predictions = (X[:, 0] > 0).astype(int)
        explanation = contrastive_example(np.array([-3.0, 0.0]), X, predictions, target_class=1)
        assert predictions[explanation.indices[0]] == 1

    def test_contrastive_no_target_class_raises(self, rng):
        X = rng.normal(size=(10, 2))
        with pytest.raises(ValidationError):
            contrastive_example(X[0], X, np.zeros(10), target_class=1)

    def test_facade(self, rng):
        X = rng.normal(size=(40, 2))
        predictions = (X[:, 0] > 0).astype(int)
        facade = ExampleBasedExplainer(X, predictions=predictions)
        assert len(facade.prototypes(3).indices) == 3
        assert len(facade.neighbors(X[0], 4).indices) == 4
        assert facade.contrastive(X[0]).role == "contrastive"


class TestPredicatesAndItemsets:
    def test_discretize_binary_and_numeric(self, rng):
        X = np.column_stack([rng.integers(0, 2, 100), rng.normal(size=100)])
        predicates = discretize_features(X, feature_names=["flag", "value"], n_bins=3)
        flag_predicates = [p for p in predicates if p.name == "flag"]
        value_predicates = [p for p in predicates if p.name == "value"]
        assert len(flag_predicates) == 2
        assert len(value_predicates) == 3

    def test_predicate_mask(self):
        predicate = Predicate(0, "x", 1.0, 3.0)
        X = np.array([[0.5], [1.5], [3.5]])
        assert predicate.mask(X).tolist() == [False, True, False]

    def test_constant_feature_skipped(self):
        X = np.column_stack([np.ones(50), np.arange(50, dtype=float)])
        predicates = discretize_features(X)
        assert all(p.feature != 0 for p in predicates)

    def test_frequent_itemsets_support_threshold(self, rng):
        X = rng.normal(size=(200, 3))
        predicates = discretize_features(X, n_bins=2)
        itemsets = frequent_predicate_sets(X, predicates, min_support=0.3, max_length=2)
        for itemset, mask in itemsets:
            assert mask.mean() >= 0.3
            features = [p.feature for p in itemset]
            assert len(set(features)) == len(features)  # one predicate per feature

    def test_invalid_support(self, rng):
        X = rng.normal(size=(10, 2))
        with pytest.raises(ValidationError):
            frequent_predicate_sets(X, [], min_support=0.0)


class TestInfluence:
    @pytest.fixture(scope="class")
    def fitted(self):
        rng = np.random.default_rng(4)
        X = rng.normal(size=(120, 3))
        y = (X[:, 0] + 0.5 * rng.normal(size=120) > 0).astype(int)
        model = LogisticRegression(n_iter=1500, l2=0.01).fit(X, y)
        return model, X, y

    def test_gradient_shapes(self, fitted):
        model, X, y = fitted
        gradients = logistic_gradients(model, X, y)
        assert gradients.shape == (120, 4)

    def test_hessian_symmetric_positive_definite(self, fitted):
        model, X, _ = fitted
        H = logistic_hessian(model, X)
        assert np.allclose(H, H.T)
        assert np.all(np.linalg.eigvalsh(H) > 0)

    def test_influence_correlates_with_leave_one_out(self, fitted):
        model, X, y = fitted

        def functional(m):
            return float(m.predict_proba(X[:1])[0, 1])

        # Gradient of the functional wrt [coef, intercept] for the test point.
        from fairexp.utils import sigmoid

        p = sigmoid(X[0] @ model.coef_ + model.intercept_)
        functional_gradient = np.concatenate([p * (1 - p) * X[0], [p * (1 - p)]])
        approx = influence_functions_logistic(model, X, y, functional_gradient)

        indices = list(range(0, 40))
        exact = leave_one_out_influence(
            lambda: LogisticRegression(n_iter=1500, l2=0.01), X, y, functional, indices=indices
        )
        correlation = np.corrcoef(approx[indices], exact)[0, 1]
        assert correlation > 0.6

    def test_wrong_gradient_size_rejected(self, fitted):
        model, X, y = fitted
        with pytest.raises(ValidationError):
            influence_functions_logistic(model, X, y, np.ones(2))

    def test_explainer_returns_topk(self, fitted):
        model, X, y = fitted
        explainer = InfluenceExplainer(model, X, y)
        explanation = explainer.explain(X[5], y[5], top_k=4)
        assert len(explanation.indices) == 4
        assert explanation.role == "influential"

    def test_explainer_rejects_non_logistic(self, fitted):
        _, X, y = fitted
        from fairexp.models import GaussianNaiveBayes

        with pytest.raises(ValidationError):
            InfluenceExplainer(GaussianNaiveBayes().fit(X, y), X, y)
