"""Auditing and explaining bias in graph node classification.

Generates a homophilous two-block graph whose topology transmits group
disadvantage, trains a GCN, and explains the resulting disparity with the
structural-bias edge sets of Dong et al. [89] and the training-node influence
estimates of Dong et al. [90]; finally verifies that removing the explained
edges reduces the bias more than removing random edges.

Run with:  python examples/graph_bias_audit.py
"""

import numpy as np

from fairexp.core import NodeInfluenceExplainer, StructuralBiasExplainer
from fairexp.graphs import GCNClassifier, make_biased_sbm


def main() -> None:
    graph = make_biased_sbm(160, p_within=0.08, p_between=0.01, label_bias=1.0, random_state=0)
    print(f"graph: {graph.n_nodes} nodes, {len(graph.edges())} edges, "
          f"homophily {graph.homophily():.2f}")

    gcn = GCNClassifier(n_epochs=200, random_state=0).fit(graph)
    print(f"GCN accuracy {gcn.accuracy(graph):.3f}, "
          f"statistical parity {gcn.statistical_parity(graph):+.3f}, "
          f"soft parity {gcn.soft_statistical_parity(graph):+.3f}\n")

    print("== Structural bias edge sets (per-node explanation)")
    explainer = StructuralBiasExplainer(gcn, graph, max_edges=15, top_k=4)
    node = int(np.flatnonzero(graph.groups == 1)[0])
    explanation = explainer.explain_node(node)
    print(f"   node {node}: {len(explanation.bias_edges)} bias edges, "
          f"{len(explanation.fair_edges)} fair edges")
    print(f"   |soft parity| {explanation.base_bias:.4f} -> "
          f"{explanation.bias_after_removal:.4f} after removing the bias edges\n")

    print("== Global debiasing edge set vs random edges")
    bias_edges = explainer.explain_global(n_nodes=8, random_state=0)
    rng = np.random.default_rng(0)
    random_edges = [graph.edges()[i] for i in
                    rng.choice(len(graph.edges()), size=max(len(bias_edges), 1), replace=False)]
    explained = abs(gcn.soft_statistical_parity(graph.remove_edges(bias_edges)))
    random_removal = abs(gcn.soft_statistical_parity(graph.remove_edges(random_edges)))
    base = abs(gcn.soft_statistical_parity(graph))
    print(f"   base {base:.4f} | explained edges removed {explained:.4f} | "
          f"random edges removed {random_removal:.4f}\n")

    print("== Training-node influence on bias")
    influence = NodeInfluenceExplainer(lambda: GCNClassifier(n_epochs=80, random_state=0),
                                       graph).explain(max_nodes=10, random_state=0)
    for node_id, value in influence.most_bias_inducing(3):
        print(f"   node {node_id:3d} influence on |bias|: {value:+.4f} "
              f"(group={graph.groups[node_id]}, label={graph.labels[node_id]})")


if __name__ == "__main__":
    main()
