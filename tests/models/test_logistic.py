"""Tests for fairexp.models.logistic."""

import numpy as np
import pytest

from fairexp.exceptions import NotFittedError, ValidationError
from fairexp.models import LogisticRegression


def make_separable(rng, n=300, gap=3.0):
    X0 = rng.normal(-gap / 2, 1.0, (n // 2, 2))
    X1 = rng.normal(gap / 2, 1.0, (n // 2, 2))
    X = np.vstack([X0, X1])
    y = np.array([0] * (n // 2) + [1] * (n // 2))
    return X, y


class TestFit:
    def test_separable_data_high_accuracy(self, rng):
        X, y = make_separable(rng)
        model = LogisticRegression(n_iter=800).fit(X, y)
        assert model.score(X, y) > 0.95

    def test_raw_scale_features_still_learn(self, rng):
        # Features with wildly different scales (e.g. credit score vs ratio).
        X, y = make_separable(rng)
        X_scaled = X * np.array([1000.0, 0.001])
        model = LogisticRegression(n_iter=800).fit(X_scaled, y)
        assert model.score(X_scaled, y) > 0.9

    def test_nonbinary_labels_rejected(self, rng):
        X = rng.normal(size=(30, 2))
        with pytest.raises(ValidationError):
            LogisticRegression().fit(X, np.arange(30))

    def test_sample_weight_changes_decision(self, rng):
        X, y = make_separable(rng, gap=0.5)
        heavy_on_positive = np.where(y == 1, 10.0, 1.0)
        base = LogisticRegression(n_iter=500).fit(X, y)
        weighted = LogisticRegression(n_iter=500).fit(X, y, sample_weight=heavy_on_positive)
        assert weighted.predict(X).mean() > base.predict(X).mean()

    def test_wrong_weight_shape_raises(self, rng):
        X, y = make_separable(rng)
        with pytest.raises(ValidationError):
            LogisticRegression().fit(X, y, sample_weight=np.ones(3))

    def test_reproducible(self, rng):
        X, y = make_separable(rng)
        a = LogisticRegression(random_state=3, n_iter=200).fit(X, y)
        b = LogisticRegression(random_state=3, n_iter=200).fit(X, y)
        assert np.allclose(a.coef_, b.coef_)


class TestPredict:
    def test_predict_proba_rows_sum_to_one(self, rng):
        X, y = make_separable(rng)
        model = LogisticRegression(n_iter=300).fit(X, y)
        proba = model.predict_proba(X)
        assert proba.shape == (X.shape[0], 2)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert np.all((proba >= 0) & (proba <= 1))

    def test_predict_consistent_with_decision_function(self, rng):
        X, y = make_separable(rng)
        model = LogisticRegression(n_iter=300).fit(X, y)
        assert np.array_equal(model.predict(X), (model.decision_function(X) >= 0).astype(int))

    def test_not_fitted_raises(self):
        with pytest.raises(NotFittedError):
            LogisticRegression().predict(np.ones((2, 2)))

    def test_clone_is_unfitted_copy(self, rng):
        X, y = make_separable(rng)
        model = LogisticRegression(l2=0.5, n_iter=100).fit(X, y)
        clone = model.clone()
        assert clone.l2 == 0.5
        with pytest.raises(NotFittedError):
            clone.predict(X)


class TestGradientsAndBoundary:
    def test_gradient_input_shape_and_direction(self, rng):
        X, y = make_separable(rng)
        model = LogisticRegression(n_iter=500).fit(X, y)
        gradients = model.gradient_input(X[:5])
        assert gradients.shape == (5, 2)
        # Probability gradient points along the coefficient direction.
        assert np.all(np.sign(gradients) == np.sign(model.coef_))

    def test_gradient_matches_finite_difference(self, rng):
        X, y = make_separable(rng)
        model = LogisticRegression(n_iter=500).fit(X, y)
        x = X[0].copy()
        analytic = model.gradient_input(x[None, :])[0]
        numeric = np.zeros_like(x)
        eps = 1e-5
        for j in range(x.shape[0]):
            x_hi, x_lo = x.copy(), x.copy()
            x_hi[j] += eps
            x_lo[j] -= eps
            numeric[j] = (
                model.predict_proba(x_hi[None, :])[0, 1]
                - model.predict_proba(x_lo[None, :])[0, 1]
            ) / (2 * eps)
        assert np.allclose(analytic, numeric, atol=1e-5)

    def test_distance_to_boundary_sign_matches_prediction(self, rng):
        X, y = make_separable(rng)
        model = LogisticRegression(n_iter=500).fit(X, y)
        distances = model.distance_to_boundary(X)
        assert np.array_equal(distances >= 0, model.predict(X) == 1)

    def test_distance_is_euclidean_to_hyperplane(self, rng):
        X, y = make_separable(rng)
        model = LogisticRegression(n_iter=500).fit(X, y)
        x = X[0]
        distance = model.distance_to_boundary(x[None, :])[0]
        # Moving the point by -distance along the unit normal lands on the boundary.
        normal = model.coef_ / np.linalg.norm(model.coef_)
        on_boundary = x - distance * normal
        assert abs(model.decision_function(on_boundary[None, :])[0]) < 1e-8

    def test_l2_shrinks_coefficients(self, rng):
        X, y = make_separable(rng)
        free = LogisticRegression(n_iter=800, l2=0.0).fit(X, y)
        shrunk = LogisticRegression(n_iter=800, l2=5.0).fit(X, y)
        assert np.linalg.norm(shrunk.coef_) < np.linalg.norm(free.coef_)
