"""TAB1: regenerate Table I and verify the paper's summary observations."""

from conftest import record

from fairexp.experiments import run_table1


def test_table1_regeneration(benchmark):
    results = record(benchmark, benchmark(run_table1), experiment="TAB1")
    # All 21 surveyed rows (plus the actionable-recourse foundation) implemented.
    assert results["n_rows"] >= 21
    assert results["n_implemented"] == results["n_rows"]
    # Paper's Section V observations about the table:
    # post-processing dominates, most methods are black-box and model-agnostic,
    # CFEs are the prevalent technique, group fairness is the main focus.
    assert results["share_post_hoc"] == 1.0
    assert results["share_black_box"] > 0.8
    assert results["share_model_agnostic"] > 0.8
    assert results["share_cfe"] >= 0.4
    assert results["share_group_level"] > 0.8
    assert "[77]" in results["rendered"]
