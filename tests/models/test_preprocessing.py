"""Tests for fairexp.models.preprocessing."""

import numpy as np
import pytest

from fairexp.exceptions import NotFittedError, ValidationError
from fairexp.models import (
    LabelEncoder,
    MinMaxScaler,
    OneHotEncoder,
    StandardScaler,
    train_test_split,
)


class TestStandardScaler:
    def test_zero_mean_unit_variance(self, rng):
        X = rng.normal(5.0, 3.0, (200, 4))
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(Z.std(axis=0), 1.0, atol=1e-9)

    def test_inverse_transform_roundtrip(self, rng):
        X = rng.normal(2.0, 7.0, (50, 3))
        scaler = StandardScaler().fit(X)
        assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X)

    def test_constant_column_does_not_divide_by_zero(self):
        X = np.column_stack([np.ones(10), np.arange(10, dtype=float)])
        Z = StandardScaler().fit_transform(X)
        assert np.all(np.isfinite(Z))
        assert np.allclose(Z[:, 0], 0.0)

    def test_transform_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform(np.ones((3, 2)))


class TestMinMaxScaler:
    def test_range_is_zero_one(self, rng):
        X = rng.normal(0, 10, (100, 3))
        Z = MinMaxScaler().fit_transform(X)
        assert Z.min() >= -1e-12
        assert Z.max() <= 1 + 1e-12

    def test_inverse_transform_roundtrip(self, rng):
        X = rng.normal(0, 10, (30, 2))
        scaler = MinMaxScaler().fit(X)
        assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            MinMaxScaler().transform(np.ones((2, 2)))


class TestLabelEncoder:
    def test_roundtrip(self):
        y = np.array(["b", "a", "c", "a"])
        encoder = LabelEncoder().fit(y)
        codes = encoder.transform(y)
        assert codes.tolist() == [1, 0, 2, 0]
        assert encoder.inverse_transform(codes).tolist() == y.tolist()

    def test_unknown_label_raises(self):
        encoder = LabelEncoder().fit(["a", "b"])
        with pytest.raises(ValidationError):
            encoder.transform(["c"])

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            LabelEncoder().transform(["a"])


class TestOneHotEncoder:
    def test_shape_and_values(self):
        X = np.array([[0, 2], [1, 3], [0, 3]])
        encoded = OneHotEncoder().fit_transform(X)
        assert encoded.shape == (3, 4)
        assert np.allclose(encoded.sum(axis=1), 2.0)

    def test_feature_names(self):
        X = np.array([[0, 5], [1, 6]])
        encoder = OneHotEncoder().fit(X)
        names = encoder.feature_names(["a", "b"])
        assert names == ["a=0", "a=1", "b=5", "b=6"]

    def test_dimension_mismatch_raises(self):
        encoder = OneHotEncoder().fit(np.array([[0], [1]]))
        with pytest.raises(ValidationError):
            encoder.transform(np.array([[0, 1]]))

    def test_requires_2d(self):
        with pytest.raises(ValidationError):
            OneHotEncoder().fit(np.array([1, 2, 3]))


class TestTrainTestSplit:
    def test_sizes(self, rng):
        X = rng.normal(size=(100, 3))
        y = rng.integers(0, 2, 100)
        X_train, X_test, y_train, y_test = train_test_split(X, y, test_size=0.25, random_state=0)
        assert X_test.shape[0] == 25
        assert X_train.shape[0] == 75
        assert y_train.shape[0] + y_test.shape[0] == 100

    def test_no_overlap_and_full_coverage(self, rng):
        X = np.arange(60, dtype=float).reshape(-1, 1)
        (X_train, X_test) = train_test_split(X, test_size=0.3, random_state=1)
        combined = np.sort(np.concatenate([X_train.ravel(), X_test.ravel()]))
        assert np.array_equal(combined, X.ravel())

    def test_stratified_preserves_class_balance(self, rng):
        y = np.array([0] * 80 + [1] * 20)
        X = rng.normal(size=(100, 2))
        _, _, y_train, y_test = train_test_split(X, y, test_size=0.25, random_state=0, stratify=y)
        assert abs(y_test.mean() - 0.2) < 0.05
        assert abs(y_train.mean() - 0.2) < 0.05

    def test_invalid_test_size(self):
        with pytest.raises(ValidationError):
            train_test_split(np.ones((10, 1)), test_size=1.5)

    def test_inconsistent_lengths(self):
        with pytest.raises(ValidationError):
            train_test_split(np.ones((10, 1)), np.ones(5))

    def test_reproducible_with_seed(self, rng):
        X = rng.normal(size=(50, 2))
        a_train, a_test = train_test_split(X, random_state=7)
        b_train, b_test = train_test_split(X, random_state=7)
        assert np.array_equal(a_test, b_test)
