"""Sweep orchestration benchmarks: plan scaling + cold/warm execution.

Two trajectory points feed ``BENCH_SWEEP.json``:

* ``SWEEP/plan`` — planning the full registered design space (every spec's
  cross product, pruned through the registry compatibility checks) stays
  cheap: it builds no workloads, so its cost is pure combinatorics.
* ``SWEEP`` — a small E1/E2 sub-design executed cold into a persistent
  store, then resumed: the resumed pass must replay every cell at **zero
  engine predict calls** (the acceptance criterion of the resume path),
  and both sweeps' accounting lands in the trajectory so the warm/cold
  wall-time ratio is tracked over time.
"""

from conftest import record

from fairexp.sweep import SweepRegistry, run_sweep, sweep_plan

SELECTION = {
    "where": {"explainer": ["growing_spheres", "random_search"],
              "schedule": ["geometric"],
              "backend": ["numpy"], "kernels": ["default"]},
    "overrides": {"n_samples": 300, "audit_size": 24},
}


def test_plan_full_design_space(benchmark):
    plan = benchmark.pedantic(sweep_plan, rounds=3, iterations=1)
    summary = plan.summary()
    # Exhaustive partition over every registered spec's cross product.
    assert summary["raw_cells"] == sum(
        spec.raw_size() for spec in SweepRegistry.specs()
    )
    assert summary["emitted_cells"] + summary["pruned_cells"] == summary["raw_cells"]
    assert summary["emitted_cells"] >= len(SweepRegistry.ids())
    assert all(cell.reasons for cell in plan.pruned)
    record(benchmark, {"n_experiments": len(SweepRegistry.ids()), **summary},
           experiment="SWEEP/plan")


def test_cold_then_warm_sweep(benchmark, tmp_path):
    store = tmp_path / "store"
    cold = run_sweep(["E1/E2"], store=store, **SELECTION)
    assert cold.summary()["engine_predict_calls"] > 0

    warm = benchmark.pedantic(
        lambda: run_sweep(["E1/E2"], store=store, resume=True, **SELECTION),
        rounds=1, iterations=1,
    )
    warm_summary = warm.summary()
    assert warm_summary["replayed_cells"] == len(warm.cells) == 2
    assert warm_summary["diverged_cells"] == 0
    assert warm_summary["engine_predict_calls"] == 0  # fully store-served
    assert warm_summary["store_row_hits"] > 0

    record(benchmark, {
        "cold_wall_time_seconds": cold.wall_time_seconds,
        "warm_wall_time_seconds": warm.wall_time_seconds,
        "cold_engine_predict_calls": cold.summary()["engine_predict_calls"],
        "warm_engine_predict_calls": warm_summary["engine_predict_calls"],
        "warm_store_row_hits": warm_summary["store_row_hits"],
        "emitted_cells": len(warm.cells),
    }, experiment="SWEEP")
