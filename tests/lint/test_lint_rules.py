"""Per-rule fixture tests: positive, negative, noqa and baseline paths.

The positive fixtures are distilled copies of the *pre-fix* code this PR
cleaned up (the ad-hoc executors in ``engine.py``/``kernels.py``, the
inline retry sleep in ``serving.py``, the swallowing ``__del__`` in
``pool.py``, the unfingerprinted engine/session kwargs) — deleting any
one of the committed fixes would reintroduce exactly these shapes, and
this module proves the linter would catch each one.
"""

import textwrap

from fairexp.lint import Baseline, LintEngine, lint_source


def codes(source, path="src/fairexp/explanations/mod.py"):
    """The sorted rule codes found in ``source`` linted as ``path``."""
    return sorted({f.rule for f in lint_source(textwrap.dedent(source), path=path)})


# --------------------------------------------------------------- FX001
# Pre-fix copy: CounterfactualEngine's thread-shard fallback constructed
# its executor inline instead of going through ExecutorPool.
PRE_FIX_ENGINE_THREAD_FALLBACK = """
    from concurrent.futures import ThreadPoolExecutor

    def generate_sharded(run_shard, shards):
        with ThreadPoolExecutor(max_workers=len(shards)) as pool:
            return list(pool.map(run_shard, shards))
"""

PRE_FIX_ENGINE_PROCESS_FALLBACK = """
    from concurrent.futures import ProcessPoolExecutor

    def run_shards(specs, shard_X):
        with ProcessPoolExecutor(max_workers=len(specs)) as pool:
            return list(pool.map(run, specs, shard_X))
"""


class TestFX001Executors:
    def test_pre_fix_engine_thread_fallback_flagged(self):
        assert codes(PRE_FIX_ENGINE_THREAD_FALLBACK,
                     path="src/fairexp/explanations/engine.py") == ["FX001"]

    def test_pre_fix_engine_process_fallback_flagged(self):
        assert codes(PRE_FIX_ENGINE_PROCESS_FALLBACK,
                     path="src/fairexp/explanations/engine.py") == ["FX001"]

    def test_multiprocessing_pool_flagged(self):
        assert codes("""
            import multiprocessing

            def fan_out(fn, items):
                with multiprocessing.Pool(4) as pool:
                    return pool.map(fn, items)
        """) == ["FX001"]

    def test_multiprocessing_pool_import_flagged(self):
        assert codes("from multiprocessing import Pool\n") == ["FX001"]

    def test_pool_module_itself_exempt(self):
        assert codes("""
            from concurrent.futures import ThreadPoolExecutor

            def make(workers):
                return ThreadPoolExecutor(max_workers=workers)
        """, path="src/fairexp/explanations/pool.py") == []

    def test_executor_pool_usage_clean(self):
        assert codes("""
            from fairexp.explanations.pool import ExecutorPool

            def generate_sharded(run_shard, shards):
                with ExecutorPool(max_workers=len(shards)) as pool:
                    return pool.map("thread", run_shard, shards)
        """) == []

    def test_tests_exempt(self):
        assert codes(PRE_FIX_ENGINE_THREAD_FALLBACK,
                     path="tests/explanations/test_engine.py") == []


# --------------------------------------------------------------- FX002
class TestFX002Randomness:
    def test_legacy_call_flagged(self):
        assert codes("""
            import numpy as np

            def sample(n):
                return np.random.rand(n)
        """) == ["FX002"]

    def test_legacy_seed_flagged(self):
        assert codes("""
            import numpy as np

            def seed_everything():
                np.random.seed(0)
        """) == ["FX002"]

    def test_module_level_generator_flagged(self):
        assert codes("""
            import numpy as np

            _RNG = np.random.default_rng(0)
        """) == ["FX002"]

    def test_legacy_import_flagged(self):
        assert codes("from numpy.random import rand\n") == ["FX002"]

    def test_injected_generator_clean(self):
        assert codes("""
            import numpy as np

            def sample(n, random_state):
                rng = np.random.default_rng(random_state)
                return rng.random(n)
        """) == []


# --------------------------------------------------------------- FX003
class TestFX003MutableDefaults:
    def test_list_default_flagged(self):
        assert codes("def collect(items=[]):\n    return items\n") == ["FX003"]

    def test_dict_kwonly_default_flagged(self):
        assert codes("def render(*, style={}):\n    return style\n") == ["FX003"]

    def test_factory_call_default_flagged(self):
        assert codes("def collect(items=list()):\n    return items\n") == ["FX003"]

    def test_none_default_clean(self):
        assert codes("""
            def collect(items=None):
                return [] if items is None else items
        """) == []

    def test_immutable_defaults_clean(self):
        assert codes("def f(a=1, b=(), c='x', d=frozenset()):\n    return a\n") == []


# --------------------------------------------------------------- FX004
# Pre-fix copy: ExecutorPool.__del__ swallowed shutdown errors with no
# justifying noqa.
PRE_FIX_POOL_DEL = """
    class ExecutorPool:
        def __del__(self):
            try:
                self.shutdown(wait=False)
            except Exception:
                pass
"""


class TestFX004SwallowedExcept:
    def test_pre_fix_pool_del_flagged(self):
        assert codes(PRE_FIX_POOL_DEL,
                     path="src/fairexp/explanations/pool.py") == ["FX004"]

    def test_bare_except_flagged(self):
        assert codes("""
            def load(path):
                try:
                    return open(path).read()
                except:
                    return None
        """) == ["FX004"]

    def test_bare_except_with_reraise_clean(self):
        assert codes("""
            def load(path):
                try:
                    return open(path).read()
                except:
                    cleanup()
                    raise
        """) == []

    def test_quiet_fallback_clean(self):
        # The numba-probe shape from kernels.py: a broad except that
        # RETURNS a fallback is a deliberate degradation path, not a
        # swallow.
        assert codes("""
            def numba_version():
                try:
                    import numba
                except Exception:
                    return None
                return numba.__version__
        """) == []

    def test_narrow_except_pass_clean(self):
        assert codes("""
            def close_quietly(sock):
                try:
                    sock.close()
                except OSError:
                    pass
        """) == []


# --------------------------------------------------------------- FX005
class TestFX005CounterLocks:
    UNLOCKED = """
        import threading

        class Backend:
            def __init__(self):
                self.call_count = 0
                self._lock = threading.Lock()

            def predict(self, X):
                self.call_count += 1
                return X
    """

    def test_unlocked_mutation_flagged(self):
        assert codes(self.UNLOCKED) == ["FX005"]

    def test_locked_mutation_clean(self):
        assert codes("""
            import threading

            class Backend:
                def __init__(self):
                    self.call_count = 0
                    self._lock = threading.Lock()

                def predict(self, X):
                    with self._lock:
                        self.call_count += 1
                    return X
        """) == []

    def test_locked_suffix_method_whitelisted(self):
        assert codes("""
            import threading

            class Server:
                def __init__(self):
                    self.shed_count = 0
                    self._lock = threading.Lock()

                def _shed_locked(self, n):
                    self.shed_count += n
        """) == []

    def test_lock_holding_methods_declaration_whitelisted(self):
        assert codes("""
            import threading

            class Server:
                LOCK_HOLDING_METHODS = ("drain",)

                def __init__(self):
                    self.shed_count = 0
                    self._lock = threading.Lock()

                def drain(self, n):
                    self.shed_count += n
        """) == []

    def test_lock_free_class_out_of_scope(self):
        # AuditSession shape: documented single-threaded, owns no lock —
        # the static rule leaves it to the dynamic sanitizer.
        assert codes("""
            class Session:
                def __init__(self):
                    self.result_reuse_count = 0

                def reuse(self):
                    self.result_reuse_count += 1
        """) == []

    def test_condition_counts_as_lock(self):
        assert codes("""
            import threading

            class Client:
                def __init__(self):
                    self.wire_call_count = 0
                    self._cond = threading.Condition()

                def book(self):
                    with self._cond:
                        self.wire_call_count += 1
        """) == []


# --------------------------------------------------------------- FX006
# The acceptance-criterion fixture: a generator kwarg that alters the
# search but is never stored, so generator_config cannot fingerprint it.
UNFINGERPRINTED_GENERATOR_KWARG = """
    class DriftingCounterfactualGenerator(BaseCounterfactualGenerator):
        def __init__(self, model, background, *, drift=0.5, random_state=None):
            super().__init__(model, background, random_state=random_state)
            self._step = drift * 2  # drift is consumed, never stored
"""

# Pre-fix copies: the engine/session constructors before this PR's
# FINGERPRINT_INVARIANT declarations.
PRE_FIX_ENGINE_INIT = """
    class CounterfactualEngine:
        def __init__(self, generator, *, adapt_model=True, n_jobs=1,
                     executor="auto", pool=None, kernels=None):
            if kernels is not None:
                generator.kernels = kernels
            self.generator = generator
            self.n_jobs = n_jobs
            self.executor = executor
            self.pool = pool
"""


class TestFX006FingerprintCoverage:
    def test_unfingerprinted_generator_kwarg_flagged(self):
        findings = lint_source(textwrap.dedent(UNFINGERPRINTED_GENERATOR_KWARG),
                               path="src/fairexp/explanations/custom.py")
        assert [f.rule for f in findings] == ["FX006"]
        assert "'drift'" in findings[0].message

    def test_pre_fix_engine_init_flagged(self):
        findings = lint_source(textwrap.dedent(PRE_FIX_ENGINE_INIT),
                               path="src/fairexp/explanations/engine.py")
        flagged = sorted(f.message.split("'")[1] for f in findings)
        assert flagged == ["adapt_model", "kernels"]

    def test_fingerprint_invariant_declaration_clean(self):
        assert codes("""
            class DriftingCounterfactualGenerator(BaseCounterfactualGenerator):
                FINGERPRINT_INVARIANT = ("verbose",)

                def __init__(self, model, background, *, verbose=False,
                             random_state=None):
                    super().__init__(model, background, random_state=random_state)
        """) == []

    def test_stored_params_clean(self):
        assert codes("""
            class StoredCounterfactualGenerator(BaseCounterfactualGenerator):
                def __init__(self, model, background, *, step=0.5,
                             random_state=None):
                    super().__init__(model, background, random_state=random_state)
                    self.step = step
        """) == []

    def test_param_stored_by_helper_method_counts(self):
        assert codes("""
            class LazyCounterfactualGenerator(BaseCounterfactualGenerator):
                def __init__(self, model, background, *, step=0.5):
                    self._finish(step)

                def _finish(self, step):
                    self.step = step
        """) == []

    def test_unrelated_class_out_of_scope(self):
        assert codes("""
            class Widget:
                def __init__(self, *, flourish=True):
                    pass
        """) == []


# --------------------------------------------------------------- FX007
# Pre-fix copy: CoalescingScoringClient._flush slept inline in its retry
# loop instead of through a named backoff helper.
PRE_FIX_FLUSH_SLEEP = """
    import time

    class Client:
        def _flush(self, batch):
            attempt = 0
            while True:
                try:
                    return self._wire_call(batch)
                except ShedError as shed:
                    delay = min(shed.retry_after * (2.0 ** attempt), 1.0)
                    time.sleep(delay)
                    attempt += 1
"""


class TestFX007Sleep:
    def test_pre_fix_flush_sleep_flagged(self):
        assert codes(PRE_FIX_FLUSH_SLEEP,
                     path="src/fairexp/explanations/serving.py") == ["FX007"]

    def test_backoff_helper_clean(self):
        assert codes("""
            import time

            def _retry_backoff_sleep(delay):
                time.sleep(delay)
        """) == []

    def test_poll_helper_clean(self):
        assert codes("""
            import time

            def poll_until_ready(check):
                while not check():
                    time.sleep(0.01)
        """) == []

    def test_nested_inside_pacing_helper_clean(self):
        assert codes("""
            import time

            def wait_for(check):
                def tick():
                    time.sleep(0.01)
                while not check():
                    tick()
        """) == []


# --------------------------------------------------------------- FX008
class TestFX008ProcessEnv:
    def test_subprocess_import_flagged(self):
        assert codes("import subprocess\n") == ["FX008"]

    def test_environ_write_flagged(self):
        assert codes("""
            import os

            def configure(tier):
                os.environ["FAIREXP_KERNELS"] = tier
        """) == ["FX008"]

    def test_environ_mutator_call_flagged(self):
        assert codes("""
            import os

            def configure(tier):
                os.environ.setdefault("FAIREXP_KERNELS", tier)
        """) == ["FX008"]

    def test_environ_read_clean(self):
        assert codes("""
            import os

            def kernel_request():
                return os.environ.get("FAIREXP_KERNELS", "auto")
        """) == []

    def test_cli_module_exempt(self):
        assert codes("import subprocess\n", path="src/fairexp/cli.py") == []

    def test_benchmarks_exempt(self):
        assert codes("import subprocess\n",
                     path="benchmarks/serving_workload.py") == []


# ------------------------------------------------------- noqa + baseline
class TestSuppression:
    def test_noqa_with_rule_suppresses(self):
        engine = LintEngine()
        findings, suppressed = engine.lint_source(
            "import time\n\n\ndef tick():\n"
            "    time.sleep(0.1)  # fairexp: noqa[FX007] cadence is the contract\n",
            path="src/fairexp/mod.py")
        assert findings == [] and suppressed == 1

    def test_bare_noqa_suppresses_all_rules(self):
        findings = lint_source(
            "def collect(items=[]):  # fairexp: noqa\n    return items\n",
            path="src/fairexp/mod.py")
        assert findings == []

    def test_noqa_for_other_rule_does_not_suppress(self):
        findings = lint_source(
            "def collect(items=[]):  # fairexp: noqa[FX007]\n    return items\n",
            path="src/fairexp/mod.py")
        assert [f.rule for f in findings] == ["FX003"]

    def test_baseline_grandfathers_exact_counts(self):
        source = textwrap.dedent("""
            def a(xs=[]):
                return xs
        """)
        findings = lint_source(source, path="src/fairexp/mod.py")
        baseline = Baseline.from_findings(findings)
        assert baseline.fresh(findings) == []
        # A SECOND occurrence of the same message is beyond the baseline.
        doubled = lint_source(source + textwrap.dedent("""
            def b(ys=[]):
                return ys
        """), path="src/fairexp/mod.py")
        fresh = baseline.fresh(doubled)
        assert [f.rule for f in fresh] == ["FX003"]
        assert fresh[0].message != findings[0].message

    def test_baseline_roundtrip(self, tmp_path):
        findings = lint_source("def a(xs=[]):\n    return xs\n",
                               path="src/fairexp/mod.py")
        path = tmp_path / "baseline.json"
        Baseline.from_findings(findings).save(path)
        loaded = Baseline.load(path)
        assert loaded.fresh(findings) == []
        assert len(loaded) == 1

    def test_missing_baseline_is_empty(self, tmp_path):
        baseline = Baseline.load(tmp_path / "absent.json")
        assert len(baseline) == 0

    def test_syntax_error_reported_as_fx000(self):
        findings = lint_source("def broken(:\n", path="src/fairexp/mod.py")
        assert [f.rule for f in findings] == ["FX000"]
