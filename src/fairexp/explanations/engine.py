"""Batched counterfactual engine.

The per-instance counterfactual searches behind the paper's headline
quantities (burden [72], NAWB [73], PreCoF [71], the recourse-gap audits and
GLOBE-CE) are the hot path of the library: a naive audit issues dozens of
tiny ``model.predict`` calls per explained individual.  This module provides
the two pieces that coalesce that work into large vectorized predict batches:

* :class:`BatchModelAdapter` — wraps any classifier, counts and (optionally)
  caches ``predict`` calls so benchmarks can track the predict-call
  trajectory, not just wall time.  Dispatch itself lives behind the
  :class:`~fairexp.explanations.backends.PredictBackend` protocol
  (vectorized NumPy by default; ONNX / remote backends slot in behind the
  same counting interface);
* :class:`CounterfactualEngine` — drives a generator's cross-instance
  ``generate_batch_aligned`` kernel — optionally sharded across a worker
  pool (``n_jobs``) with bitwise-identical merged results — and maps results
  back onto caller indices, which is what the core fairness explainers
  (:class:`~fairexp.core.burden.BurdenExplainer` and friends) build on.

One layer up, :class:`~fairexp.explanations.session.AuditSession` owns one
adapter + engine pair and shares each population's counterfactual matrix
across every audit that requests it (session → engine → backend).

With an integer ``random_state`` the engine path reproduces the sequential
per-instance path exactly: every instance consumes its own freshly seeded
random stream in the same order the sequential search would, and only the
model evaluations are batched across instances.  For the sampling-based
generators the results are bitwise-identical; for gradient ascent they agree
up to the floating-point associativity of the backing BLAS (single-row vs.
batched mat-vec products can differ in the last ulp, which a long gradient
trajectory amplifies to ~1e-13).
"""

from __future__ import annotations

import inspect
import os
import pickle
from typing import Callable

import numpy as np

from ..exceptions import ValidationError
from .backends import (
    CallablePredictBackend,
    MemoizingPredictBackend,
    NumpyPredictBackend,
    ensure_backend,
)
from .base import Counterfactual
from .kernels import resolve_kernels
from .pool import ExecutorPool
from .schedules import GeometricSchedule, SearchSchedule

__all__ = [
    "BatchModelAdapter",
    "CounterfactualEngine",
    "effective_backend",
    "generator_config",
    "generator_config_is_faithful",
    "greedy_sparsify_batch",
    "lockstep_candidate_search",
    "shard_indices",
]


class BatchModelAdapter:
    """Counting / caching proxy around a classifier's prediction interface.

    Predict dispatch is delegated to a :class:`~fairexp.explanations.backends.PredictBackend`
    stack: a :class:`~fairexp.explanations.backends.NumpyPredictBackend` by
    default, optionally wrapped in a
    :class:`~fairexp.explanations.backends.MemoizingPredictBackend` when
    ``cache=True``.  The adapter itself only re-exports the backend's
    counters under their historical names and forwards every non-``predict``
    attribute to the wrapped model, so it stays a drop-in replacement for the
    model everywhere an audit expects one.

    Parameters
    ----------
    model:
        Any object exposing ``predict`` (and optionally ``predict_proba`` /
        ``gradient_input``).  May be omitted when ``backend`` is given.
    backend:
        An explicit :class:`~fairexp.explanations.backends.PredictBackend`
        (e.g. a :class:`~fairexp.explanations.backends.CallablePredictBackend`
        over an ONNX session or remote service).  Defaults to the vectorized
        NumPy backend over ``model``.
    cache:
        When ``True``, the backend is wrapped in a memoizing backend so
        repeated ``predict`` calls on an identical matrix are served from a
        memo.  Cache hits do not count as predict calls.
    max_cache_rows:
        Matrices with more rows than this are never cached (hashing huge
        candidate batches would cost more than the predict it saves).
    max_cache_entries:
        The memo is cleared once it holds this many entries.

    Attributes
    ----------
    predict_call_count:
        Number of ``predict`` invocations forwarded to the backend —
        the quantity the benchmarks record in ``benchmark.extra_info``.
    predict_row_count:
        Total number of rows across forwarded ``predict`` calls.
    cache_hit_count:
        Number of ``predict`` requests served from the memo.
    """

    def __init__(self, model=None, *, backend=None, cache: bool = True,
                 max_cache_rows: int = 2048, max_cache_entries: int = 256) -> None:
        if backend is None:
            if model is None:
                raise ValidationError("BatchModelAdapter needs a model or a backend")
            backend = NumpyPredictBackend(model)
        else:
            backend = ensure_backend(backend)
            if model is None:
                model = getattr(backend, "model", None)
        if cache and not isinstance(backend, MemoizingPredictBackend):
            backend = MemoizingPredictBackend(backend, max_rows=max_cache_rows,
                                              max_entries=max_cache_entries)
        self.model = model
        self.backend = backend

    @property
    def cache(self) -> bool:
        """Whether predictions are memoized — derived from the backend stack,
        so it cannot drift from what ``predict`` actually does (swap the
        backend to change it)."""
        return isinstance(self.backend, MemoizingPredictBackend)

    # ------------------------------------------------------------- interface
    def predict(self, X) -> np.ndarray:
        """Labels for ``X`` through the counting (and optionally memoizing)
        backend stack."""
        return self.backend.predict(X)

    def __getattr__(self, name):
        # Forward everything else (predict_proba, gradient_input, score,
        # coef_, distance_to_boundary, ...) so the adapter is a drop-in
        # replacement for the wrapped model.  Forwarding instead of defining
        # the optional methods keeps ``hasattr``-based capability checks
        # (e.g. GradientCounterfactual requiring ``gradient_input``) honest.
        if name in ("model", "backend"):
            raise AttributeError(name)
        model = self.model
        if model is None:
            raise AttributeError(name)
        return getattr(model, name)

    # ------------------------------------------------------------ accounting
    @property
    def predict_call_count(self) -> int:
        """Number of predict invocations forwarded to the backend."""
        return self.backend.call_count

    @property
    def predict_row_count(self) -> int:
        """Total rows across forwarded predict calls."""
        return self.backend.row_count

    @property
    def cache_hit_count(self) -> int:
        """Predict requests served from the backend's memo (0 without one)."""
        return getattr(self.backend, "cache_hit_count", 0)

    def clear_memo(self) -> None:
        """Drop memoized predictions (no-op without a memoizing backend)."""
        clear = getattr(self.backend, "clear_memo", None)
        if clear is not None:
            clear()

    def reset_counts(self) -> None:
        """Zero the backend's counters (and drop its memo, if any)."""
        self.backend.reset_counts()


def greedy_sparsify_batch(generator, X_rows: np.ndarray, candidates: np.ndarray,
                          kernels=None) -> np.ndarray:
    """Batched greedy sparsification, exactly equivalent to the sequential loop.

    The sequential ``_sparsify`` walks a candidate's changed features in order
    of increasing scaled magnitude and reverts each one whose revert keeps the
    target class — one single-row ``model.predict`` per feature.  This kernel
    keeps the *identical* greedy semantics while batching the model work:
    each round speculatively evaluates, for every active instance, the whole
    chain of cumulative prefix reverts in ONE stacked predict call.  As long
    as reverts are accepted the greedy trial at step ``j`` equals the ``j``-th
    prefix trial, so the first rejected revert in the prefix chain pins down
    the greedy state exactly; the chain is then rebuilt from the remaining
    features.  Predict calls drop from (#changed features) per instance to
    (#rejected reverts + 1) rounds shared by the whole batch.

    The greedy order and the trial chains run on the
    :mod:`~fairexp.explanations.kernels` dispatch layer: ranking is computed
    for the whole batch at once, and each instance's prefix chain is written
    directly into the round's stacked trial matrix — one allocation per
    round instead of one ``trial.copy()`` per feature per instance.
    ``kernels`` overrides the generator's kernel choice for this call.
    """
    kernel_set = resolve_kernels(
        kernels if kernels is not None else getattr(generator, "kernels", None)
    )
    X_rows = np.atleast_2d(np.asarray(X_rows, dtype=float))
    candidates = np.atleast_2d(np.asarray(candidates, dtype=float)).copy()
    n_rows = candidates.shape[0]
    n_features = candidates.shape[1] if candidates.ndim == 2 else 0

    # Greedy order per instance, fixed once from the initial candidate (this is
    # what the sequential implementation does as well).
    orders: list[list[int]] = [
        [int(j) for j in ranked]
        for ranked in kernel_set.rank_changed_features(X_rows, candidates,
                                                       generator.scale_)
    ]

    active = [k for k in range(n_rows) if orders[k]]
    while active:
        spans = [(k, len(orders[k])) for k in active]
        trials = np.empty((sum(length for _, length in spans), n_features))
        offset = 0
        for k, length in spans:
            kernel_set.build_prefix_revert_trials(
                candidates[k], X_rows[k], orders[k],
                out=trials[offset:offset + length],
            )
            offset += length
        predictions = generator._predict(trials)

        offset = 0
        next_active: list[int] = []
        for k, length in spans:
            block = predictions[offset:offset + length]
            offset += length
            order = orders[k]
            failures = np.flatnonzero(block != generator.target_class)
            accepted = order if failures.size == 0 else order[: int(failures[0])]
            for column in accepted:
                candidates[k, column] = X_rows[k, column]
            orders[k] = [] if failures.size == 0 else order[int(failures[0]) + 1:]
            if orders[k]:
                next_active.append(k)
        active = next_active
    return candidates


def lockstep_candidate_search(
    generator,
    X: np.ndarray,
    draw: Callable[[np.random.Generator, np.ndarray, int], np.ndarray],
    n_steps: int,
    schedule: SearchSchedule | None = None,
) -> list[Counterfactual | None]:
    """Cross-instance rejection-sampling search over a pluggable rung schedule.

    All instances advance through the radius/shell ladder in lockstep: one
    step draws each still-pending instance's candidate matrix at the rung
    its :class:`~fairexp.explanations.schedules.SearchSchedule` cursor
    planned (from its OWN freshly seeded random stream), projects the
    resulting ``(n_pending, n_candidates, d)`` tensor through the
    actionability constraints in one shot, and issues a single
    ``model.predict`` over all candidates of all pending instances — instead
    of ``n_instances × n_steps`` separate predicts.  The cursor observes
    every probe's hit count and decides which rung each instance tries next
    (or that it is finished); each finished instance keeps its
    minimum-distance hit across every rung it probed.

    With the default :class:`~fairexp.explanations.schedules.GeometricSchedule`
    every instance walks rung 0, 1, 2, … and stops at its first hit, which
    reproduces the historical fixed widening bitwise-exactly.  The step and
    candidate-draw totals of the pass are folded into the generator's
    ``search_step_count`` / ``search_draw_count`` accounting.
    """
    from ..utils import check_random_state

    if schedule is None:
        schedule = getattr(generator, "schedule", None) or GeometricSchedule()
    kernel_set = resolve_kernels(getattr(generator, "kernels", None))
    X = np.atleast_2d(np.asarray(X, dtype=float))
    n_instances, n_features = X.shape
    rngs = [check_random_state(generator.random_state) for _ in range(n_instances)]
    pending = list(range(n_instances))
    best: dict[int, tuple[float, np.ndarray]] = {}  # (distance, candidate)
    cursor = schedule.begin(n_steps)
    steps_taken = 0
    draws_issued = 0
    # Hard backstop against a buggy custom cursor that never finishes its
    # instances: the built-in schedules need at most n_steps waves
    # (geometric) / n_steps + 1 probes per instance (adaptive bisection —
    # every probe strictly shrinks the bracket), so 2 * n_steps + 2 waves
    # can only be exceeded by a cursor that stopped making progress.  The
    # pre-schedule kernel was structurally capped at n_steps iterations;
    # exceeding the bound degrades to "unsolved", never to a hung audit.
    max_waves = 2 * max(int(n_steps), 1) + 2

    while pending and steps_taken < max_waves:
        plan = cursor.plan(pending)
        if not plan:
            break
        rows = list(plan)
        candidates = np.stack([draw(rngs[i], X[i], plan[i]) for i in rows])
        projected = generator.constraints.project(X[rows][:, None, :], candidates,
                                                  kernels=kernel_set)
        predictions = generator._predict(
            projected.reshape(-1, n_features)
        ).reshape(len(rows), -1)
        steps_taken += 1
        draws_issued += int(candidates.shape[0] * candidates.shape[1])

        # ONE batched distance call over every hit of the wave (row-major
        # nonzero keeps each instance's hits contiguous), instead of a
        # Python list comprehension per instance per hit.
        hit_rows, hit_columns = np.nonzero(predictions == generator.target_class)
        if hit_rows.size:
            wave_rows = np.asarray(rows, dtype=int)
            wave_distances = kernel_set.batch_counterfactual_distance(
                X[wave_rows[hit_rows]], projected[hit_rows, hit_columns],
                scale=generator.scale_, metric=generator.metric,
            )
        bounds = np.searchsorted(hit_rows, np.arange(len(rows) + 1))
        for k, i in enumerate(rows):
            hits = hit_columns[bounds[k]:bounds[k + 1]]
            if hits.size:
                distances = wave_distances[bounds[k]:bounds[k + 1]]
                pick = int(np.argmin(distances))
                if i not in best or float(distances[pick]) < best[i][0]:
                    best[i] = (float(distances[pick]), projected[k, hits[pick]])
            cursor.observe(i, plan[i], int(hits.size), int(predictions.shape[1]))
        pending = [i for i in pending if i not in cursor.finished]

    record = getattr(generator, "add_search_counts", None)
    if record is not None:
        record(steps_taken, draws_issued)
    results: list[Counterfactual | None] = [None] * n_instances
    solved = sorted(best)
    if solved:
        sparse = greedy_sparsify_batch(generator, X[solved],
                                       np.stack([best[i][1] for i in solved]))
        for i, result in zip(solved, generator._make_results_batch(X[solved], sparse)):
            results[i] = result
    return results


def shard_indices(n_items: int, n_shards: int) -> list[np.ndarray]:
    """Deterministic contiguous shards of ``range(n_items)``.

    ``np.array_split`` semantics (shard sizes differ by at most one), with
    empty shards dropped.  The split depends only on ``(n_items, n_shards)``
    so a sharded run is reproducible, and because every lockstep kernel
    seeds each instance's random stream independently, per-shard results are
    bitwise-identical to the unsharded pass.
    """
    n_shards = max(1, min(int(n_shards), int(n_items))) if n_items else 1
    return [shard for shard in np.array_split(np.arange(n_items), n_shards) if shard.size]


def _iter_init_parameters(generator):
    """Named ``__init__`` parameters across the generator's MRO (deduped)."""
    seen: set[str] = set()
    for klass in type(generator).__mro__:
        init = klass.__dict__.get("__init__")
        if init is None:
            continue
        for name, parameter in inspect.signature(init).parameters.items():
            # "kernels" is excluded on purpose: the exact kernel sets are
            # bitwise-equal, so that choice must never reach generator_config
            # — a store fingerprint that varied between numpy and numba would
            # needlessly split identical populations across cache entries.
            # The tolerance-bound turbo tier is the one exception, injected
            # by generator_config as a "kernel_tier" entry (not an __init__
            # parameter) precisely because its outputs may differ.
            if name in ("self", "model", "background", "kernels") or name in seen:
                continue
            if parameter.kind in (inspect.Parameter.VAR_POSITIONAL,
                                  inspect.Parameter.VAR_KEYWORD):
                continue
            seen.add(name)
            yield name


def generator_config(generator) -> dict:
    """Constructor parameters of a counterfactual generator, by introspection.

    Walks the generator class's MRO collecting every named ``__init__``
    parameter (skipping ``self`` / ``model`` / ``background`` and var-args)
    and reads the attribute of the same name off the instance — the
    generators all store their constructor arguments verbatim.  The mapping
    is what the process-sharded executor ships to workers to rebuild the
    generator, and what the persistent store folds into a population
    fingerprint (so changing any search parameter busts the cache).

    Callers that need a *faithful* reconstruction must first check
    :func:`generator_config_is_faithful`: a generator storing a constructor
    argument under a different attribute name (or not at all) yields a
    config with that parameter missing, which would rebuild with the default
    and fingerprint two different configurations identically.

    The *exact* kernel choice (numpy/numba) is deliberately invisible here
    — those sets are bitwise-equal, so fingerprints must not split on them.
    When the generator resolves to the opt-in ``turbo`` tier, whose outputs
    are only tolerance-bound, the config gains a ``"kernel_tier"`` entry
    carrying the set's fingerprint token so turbo-computed populations
    never alias exact ones in the store (shard-spec builders strip it
    before rebuilding — it is not a constructor parameter).
    """
    config = {
        name: getattr(generator, name)
        for name in _iter_init_parameters(generator)
        if hasattr(generator, name)
    }
    kernel_set = resolve_kernels(getattr(generator, "kernels", None))
    if kernel_set.fingerprint_token is not None:
        config["kernel_tier"] = kernel_set.fingerprint_token
    return config


def generator_config_is_faithful(generator) -> bool:
    """Whether every ``__init__`` parameter is recoverable off the instance.

    ``False`` means :func:`generator_config` is lossy for this class — the
    process executor then falls back to thread-sharding (workers could not
    rebuild the generator exactly) and the persistent store skips the
    population (the fingerprint could not see the missing parameter).
    """
    return all(hasattr(generator, name) for name in _iter_init_parameters(generator))


def effective_backend(model):
    """The backend actually evaluating predict misses for ``model``.

    Unwraps the :class:`BatchModelAdapter` and any memoizing layer; ``None``
    for a bare (unadapted) model, whose predict is called directly.
    """
    if not isinstance(model, BatchModelAdapter):
        return None
    backend = model.backend
    if isinstance(backend, MemoizingPredictBackend):
        backend = backend.inner
    return backend


def _process_shard_spec(generator) -> dict | None:
    """Picklable recipe rebuilding ``generator`` inside a worker process.

    The recipe preserves the *effective predict dispatch*, not just the
    model object: a generator driven through a
    :class:`~fairexp.explanations.backends.CallablePredictBackend` (ONNX
    export, remote scorer) ships the callable, so workers score candidates
    against the same decision boundary the sequential pass would — never
    silently against the bare model's.

    Returns ``None`` when no faithful recipe exists — an unrecognized
    third-party backend, a closure that refuses to pickle, a shared random
    stream — in which case the engine falls back to thread-sharding against
    the shared backend rather than risking a divergent (or failed) audit.
    """
    if not generator_config_is_faithful(generator):
        return None  # a lossy rebuild would silently diverge; stay on threads
    model = generator.model
    backend = effective_backend(model)
    if isinstance(model, BatchModelAdapter):
        model = model.model
    params = generator_config(generator)
    # "kernel_tier" is fingerprint metadata, not a constructor parameter —
    # the tier itself travels via the "kernels" name below.
    params.pop("kernel_tier", None)
    spec = {
        "cls": type(generator),
        "model": model,
        "fn": None,
        "fn_name": None,
        "background": np.asarray(generator.background, dtype=float),
        "params": params,
        # Workers must run the same kernel path the parent resolved (a
        # worker whose environment lacks numba still falls back gracefully:
        # exact tiers stay bitwise-identical, a turbo request resolves to
        # the threaded turbo fallback).  The resolved NAME is shipped —
        # compiled kernel sets themselves don't pickle.
        "kernels": resolve_kernels(getattr(generator, "kernels", None)).name,
    }
    if backend is None or type(backend) is NumpyPredictBackend:
        if model is None:
            return None
    elif (type(backend) is CallablePredictBackend
          or getattr(backend, "ships_fn_to_workers", False)):
        # Plain callable backends ship their fn; serving backends opt in
        # explicitly — OnnxExportBackend ships its (picklable, model-free)
        # compute graph, while RemoteScoringBackend declines (its coalescing
        # client's locks and sockets cannot cross a process boundary).
        spec["fn"] = backend.fn
        spec["fn_name"] = backend.name
    else:
        return None  # unknown dispatch semantics: keep the shared backend
    if isinstance(spec["params"].get("random_state"), np.random.Generator):
        return None  # one shared stream cannot be split across processes
    try:
        pickle.dumps(spec)
    except Exception:
        return None
    return spec


def _run_process_shard(spec: dict, X_shard: np.ndarray
                       ) -> tuple[list[Counterfactual | None], int, int, int, int]:
    """Worker entry point: rebuild the generator, run one shard, report counts.

    The worker wraps the rebuilt dispatch (bare model, or the shipped
    callable backend) in a fresh counting adapter so the parent can fold the
    shard's predict work back into its own backend
    (:meth:`~fairexp.explanations.backends.NumpyPredictBackend.add_counts`);
    the shard's schedule step/draw totals ride along the same way.  Because
    every instance seeds its own random stream from the same integer seed,
    the shard's results are bitwise-identical to the rows it would produce
    inside the sequential pass.
    """
    if spec["fn"] is not None:
        backend = CallablePredictBackend(spec["fn"], name=spec["fn_name"] or "callable")
        adapter = BatchModelAdapter(spec["model"], backend=backend, cache=False)
    else:
        adapter = BatchModelAdapter(spec["model"], cache=False)
    generator = spec["cls"](adapter, spec["background"], **spec["params"])
    # Set as an attribute (not a constructor argument) so third-party
    # generator classes without a ``kernels`` parameter still rebuild.
    generator.kernels = spec.get("kernels")
    results = generator.generate_batch_aligned(X_shard)
    return (results, adapter.predict_call_count, adapter.predict_row_count,
            generator.search_step_count, generator.search_draw_count)


class CounterfactualEngine:
    """Batched front-end over a counterfactual generator.

    Parameters
    ----------
    generator:
        Any :class:`~fairexp.explanations.counterfactual.BaseCounterfactualGenerator`.
    adapt_model:
        When ``True`` (the default) the generator's model is wrapped in a
        :class:`BatchModelAdapter` so every predict issued through the engine
        is counted; an already-wrapped model is left alone, letting several
        explainers share one adapter's counters.  The automatic wrap disables
        the adapter's memo: a cached adapter would keep serving stale labels
        if the underlying model were refit in place between audits.  Callers
        who know their model is frozen can pre-wrap with
        ``BatchModelAdapter(model, cache=True)`` themselves.
    n_jobs:
        Number of workers :meth:`generate_aligned` splits its
        work-list across.  ``1`` (the default) runs the single lockstep
        batch; ``-1`` uses one worker per CPU.  Shards are deterministic
        (:func:`shard_indices`) and each instance owns its freshly seeded
        random stream, so the merged results are bitwise-identical to
        ``n_jobs=1`` — only the predict batching (and hence the call count)
        changes.  Backends are thread-safe, so shards may share one adapter.
        Generators seeded with a shared ``np.random.Generator`` instance
        always run the sequential pass (one stream cannot be sharded).
    executor:
        How sharded work runs: ``"thread"`` (a thread pool against the
        shared backend — right when predict releases the GIL),
        ``"process"`` (a process pool; each worker rebuilds the generator
        from a picklable shard spec and its predict counts are folded back
        into the parent backend — right when predict holds the GIL), or
        ``"auto"`` (the default: consult the backend's ``releases_gil``
        declaration and pick processes exactly when it is ``False``).
        Process sharding quietly falls back to threads when no picklable
        shard spec exists (no reachable bare model, or unpicklable
        constructor arguments).
    pool:
        An :class:`~fairexp.explanations.pool.ExecutorPool` supplying the
        worker pools sharded passes run on.  With a pool injected the
        engine never constructs a ``ThreadPoolExecutor`` or
        ``ProcessPoolExecutor`` itself — executors are created lazily by
        the pool, once, and reused across every call (this is how an
        :class:`~fairexp.explanations.session.AuditSession` amortizes
        process-pool startup across a whole sweep).  ``None`` (the default)
        keeps the historical per-call pools.  Pooled and per-call execution
        are bitwise-identical — shards are deterministic and instances own
        their random streams.
    kernels:
        Hot-path kernel selection for this generator's searches
        (see :func:`~fairexp.explanations.kernels.resolve_kernels`):
        ``None`` (default) keeps the generator's own choice / the
        ``FAIREXP_KERNELS`` environment variable; ``"auto"`` / ``"numpy"`` /
        ``"numba"`` / ``"turbo"`` (or a resolved
        :class:`~fairexp.explanations.kernels.KernelSet`) is installed on
        the generator so every pass — including process-sharded workers,
        which receive the resolved name in their shard spec — runs the same
        path.  The exact sets are bitwise-equal and never reach store
        fingerprints; the opt-in ``turbo`` tier is tolerance-bound and
        fingerprint-visible (see :func:`generator_config`).
    """

    # Fingerprint-safety declarations for lint rule FX006 (params never
    # stored as engine attributes, each covered elsewhere or neutral):
    # - adapt_model only decides whether a counting BatchModelAdapter wraps
    #   the model; predicted labels are identical either way.
    # - kernels is installed onto the generator in __init__, so
    #   generator_config carries it from there (including the turbo tier's
    #   fingerprint token); the engine itself keeps no kernel state.
    FINGERPRINT_INVARIANT = ("adapt_model", "kernels")

    def __init__(self, generator, *, adapt_model: bool = True, n_jobs: int = 1,
                 executor: str = "auto", pool: ExecutorPool | None = None,
                 kernels=None) -> None:
        if executor not in ("auto", "thread", "process"):
            raise ValidationError(
                f"executor must be 'auto', 'thread' or 'process', got {executor!r}"
            )
        if pool is not None and not isinstance(pool, ExecutorPool):
            raise ValidationError(
                f"pool must be an ExecutorPool or None, got {type(pool).__name__}"
            )
        if kernels is not None:
            resolve_kernels(kernels)  # validate eagerly, before any search
            generator.kernels = kernels
        self.generator = generator
        self.n_jobs = n_jobs
        self.executor = executor
        self.pool = pool
        if adapt_model and not isinstance(generator.model, BatchModelAdapter):
            generator.model = BatchModelAdapter(generator.model, cache=False)

    # ------------------------------------------------------------ properties
    @property
    def adapter(self) -> BatchModelAdapter | None:
        """The generator's counting adapter, if its model is wrapped in one."""
        model = self.generator.model
        return model if isinstance(model, BatchModelAdapter) else None

    @property
    def predict_call_count(self) -> int:
        """Predict calls counted by the generator's adapter (0 without one)."""
        adapter = self.adapter
        return adapter.predict_call_count if adapter is not None else 0

    @property
    def search_step_count(self) -> int:
        """Lockstep schedule steps taken across this generator's passes."""
        return getattr(self.generator, "search_step_count", 0)

    @property
    def search_draw_count(self) -> int:
        """Candidate draws issued across this generator's search passes."""
        return getattr(self.generator, "search_draw_count", 0)

    @property
    def kernel_path(self) -> str:
        """The hot-path kernel set this engine's searches resolve to
        (``"numpy"``, ``"numba"`` or ``"turbo"``), surfaced in session
        stats and the benchmark trajectories."""
        return resolve_kernels(getattr(self.generator, "kernels", None)).name

    # ------------------------------------------------------------ generation
    def _resolve_n_jobs(self, n_rows: int) -> int:
        # A np.random.Generator instance as random_state is ONE shared stream:
        # per-instance draws consume it in sequence, so shards would both race
        # on its (non-thread-safe) internal state and change the draw order.
        # Integer / None seeds give every instance its own stream and shard
        # deterministically; a Generator falls back to the sequential pass.
        if isinstance(getattr(self.generator, "random_state", None), np.random.Generator):
            return 1
        n_jobs = self.n_jobs
        if n_jobs is None:
            n_jobs = 1
        if n_jobs < 0:
            n_jobs = os.cpu_count() or 1
        return max(1, min(int(n_jobs), int(n_rows))) if n_rows else 1

    def _resolve_executor(self) -> str:
        """``"thread"`` or ``"process"`` for this engine's sharded passes."""
        if self.executor != "auto":
            return self.executor
        adapter = self.adapter
        backend = adapter.backend if adapter is not None else None
        releases_gil = getattr(backend, "releases_gil", True)
        return "thread" if releases_gil else "process"

    def generate_aligned(self, X) -> list[Counterfactual | None]:
        """Counterfactuals for every row of ``X`` (``None`` where infeasible).

        With ``n_jobs > 1`` the work-list is split into deterministic shards
        executed on a worker pool — threads against the shared (thread-safe)
        backend, or processes rebuilding the generator from a picklable
        shard spec (see the ``executor`` parameter) — and the aligned
        per-shard results are merged back into caller order.
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        n_jobs = self._resolve_n_jobs(X.shape[0])
        if n_jobs == 1:
            return self.generator.generate_batch_aligned(X)
        shards = shard_indices(X.shape[0], n_jobs)
        if self._resolve_executor() == "process":
            parts = self._run_shards_in_processes(X, shards)
        else:
            parts = None
        if parts is None:
            def run_shard(shard):
                return self.generator.generate_batch_aligned(X[shard])

            if self.pool is not None:
                # Generation-tracked pool pass: a concurrent reset() cannot
                # shut the executor down under this map, and the pool's
                # busy-worker/queue-depth stats see every shard.
                parts = self.pool.map("thread", run_shard, shards)
            else:
                # Ephemeral, engine-owned pool (FX001: executors only come
                # from ExecutorPool); same in-order results + first-error
                # re-raise semantics as a raw executor map.
                with ExecutorPool(max_workers=len(shards)) as pool:
                    parts = pool.map("thread", run_shard, shards)
        results: list[Counterfactual | None] = [None] * X.shape[0]
        for shard, part in zip(shards, parts):
            for i, result in zip(shard, part):
                results[int(i)] = result
        return results

    def _run_shards_in_processes(self, X: np.ndarray, shards: list[np.ndarray]
                                 ) -> list[list[Counterfactual | None]] | None:
        """Run shards on a process pool; ``None`` means fall back to threads.

        Each worker rebuilds the generator from the shard spec, so the
        parent's model object (and its locks) never crosses the process
        boundary; the workers' predict counts are folded back into the
        parent backend so session-wide accounting survives the hop.
        """
        spec = _process_shard_spec(self.generator)
        if spec is None:
            return None
        specs, shard_X = [spec] * len(shards), [X[shard] for shard in shards]
        try:
            if self.pool is not None:
                outcomes = self.pool.map("process", _run_process_shard, specs, shard_X)
            else:
                with ExecutorPool(max_workers=len(shards)) as pool:
                    outcomes = pool.map("process", _run_process_shard, specs, shard_X)
        except Exception:
            # The parent-side pickle check can pass while workers still fail
            # to rebuild the spec — e.g. classes defined in __main__ under
            # the spawn start method, or a broken pool.  Honour the
            # documented quiet-fallback contract instead of crashing an
            # audit that the thread path can serve.  A persistent pool that
            # broke is reset so the NEXT process-sharded call starts clean.
            if self.pool is not None:
                self.pool.reset("process")
            return None
        parts = [outcome[0] for outcome in outcomes]
        adapter = self.adapter
        backend = adapter.backend if adapter is not None else None
        if backend is not None and hasattr(backend, "add_counts"):
            backend.add_counts(sum(o[1] for o in outcomes), sum(o[2] for o in outcomes))
        record = getattr(self.generator, "add_search_counts", None)
        if record is not None:
            record(sum(o[3] for o in outcomes), sum(o[4] for o in outcomes))
        return parts

    def generate_for(self, X, indices) -> dict[int, Counterfactual]:
        """Counterfactuals for ``X[indices]``, keyed by the original row index.

        Rows whose search exhausts its budget are simply absent from the
        result, mirroring the ``try/except InfeasibleRecourseError`` pattern
        the per-instance loops used.

        Duplicate indices are deduped (preserving first-occurrence order,
        exactly as :meth:`AuditSession.counterfactuals_for` does) so a
        repeated index never pays for — or runs — a second search of the
        same row.
        """
        X = np.asarray(X, dtype=float)
        indices = np.asarray(indices, dtype=int)
        if indices.size == 0:
            return {}
        distinct = list(dict.fromkeys(int(i) for i in indices))
        results = self.generate_aligned(X[distinct])
        return {
            i: result for i, result in zip(distinct, results) if result is not None
        }
