"""Rule-based (anchor-style) explanations and frequent-itemset mining.

Two pieces live here:

* :class:`AnchorExplainer` — greedy construction of a conjunctive rule around
  an instance that keeps the model prediction stable with high precision.
* :func:`frequent_predicate_sets` — an Apriori-style miner over discretized
  feature predicates.  It is the workhorse behind the FACTS subgroup
  discovery [77] and the Gopher-style data-based explanations [63, 83] in
  :mod:`fairexp.core`.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Sequence

import numpy as np

from ..exceptions import ValidationError
from ..utils import check_random_state
from .base import ExplainerInfo, RuleExplanation

__all__ = ["Predicate", "discretize_features", "frequent_predicate_sets", "AnchorExplainer"]


@dataclass(frozen=True)
class Predicate:
    """A single condition ``low <= feature < high`` on one (binned) feature.

    ``low``/``high`` may be ``None`` for open-ended intervals.  Predicates are
    hashable so itemsets (frozensets of predicates) can be mined efficiently.
    """

    feature: int
    name: str
    low: float | None
    high: float | None

    def mask(self, X: np.ndarray) -> np.ndarray:
        """Boolean mask of the rows of ``X`` satisfying this predicate."""
        values = X[:, self.feature]
        result = np.ones(X.shape[0], dtype=bool)
        if self.low is not None:
            result &= values >= self.low
        if self.high is not None:
            result &= values < self.high
        return result

    def __str__(self) -> str:
        if self.low is not None and self.high is not None:
            return f"{self.low:.4g} <= {self.name} < {self.high:.4g}"
        if self.low is not None:
            return f"{self.name} >= {self.low:.4g}"
        return f"{self.name} < {self.high:.4g}"


def discretize_features(
    X: np.ndarray,
    *,
    feature_names: Sequence[str] | None = None,
    n_bins: int = 3,
    feature_indices: Sequence[int] | None = None,
) -> list[Predicate]:
    """Build candidate predicates by quantile-binning each feature.

    Binary features produce two equality-style predicates; numeric features
    produce ``n_bins`` interval predicates at quantile boundaries.
    """
    X = np.asarray(X, dtype=float)
    if feature_names is None:
        feature_names = [f"x{j}" for j in range(X.shape[1])]
    if feature_indices is None:
        feature_indices = range(X.shape[1])
    predicates: list[Predicate] = []
    for j in feature_indices:
        values = X[:, j]
        unique = np.unique(values)
        if unique.shape[0] <= 1:
            continue
        if unique.shape[0] == 2:
            midpoint = float(unique.mean())
            predicates.append(Predicate(j, feature_names[j], None, midpoint))
            predicates.append(Predicate(j, feature_names[j], midpoint, None))
            continue
        edges = np.quantile(values, np.linspace(0, 1, n_bins + 1))
        edges = np.unique(edges)
        for b in range(edges.shape[0] - 1):
            low = None if b == 0 else float(edges[b])
            high = None if b == edges.shape[0] - 2 else float(edges[b + 1])
            predicates.append(Predicate(j, feature_names[j], low, high))
    return predicates


def frequent_predicate_sets(
    X: np.ndarray,
    predicates: Sequence[Predicate],
    *,
    min_support: float = 0.05,
    max_length: int = 3,
) -> list[tuple[frozenset[Predicate], np.ndarray]]:
    """Apriori-style mining of frequent predicate conjunctions.

    Returns ``(itemset, coverage_mask)`` pairs for every conjunction of at most
    ``max_length`` predicates (at most one predicate per feature) covering at
    least ``min_support`` of the rows.
    """
    X = np.asarray(X, dtype=float)
    if not 0 < min_support <= 1:
        raise ValidationError("min_support must be in (0, 1]")
    n = X.shape[0]
    masks = {frozenset([p]): p.mask(X) for p in predicates}
    current = {k: v for k, v in masks.items() if v.mean() >= min_support}
    results: list[tuple[frozenset[Predicate], np.ndarray]] = list(current.items())

    for _length in range(2, max_length + 1):
        next_level: dict[frozenset[Predicate], np.ndarray] = {}
        keys = list(current.keys())
        for a, b in combinations(keys, 2):
            candidate = a | b
            if len(candidate) != len(a) + 1:
                continue
            features_used = [p.feature for p in candidate]
            if len(set(features_used)) != len(features_used):
                continue
            if candidate in next_level:
                continue
            mask = current[a] & masks_for(candidate - a, X, masks)
            if mask.sum() / n >= min_support:
                next_level[candidate] = mask
        results.extend(next_level.items())
        if not next_level:
            break
        current = next_level
    return results


def masks_for(predicates: frozenset[Predicate], X: np.ndarray, cache: dict) -> np.ndarray:
    """AND together the masks of a set of predicates (with single-predicate caching)."""
    result = np.ones(X.shape[0], dtype=bool)
    for predicate in predicates:
        key = frozenset([predicate])
        if key not in cache:
            cache[key] = predicate.mask(X)
        result &= cache[key]
    return result


class AnchorExplainer:
    """Greedy anchor-style rule explanation for a single prediction.

    The rule starts empty and greedily adds the predicate (satisfied by the
    explainee) that most increases precision — the fraction of perturbed
    samples covered by the rule that keep the explainee's predicted class —
    until the precision threshold is met.
    """

    info = ExplainerInfo(
        stage="post-hoc",
        access="black-box",
        agnostic=True,
        coverage="local",
        explanation_type="approximation",
        multiplicity="single",
    )

    def __init__(
        self,
        model,
        background: np.ndarray,
        *,
        feature_names: Sequence[str] | None = None,
        precision_threshold: float = 0.9,
        n_bins: int = 4,
        n_samples: int = 500,
        max_conditions: int = 4,
        random_state=None,
    ) -> None:
        self.model = model
        self.background = np.asarray(background, dtype=float)
        self.feature_names = (
            list(feature_names)
            if feature_names is not None
            else [f"x{j}" for j in range(self.background.shape[1])]
        )
        self.precision_threshold = precision_threshold
        self.n_bins = n_bins
        self.n_samples = n_samples
        self.max_conditions = max_conditions
        self.random_state = random_state

    def _perturb(self, rng) -> np.ndarray:
        idx = rng.integers(0, self.background.shape[0], self.n_samples)
        return self.background[idx].copy()

    def explain(self, x: np.ndarray) -> RuleExplanation:
        """An anchor rule holding the model's prediction fixed around ``x``."""
        x = np.asarray(x, dtype=float).ravel()
        rng = check_random_state(self.random_state)
        target = int(np.asarray(self.model.predict(x[None, :]))[0])
        candidates = [
            p for p in discretize_features(
                self.background, feature_names=self.feature_names, n_bins=self.n_bins
            )
            if p.mask(x[None, :])[0]
        ]
        samples = self._perturb(rng)

        chosen: list[Predicate] = []
        chosen_features: set[int] = set()
        current_mask = np.ones(samples.shape[0], dtype=bool)

        def precision(mask: np.ndarray) -> float:
            if not mask.any():
                return 0.0
            constrained = samples.copy()
            for predicate in chosen:
                constrained[:, predicate.feature] = x[predicate.feature]
            predictions = np.asarray(self.model.predict(constrained[mask]))
            return float(np.mean(predictions == target))

        best_precision = precision(current_mask)
        while best_precision < self.precision_threshold and len(chosen) < self.max_conditions:
            best_candidate, best_candidate_precision, best_candidate_mask = None, -1.0, None
            for predicate in candidates:
                if predicate.feature in chosen_features:
                    continue
                mask = current_mask & predicate.mask(samples)
                chosen.append(predicate)
                value = precision(mask)
                chosen.pop()
                if value > best_candidate_precision:
                    best_candidate, best_candidate_precision = predicate, value
                    best_candidate_mask = mask
            if best_candidate is None or best_candidate_precision <= best_precision:
                break
            chosen.append(best_candidate)
            chosen_features.add(best_candidate.feature)
            current_mask = best_candidate_mask
            best_precision = best_candidate_precision

        conditions = {
            predicate.name: (predicate.low, predicate.high) for predicate in chosen
        }
        coverage = float(current_mask.mean())
        return RuleExplanation(
            conditions=conditions,
            prediction=target,
            coverage=coverage,
            precision=float(best_precision),
            meta={"n_conditions": len(chosen)},
        )
