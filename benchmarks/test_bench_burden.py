"""E1 / E2: burden [72] and NAWB [73] expose recourse-cost disparity."""

from conftest import record

from fairexp.experiments import run_e1_e2_burden_nawb


def test_burden_and_nawb_gaps(benchmark):
    results = record(benchmark, benchmark.pedantic(
        run_e1_e2_burden_nawb, kwargs={"n_samples": 600, "audit_size": 80},
        rounds=1, iterations=1,
    ), experiment="E1_E2")
    # Shape claims: the biased model imposes a clearly higher burden on the
    # protected group; on unbiased data the gap is much smaller.  NAWB also
    # reflects the higher false-negative rate of the protected group.
    assert results["burden_gap_biased"] > 0.5
    assert results["burden_ratio_biased"] > 1.5
    assert abs(results["burden_gap_fair"]) < results["burden_gap_biased"] / 2
    assert results["nawb_gap_biased"] > 0.05
    assert results["fnr_gap_biased"] > 0.2
    assert abs(results["nawb_gap_fair"]) < results["nawb_gap_biased"] / 2
    # The batched engine coalesces the whole burden+NAWB audit into a small
    # number of predict batches; the per-workload counts ride along in
    # extra_info so the BENCH_*.json trajectory tracks predict-call reduction.
    assert 0 < results["predict_calls_biased"] < 200
