"""Tests for the graph substrate (generators and the numpy GCN)."""

import numpy as np
import pytest

from fairexp.exceptions import NotFittedError, ValidationError
from fairexp.graphs import AttributedGraph, GCNClassifier, make_biased_sbm, normalized_adjacency


class TestAttributedGraph:
    def test_validation_symmetry(self):
        adjacency = np.array([[0, 1], [0, 0]], dtype=float)
        with pytest.raises(ValidationError):
            AttributedGraph(adjacency=adjacency, features=np.ones((2, 2)),
                            groups=np.array([0, 1]), labels=np.array([0, 1]))

    def test_validation_lengths(self):
        adjacency = np.zeros((3, 3))
        with pytest.raises(ValidationError):
            AttributedGraph(adjacency=adjacency, features=np.ones((2, 2)),
                            groups=np.array([0, 1, 0]), labels=np.array([0, 1, 0]))

    def test_edges_and_degree(self, sbm_graph):
        edges = sbm_graph.edges()
        degrees = sbm_graph.degree()
        assert degrees.sum() == pytest.approx(2 * len(edges))
        assert all(i < j for i, j in edges)

    def test_remove_edges_copy_semantics(self, sbm_graph):
        edges = sbm_graph.edges()[:3]
        reduced = sbm_graph.remove_edges(edges)
        assert len(reduced.edges()) == len(sbm_graph.edges()) - 3
        assert len(sbm_graph.edges()) > 0  # original untouched

    def test_to_networkx(self, sbm_graph):
        graph = sbm_graph.to_networkx()
        assert graph.number_of_nodes() == sbm_graph.n_nodes
        assert graph.nodes[0]["group"] == int(sbm_graph.groups[0])


class TestGenerator:
    def test_homophily_increases_with_p_within(self):
        segregated = make_biased_sbm(150, p_within=0.1, p_between=0.005, random_state=0)
        mixed = make_biased_sbm(150, p_within=0.05, p_between=0.05, random_state=0)
        assert segregated.homophily() > mixed.homophily()

    def test_label_bias_lowers_protected_positive_rate(self):
        graph = make_biased_sbm(400, label_bias=1.5, random_state=0)
        protected_rate = graph.labels[graph.groups == 1].mean()
        reference_rate = graph.labels[graph.groups == 0].mean()
        assert protected_rate < reference_rate

    def test_feature_shift(self):
        graph = make_biased_sbm(400, feature_shift=2.0, random_state=0)
        protected_mean = graph.features[graph.groups == 1, 0].mean()
        reference_mean = graph.features[graph.groups == 0, 0].mean()
        assert protected_mean < reference_mean - 1.0

    def test_reproducible(self):
        a = make_biased_sbm(100, random_state=5)
        b = make_biased_sbm(100, random_state=5)
        assert np.array_equal(a.adjacency, b.adjacency)
        assert np.array_equal(a.labels, b.labels)


class TestGCN:
    def test_normalized_adjacency_rows_bounded(self, sbm_graph):
        a_norm = normalized_adjacency(sbm_graph.adjacency)
        assert np.all(a_norm >= 0)
        assert np.allclose(a_norm, a_norm.T)

    def test_training_reduces_loss(self, sbm_graph):
        model = GCNClassifier(n_epochs=80, random_state=0).fit(sbm_graph)
        assert model.loss_curve_[-1] < model.loss_curve_[0]

    def test_accuracy_better_than_chance(self, sbm_graph, gcn):
        majority = max(sbm_graph.labels.mean(), 1 - sbm_graph.labels.mean())
        assert gcn.accuracy(sbm_graph) >= majority - 0.05

    def test_predictions_binary(self, sbm_graph, gcn):
        predictions = gcn.predict(sbm_graph)
        assert set(np.unique(predictions)) <= {0, 1}
        proba = gcn.predict_proba(sbm_graph)
        assert np.all((proba >= 0) & (proba <= 1))

    def test_biased_graph_yields_negative_parity(self, sbm_graph, gcn):
        assert gcn.statistical_parity(sbm_graph) < -0.1
        assert gcn.soft_statistical_parity(sbm_graph) < -0.1

    def test_train_mask_validation(self, sbm_graph):
        with pytest.raises(ValidationError):
            GCNClassifier(n_epochs=5).fit(sbm_graph, train_mask=np.ones(3, dtype=bool))

    def test_unfitted_raises(self, sbm_graph):
        with pytest.raises(NotFittedError):
            GCNClassifier().predict(sbm_graph)

    def test_accuracy_mask(self, sbm_graph, gcn):
        mask = np.zeros(sbm_graph.n_nodes, dtype=bool)
        mask[:20] = True
        assert 0.0 <= gcn.accuracy(sbm_graph, mask) <= 1.0
