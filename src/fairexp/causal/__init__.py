"""Causal modelling substrate: SCMs, causal graphs and contrastive scores."""

from .graphs import CausalGraph, all_causal_paths, fit_linear_scm_weights, path_effect
from .probabilistic import (
    ContrastiveScores,
    contrastive_scores,
    probability_of_necessity,
    probability_of_necessity_and_sufficiency,
    probability_of_sufficiency,
)
from .scm import StructuralCausalModel, StructuralEquation

__all__ = [
    "StructuralCausalModel",
    "StructuralEquation",
    "CausalGraph",
    "all_causal_paths",
    "fit_linear_scm_weights",
    "path_effect",
    "ContrastiveScores",
    "contrastive_scores",
    "probability_of_necessity",
    "probability_of_sufficiency",
    "probability_of_necessity_and_sufficiency",
]
