"""Tolerance-contract, dispatch and fingerprint tests for the turbo tier.

The exact tiers promise bitwise parity (``test_kernels.py``); the opt-in
``turbo`` tier promises something weaker and documents it: per-kernel
outputs within :data:`~fairexp.explanations.kernels.TURBO_KERNEL_TOLERANCES`
of the exact reference, end-to-end E1 audit metrics within
``TURBO_METRIC_ATOL + TURBO_METRIC_RTOL * |exact|``, and — because the
numbers may differ — a fingerprint-visible tier token so turbo-computed
populations never alias exact ones in the persistent store.  This module
asserts that contract from the kernel level up through sessions, shard
specs, sweep pruning and the store.
"""

import warnings

import numpy as np
import pytest

from fairexp.datasets import make_adult_like, make_loan_dataset, make_scm_loan_dataset
from fairexp.exceptions import ValidationError
from fairexp.explanations import (
    ActionabilityConstraints,
    AuditSession,
    BatchModelAdapter,
    CounterfactualEngine,
    CounterfactualStore,
    GrowingSpheresCounterfactual,
    RandomSearchCounterfactual,
    RemoteScoringBackend,
    active_kernel_info,
    export_model,
    generator_config,
    numba_parallel_supported,
    population_fingerprint,
    resolve_kernels,
)
from fairexp.explanations import kernels as kernels_module
from fairexp.explanations.engine import _process_shard_spec
from fairexp.explanations.kernels import (
    _NUMBA_SET,
    _NUMPY_SET,
    _TURBO_FALLBACK_SET,
    _TURBO_SET,
    TURBO_KERNEL_TOLERANCES,
    TURBO_METRIC_ATOL,
    TURBO_METRIC_RTOL,
    numba_version,
)
from fairexp.experiments import SweepRegistry
from fairexp.models import LogisticRegression
from fairexp.workloads import run_e1_e2_burden_nawb

HAVE_NUMBA = numba_version() is not None
# Resolving the tier once up front also makes numba_parallel_supported()
# definitive for the rest of the module (the probe compile has run).
HAVE_TURBO = bool(kernels_module._turbo_kernels())
needs_turbo = pytest.mark.skipif(
    not HAVE_TURBO, reason="parallel numba (turbo tier) not available")


def _metric_close(turbo_value, exact_value) -> bool:
    """The documented audit-metric bound of the turbo tier."""
    return abs(turbo_value - exact_value) <= (
        TURBO_METRIC_ATOL + TURBO_METRIC_RTOL * abs(exact_value)
    )


def _family_workload(family):
    """Representative (X_rows, candidates, constraints, scale) per E-family."""
    if family in ("E1", "E2", "E4", "E5", "E7", "E8"):
        dataset = make_loan_dataset(300, direct_bias=1.2, recourse_gap=1.0,
                                    random_state=0)
    elif family in ("E3", "E9"):
        dataset = make_adult_like(300, direct_bias=1.2, proxy_bias=0.9,
                                  random_state=0)
    else:  # E6: SCM loan recourse
        dataset, _ = make_scm_loan_dataset(300, random_state=0)
    constraints = ActionabilityConstraints.from_feature_specs(dataset.features)
    rng = np.random.default_rng(sum(map(ord, family)))
    X_rows = dataset.X[rng.permutation(dataset.n_samples)[:40]]
    candidates = X_rows + rng.normal(size=X_rows.shape) * (rng.random(X_rows.shape) < 0.7)
    scale = np.std(dataset.X, axis=0)
    return X_rows, candidates, constraints, scale


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(11)


@pytest.fixture(scope="module")
def loan_workload():
    dataset = make_loan_dataset(400, direct_bias=1.2, recourse_gap=1.0, random_state=0)
    train, test = dataset.split(test_size=0.3, random_state=1)
    model = LogisticRegression(n_iter=800, random_state=0).fit(train.X, train.y)
    rejected = test.X[model.predict(test.X) == 0][:12]
    constraints = ActionabilityConstraints.from_feature_specs(dataset.features)
    return model, train.X, constraints, rejected


# --------------------------------------------------------------------------
# Resolution, precedence, fallback: the tier name always resolves.
# --------------------------------------------------------------------------
class TestTurboDispatch:
    def test_turbo_resolves_to_turbo_named_set(self):
        kernel_set = resolve_kernels("turbo")
        assert kernel_set.name == "turbo"
        assert kernel_set.tier == "turbo"
        assert kernel_set.fingerprint_token is not None
        if HAVE_TURBO:
            assert kernel_set is _TURBO_SET
            assert str(numba_version()) in kernel_set.fingerprint_token
        else:
            assert kernel_set is _TURBO_FALLBACK_SET
            assert kernel_set.fingerprint_token == "turbo:numpy-threaded"

    def test_exact_sets_have_no_fingerprint_token(self):
        for kernel_set in (_NUMPY_SET, _NUMBA_SET):
            assert kernel_set.tier == "exact"
            assert kernel_set.fingerprint_token is None
        # the two turbo sets must never alias each other in a store either
        assert _TURBO_SET.fingerprint_token != _TURBO_FALLBACK_SET.fingerprint_token

    def test_env_var_selects_turbo(self, monkeypatch):
        monkeypatch.setenv("FAIREXP_KERNELS", "turbo")
        assert resolve_kernels(None).name == "turbo"

    def test_explicit_choice_overrides_env(self, monkeypatch):
        monkeypatch.setenv("FAIREXP_KERNELS", "turbo")
        assert resolve_kernels("numpy") is _NUMPY_SET
        monkeypatch.setenv("FAIREXP_KERNELS", "numpy")
        assert resolve_kernels("turbo").name == "turbo"

    def test_auto_never_selects_turbo(self, monkeypatch):
        assert resolve_kernels("auto").tier == "exact"
        monkeypatch.delenv("FAIREXP_KERNELS", raising=False)
        assert resolve_kernels(None).tier == "exact"

    def test_invalid_choice_still_raises(self):
        with pytest.raises(ValidationError, match="kernels must be one of"):
            resolve_kernels("turbo2")

    def test_fallback_warns_once(self, monkeypatch):
        # Simulate turbo-unavailable even where parallel numba exists.
        monkeypatch.setitem(kernels_module._TURBO_STATE, "kernels", False)
        monkeypatch.setattr(kernels_module, "_warned_turbo_fallback", False)
        with pytest.warns(RuntimeWarning, match="falling back"):
            assert resolve_kernels("turbo") is _TURBO_FALLBACK_SET
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_kernels("turbo") is _TURBO_FALLBACK_SET

    def test_active_kernel_info_reports_turbo_tier(self):
        info = active_kernel_info("turbo")
        assert info["kernel_path"] == "turbo"
        assert info["kernel_tier"] == "turbo"
        if HAVE_TURBO:
            assert info["kernel_numba_version"] == numba_version()
        else:
            # threaded-NumPy fallback runs on the reference implementations
            assert info["kernel_numba_version"] == "numpy"

    def test_parallel_support_is_definitive_after_resolve(self):
        # module import resolved the tier, so the probe result is cached
        assert numba_parallel_supported() == HAVE_TURBO


# --------------------------------------------------------------------------
# Per-kernel tolerance contract against the exact reference.
# --------------------------------------------------------------------------
@needs_turbo
@pytest.mark.parametrize("family", [f"E{i}" for i in range(1, 10)])
class TestTurboKernelTolerances:
    def test_distance_within_documented_tolerance(self, family):
        X_rows, candidates, constraints, scale = _family_workload(family)
        tol = TURBO_KERNEL_TOLERANCES["batch_counterfactual_distance"]
        for metric in ("l1", "l2", "l0"):
            exact = _NUMPY_SET.batch_counterfactual_distance(
                X_rows, candidates, scale=scale, metric=metric)
            turbo = _TURBO_SET.batch_counterfactual_distance(
                X_rows, candidates, scale=scale, metric=metric)
            assert np.allclose(turbo, exact, rtol=tol["rtol"], atol=tol["atol"])

    def test_projection_stays_bitwise(self, family):
        X_rows, candidates, constraints, scale = _family_workload(family)
        wave = candidates[:, None, :] + np.linspace(-1, 1, 8)[None, :, None]
        exact = _NUMPY_SET.project_candidates(
            X_rows[:, None, :], wave, immutable=constraints.immutable,
            lower=constraints.lower, upper=constraints.upper,
            monotone=constraints.monotone)
        turbo = _TURBO_SET.project_candidates(
            X_rows[:, None, :], wave, immutable=constraints.immutable,
            lower=constraints.lower, upper=constraints.upper,
            monotone=constraints.monotone)
        assert np.array_equal(turbo, exact)

    def test_prefix_trials_stay_bitwise(self, family):
        X_rows, candidates, constraints, scale = _family_workload(family)
        orders = _NUMPY_SET.rank_changed_features(X_rows, candidates, scale)
        for k, order in enumerate(orders):
            if not len(order):
                continue
            assert np.array_equal(
                _TURBO_SET.build_prefix_revert_trials(candidates[k], X_rows[k], order),
                _NUMPY_SET.build_prefix_revert_trials(candidates[k], X_rows[k], order))

    def test_rank_selects_same_changed_feature_sets(self, family):
        X_rows, candidates, constraints, scale = _family_workload(family)
        exact = _NUMPY_SET.rank_changed_features(X_rows, candidates, scale)
        turbo = _TURBO_SET.rank_changed_features(X_rows, candidates, scale)
        assert len(exact) == len(turbo)
        assert TURBO_KERNEL_TOLERANCES["rank_changed_features"]["set_equal"]
        for a, b in zip(exact, turbo):
            # near-tie magnitudes may legally reorder under fastmath; the
            # changed-feature *set* per row is the contract
            assert set(a.tolist()) == set(b.tolist())


@needs_turbo
class TestTurboKernelSpecifics:
    def test_wide_rows_have_no_feature_cap(self, rng):
        # The exact numba tier defers wide rows to NumPy; turbo compiles them.
        d = kernels_module.NUMBA_MAX_REDUCE_FEATURES + 40
        X = rng.normal(size=(30, d))
        candidates = X + rng.normal(size=(30, d))
        tol = TURBO_KERNEL_TOLERANCES["batch_counterfactual_distance"]
        for metric in ("l1", "l2", "l0"):
            exact = _NUMPY_SET.batch_counterfactual_distance(X, candidates,
                                                             metric=metric)
            turbo = _TURBO_SET.batch_counterfactual_distance(X, candidates,
                                                             metric=metric)
            assert np.allclose(turbo, exact, rtol=tol["rtol"], atol=tol["atol"])

    def test_empty_and_single_row_batches(self, rng):
        empty = np.empty((0, 4))
        assert _TURBO_SET.batch_counterfactual_distance(
            np.zeros(4), empty).shape == (0,)
        x = rng.normal(size=4)
        one = (x + 1.0)[None, :]
        tol = TURBO_KERNEL_TOLERANCES["batch_counterfactual_distance"]
        assert np.allclose(_TURBO_SET.batch_counterfactual_distance(x, one),
                           np.array([4.0]), rtol=tol["rtol"], atol=tol["atol"])

    def test_unknown_metric_raises(self):
        with pytest.raises(ValidationError, match="unknown metric"):
            _TURBO_SET.batch_counterfactual_distance(
                np.zeros((2, 3)), np.ones((2, 3)), metric="linf")


class TestThreadedFallbackParity:
    def test_fallback_distance_is_bitwise_equal_to_numpy(self, rng):
        # Large enough to cross _TURBO_FALLBACK_MIN_ROWS so multicore hosts
        # exercise the chunked thread pool; single-core hosts delegate.
        n = kernels_module._TURBO_FALLBACK_MIN_ROWS + 1500
        X = rng.normal(size=(n, 6))
        candidates = X + rng.normal(size=(n, 6))
        scale = rng.uniform(0.5, 2.0, size=6)
        for metric in ("l1", "l2", "l0"):
            assert np.array_equal(
                _TURBO_FALLBACK_SET.batch_counterfactual_distance(
                    X, candidates, scale=scale, metric=metric),
                _NUMPY_SET.batch_counterfactual_distance(
                    X, candidates, scale=scale, metric=metric))

    def test_fallback_other_kernels_are_the_exact_reference(self):
        assert _TURBO_FALLBACK_SET.project_candidates is _NUMPY_SET.project_candidates
        assert (_TURBO_FALLBACK_SET.build_prefix_revert_trials
                is _NUMPY_SET.build_prefix_revert_trials)
        assert (_TURBO_FALLBACK_SET.rank_changed_features
                is _NUMPY_SET.rank_changed_features)


# --------------------------------------------------------------------------
# End-to-end E1 audit metrics within the documented metric tolerance.
# --------------------------------------------------------------------------
class TestAuditMetricTolerance:
    def test_e1_metrics_within_documented_tolerance(self):
        exact = run_e1_e2_burden_nawb(n_samples=240, audit_size=24,
                                      kernels="numpy")
        turbo = run_e1_e2_burden_nawb(n_samples=240, audit_size=24,
                                      kernels="turbo")
        for label in ("biased", "fair"):
            for metric in ("burden_gap", "burden_ratio", "nawb_gap", "fnr_gap"):
                key = f"{metric}_{label}"
                assert _metric_close(turbo[key], exact[key]), (
                    f"{key}: turbo={turbo[key]} exact={exact[key]} outside "
                    f"atol={TURBO_METRIC_ATOL} rtol={TURBO_METRIC_RTOL}"
                )

    def test_turbo_search_completes_end_to_end(self, loan_workload):
        model, background, constraints, rejected = loan_workload
        generator = GrowingSpheresCounterfactual(
            model, background, constraints=constraints, random_state=0)
        engine = CounterfactualEngine(generator, kernels="turbo")
        results = engine.generate_aligned(rejected)
        assert len(results) == len(rejected)
        exact_results = CounterfactualEngine(
            GrowingSpheresCounterfactual(model, background,
                                         constraints=constraints, random_state=0),
            kernels="numpy",
        ).generate_aligned(rejected)
        hits = sum(r is not None for r in results)
        exact_hits = sum(r is not None for r in exact_results)
        hit_rate, exact_rate = hits / len(rejected), exact_hits / len(rejected)
        assert _metric_close(hit_rate, exact_rate)


# --------------------------------------------------------------------------
# Fingerprint visibility: turbo joins the store key, exact tiers stay out.
# --------------------------------------------------------------------------
class TestFingerprintVisibility:
    def test_generator_config_gains_tier_only_for_turbo(self, loan_workload):
        model, background, _, _ = loan_workload
        for choice in (None, "numpy", "auto", "numba"):
            generator = RandomSearchCounterfactual(model, background, random_state=0)
            if choice is not None:
                generator.kernels = choice
            assert "kernel_tier" not in generator_config(generator)
        turbo_gen = RandomSearchCounterfactual(model, background, random_state=0)
        turbo_gen.kernels = "turbo"
        config = generator_config(turbo_gen)
        assert config["kernel_tier"] == resolve_kernels("turbo").fingerprint_token

    def test_exact_tiers_share_fingerprint_turbo_does_not(self, loan_workload):
        model, background, constraints, rejected = loan_workload
        fingerprints = {}
        for choice in (None, "numpy", "numba", "turbo"):
            generator = GrowingSpheresCounterfactual(
                model, background, constraints=constraints, random_state=0)
            if choice is not None:
                generator.kernels = choice
            fingerprints[choice] = population_fingerprint(generator, rejected)
        assert fingerprints[None] is not None
        # numpy/numba (and the unset default) remain mutually invariant
        assert fingerprints[None] == fingerprints["numpy"] == fingerprints["numba"]
        # turbo never aliases an exact population, but is itself stable
        assert fingerprints["turbo"] is not None
        assert fingerprints["turbo"] != fingerprints[None]
        repeat = GrowingSpheresCounterfactual(
            model, background, constraints=constraints, random_state=0)
        repeat.kernels = "turbo"
        assert population_fingerprint(repeat, rejected) == fingerprints["turbo"]

    def test_sessions_publish_under_distinct_fingerprints(self, tmp_path,
                                                          loan_workload):
        model, background, constraints, rejected = loan_workload

        def run_session(choice):
            generator = GrowingSpheresCounterfactual(
                model, background, constraints=constraints, random_state=0)
            with AuditSession(generator, kernels=choice, store=tmp_path) as session:
                session.counterfactuals_for(rejected, range(len(rejected)))
                assert session.stats()["kernel_path"] == \
                    resolve_kernels(choice).name

        run_session("numpy")
        store = CounterfactualStore(tmp_path)
        exact_entries = set(store.entries())
        assert len(exact_entries) == 1
        run_session("turbo")
        entries = set(CounterfactualStore(tmp_path).entries())
        assert len(entries) == 2  # turbo published beside, not over, exact

    def test_session_memo_tracks_kernel_tier_swap(self, loan_workload):
        model, background, constraints, rejected = loan_workload
        generator = GrowingSpheresCounterfactual(
            model, background, constraints=constraints, random_state=0)
        session = AuditSession(generator)
        exact_fp = session._store_fingerprint("pop", rejected)
        assert exact_fp is not None
        # Re-tiering the live generator must not serve the memoized exact
        # fingerprint for turbo-computed results.
        generator.kernels = "turbo"
        turbo_fp = session._store_fingerprint("pop", rejected)
        assert turbo_fp != exact_fp
        generator.kernels = "numpy"
        assert session._store_fingerprint("pop", rejected) == exact_fp
        session.close()

    def test_shard_spec_ships_tier_name_not_config_token(self, loan_workload):
        model, background, _, _ = loan_workload
        generator = RandomSearchCounterfactual(model, background, random_state=0)
        generator.kernels = "turbo"
        spec = _process_shard_spec(generator)
        assert spec is not None
        assert spec["kernels"] == "turbo"
        # the fingerprint token is store metadata, not a constructor kwarg
        assert "kernel_tier" not in spec["params"]


# --------------------------------------------------------------------------
# Remote-store fingerprints: graph identity instead of endpoint identity.
# --------------------------------------------------------------------------
class TestRemoteBackendFingerprint:
    def test_graph_routed_remote_backend_is_store_addressable(self, loan_workload):
        model, background, constraints, rejected = loan_workload
        graph = export_model(model)

        def fingerprint_at(url):
            backend = RemoteScoringBackend(url, graph=graph)
            adapted = BatchModelAdapter(model, backend=backend, cache=False)
            generator = GrowingSpheresCounterfactual(
                adapted, background, constraints=constraints, random_state=0)
            return population_fingerprint(generator, rejected)

        # same graph behind two (never-contacted) endpoints: same identity
        first = fingerprint_at("http://127.0.0.1:9001")
        second = fingerprint_at("http://127.0.0.1:9002")
        assert first is not None
        assert first == second
        # ...and distinct from the in-process dispatch over the same model
        in_process = population_fingerprint(
            GrowingSpheresCounterfactual(model, background,
                                         constraints=constraints, random_state=0),
            rejected)
        assert first != in_process

    def test_graphless_remote_backend_skips_the_store(self, loan_workload):
        model, background, constraints, rejected = loan_workload
        backend = RemoteScoringBackend("http://127.0.0.1:9003")
        adapted = BatchModelAdapter(model, backend=backend, cache=False)
        generator = GrowingSpheresCounterfactual(
            adapted, background, constraints=constraints, random_state=0)
        assert population_fingerprint(generator, rejected) is None

    def test_different_graphs_key_apart(self, loan_workload):
        model, background, constraints, rejected = loan_workload
        _, train_full, _, _ = loan_workload
        other = LogisticRegression(n_iter=400, random_state=3).fit(
            background, (background[:, 0] > np.median(background[:, 0])).astype(int))

        def fingerprint_for(graph_model):
            backend = RemoteScoringBackend("http://127.0.0.1:9004",
                                           graph=export_model(graph_model))
            adapted = BatchModelAdapter(model, backend=backend, cache=False)
            generator = GrowingSpheresCounterfactual(
                adapted, background, constraints=constraints, random_state=0)
            return population_fingerprint(generator, rejected)

        assert fingerprint_for(model) != fingerprint_for(other)


# --------------------------------------------------------------------------
# Sweep integration: turbo gates on the numba_parallel resource.
# --------------------------------------------------------------------------
class TestSweepTurboLevel:
    WHERE = {"explainer": ["growing_spheres"], "schedule": ["geometric"],
             "backend": ["numpy"], "kernels": ["turbo"]}

    def test_turbo_cell_emits_or_prunes_with_named_reason(self):
        plan = SweepRegistry.get("E1/E2").plan(where=self.WHERE)
        if numba_parallel_supported():
            assert len(plan.emitted) == 1
            assert plan.emitted[0].params()["kernels"] == "turbo"
            assert not plan.pruned
        else:
            assert not plan.emitted
            assert len(plan.pruned) == 1
            reasons = " ".join(plan.pruned[0].reasons)
            assert "kernels=turbo" in reasons
            assert "numba_parallel" in reasons

    def test_exact_levels_unaffected_by_turbo_gating(self):
        where = dict(self.WHERE, kernels=["default", "numpy"])
        plan = SweepRegistry.get("E1/E2").plan(where=where)
        assert {cell.params().get("kernels") for cell in plan.emitted} == {None, "numpy"}
