"""Shared helpers for the benchmark harness.

Every benchmark wraps one experiment runner from :mod:`fairexp.experiments`,
records its headline numbers in ``benchmark.extra_info`` (so they appear in
the pytest-benchmark output next to the timings), and asserts the qualitative
*shape* claims listed in DESIGN.md / EXPERIMENTS.md.

Counterfactual-heavy benchmarks additionally record the number of
``model.predict`` invocations (via
:class:`fairexp.explanations.BatchModelAdapter`), so the BENCH_*.json
trajectory tracks predict-call reduction and not just wall time.
"""

from __future__ import annotations


def record(benchmark, results: dict, *, adapter=None) -> dict:
    """Attach experiment results (minus long renders) to the benchmark record.

    When ``adapter`` (a :class:`~fairexp.explanations.BatchModelAdapter`) is
    given, its predict-call counters are recorded alongside the results.
    """
    for key, value in results.items():
        if key == "rendered":
            continue
        benchmark.extra_info[key] = value
    if adapter is not None:
        benchmark.extra_info["predict_call_count"] = adapter.predict_call_count
        benchmark.extra_info["predict_row_count"] = adapter.predict_row_count
        benchmark.extra_info["predict_cache_hits"] = adapter.cache_hit_count
    return results
