"""Common explanation containers, the explainer taxonomy metadata, and the
explainer registry.

Every explainer in :mod:`fairexp.explanations` and :mod:`fairexp.core`
declares where it sits in the explanation taxonomy of the paper (Figure 2)
through :class:`ExplainerInfo`, and registers itself with
:class:`ExplainerRegistry` under a stable name plus a set of capability
flags.  The Table I / Figure 2 regeneration benches and the experiment
runners discover implemented classes through the registry instead of
hard-coded import lists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

import numpy as np

__all__ = [
    "ExplainerInfo",
    "CompatibilityCheck",
    "RegisteredExplainer",
    "ExplainerRegistry",
    "FeatureAttribution",
    "Counterfactual",
    "RuleExplanation",
    "ExampleExplanation",
]


@dataclass(frozen=True)
class ExplainerInfo:
    """Position of an explanation method in the taxonomy of Figure 2.

    Attributes
    ----------
    stage:
        ``"intrinsic"``, ``"data"`` or ``"post-hoc"``.
    access:
        ``"black-box"``, ``"gradient"`` or ``"white-box"``.
    agnostic:
        Whether the method applies to any model (model-agnostic).
    coverage:
        ``"local"``, ``"global"`` or ``"both"``.
    explanation_type:
        ``"feature"``, ``"example"`` or ``"approximation"``.
    multiplicity:
        ``"single"`` or ``"multiple"``.
    """

    stage: str = "post-hoc"
    access: str = "black-box"
    agnostic: bool = True
    coverage: str = "local"
    explanation_type: str = "feature"
    multiplicity: str = "single"


@dataclass(frozen=True)
class CompatibilityCheck:
    """Outcome of a structured explainer/model/dataset compatibility check.

    Truthiness follows :attr:`compatible`, so entries can be filtered with a
    plain ``if entry.is_compatible(model, dataset):``; :attr:`reasons` lists
    every failed requirement for diagnostics.
    """

    reasons: tuple[str, ...] = ()

    @property
    def compatible(self) -> bool:
        """``True`` when no requirement failed."""
        return not self.reasons

    def __bool__(self) -> bool:
        return self.compatible


@dataclass(frozen=True)
class RegisteredExplainer:
    """One registry entry: an explainer (class or function) plus metadata.

    Attributes
    ----------
    name:
        Stable registry key (e.g. ``"growing_spheres"``, ``"burden"``).
    obj:
        The registered class or callable.
    info:
        Taxonomy position; read from ``obj.info`` when not given explicitly.
    capabilities:
        Free-form flags such as ``"counterfactual-generator"``,
        ``"fairness-explainer"`` or ``"requires-gradient"`` that callers use
        to parameterize over compatible explainers.
    modality:
        Data modality the explainer operates on: ``"tabular"`` (default),
        ``"graph"``, ``"recsys"`` or ``"ranking"``.
    model_requirements:
        Attributes the audited model must expose (``("predict",)`` by
        default; e.g. ``("predict", "gradient_input")`` for gradient-access
        explainers).
    data_requirements:
        What the *dataset* must carry for the explainer to run:
        ``"labels"`` (ground-truth ``y``, e.g. NAWB's false negatives),
        ``"scm"`` (a structural causal model attached to the dataset, e.g.
        the causal-recourse and causal-path explainers), and/or
        ``"feature-specs"`` (per-feature metadata, for explainers built on
        actionability information).  This is how E6/E7-style causal
        workloads auto-select their explainers through
        :meth:`ExplainerRegistry.compatible` instead of hard-coded lists.
    resource_requirements:
        Named *resources* the workload must offer, each checked against the
        model or the dataset by :attr:`_RESOURCE_CHECKS`: ``"gradients"``
        (the model exposes ``gradient_input``), ``"probabilities"`` (the
        model exposes ``predict_proba``), ``"scm"`` (the dataset carries a
        structural causal model) and ``"recommender"`` (the model exposes
        ``recommend_all``).  These extend the attribute-level
        ``model_requirements``/``data_requirements`` with the vocabulary
        the sweep planner (:mod:`fairexp.sweep`) prunes factorial designs
        on — a declared resource prunes a cell with a *named* reason
        instead of a missing-attribute message.
    """

    name: str
    obj: Any
    info: ExplainerInfo | None
    capabilities: frozenset[str]
    modality: str = "tabular"
    model_requirements: tuple[str, ...] = ("predict",)
    data_requirements: tuple[str, ...] = ()
    resource_requirements: tuple[str, ...] = ()

    #: requirement name -> (predicate over the dataset, failure description)
    _DATA_CHECKS = {
        "labels": (
            lambda dataset: getattr(dataset, "y", None) is not None
            and len(getattr(dataset, "y", ())) > 0,
            "dataset lacks ground-truth labels (y)",
        ),
        "scm": (
            lambda dataset: getattr(dataset, "scm", None) is not None,
            "dataset lacks an attached structural causal model (scm)",
        ),
        "feature-specs": (
            lambda dataset: bool(getattr(dataset, "features", None)),
            "dataset lacks per-feature specs (features)",
        ),
    }

    #: resource name -> (checked half: "model"|"dataset", predicate, description)
    _RESOURCE_CHECKS = {
        "gradients": (
            "model",
            lambda model: hasattr(model, "gradient_input"),
            "explainer needs gradients (model lacks gradient_input)",
        ),
        "probabilities": (
            "model",
            lambda model: hasattr(model, "predict_proba"),
            "explainer needs class probabilities (model lacks predict_proba)",
        ),
        "scm": (
            "dataset",
            lambda dataset: getattr(dataset, "scm", None) is not None,
            "explainer needs a structural causal model (dataset lacks scm)",
        ),
        "recommender": (
            "model",
            lambda model: hasattr(model, "recommend_all"),
            "explainer needs a recommender (model lacks recommend_all)",
        ),
    }

    @property
    def path(self) -> str:
        """Dotted path of the registered object relative to ``fairexp``."""
        module = self.obj.__module__
        prefix = "fairexp."
        if module.startswith(prefix):
            module = module[len(prefix):]
        return f"{module}.{self.obj.__qualname__}"

    def is_compatible(self, model=None, dataset=None) -> CompatibilityCheck:
        """Structured check that this explainer applies to ``model``/``dataset``.

        ``model`` is checked against :attr:`model_requirements`; ``dataset``
        against :attr:`modality` (a dataset advertises its modality through a
        ``modality`` attribute, defaulting to ``"tabular"``) and against the
        declared :attr:`data_requirements` (labels / SCM / feature specs).
        :attr:`resource_requirements` check against whichever half each
        resource names.  Either argument may be ``None`` to skip that half
        of the check.
        """
        reasons: list[str] = []
        if model is not None:
            for attr in self.model_requirements:
                if not hasattr(model, attr):
                    reasons.append(f"model lacks required attribute {attr!r}")
        if dataset is not None:
            modality = getattr(dataset, "modality", "tabular")
            if modality != self.modality:
                reasons.append(
                    f"explainer expects {self.modality!r} data, dataset is {modality!r}"
                )
            for requirement in self.data_requirements:
                satisfied, description = self._DATA_CHECKS[requirement]
                if not satisfied(dataset):
                    reasons.append(description)
        for resource in self.resource_requirements:
            scope, satisfied, description = self._RESOURCE_CHECKS[resource]
            subject = model if scope == "model" else dataset
            if subject is not None and not satisfied(subject):
                reasons.append(description)
        return CompatibilityCheck(tuple(reasons))


class ExplainerRegistry:
    """Process-wide registry of explainer implementations.

    Classes register at import time via the :meth:`register` decorator;
    consumers (``fairexp.experiments``, the Table I / Figure 2 renderers,
    the benchmarks) look implementations up by name, capability, or dotted
    path instead of maintaining hard-coded import lists.
    """

    _entries: dict[str, RegisteredExplainer] = {}

    @classmethod
    def register(
        cls,
        name: str,
        *,
        info: ExplainerInfo | None = None,
        capabilities: Sequence[str] = (),
        modality: str = "tabular",
        model_requirements: Sequence[str] | None = None,
        data_requirements: Sequence[str] = (),
        resource_requirements: Sequence[str] = (),
    ) -> Callable:
        """Class/function decorator adding the object to the registry."""
        if model_requirements is None:
            model_requirements = ("predict",)
            if "requires-gradient" in capabilities:
                model_requirements = ("predict", "gradient_input")
        unknown = set(data_requirements) - set(RegisteredExplainer._DATA_CHECKS)
        if unknown:
            raise ValueError(
                f"unknown data requirements {sorted(unknown)}; "
                f"known: {sorted(RegisteredExplainer._DATA_CHECKS)}"
            )
        unknown = set(resource_requirements) - set(RegisteredExplainer._RESOURCE_CHECKS)
        if unknown:
            raise ValueError(
                f"unknown resource requirements {sorted(unknown)}; "
                f"known: {sorted(RegisteredExplainer._RESOURCE_CHECKS)}"
            )

        def decorator(obj):
            entry_info = info if info is not None else getattr(obj, "info", None)
            entry = RegisteredExplainer(
                name=name, obj=obj, info=entry_info,
                capabilities=frozenset(capabilities),
                modality=modality,
                model_requirements=tuple(model_requirements),
                data_requirements=tuple(data_requirements),
                resource_requirements=tuple(resource_requirements),
            )
            existing = cls._entries.get(name)
            if existing is not None and existing.obj is not obj:
                raise ValueError(f"explainer name {name!r} already registered")
            cls._entries[name] = entry
            obj.registry_name = name
            return obj

        return decorator

    @classmethod
    def entry(cls, name: str) -> RegisteredExplainer:
        """Return the full registry entry for ``name`` (raises ``KeyError``)."""
        if name not in cls._entries:
            raise KeyError(
                f"no explainer registered as {name!r}; known: {sorted(cls._entries)}"
            )
        return cls._entries[name]

    @classmethod
    def get(cls, name: str):
        """Return the registered class/callable for ``name``."""
        return cls.entry(name).obj

    @classmethod
    def names(cls) -> list[str]:
        """Sorted names of every registered explainer."""
        return sorted(cls._entries)

    @classmethod
    def entries(cls) -> list[RegisteredExplainer]:
        """Every registry entry, ordered by name."""
        return [cls._entries[name] for name in cls.names()]

    @classmethod
    def with_capability(cls, capability: str) -> list[RegisteredExplainer]:
        """All entries carrying ``capability``, sorted by name."""
        return [e for e in cls.entries() if capability in e.capabilities]

    @classmethod
    def compatible(cls, *, model=None, dataset=None,
                   capability: str | None = None) -> list[RegisteredExplainer]:
        """All entries structurally compatible with ``model`` / ``dataset``.

        This is what the experiment runners use to auto-select every
        applicable explainer for a workload instead of hard-coding lists:
        capability narrows the family (e.g. ``"counterfactual-generator"``),
        :meth:`RegisteredExplainer.is_compatible` filters on model
        requirements and data modality.
        """
        entries = cls.with_capability(capability) if capability else cls.entries()
        return [e for e in entries if e.is_compatible(model, dataset)]

    @classmethod
    def resolve_path(cls, dotted: str):
        """Resolve a ``fairexp``-relative dotted path to a registered object.

        Returns ``None`` when no registered entry matches, so callers can
        distinguish "not implemented" from "implemented but unregistered".
        """
        for entry in cls._entries.values():
            if entry.path == dotted:
                return entry.obj
        return None


@dataclass
class FeatureAttribution:
    """Per-feature importance scores for one prediction or for the whole model.

    Attributes
    ----------
    feature_names:
        Names aligned with :attr:`values`.
    values:
        Attribution value per feature (sign carries direction where defined).
    baseline:
        The value the attributions are measured against (e.g. expected model
        output for Shapley values).
    meta:
        Free-form extra information (e.g. sampling error estimates).
    """

    feature_names: list[str]
    values: np.ndarray
    baseline: float = 0.0
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=float)

    def as_dict(self) -> dict[str, float]:
        """Attribution values keyed by feature name."""
        return {name: float(v) for name, v in zip(self.feature_names, self.values)}

    def top(self, k: int = 3) -> list[tuple[str, float]]:
        """Return the ``k`` features with the largest absolute attribution."""
        order = np.argsort(-np.abs(self.values))[:k]
        return [(self.feature_names[i], float(self.values[i])) for i in order]

    def total(self) -> float:
        """Sum of all attribution values."""
        return float(self.values.sum())


@dataclass
class Counterfactual:
    """A counterfactual explanation ``x -> x'`` for a single instance.

    Attributes
    ----------
    original:
        The explainee data point.
    counterfactual:
        The modified data point achieving the target outcome.
    original_prediction, counterfactual_prediction:
        Model outputs before and after.
    changed_features:
        Indices of features whose value changed.
    distance:
        Distance between original and counterfactual under the generator's
        cost metric.
    feasible:
        Whether the counterfactual respects actionability constraints.
    """

    original: np.ndarray
    counterfactual: np.ndarray
    original_prediction: int
    counterfactual_prediction: int
    changed_features: tuple[int, ...]
    distance: float
    feasible: bool = True
    meta: dict = field(default_factory=dict)

    def delta(self) -> np.ndarray:
        """Feature-wise change vector ``x' - x``."""
        return np.asarray(self.counterfactual, dtype=float) - np.asarray(self.original, dtype=float)

    def sparsity(self) -> int:
        """Number of features changed."""
        return len(self.changed_features)

    def describe(self, feature_names: Sequence[str] | None = None) -> list[str]:
        """Human-readable list of the feature changes."""
        original = np.asarray(self.original, dtype=float)
        counterfactual = np.asarray(self.counterfactual, dtype=float)
        lines = []
        for j in self.changed_features:
            name = feature_names[j] if feature_names is not None else f"x{j}"
            lines.append(f"{name}: {original[j]:.4g} -> {counterfactual[j]:.4g}")
        return lines


@dataclass
class RuleExplanation:
    """A conjunctive rule (anchor / itemset-style explanation).

    Attributes
    ----------
    conditions:
        Mapping ``feature name -> (low, high)`` interval or set of values.
    prediction:
        The outcome the rule is associated with.
    coverage:
        Fraction of the reference population satisfying the rule.
    precision:
        Fraction of covered points for which the model output matches
        ``prediction``.
    """

    conditions: Mapping[str, tuple]
    prediction: int
    coverage: float
    precision: float
    meta: dict = field(default_factory=dict)

    def __str__(self) -> str:
        clauses = []
        for name, bounds in self.conditions.items():
            low, high = bounds
            if low is not None and high is not None:
                clauses.append(f"{low:.4g} <= {name} <= {high:.4g}")
            elif low is not None:
                clauses.append(f"{name} >= {low:.4g}")
            elif high is not None:
                clauses.append(f"{name} <= {high:.4g}")
        premise = " AND ".join(clauses) if clauses else "TRUE"
        return (
            f"IF {premise} THEN prediction={self.prediction} "
            f"(coverage={self.coverage:.2f}, precision={self.precision:.2f})"
        )


@dataclass
class ExampleExplanation:
    """Example-based explanation: indices of reference instances and their roles."""

    indices: tuple[int, ...]
    role: str  # "prototype", "criticism", "neighbor", "influential"
    scores: np.ndarray | None = None
    meta: dict = field(default_factory=dict)
