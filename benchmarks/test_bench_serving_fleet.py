"""Fleet-serving acceptance benchmarks (BENCH_SERVING_FLEET.json trajectory).

The multi-model serving PR's claims, asserted against a real loopback HTTP
server hosting THREE exported compute graphs at once:

* **Sustained load**: hundreds of concurrent :class:`AuditSession`\\ s,
  spread across the three graphs, score through ONE fleet server with
  hash-routed wire calls — throughput, per-session p50/p99 latency and the
  client-side coalescing factor are recorded, and every session's
  counterfactuals AND predict-row accounting are bitwise/exactly equal to
  its in-process twin's;
* **Dynamic window**: N = 4 concurrent sessions with ``window="auto"``
  coalesce at least as well as the same sessions under the fixed default
  window — the EWMA window never undershoots the fixed baseline's bound,
  so the adaptive mode is a pure win at this concurrency;
* **Shed/retry accounting**: a server wedged down to ``max_inflight=1``
  sheds concurrent batches; the clients' bounded retry ladders land every
  batch eventually and per-session row accounting still sums exactly —
  shed-then-retry never double-counts or drops a row.
"""

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from conftest import record

from fairexp.datasets import make_loan_dataset
from fairexp.explanations import (
    ActionabilityConstraints,
    AuditSession,
    CoalescingScoringClient,
    GrowingSpheresCounterfactual,
    RemoteScoringBackend,
    ScoringServer,
    export_model,
    serve_fleet,
)
from fairexp.models import (
    DecisionTreeClassifier,
    LogisticRegression,
    RandomForestClassifier,
)

N_FLEET_SESSIONS = 210          # sustained-load sessions (>= 200, 70/graph)
N_WORKERS = 24                  # concurrently live sessions at any moment
ROWS_PER_SESSION = 1            # tiny populations keep the run minutes-free
N_WINDOW_SESSIONS = 4           # the dynamic-vs-fixed window comparison


def _fleet_workload(n_samples=600):
    """Three model families over one loan dataset: the fleet under test."""
    dataset = make_loan_dataset(n_samples, direct_bias=1.2, recourse_gap=1.0,
                                random_state=0)
    train, test = dataset.split(test_size=0.3, random_state=1)
    constraints = ActionabilityConstraints.from_feature_specs(dataset.features)
    models = [
        LogisticRegression(n_iter=800, random_state=0).fit(train.X, train.y),
        DecisionTreeClassifier(max_depth=5, random_state=0).fit(train.X, train.y),
        RandomForestClassifier(n_estimators=5, max_depth=4,
                               random_state=0).fit(train.X, train.y),
    ]
    graphs = [export_model(model) for model in models]
    rejected = [test.X[model.predict(test.X) == 0] for model in models]
    assert all(len(r) >= N_FLEET_SESSIONS // len(models) for r in rejected)
    return train, constraints, models, graphs, rejected


def _generator(train, model, constraints):
    # Small search parameters: each 1-row session issues a handful of
    # predict batches, so 210 sessions stay a sustained stream rather than
    # a multi-minute soak.
    return GrowingSpheresCounterfactual(model, train.X, constraints=constraints,
                                        n_samples_per_shell=24, max_shells=6,
                                        random_state=0)


def _session_plan(models, rejected):
    """(model_index, population) per session, round-robin across graphs."""
    plan = []
    for k in range(N_FLEET_SESSIONS):
        m = k % len(models)
        start = (k // len(models)) * ROWS_PER_SESSION
        population = rejected[m][start:start + ROWS_PER_SESSION]
        plan.append((m, population))
    return plan


def _run_session(train, model, constraints, population, backend):
    with AuditSession(_generator(train, model, constraints),
                      backend=backend) as session:
        results = session.counterfactuals_for(population,
                                              np.arange(len(population)))
        rows = session.predict_row_count
    return results, rows


def _reference_runs(train, constraints, models, plan):
    """In-process twins: expected counterfactuals and row counts, session
    by session (sequential NumPy — the parity/accounting oracle)."""
    references = []
    for m, population in plan:
        references.append(_run_session(train, models[m], constraints,
                                       population, None))
    return references


def _assert_matches_reference(outputs, rows, references):
    for k, (reference_results, reference_rows) in enumerate(references):
        results_k, rows_k = outputs[k], rows[k]
        assert rows_k == reference_rows, (
            f"session {k}: {rows_k} rows scored, expected {reference_rows}")
        assert set(results_k) == set(reference_results)
        for i in reference_results:
            assert np.array_equal(results_k[i].counterfactual,
                                  reference_results[i].counterfactual)


def test_sustained_fleet_load_routes_and_accounts_exactly(benchmark):
    """>= 200 sessions over 3 graphs against ONE server: hash routing keeps
    every session bitwise-equal to its in-process twin, accounting stays
    exact, and the run's throughput / latency tail goes on record."""
    train, constraints, models, graphs, rejected = _fleet_workload()
    plan = _session_plan(models, rejected)
    references = _reference_runs(train, constraints, models, plan)

    with serve_fleet(graphs) as server:
        client = CoalescingScoringClient(server.url, window="auto")

        def sustained_run():
            outputs = [None] * N_FLEET_SESSIONS
            rows = [0] * N_FLEET_SESSIONS
            latencies = [0.0] * N_FLEET_SESSIONS

            def run(k):
                m, population = plan[k]
                backend = RemoteScoringBackend(client, graph=graphs[m])
                start = time.perf_counter()
                try:
                    outputs[k], rows[k] = _run_session(
                        train, models[m], constraints, population, backend)
                finally:
                    backend.close()
                latencies[k] = time.perf_counter() - start

            start = time.perf_counter()
            with ThreadPoolExecutor(max_workers=N_WORKERS) as executor:
                list(executor.map(run, range(N_FLEET_SESSIONS)))
            elapsed = time.perf_counter() - start
            return outputs, rows, latencies, elapsed

        outputs, rows, latencies, elapsed = benchmark.pedantic(
            sustained_run, rounds=1, iterations=1)
        server_stats = server.stats()

    # Bitwise parity and exact per-session accounting, all 210 sessions.
    _assert_matches_reference(outputs, rows, references)

    # Global accounting closes: every row crossed the wire exactly once and
    # the server booked all of them, graph by graph.
    assert client.wire_row_count == sum(rows)
    assert server_stats["rows"] == sum(rows)
    per_graph_rows = [
        sum(rows[k] for k in range(N_FLEET_SESSIONS) if plan[k][0] == m)
        for m in range(len(graphs))
    ]
    for graph, expected in zip(graphs, per_graph_rows):
        assert server_stats["graphs"][graph.signature()]["rows"] == expected

    total_batches = client.wire_call_count + client.coalesced_count
    record(benchmark, {
        "n_sessions": N_FLEET_SESSIONS,
        "n_graphs": len(graphs),
        "n_workers": N_WORKERS,
        "elapsed_seconds": elapsed,
        "throughput_sessions_per_second": N_FLEET_SESSIONS / elapsed,
        "latency_p50_seconds": float(np.percentile(latencies, 50)),
        "latency_p99_seconds": float(np.percentile(latencies, 99)),
        "wire_calls": client.wire_call_count,
        "wire_rows": client.wire_row_count,
        "caller_batches": total_batches,
        "coalescing_factor": total_batches / max(client.wire_call_count, 1),
        "shed_count": client.shed_count,
        "retry_count": client.retry_count,
        "server_peak_inflight": server_stats["peak_inflight"],
    }, experiment="SERVING_FLEET")


def _window_run(train, model, constraints, populations, url, window):
    """N_WINDOW_SESSIONS barrier-synced concurrent sessions through one
    client with the given window; returns the client and per-session rows."""
    client = CoalescingScoringClient(url, window=window)
    outputs = [None] * N_WINDOW_SESSIONS
    rows = [0] * N_WINDOW_SESSIONS
    barrier = threading.Barrier(N_WINDOW_SESSIONS)

    def run(k):
        backend = RemoteScoringBackend(client)
        barrier.wait(timeout=30)
        try:
            outputs[k], rows[k] = _run_session(train, model, constraints,
                                               populations[k], backend)
        finally:
            backend.close()

    threads = [threading.Thread(target=run, args=(k,))
               for k in range(N_WINDOW_SESSIONS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300)
    return client, outputs, rows


def test_dynamic_window_coalesces_at_least_as_well_as_fixed(benchmark):
    """N = 4 concurrent sessions: the EWMA window (clamped to never dip
    below the fixed baseline) must coalesce at least as many caller batches
    per wire call as the fixed 0.02s default."""
    train, constraints, models, graphs, rejected = _fleet_workload()
    model, graph = models[0], graphs[0]
    populations = [rejected[0][k * 4:(k + 1) * 4]
                   for k in range(N_WINDOW_SESSIONS)]

    def factor(client):
        batches = client.wire_call_count + client.coalesced_count
        return batches / max(client.wire_call_count, 1)

    with serve_fleet([graph]) as server:
        fixed_client, fixed_outputs, fixed_rows = _window_run(
            train, model, constraints, populations, server.url, 0.02)
        dynamic_run = benchmark.pedantic(
            lambda: _window_run(train, model, constraints, populations,
                                server.url, "auto"),
            rounds=1, iterations=1)
        dynamic_client, dynamic_outputs, dynamic_rows = dynamic_run

    # Same audits either way: identical results and identical accounting.
    assert dynamic_rows == fixed_rows
    for k in range(N_WINDOW_SESSIONS):
        assert set(dynamic_outputs[k]) == set(fixed_outputs[k])
        for i in fixed_outputs[k]:
            assert np.array_equal(dynamic_outputs[k][i].counterfactual,
                                  fixed_outputs[k][i].counterfactual)

    fixed_factor, dynamic_factor = factor(fixed_client), factor(dynamic_client)
    assert dynamic_client.coalesced_count > 0
    assert dynamic_factor >= fixed_factor, (
        f"dynamic window coalesced {dynamic_factor:.2f} batches/wire call, "
        f"fixed window {fixed_factor:.2f}"
    )

    record(benchmark, {
        "n_sessions": N_WINDOW_SESSIONS,
        "fixed_window_seconds": 0.02,
        "fixed_wire_calls": fixed_client.wire_call_count,
        "fixed_coalescing_factor": fixed_factor,
        "dynamic_wire_calls": dynamic_client.wire_call_count,
        "dynamic_coalescing_factor": dynamic_factor,
        "dynamic_final_window": dynamic_client.current_window(),
    }, experiment="SERVING_FLEET_WINDOW")


def test_shed_retry_keeps_per_session_rows_exact(benchmark):
    """A server wedged to max_inflight=1 sheds most of a 12-way concurrent
    wave; the retry ladders land every batch and the row accounting still
    sums exactly — per session, on the wire, and server-side."""
    train, constraints, models, graphs, rejected = _fleet_workload()
    model, graph = models[0], graphs[0]
    n_sessions = 12
    populations = [rejected[0][k:k + 1] for k in range(n_sessions)]
    references = [_run_session(train, model, constraints, populations[k], None)
                  for k in range(n_sessions)]

    # A deliberately slow scorer (a few ms per batch, sleeping off-GIL):
    # the pure-NumPy graph scores in microseconds, far too fast for 12
    # clients to overlap inside the admission window — the sleep models a
    # realistically loaded scorer so the gate actually engages.
    def slow_scorer(X):
        time.sleep(0.004)
        return graph.run(X)

    with ScoringServer(slow_scorer, max_inflight=1) as server:
        # One PRIVATE client per session: a shared client's lane keeps at
        # most one wire call in flight (the leader's), which would never
        # trip the admission gate — independent clients genuinely race it.
        def overloaded_run():
            outputs = [None] * n_sessions
            rows = [0] * n_sessions
            clients = [None] * n_sessions
            barrier = threading.Barrier(n_sessions)

            def run(k):
                backend = RemoteScoringBackend(server.url, window=0.0,
                                               max_retries=12, backoff=0.005)
                clients[k] = backend.client
                barrier.wait(timeout=30)
                try:
                    outputs[k], rows[k] = _run_session(
                        train, model, constraints, populations[k], backend)
                finally:
                    backend.close()

            threads = [threading.Thread(target=run, args=(k,))
                       for k in range(n_sessions)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=300)
            return outputs, rows, clients

        outputs, rows, clients = benchmark.pedantic(overloaded_run, rounds=1,
                                                    iterations=1)
        server_shed, server_rows = server.shed_count, server.row_count

    shed_total = sum(client.shed_count for client in clients)
    retry_total = sum(client.retry_count for client in clients)
    wire_rows_total = sum(client.wire_row_count for client in clients)
    wire_calls_total = sum(client.wire_call_count for client in clients)
    assert shed_total > 0, "the wedged server never shed a batch"
    assert retry_total == shed_total  # every shed was retried and landed
    _assert_matches_reference(outputs, rows, references)
    assert wire_rows_total == sum(rows)
    assert server_rows == sum(rows)
    assert server_shed == shed_total

    record(benchmark, {
        "n_sessions": n_sessions,
        "max_inflight": 1,
        "shed_count": shed_total,
        "retry_count": retry_total,
        "wire_calls": wire_calls_total,
        "wire_rows": wire_rows_total,
        "rows_per_session": rows,
    }, experiment="SERVING_FLEET_SHED")
