"""Tests for fairexp.models.metrics."""

import numpy as np
import pytest

from fairexp.exceptions import ValidationError
from fairexp.models import (
    accuracy_score,
    brier_score,
    calibration_curve,
    confusion_matrix,
    f1_score,
    false_negative_rate,
    false_positive_rate,
    log_loss,
    precision_score,
    recall_score,
    roc_auc_score,
    roc_curve,
    selection_rate,
    true_negative_rate,
    true_positive_rate,
)

Y_TRUE = np.array([0, 0, 1, 1, 1, 0, 1, 0])
Y_PRED = np.array([0, 1, 1, 0, 1, 0, 1, 0])


class TestConfusionAndRates:
    def test_confusion_matrix_entries(self):
        matrix = confusion_matrix(Y_TRUE, Y_PRED)
        # tn, fp / fn, tp
        assert matrix.tolist() == [[3, 1], [1, 3]]

    def test_accuracy(self):
        assert accuracy_score(Y_TRUE, Y_PRED) == pytest.approx(6 / 8)

    def test_precision_recall_f1(self):
        assert precision_score(Y_TRUE, Y_PRED) == pytest.approx(3 / 4)
        assert recall_score(Y_TRUE, Y_PRED) == pytest.approx(3 / 4)
        assert f1_score(Y_TRUE, Y_PRED) == pytest.approx(3 / 4)

    def test_rates_sum_to_one(self):
        assert true_positive_rate(Y_TRUE, Y_PRED) + false_negative_rate(Y_TRUE, Y_PRED) == pytest.approx(1.0)
        assert false_positive_rate(Y_TRUE, Y_PRED) + true_negative_rate(Y_TRUE, Y_PRED) == pytest.approx(1.0)

    def test_zero_division_returns_zero(self):
        assert precision_score([0, 0], [0, 0]) == 0.0
        assert recall_score([0, 0], [0, 0]) == 0.0
        assert f1_score([0, 0], [0, 0]) == 0.0

    def test_selection_rate(self):
        assert selection_rate(Y_PRED) == pytest.approx(0.5)
        assert selection_rate(np.array([])) == 0.0


class TestRocAuc:
    def test_perfect_classifier_auc_is_one(self):
        y = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert roc_auc_score(y, scores) == pytest.approx(1.0)

    def test_random_scores_auc_near_half(self, rng):
        y = rng.integers(0, 2, 2000)
        scores = rng.random(2000)
        assert abs(roc_auc_score(y, scores) - 0.5) < 0.05

    def test_inverted_classifier_auc_is_zero(self):
        y = np.array([0, 0, 1, 1])
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        assert roc_auc_score(y, scores) == pytest.approx(0.0)

    def test_single_class_raises(self):
        with pytest.raises(ValidationError):
            roc_auc_score([1, 1, 1], [0.2, 0.4, 0.9])

    def test_roc_curve_monotone(self, rng):
        y = rng.integers(0, 2, 200)
        scores = rng.random(200)
        fpr, tpr, _ = roc_curve(y, scores)
        assert np.all(np.diff(fpr) >= -1e-12)
        assert np.all(np.diff(tpr) >= -1e-12)
        assert fpr[0] == 0.0 and tpr[0] == 0.0


class TestProbabilityMetrics:
    def test_log_loss_perfect_predictions(self):
        assert log_loss([0, 1], [0.0, 1.0]) < 1e-6

    def test_log_loss_uninformative(self):
        assert log_loss([0, 1], [0.5, 0.5]) == pytest.approx(np.log(2), rel=1e-6)

    def test_brier_bounds(self):
        assert brier_score([0, 1], [0, 1]) == 0.0
        assert brier_score([0, 1], [1, 0]) == 1.0

    def test_calibration_curve_perfectly_calibrated(self, rng):
        proba = rng.random(5000)
        y = (rng.random(5000) < proba).astype(int)
        mean_predicted, fraction_positive = calibration_curve(y, proba, n_bins=5)
        assert np.all(np.abs(mean_predicted - fraction_positive) < 0.06)

    def test_calibration_curve_skips_empty_bins(self):
        mean_predicted, fraction_positive = calibration_curve([1, 1], [0.9, 0.95], n_bins=10)
        assert mean_predicted.shape == fraction_positive.shape
        assert mean_predicted.shape[0] == 1
