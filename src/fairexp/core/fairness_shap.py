"""Shapley decomposition of a fairness metric (Begley et al. [81]).

Instead of attributing the model's *output* to features, the fairness-Shapley
method attributes the model's *disparity* to features: the value function of a
coalition ``S`` is the fairness metric of a model restricted to the features
in ``S`` (non-coalition features are neutralized by averaging them out over a
background sample).  By Shapley efficiency the attributions sum to

    metric(full model) - metric(no features),

so each feature's share of the parity gap is directly interpretable, and the
most-blamed features are candidates for mitigation (goals "U" and "M").
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..explanations.base import ExplainerInfo, ExplainerRegistry, FeatureAttribution
from ..explanations.shapley import shapley_for_value_function
from ..fairness.group_metrics import statistical_parity_difference
from ..utils import check_random_state

__all__ = ["FairnessShapExplainer"]

FairnessMetric = Callable[[np.ndarray, np.ndarray], float]


@ExplainerRegistry.register("fairness_shap", capabilities=("fairness-explainer", "shapley"))
class FairnessShapExplainer:
    """Attribute a group-fairness metric to individual features via Shapley values.

    Parameters
    ----------
    model:
        Classifier under audit (``predict``).
    metric:
        Callable ``metric(y_pred, sensitive) -> float``; defaults to the
        statistical parity difference (the "parity fairness" the paper cites
        for this method family).
    background:
        Sample used to marginalize out-of-coalition features.
    n_background:
        Number of background rows drawn per coalition evaluation.
    method:
        ``"exact"`` or ``"sampling"`` Shapley estimation (ablated in the
        benchmarks).
    """

    info = ExplainerInfo(
        stage="post-hoc",
        access="black-box",
        agnostic=True,
        coverage="global",
        explanation_type="feature",
        multiplicity="single",
    )

    def __init__(
        self,
        model,
        background: np.ndarray,
        *,
        metric: FairnessMetric | None = None,
        feature_names: Sequence[str] | None = None,
        n_background: int = 30,
        method: str = "exact",
        n_permutations: int = 100,
        random_state=None,
    ) -> None:
        self.model = model
        self.background = np.asarray(background, dtype=float)
        self.metric = metric or statistical_parity_difference
        self.feature_names = list(feature_names) if feature_names is not None else None
        self.n_background = n_background
        self.method = method
        self.n_permutations = n_permutations
        self.random_state = random_state

    def _coalition_metric(self, X, sensitive, coalition: frozenset[int], rng) -> float:
        """Fairness metric with out-of-coalition features replaced by background draws."""
        X = np.asarray(X, dtype=float)
        n_features = X.shape[1]
        out_of_coalition = [j for j in range(n_features) if j not in coalition]
        if not out_of_coalition:
            predictions = np.asarray(self.model.predict(X))
            return float(self.metric(predictions, sensitive))

        draws = self.background[
            rng.integers(0, self.background.shape[0], size=self.n_background)
        ]
        values = []
        for draw in draws:
            mixed = X.copy()
            mixed[:, out_of_coalition] = draw[out_of_coalition]
            predictions = np.asarray(self.model.predict(mixed))
            values.append(float(self.metric(predictions, sensitive)))
        return float(np.mean(values))

    def explain(self, X, sensitive) -> FeatureAttribution:
        """Return per-feature contributions to the fairness metric on ``(X, sensitive)``."""
        X = np.asarray(X, dtype=float)
        sensitive = np.asarray(sensitive)
        n_features = X.shape[1]
        rng = check_random_state(self.random_state)

        cache: dict[frozenset[int], float] = {}

        def value(coalition: frozenset[int]) -> float:
            if coalition not in cache:
                cache[coalition] = self._coalition_metric(X, sensitive, coalition, rng)
            return cache[coalition]

        values = shapley_for_value_function(
            value,
            n_features,
            method=self.method,
            n_permutations=self.n_permutations,
            random_state=self.random_state,
        )
        names = (
            self.feature_names
            if self.feature_names is not None
            else [f"x{j}" for j in range(n_features)]
        )
        full = value(frozenset(range(n_features)))
        empty = value(frozenset())
        return FeatureAttribution(
            feature_names=list(names),
            values=values,
            baseline=empty,
            meta={
                "metric_full_model": full,
                "metric_no_features": empty,
                "efficiency_gap": float(full - empty - values.sum()),
                "method": self.method,
            },
        )
