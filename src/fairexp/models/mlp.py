"""Small multilayer perceptron classifier with backpropagation.

Exposes input gradients so it can serve as a "gradient access" model in the
explanation taxonomy, alongside :class:`fairexp.models.LogisticRegression`.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ValidationError
from ..utils import check_random_state, one_hot, softmax
from .base import BaseClassifier

__all__ = ["MLPClassifier"]


def _relu(z: np.ndarray) -> np.ndarray:
    return np.maximum(z, 0.0)


def _relu_grad(z: np.ndarray) -> np.ndarray:
    return (z > 0).astype(float)


class MLPClassifier(BaseClassifier):
    """Feed-forward network with ReLU hidden layers and a softmax output.

    Parameters
    ----------
    hidden_sizes:
        Sizes of the hidden layers, e.g. ``(16, 8)``.
    learning_rate:
        Step size for mini-batch gradient descent.
    n_epochs:
        Number of passes over the training data.
    batch_size:
        Mini-batch size.
    l2:
        L2 weight decay.
    """

    def __init__(
        self,
        hidden_sizes: tuple[int, ...] = (16,),
        learning_rate: float = 0.05,
        n_epochs: int = 200,
        batch_size: int = 32,
        l2: float = 1e-4,
        random_state: int | None = 0,
    ) -> None:
        super().__init__()
        self.hidden_sizes = tuple(hidden_sizes)
        self.learning_rate = learning_rate
        self.n_epochs = n_epochs
        self.batch_size = batch_size
        self.l2 = l2
        self.random_state = random_state
        self.weights_: list[np.ndarray] = []
        self.biases_: list[np.ndarray] = []
        self.loss_curve_: list[float] = []

    # ------------------------------------------------------------------ fit
    def fit(self, X, y, sample_weight=None) -> "MLPClassifier":
        """Train the network on ``X``/``y``; returns ``self``."""
        X, y = self._validate_fit_input(X, y)
        rng = check_random_state(self.random_state)
        n_samples, n_features = X.shape
        n_classes = self.classes_.shape[0]
        if n_classes < 2:
            raise ValidationError("need at least two classes")
        class_index = {c: i for i, c in enumerate(self.classes_)}
        y_idx = np.array([class_index[label] for label in y])
        targets = one_hot(y_idx, n_classes)
        # Standardize inputs internally so training is robust to feature scales.
        self._mean = X.mean(axis=0)
        self._scale = X.std(axis=0)
        self._scale[self._scale == 0] = 1.0
        X = (X - self._mean) / self._scale
        if sample_weight is None:
            sample_weight = np.ones(n_samples)
        else:
            sample_weight = np.asarray(sample_weight, dtype=float)
        sample_weight = sample_weight / sample_weight.mean()

        sizes = [n_features, *self.hidden_sizes, n_classes]
        self.weights_ = [
            rng.normal(scale=np.sqrt(2.0 / sizes[i]), size=(sizes[i], sizes[i + 1]))
            for i in range(len(sizes) - 1)
        ]
        self.biases_ = [np.zeros(sizes[i + 1]) for i in range(len(sizes) - 1)]
        self.loss_curve_ = []

        for _epoch in range(self.n_epochs):
            order = rng.permutation(n_samples)
            epoch_loss = 0.0
            for start in range(0, n_samples, self.batch_size):
                batch = order[start : start + self.batch_size]
                loss = self._train_batch(X[batch], targets[batch], sample_weight[batch])
                epoch_loss += loss * batch.shape[0]
            self.loss_curve_.append(epoch_loss / n_samples)

        self._fitted = True
        return self

    def _forward(self, X: np.ndarray) -> tuple[list[np.ndarray], list[np.ndarray]]:
        activations = [X]
        pre_activations = []
        hidden = X
        for layer, (W, b) in enumerate(zip(self.weights_, self.biases_)):
            z = hidden @ W + b
            pre_activations.append(z)
            if layer < len(self.weights_) - 1:
                hidden = _relu(z)
            else:
                hidden = softmax(z, axis=1)
            activations.append(hidden)
        return activations, pre_activations

    def _train_batch(self, X, targets, weights) -> float:
        activations, pre_activations = self._forward(X)
        output = activations[-1]
        eps = 1e-12
        loss = float(-np.mean(weights * np.sum(targets * np.log(output + eps), axis=1)))

        delta = (output - targets) * weights[:, None] / X.shape[0]
        for layer in reversed(range(len(self.weights_))):
            grad_W = activations[layer].T @ delta + self.l2 * self.weights_[layer]
            grad_b = delta.sum(axis=0)
            if layer > 0:
                delta = (delta @ self.weights_[layer].T) * _relu_grad(pre_activations[layer - 1])
            self.weights_[layer] -= self.learning_rate * grad_W
            self.biases_[layer] -= self.learning_rate * grad_b
        return loss

    # ------------------------------------------------------------- predict
    def predict_proba(self, X) -> np.ndarray:
        """Class-membership probabilities for each row of ``X``."""
        X = self._validate_predict_input(X)
        X = (X - self._mean) / self._scale
        activations, _ = self._forward(X)
        return activations[-1]

    # ------------------------------------------------------------ gradients
    def gradient_input(self, X, class_index: int = 1) -> np.ndarray:
        """Gradient of ``P(class=class_index)`` with respect to the input features.

        Computed by finite differences over the forward pass, which keeps the
        implementation simple while remaining exact enough for explanation
        methods (the forward pass is piecewise linear).
        """
        X = self._validate_predict_input(X)
        base = self.predict_proba(X)[:, class_index]
        grads = np.zeros_like(X)
        step = 1e-4
        for j in range(X.shape[1]):
            perturbed = X.copy()
            perturbed[:, j] += step
            grads[:, j] = (self.predict_proba(perturbed)[:, class_index] - base) / step
        return grads
