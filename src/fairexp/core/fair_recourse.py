"""Fairness of recourse across groups.

Two complementary notions from the survey are implemented:

* **Distance-based group recourse** (Gupta et al. [79]) — individual recourse
  is the distance of a negatively classified individual from the decision
  boundary; group recourse is the group average.  The
  :func:`recourse_gap_report` audit pairs with the
  :class:`fairexp.fairness.mitigation.RecourseRegularizedClassifier`
  mitigation (goal "M").
* **Fair causal recourse** (von Kügelgen et al. [80]) — recourse is fair at
  the individual level if the *cost of recourse would have been the same had
  the individual belonged to the other group*, evaluated through SCM
  counterfactuals (flipping the sensitive attribute and re-deriving the
  downstream features before recomputing the recourse cost).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..causal.scm import StructuralCausalModel
from ..exceptions import ValidationError
from ..explanations.base import ExplainerInfo, ExplainerRegistry
from ..fairness.groups import group_masks
from .actionable_recourse import CausalRecourseExplainer

__all__ = [
    "RecourseGapReport",
    "recourse_gap_report",
    "CausalRecourseFairnessResult",
    "causal_recourse_fairness",
    "causal_flip_rate",
]


@dataclass
class RecourseGapReport:
    """Distance-based group recourse audit (Gupta et al.)."""

    recourse_protected: float
    recourse_reference: float
    n_protected: int
    n_reference: int

    @property
    def gap(self) -> float:
        """recourse(protected) - recourse(reference); positive = protected group is further from approval."""
        return self.recourse_protected - self.recourse_reference

    @property
    def ratio(self) -> float:
        """Protected-over-reference recourse cost ratio (1.0 = parity)."""
        if self.recourse_reference == 0:
            return float("inf") if self.recourse_protected > 0 else 1.0
        return self.recourse_protected / self.recourse_reference


@ExplainerRegistry.register(
    "recourse_gap_report",
    info=ExplainerInfo(stage="post-hoc", access="black-box", agnostic=True, coverage="global",
                       explanation_type="example", multiplicity="multiple"),
    capabilities=("fairness-explainer", "recourse"),
    resource_requirements=("probabilities",),
)
def recourse_gap_report(model=None, X=None, sensitive=None, *, protected_value=1,
                        session=None) -> RecourseGapReport:
    """Average distance-to-boundary of negatively classified members, per group.

    ``model`` must expose ``distance_to_boundary`` (linear models in
    :mod:`fairexp.models` and the recourse-regularized classifier do); for
    other models the negative margin ``0.5 - P(y=1|x)`` is used as a proxy.
    With a ``session`` (:class:`~fairexp.explanations.session.AuditSession`)
    and no explicit model, the audit reads predictions through the sweep's
    shared counting adapter; an explicit model always wins over the session.
    """
    if model is None and session is not None:
        model = session.model
    if model is None:
        raise ValidationError("recourse_gap_report needs a model or a session")
    if X is None or sensitive is None:
        raise ValidationError("recourse_gap_report needs X and sensitive")
    X = np.asarray(X, dtype=float)
    sensitive = np.asarray(sensitive)
    predictions = np.asarray(model.predict(X))
    if hasattr(model, "distance_to_boundary"):
        distances = np.abs(np.asarray(model.distance_to_boundary(X)))
    else:
        distances = np.abs(0.5 - np.asarray(model.predict_proba(X))[:, 1])
    negative = predictions == 0
    masks = group_masks(sensitive, protected_value=protected_value)

    protected_idx = negative & masks.protected
    reference_idx = negative & masks.reference
    return RecourseGapReport(
        recourse_protected=float(distances[protected_idx].mean()) if protected_idx.any() else 0.0,
        recourse_reference=float(distances[reference_idx].mean()) if reference_idx.any() else 0.0,
        n_protected=int(protected_idx.sum()),
        n_reference=int(reference_idx.sum()),
    )


@dataclass
class CausalRecourseFairnessResult:
    """Individual-level fair-causal-recourse audit.

    ``cost_factual`` / ``cost_counterfactual`` hold, per audited individual,
    the recourse cost in the factual world and in the counterfactual world
    where the sensitive attribute is flipped (with downstream features
    re-derived through the SCM).
    """

    cost_factual: np.ndarray
    cost_counterfactual: np.ndarray
    individuals: np.ndarray

    @property
    def mean_unfairness(self) -> float:
        """Mean |cost_factual - cost_counterfactual| over audited individuals (0 = fair)."""
        both_finite = np.isfinite(self.cost_factual) & np.isfinite(self.cost_counterfactual)
        if not both_finite.any():
            return 0.0
        return float(
            np.mean(np.abs(self.cost_factual[both_finite] - self.cost_counterfactual[both_finite]))
        )

    @property
    def fraction_disadvantaged(self) -> float:
        """Fraction of individuals whose factual recourse is costlier than the counterfactual one."""
        both_finite = np.isfinite(self.cost_factual) & np.isfinite(self.cost_counterfactual)
        if not both_finite.any():
            return 0.0
        return float(
            np.mean(self.cost_factual[both_finite] > self.cost_counterfactual[both_finite] + 1e-9)
        )


@ExplainerRegistry.register(
    "causal_recourse_fairness",
    info=ExplainerInfo(stage="post-hoc", access="black-box", agnostic=True, coverage="both",
                       explanation_type="example", multiplicity="multiple"),
    capabilities=("fairness-explainer", "recourse", "causal"),
    data_requirements=("scm",),
    resource_requirements=("scm",),
)
def causal_recourse_fairness(
    explainer: CausalRecourseExplainer,
    scm: StructuralCausalModel,
    X,
    *,
    sensitive_variable: str,
    max_individuals: int = 25,
    random_state=None,
) -> CausalRecourseFairnessResult:
    """Audit fair causal recourse by flipping the sensitive attribute in the SCM.

    For each negatively classified individual the recourse cost is computed in
    the factual world and in the counterfactual world obtained by intervening
    ``do(sensitive := 1 - sensitive)`` and propagating downstream effects.
    """
    rng = np.random.default_rng(random_state)
    X = np.asarray(X, dtype=float)
    predictions = np.asarray(explainer.model.predict(X))
    affected = np.flatnonzero(predictions == 0)
    if affected.shape[0] > max_individuals:
        affected = rng.choice(affected, size=max_individuals, replace=False)

    cost_factual, cost_counterfactual, individuals = [], [], []
    for i in affected:
        observation = explainer.observation_from_row(X[i])
        flipped_value = 1.0 - observation[sensitive_variable]
        counterfactual_world = scm.counterfactual(
            observation, {sensitive_variable: flipped_value}
        )
        row_counterfactual = np.asarray(
            [counterfactual_world[v] for v in explainer.variable_order]
        )
        cost_factual.append(explainer.recourse_cost(X[i]))
        if int(np.asarray(explainer.model.predict(row_counterfactual[None, :]))[0]) == 1:
            # In the counterfactual world the individual is already approved.
            cost_counterfactual.append(0.0)
        else:
            cost_counterfactual.append(explainer.recourse_cost(row_counterfactual))
        individuals.append(int(i))

    return CausalRecourseFairnessResult(
        cost_factual=np.asarray(cost_factual),
        cost_counterfactual=np.asarray(cost_counterfactual),
        individuals=np.asarray(individuals),
    )


def causal_flip_rate(
    model, scm: StructuralCausalModel, X, variable_order, *, sensitive_variable: str
) -> float:
    """Counterfactual-fairness flip rate with causal propagation.

    Fraction of individuals whose prediction changes when the sensitive
    attribute is flipped *and* its downstream effects are propagated through
    the SCM (contrast with the observational
    :func:`fairexp.fairness.counterfactual_flip_rate`).
    """
    X = np.asarray(X, dtype=float)
    variable_order = list(variable_order)
    original = np.asarray(model.predict(X))
    flipped_rows = np.zeros_like(X)
    for i in range(X.shape[0]):
        observation = {v: float(X[i, j]) for j, v in enumerate(variable_order)}
        counterfactual = scm.counterfactual(
            observation, {sensitive_variable: 1.0 - observation[sensitive_variable]}
        )
        flipped_rows[i] = [counterfactual[v] for v in variable_order]
    flipped = np.asarray(model.predict(flipped_rows))
    return float(np.mean(original != flipped))
