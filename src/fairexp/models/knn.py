"""k-nearest-neighbours classifier."""

from __future__ import annotations

import numpy as np
from scipy.spatial.distance import cdist

from ..exceptions import ValidationError
from .base import BaseClassifier

__all__ = ["KNeighborsClassifier"]


class KNeighborsClassifier(BaseClassifier):
    """Majority-vote k-NN with Euclidean or Manhattan distance.

    Parameters
    ----------
    n_neighbors:
        Number of neighbours consulted.
    metric:
        ``"euclidean"`` or ``"manhattan"``.
    weights:
        ``"uniform"`` or ``"distance"`` (inverse-distance weighting).
    """

    def __init__(
        self,
        n_neighbors: int = 5,
        metric: str = "euclidean",
        weights: str = "uniform",
    ) -> None:
        super().__init__()
        if metric not in ("euclidean", "manhattan"):
            raise ValidationError(f"unsupported metric {metric!r}")
        if weights not in ("uniform", "distance"):
            raise ValidationError(f"unsupported weights {weights!r}")
        self.n_neighbors = n_neighbors
        self.metric = metric
        self.weights = weights
        self._X: np.ndarray | None = None
        self._y: np.ndarray | None = None

    def fit(self, X, y, sample_weight=None) -> "KNeighborsClassifier":
        """Store the training set (lazy learner); returns ``self``."""
        X, y = self._validate_fit_input(X, y)
        if self.n_neighbors > X.shape[0]:
            raise ValidationError("n_neighbors larger than the training set")
        self._X = X
        self._y = y
        self._fitted = True
        return self

    def kneighbors(self, X, n_neighbors: int | None = None) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(distances, indices)`` of the nearest training samples."""
        X = self._validate_predict_input(X)
        k = n_neighbors or self.n_neighbors
        metric = "cityblock" if self.metric == "manhattan" else self.metric
        distances = cdist(X, self._X, metric=metric)
        indices = np.argsort(distances, axis=1)[:, :k]
        row_idx = np.arange(X.shape[0])[:, None]
        return distances[row_idx, indices], indices

    def predict_proba(self, X) -> np.ndarray:
        """Class-membership probabilities from the neighbour vote."""
        distances, indices = self.kneighbors(X)
        n_classes = self.classes_.shape[0]
        proba = np.zeros((indices.shape[0], n_classes))
        if self.weights == "distance":
            weights = 1.0 / (distances + 1e-12)
        else:
            weights = np.ones_like(distances)
        for i in range(indices.shape[0]):
            neighbour_labels = self._y[indices[i]]
            for j, cls in enumerate(self.classes_):
                proba[i, j] = weights[i][neighbour_labels == cls].sum()
        return proba / proba.sum(axis=1, keepdims=True)
