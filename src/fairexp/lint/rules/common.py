"""Helpers shared by the FX rule modules (path scoping, name resolution)."""

from __future__ import annotations

import ast

_TEST_MARKERS = ("tests/", "benchmarks/", "examples/", "conftest")


def is_test_path(path: str) -> bool:
    """True for tests, benchmarks, examples and conftest files.

    Library-code rules (FX001/FX002/FX004/FX007/FX008 …) do not apply
    there: tests construct executors, benchmarks shell out, examples use
    quick-and-dirty randomness by design.
    """
    posix = path.replace("\\", "/")
    return any(marker in posix for marker in _TEST_MARKERS)


def is_pool_module(path: str) -> bool:
    """True for ``explanations/pool.py`` — the one sanctioned executor home."""
    return path.replace("\\", "/").endswith("explanations/pool.py")


def is_cli_module(path: str) -> bool:
    """True for ``cli.py`` — the sanctioned process/environment boundary."""
    posix = path.replace("\\", "/")
    return posix.endswith("/cli.py") or posix == "cli.py"


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, ``None`` for anything else."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def class_constant_names(cls: ast.ClassDef, attr: str) -> frozenset[str] | None:
    """The string elements of a class-level ``attr = ("a", "b")`` tuple.

    Returns ``None`` when the class has no such declaration; accepts
    tuple/list/set literals of string constants (plain or annotated
    assignment).  Used for ``FINGERPRINT_INVARIANT`` (FX006) and
    ``LOCK_HOLDING_METHODS`` (FX005).
    """
    for stmt in cls.body:
        target = None
        value = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target, value = stmt.targets[0], stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            target, value = stmt.target, stmt.value
        if not (isinstance(target, ast.Name) and target.id == attr):
            continue
        if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
            names = set()
            for element in value.elts:
                if isinstance(element, ast.Constant) and isinstance(
                    element.value, str
                ):
                    names.add(element.value)
            return frozenset(names)
    return None


def self_attribute(node: ast.AST) -> str | None:
    """The attribute name of a ``self.<attr>`` expression, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None
