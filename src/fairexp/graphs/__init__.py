"""Graph substrate: biased graph generators, a numpy GCN and graph fairness metrics."""

from .generators import AttributedGraph, make_biased_sbm
from .gnn import GCNClassifier, normalized_adjacency

__all__ = ["AttributedGraph", "make_biased_sbm", "GCNClassifier", "normalized_adjacency"]
