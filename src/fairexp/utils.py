"""Small shared utilities used across fairexp subpackages."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .exceptions import ValidationError

__all__ = [
    "check_array",
    "check_binary_labels",
    "check_consistent_length",
    "check_random_state",
    "safe_divide",
    "sigmoid",
    "softmax",
    "one_hot",
]


def check_random_state(seed) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from a seed, generator, or ``None``."""
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise ValidationError(f"cannot build a random generator from {seed!r}")


def check_array(x, *, ndim: int | None = None, name: str = "array") -> np.ndarray:
    """Convert ``x`` to a float ndarray and validate its dimensionality.

    Parameters
    ----------
    x:
        Array-like input.
    ndim:
        Required number of dimensions, or ``None`` for no check.
    name:
        Name used in error messages.
    """
    arr = np.asarray(x, dtype=float)
    if arr.size == 0:
        raise ValidationError(f"{name} is empty")
    if not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} contains NaN or infinite values")
    if ndim is not None and arr.ndim != ndim:
        raise ValidationError(f"{name} must be {ndim}-dimensional, got shape {arr.shape}")
    return arr


def check_binary_labels(y, *, name: str = "y") -> np.ndarray:
    """Validate that ``y`` contains only 0/1 labels and return it as an int array."""
    arr = np.asarray(y)
    if arr.ndim != 1:
        raise ValidationError(f"{name} must be 1-dimensional, got shape {arr.shape}")
    values = np.unique(arr)
    if not np.all(np.isin(values, (0, 1))):
        raise ValidationError(f"{name} must contain only 0/1 labels, got values {values}")
    return arr.astype(int)


def check_consistent_length(*arrays: Sequence) -> None:
    """Raise :class:`ValidationError` unless all arrays share the same first dimension."""
    lengths = {len(a) for a in arrays if a is not None}
    if len(lengths) > 1:
        raise ValidationError(f"inconsistent numbers of samples: {sorted(lengths)}")


def safe_divide(numerator, denominator, *, default: float = 0.0):
    """Element-wise division returning ``default`` where the denominator is zero."""
    numerator = np.asarray(numerator, dtype=float)
    denominator = np.asarray(denominator, dtype=float)
    out = np.full(np.broadcast(numerator, denominator).shape, float(default))
    np.divide(numerator, denominator, out=out, where=denominator != 0)
    if out.shape == ():
        return float(out)
    return out


def sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    z = np.asarray(z, dtype=float)
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out


def softmax(z: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    z = np.asarray(z, dtype=float)
    shifted = z - np.max(z, axis=axis, keepdims=True)
    exp_z = np.exp(shifted)
    return exp_z / np.sum(exp_z, axis=axis, keepdims=True)


def one_hot(y: Iterable[int], n_classes: int | None = None) -> np.ndarray:
    """One-hot encode integer labels into an ``(n_samples, n_classes)`` matrix."""
    y = np.asarray(list(y), dtype=int)
    if n_classes is None:
        n_classes = int(y.max()) + 1
    out = np.zeros((y.shape[0], n_classes))
    out[np.arange(y.shape[0]), y] = 1.0
    return out
