"""E6: actionable recourse as SCM interventions [65] vs independent manipulations."""

from conftest import record

from fairexp.experiments import run_e6_causal_recourse


def test_causal_recourse_cheaper_than_independent(benchmark):
    results = record(benchmark, benchmark.pedantic(
        run_e6_causal_recourse, kwargs={"n_samples": 500, "audit_size": 12},
        rounds=1, iterations=1,
    ), experiment="E6")
    assert results["n_audited"] >= 8
    # Interpreting actions as interventions (with downstream causal effects)
    # never costs more than independent feature manipulation, and is strictly
    # cheaper for most individuals because raising education also raises income.
    assert results["mean_causal_cost"] <= results["mean_independent_cost"] + 1e-9
    assert results["mean_saving"] > 0.0
    assert results["fraction_strictly_cheaper"] > 0.5
