"""Tests for counterfactual generators and actionability constraints."""

import numpy as np
import pytest

from fairexp.datasets import FeatureSpec
from fairexp.exceptions import InfeasibleRecourseError, ValidationError
from fairexp.explanations import (
    ActionabilityConstraints,
    GradientCounterfactual,
    GrowingSpheresCounterfactual,
    RandomSearchCounterfactual,
    counterfactual_distance,
)
from fairexp.models import DecisionTreeClassifier, LogisticRegression

GENERATORS = [RandomSearchCounterfactual, GrowingSpheresCounterfactual, GradientCounterfactual]


class TestDistance:
    def test_l1_l2_l0(self):
        x = np.array([0.0, 0.0, 0.0])
        x_prime = np.array([1.0, 0.0, 2.0])
        assert counterfactual_distance(x, x_prime, metric="l1") == pytest.approx(3.0)
        assert counterfactual_distance(x, x_prime, metric="l2") == pytest.approx(np.sqrt(5))
        assert counterfactual_distance(x, x_prime, metric="l0") == pytest.approx(2.0)

    def test_scaled_distance(self):
        x = np.zeros(2)
        x_prime = np.array([2.0, 2.0])
        scale = np.array([2.0, 1.0])
        assert counterfactual_distance(x, x_prime, scale=scale, metric="l1") == pytest.approx(3.0)

    def test_unknown_metric(self):
        with pytest.raises(ValidationError):
            counterfactual_distance(np.zeros(2), np.ones(2), metric="cosine")


class TestConstraints:
    def test_from_feature_specs(self):
        specs = [
            FeatureSpec("race", kind="binary", immutable=True),
            FeatureSpec("age", actionable=False),
            FeatureSpec("income", monotone=1, lower=0, upper=100),
            FeatureSpec("debt", monotone=-1),
        ]
        constraints = ActionabilityConstraints.from_feature_specs(specs)
        assert constraints.immutable.tolist() == [True, True, False, False]
        assert constraints.monotone.tolist() == [0, 0, 1, -1]
        assert constraints.upper[2] == 100

    def test_project_respects_immutability_and_bounds(self):
        specs = [
            FeatureSpec("race", kind="binary", immutable=True),
            FeatureSpec("income", monotone=1, lower=0, upper=100),
        ]
        constraints = ActionabilityConstraints.from_feature_specs(specs)
        original = np.array([1.0, 50.0])
        candidate = np.array([0.0, 150.0])
        projected = constraints.project(original, candidate)
        assert projected[0] == 1.0        # immutable restored
        assert projected[1] == 100.0      # clipped to upper bound

    def test_project_monotonicity(self):
        specs = [FeatureSpec("income", monotone=1), FeatureSpec("debt", monotone=-1)]
        constraints = ActionabilityConstraints.from_feature_specs(specs)
        original = np.array([50.0, 20.0])
        candidate = np.array([40.0, 30.0])  # both move the wrong way
        projected = constraints.project(original, candidate)
        assert projected[0] == 50.0
        assert projected[1] == 20.0

    def test_is_feasible(self):
        constraints = ActionabilityConstraints.unconstrained(2)
        assert constraints.is_feasible(np.zeros(2), np.ones(2))


class TestConstraintsMatrix:
    """Matrix/tensor inputs to project and is_feasible (the batched engine path)."""

    @pytest.fixture()
    def constraints(self):
        specs = [
            FeatureSpec("race", kind="binary", immutable=True),
            FeatureSpec("income", monotone=1, lower=0, upper=100),
            FeatureSpec("debt", monotone=-1),
            FeatureSpec("age", actionable=False),
        ]
        return ActionabilityConstraints.from_feature_specs(specs)

    def test_matrix_project_matches_row_by_row(self, constraints):
        rng = np.random.default_rng(0)
        originals = rng.uniform(-50, 150, (20, 4))
        candidates = rng.uniform(-50, 150, (20, 4))
        matrix = constraints.project(originals, candidates)
        rows = np.vstack([
            constraints.project(originals[i], candidates[i]) for i in range(20)
        ])
        assert np.array_equal(matrix, rows)

    def test_tensor_project_matches_row_by_row(self, constraints):
        rng = np.random.default_rng(1)
        originals = rng.uniform(-50, 150, (5, 4))
        candidates = rng.uniform(-50, 150, (5, 7, 4))
        tensor = constraints.project(originals[:, None, :], candidates)
        assert tensor.shape == candidates.shape
        for i in range(5):
            for c in range(7):
                assert np.array_equal(
                    tensor[i, c], constraints.project(originals[i], candidates[i, c])
                )

    def test_single_original_broadcasts_over_candidate_matrix(self, constraints):
        rng = np.random.default_rng(2)
        x = np.array([1.0, 50.0, 20.0, 30.0])
        candidates = rng.uniform(-50, 150, (9, 4))
        matrix = constraints.project(x, candidates)
        rows = np.vstack([constraints.project(x, candidate) for candidate in candidates])
        assert np.array_equal(matrix, rows)

    def test_nan_bounds_are_unbounded(self):
        constraints = ActionabilityConstraints.unconstrained(2)
        constraints.lower[0] = np.nan
        constraints.upper[1] = np.nan
        x = np.zeros(2)
        candidate = np.array([-1e6, 1e6])
        projected = constraints.project(x, candidate)
        assert np.array_equal(projected, candidate)
        assert constraints.is_feasible(x, candidate)

    def test_immutable_wins_over_monotone(self):
        # A feature that is both immutable and monotone must stay at its
        # original value even when the monotone direction would allow a move.
        constraints = ActionabilityConstraints.unconstrained(1)
        constraints.immutable[0] = True
        constraints.monotone[0] = 1
        projected = constraints.project(np.array([5.0]), np.array([9.0]))
        assert projected[0] == 5.0
        assert constraints.is_feasible(np.array([5.0]), np.array([5.0]))
        assert not constraints.is_feasible(np.array([5.0]), np.array([9.0]))

    def test_is_feasible_matrix_returns_per_row_mask(self, constraints):
        originals = np.array([[1.0, 50.0, 20.0, 30.0], [0.0, 10.0, 5.0, 40.0]])
        candidates = np.array([
            [1.0, 60.0, 10.0, 30.0],   # feasible: income up, debt down
            [1.0, 10.0, 5.0, 40.0],    # infeasible: flips the immutable race bit
        ])
        feasible = constraints.is_feasible(originals, candidates)
        assert feasible.shape == (2,)
        assert bool(feasible[0]) is True
        assert bool(feasible[1]) is False

    def test_is_feasible_scalar_for_single_row(self, constraints):
        x = np.array([1.0, 50.0, 20.0, 30.0])
        assert constraints.is_feasible(x, x) is True


@pytest.fixture(scope="module")
def boundary_model():
    """A model with a known linear boundary x0 + x1 > 1."""
    rng = np.random.default_rng(3)
    X = rng.uniform(-2, 3, (600, 2))
    y = (X[:, 0] + X[:, 1] > 1).astype(int)
    model = LogisticRegression(n_iter=1500).fit(X, y)
    return model, X


class TestGenerators:
    @pytest.mark.parametrize("generator_cls", GENERATORS)
    def test_counterfactual_flips_prediction(self, generator_cls, boundary_model):
        model, X = boundary_model
        generator = generator_cls(model, X, random_state=0)
        x = np.array([-1.0, -1.0])
        result = generator.generate(x)
        assert result.original_prediction == 0
        assert result.counterfactual_prediction == 1
        assert result.feasible

    @pytest.mark.parametrize("generator_cls", GENERATORS)
    def test_counterfactual_stays_close(self, generator_cls, boundary_model):
        model, X = boundary_model
        generator = generator_cls(model, X, random_state=0)
        x = np.array([0.2, 0.2])  # close to the boundary x0 + x1 = 1
        result = generator.generate(x)
        euclidean = np.linalg.norm(result.counterfactual - x)
        assert euclidean < 2.5

    @pytest.mark.parametrize("generator_cls", GENERATORS)
    def test_constraints_respected(self, generator_cls, boundary_model):
        model, X = boundary_model
        constraints = ActionabilityConstraints.unconstrained(2)
        constraints.immutable[1] = True
        generator = generator_cls(model, X, constraints=constraints, random_state=0)
        x = np.array([-0.5, 0.0])
        result = generator.generate(x)
        assert result.counterfactual[1] == pytest.approx(0.0)
        assert result.counterfactual_prediction == 1

    def test_infeasible_raises(self, boundary_model):
        model, X = boundary_model
        # Freeze both features: no counterfactual can exist.
        constraints = ActionabilityConstraints.unconstrained(2)
        constraints.immutable[:] = True
        generator = GrowingSpheresCounterfactual(model, X, constraints=constraints,
                                                 random_state=0, max_shells=3)
        with pytest.raises(InfeasibleRecourseError):
            generator.generate(np.array([-1.0, -1.0]))

    def test_gradient_requires_gradient_model(self, boundary_model):
        _, X = boundary_model
        tree = DecisionTreeClassifier(max_depth=3).fit(X, (X[:, 0] > 0).astype(int))
        with pytest.raises(ValidationError):
            GradientCounterfactual(tree, X)

    def test_generate_batch_skips_already_favourable(self, boundary_model):
        model, X = boundary_model
        generator = GrowingSpheresCounterfactual(model, X, random_state=0)
        batch = np.array([[2.0, 2.0], [-1.0, -1.0]])  # first is already positive
        results = generator.generate_batch(batch)
        assert len(results) == 1
        assert np.allclose(results[0].original, [-1.0, -1.0])

    def test_sparsification_reduces_changed_features(self, boundary_model):
        model, X = boundary_model
        generator = GrowingSpheresCounterfactual(model, X, random_state=0)
        result = generator.generate(np.array([0.4, -3.0]))
        # Moving only x1 suffices; sparsification should not need both features
        # in most runs, and must never report unchanged features as changed.
        delta = result.delta()
        for j in result.changed_features:
            assert not np.isclose(delta[j], 0.0)

    def test_describe_changes(self, boundary_model):
        model, X = boundary_model
        generator = GrowingSpheresCounterfactual(model, X, random_state=0)
        result = generator.generate(np.array([-1.0, -1.0]))
        lines = result.describe(["f0", "f1"])
        assert all("->" in line for line in lines)
        assert len(lines) == result.sparsity()
