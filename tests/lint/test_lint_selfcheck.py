"""The self-check: the shipped tree passes its own linter.

``fairexp lint src/`` with the committed (empty-entries) baseline must
produce zero fresh findings — the acceptance criterion that every
violation surfaced while building the rule set was *fixed*, not
baselined.  The one suppression in the tree (the ``__del__`` backstop in
``pool.py``) is asserted explicitly so new noqa comments cannot slip in
unnoticed.
"""

from pathlib import Path

from fairexp.lint import Baseline, lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_src_tree_is_lint_clean():
    report = lint_paths([REPO_ROOT / "src"], root=REPO_ROOT)
    baseline = Baseline.load(REPO_ROOT / "LINT_BASELINE.json")
    fresh = baseline.fresh(report.findings)
    assert fresh == [], "\n".join(f.render() for f in fresh)
    assert report.parse_errors == []
    assert report.files > 50  # the walk actually covered the package


def test_committed_baseline_is_empty():
    baseline = Baseline.load(REPO_ROOT / "LINT_BASELINE.json")
    assert len(baseline) == 0, (
        "the baseline must stay empty: fix findings, do not grandfather them"
    )


def test_suppression_budget_is_one_justified_noqa():
    report = lint_paths([REPO_ROOT / "src"], root=REPO_ROOT)
    assert report.suppressed == 1, (
        "a new '# fairexp: noqa' appeared; every suppression needs review "
        "and a justification comment (current budget: pool.py __del__)"
    )
    pool_source = (REPO_ROOT / "src/fairexp/explanations/pool.py").read_text()
    assert "fairexp: noqa[FX004]" in pool_source
