"""Batched counterfactual engine.

The per-instance counterfactual searches behind the paper's headline
quantities (burden [72], NAWB [73], PreCoF [71], the recourse-gap audits and
GLOBE-CE) are the hot path of the library: a naive audit issues dozens of
tiny ``model.predict`` calls per explained individual.  This module provides
the two pieces that coalesce that work into large vectorized predict batches:

* :class:`BatchModelAdapter` — wraps any classifier, counts and (optionally)
  caches ``predict`` calls so benchmarks can track the predict-call
  trajectory, not just wall time;
* :class:`CounterfactualEngine` — drives a generator's cross-instance
  ``generate_batch_aligned`` kernel and maps results back onto caller
  indices, which is what the core fairness explainers
  (:class:`~fairexp.core.burden.BurdenExplainer` and friends) build on.

With an integer ``random_state`` the engine path reproduces the sequential
per-instance path exactly: every instance consumes its own freshly seeded
random stream in the same order the sequential search would, and only the
model evaluations are batched across instances.  For the sampling-based
generators the results are bitwise-identical; for gradient ascent they agree
up to the floating-point associativity of the backing BLAS (single-row vs.
batched mat-vec products can differ in the last ulp, which a long gradient
trajectory amplifies to ~1e-13).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .base import Counterfactual

__all__ = [
    "BatchModelAdapter",
    "CounterfactualEngine",
    "greedy_sparsify_batch",
    "lockstep_candidate_search",
]


class BatchModelAdapter:
    """Counting / caching proxy around a classifier's prediction interface.

    Parameters
    ----------
    model:
        Any object exposing ``predict`` (and optionally ``predict_proba`` /
        ``gradient_input``).
    cache:
        When ``True``, repeated ``predict`` calls on an identical matrix are
        served from a small memo instead of re-invoking the model.  Cache
        hits do not count as predict calls.
    max_cache_rows:
        Matrices with more rows than this are never cached (hashing huge
        candidate batches would cost more than the predict it saves).
    max_cache_entries:
        The memo is cleared once it holds this many entries.

    Attributes
    ----------
    predict_call_count:
        Number of ``predict`` invocations forwarded to the wrapped model —
        the quantity the benchmarks record in ``benchmark.extra_info``.
    predict_row_count:
        Total number of rows across forwarded ``predict`` calls.
    cache_hit_count:
        Number of ``predict`` requests served from the memo.
    """

    def __init__(self, model, *, cache: bool = True, max_cache_rows: int = 2048,
                 max_cache_entries: int = 256) -> None:
        self.model = model
        self.cache = cache
        self.max_cache_rows = max_cache_rows
        self.max_cache_entries = max_cache_entries
        self.predict_call_count = 0
        self.predict_row_count = 0
        self.cache_hit_count = 0
        self._memo: dict[tuple, np.ndarray] = {}

    # ------------------------------------------------------------- interface
    def predict(self, X) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X, dtype=float))
        key = None
        if self.cache and X.shape[0] <= self.max_cache_rows:
            key = (X.shape, X.tobytes())
            hit = self._memo.get(key)
            if hit is not None:
                self.cache_hit_count += 1
                return hit.copy()
        self.predict_call_count += 1
        self.predict_row_count += int(X.shape[0])
        result = np.asarray(self.model.predict(X))
        if key is not None:
            if len(self._memo) >= self.max_cache_entries:
                self._memo.clear()
            self._memo[key] = result.copy()
        return result

    def __getattr__(self, name):
        # Forward everything else (predict_proba, gradient_input, score,
        # coef_, distance_to_boundary, ...) so the adapter is a drop-in
        # replacement for the wrapped model.  Forwarding instead of defining
        # the optional methods keeps ``hasattr``-based capability checks
        # (e.g. GradientCounterfactual requiring ``gradient_input``) honest.
        return getattr(self.model, name)

    # ------------------------------------------------------------ accounting
    def reset_counts(self) -> None:
        self.predict_call_count = 0
        self.predict_row_count = 0
        self.cache_hit_count = 0
        self._memo.clear()


def greedy_sparsify_batch(generator, X_rows: np.ndarray, candidates: np.ndarray) -> np.ndarray:
    """Batched greedy sparsification, exactly equivalent to the sequential loop.

    The sequential ``_sparsify`` walks a candidate's changed features in order
    of increasing scaled magnitude and reverts each one whose revert keeps the
    target class — one single-row ``model.predict`` per feature.  This kernel
    keeps the *identical* greedy semantics while batching the model work:
    each round speculatively evaluates, for every active instance, the whole
    chain of cumulative prefix reverts in ONE stacked predict call.  As long
    as reverts are accepted the greedy trial at step ``j`` equals the ``j``-th
    prefix trial, so the first rejected revert in the prefix chain pins down
    the greedy state exactly; the chain is then rebuilt from the remaining
    features.  Predict calls drop from (#changed features) per instance to
    (#rejected reverts + 1) rounds shared by the whole batch.
    """
    X_rows = np.atleast_2d(np.asarray(X_rows, dtype=float))
    candidates = np.atleast_2d(np.asarray(candidates, dtype=float)).copy()
    n_rows = candidates.shape[0]

    # Greedy order per instance, fixed once from the initial candidate (this is
    # what the sequential implementation does as well).
    orders: list[list[int]] = []
    for k in range(n_rows):
        delta = candidates[k] - X_rows[k]
        changed = np.flatnonzero(~np.isclose(candidates[k], X_rows[k]))
        ranked = changed[np.argsort(np.abs(delta / generator.scale_)[changed])]
        orders.append([int(j) for j in ranked])

    active = [k for k in range(n_rows) if orders[k]]
    while active:
        trials: list[np.ndarray] = []
        spans: list[tuple[int, int]] = []
        for k in active:
            trial = candidates[k].copy()
            rows = []
            for column in orders[k]:
                trial[column] = X_rows[k, column]
                rows.append(trial.copy())
            trials.append(np.stack(rows))
            spans.append((k, len(orders[k])))
        predictions = generator._predict(np.vstack(trials))

        offset = 0
        next_active: list[int] = []
        for k, length in spans:
            block = predictions[offset:offset + length]
            offset += length
            order = orders[k]
            failures = np.flatnonzero(block != generator.target_class)
            accepted = order if failures.size == 0 else order[: int(failures[0])]
            for column in accepted:
                candidates[k, column] = X_rows[k, column]
            orders[k] = [] if failures.size == 0 else order[int(failures[0]) + 1:]
            if orders[k]:
                next_active.append(k)
        active = next_active
    return candidates


def lockstep_candidate_search(
    generator,
    X: np.ndarray,
    draw: Callable[[np.random.Generator, np.ndarray, int], np.ndarray],
    n_steps: int,
) -> list[Counterfactual | None]:
    """Cross-instance rejection-sampling search over a widening schedule.

    All instances advance through the radius/shell schedule in lockstep: one
    step draws each still-unsolved instance's candidate matrix (from its OWN
    freshly seeded random stream, preserving the sequential draws exactly),
    projects the resulting ``(n_unsolved, n_candidates, d)`` tensor through
    the actionability constraints in one shot, and issues a single
    ``model.predict`` over all candidates of all unsolved instances — instead
    of ``n_instances × n_steps`` separate predicts.  Solved instances keep
    their best (minimum-distance) hit and drop out of later steps, exactly as
    the sequential search stops consuming its random stream once it returns.
    """
    from .counterfactual import counterfactual_distance
    from ..utils import check_random_state

    X = np.atleast_2d(np.asarray(X, dtype=float))
    n_instances, n_features = X.shape
    rngs = [check_random_state(generator.random_state) for _ in range(n_instances)]
    unsolved = list(range(n_instances))
    chosen: dict[int, np.ndarray] = {}

    for step in range(n_steps):
        if not unsolved:
            break
        candidates = np.stack([draw(rngs[i], X[i], step) for i in unsolved])
        projected = generator.constraints.project(X[unsolved][:, None, :], candidates)
        predictions = generator._predict(
            projected.reshape(-1, n_features)
        ).reshape(len(unsolved), -1)

        still_unsolved: list[int] = []
        for k, i in enumerate(unsolved):
            hits = np.flatnonzero(predictions[k] == generator.target_class)
            if hits.size == 0:
                still_unsolved.append(i)
                continue
            distances = np.array([
                counterfactual_distance(X[i], projected[k, h], scale=generator.scale_,
                                        metric=generator.metric)
                for h in hits
            ])
            chosen[i] = projected[k, hits[np.argmin(distances)]]
        unsolved = still_unsolved

    results: list[Counterfactual | None] = [None] * n_instances
    solved = sorted(chosen)
    if solved:
        sparse = greedy_sparsify_batch(generator, X[solved],
                                       np.stack([chosen[i] for i in solved]))
        for i, result in zip(solved, generator._make_results_batch(X[solved], sparse)):
            results[i] = result
    return results


class CounterfactualEngine:
    """Batched front-end over a counterfactual generator.

    Parameters
    ----------
    generator:
        Any :class:`~fairexp.explanations.counterfactual.BaseCounterfactualGenerator`.
    adapt_model:
        When ``True`` (the default) the generator's model is wrapped in a
        :class:`BatchModelAdapter` so every predict issued through the engine
        is counted; an already-wrapped model is left alone, letting several
        explainers share one adapter's counters.  The automatic wrap disables
        the adapter's memo: a cached adapter would keep serving stale labels
        if the underlying model were refit in place between audits.  Callers
        who know their model is frozen can pre-wrap with
        ``BatchModelAdapter(model, cache=True)`` themselves.
    """

    def __init__(self, generator, *, adapt_model: bool = True) -> None:
        self.generator = generator
        if adapt_model and not isinstance(generator.model, BatchModelAdapter):
            generator.model = BatchModelAdapter(generator.model, cache=False)

    # ------------------------------------------------------------ properties
    @property
    def adapter(self) -> BatchModelAdapter | None:
        model = self.generator.model
        return model if isinstance(model, BatchModelAdapter) else None

    @property
    def predict_call_count(self) -> int:
        adapter = self.adapter
        return adapter.predict_call_count if adapter is not None else 0

    # ------------------------------------------------------------ generation
    def generate_aligned(self, X) -> list[Counterfactual | None]:
        """Counterfactuals for every row of ``X`` (``None`` where infeasible)."""
        return self.generator.generate_batch_aligned(X)

    def generate_for(self, X, indices) -> dict[int, Counterfactual]:
        """Counterfactuals for ``X[indices]``, keyed by the original row index.

        Rows whose search exhausts its budget are simply absent from the
        result, mirroring the ``try/except InfeasibleRecourseError`` pattern
        the per-instance loops used.
        """
        X = np.asarray(X, dtype=float)
        indices = np.asarray(indices, dtype=int)
        if indices.size == 0:
            return {}
        results = self.generator.generate_batch_aligned(X[indices])
        return {
            int(i): result for i, result in zip(indices, results) if result is not None
        }
