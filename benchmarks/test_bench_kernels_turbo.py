"""Turbo tier vs. the exact numba tier at the 100x E1 scale (BENCH_KERNELS_TURBO.json).

The ``turbo`` kernel set trades the exact tiers' bitwise contract for
``fastmath=True, parallel=True`` throughput: prange over rows, no
pairwise-summation replication, no feature cap, compiled L2.  This module
times the distance and projection kernels — the two that dominate the 100x
E1 profile — on the same shapes as ``test_bench_kernels.py``, asserts the
compiled turbo tier beats the exact numba tier by at least
``MIN_TURBO_SPEEDUP``x in aggregate (the ISSUE acceptance bar), verifies
the observed numeric drift stays inside the documented
:data:`~fairexp.explanations.kernels.TURBO_KERNEL_TOLERANCES`, and records
timings, speedup and the measured deviations to ``BENCH_KERNELS_TURBO.json``.

Without parallel numba the speedup assertion is skipped (the threaded-NumPy
fallback is a compatibility path, not the perf claim), but the parity
checks still run against the fallback so the tier's numerics are exercised
everywhere.
"""

import time

import numpy as np
import pytest
from conftest import record

from fairexp.explanations import resolve_kernels
from fairexp.explanations import kernels as kernels_module
from fairexp.explanations.kernels import TURBO_KERNEL_TOLERANCES

# Same 100x-E1 shapes as test_bench_kernels.py: one lockstep wave's
# projection tensor plus the run's accumulated hit-distance pairs.
N_WAVE_ROWS = 2000
N_CANDIDATES = 200
N_FEATURES = 6
N_HITS = 60000

# Acceptance bar (compiled turbo only): aggregate distance+project wall
# time at least 1.5x faster than the exact numba tier.
MIN_TURBO_SPEEDUP = 1.5

HAVE_TURBO = bool(kernels_module._turbo_kernels())


def _workload():
    rng = np.random.default_rng(20260807)
    scale = rng.uniform(0.5, 2.0, size=N_FEATURES)
    X_hits = rng.normal(size=(N_HITS, N_FEATURES))
    hit_candidates = X_hits + rng.normal(size=X_hits.shape)
    x_wave = rng.normal(size=(N_WAVE_ROWS, 1, N_FEATURES))
    wave_candidates = x_wave + rng.normal(size=(N_WAVE_ROWS, N_CANDIDATES, N_FEATURES))
    constraints = {
        "immutable": np.array([True, False, False, False, False, True]),
        "lower": np.array([-np.inf, -1.0, np.nan, 0.0, -np.inf, -np.inf]),
        "upper": np.array([np.inf, 1.0, 2.0, np.nan, np.inf, np.inf]),
        "monotone": np.array([0, 1, -1, 0, 1, 0]),
    }
    return scale, X_hits, hit_candidates, x_wave, wave_candidates, constraints


def _best_of(runs, fn):
    """Minimum wall time of ``fn`` over ``runs`` calls (returns last result)."""
    best = np.inf
    result = None
    for _ in range(runs):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_turbo_vs_exact_numba_tier(benchmark):
    """Compiled turbo: >=1.5x over exact numba on distance+project, in-tolerance."""
    turbo = resolve_kernels("turbo")
    # The exact comparison tier: numba when installed, else the numpy
    # reference (fallback-only environments still exercise parity).
    exact = resolve_kernels("numba" if kernels_module.numba_version() else "numpy")
    scale, X_hits, hit_candidates, x_wave, wave_candidates, constraints = _workload()

    # Warm both tiers so JIT compilation never lands inside a timed run.
    for kernels in (exact, turbo):
        kernels.batch_counterfactual_distance(X_hits[:64], hit_candidates[:64],
                                              scale=scale, metric="l1")
        kernels.project_candidates(x_wave[:4], wave_candidates[:4], **constraints)

    exact_times: dict[str, float] = {}
    turbo_times: dict[str, float] = {}

    # 1. Batched hit distances, every metric the audits use.
    tol = TURBO_KERNEL_TOLERANCES["batch_counterfactual_distance"]
    max_distance_rel_dev = 0.0
    exact_distance_total = 0.0
    turbo_distance_total = 0.0
    for metric in ("l1", "l2", "l0"):
        exact_time, d_exact = _best_of(3, lambda m=metric: (
            exact.batch_counterfactual_distance(X_hits, hit_candidates,
                                                scale=scale, metric=m)))
        turbo_time, d_turbo = _best_of(3, lambda m=metric: (
            turbo.batch_counterfactual_distance(X_hits, hit_candidates,
                                                scale=scale, metric=m)))
        exact_distance_total += exact_time
        turbo_distance_total += turbo_time
        assert np.allclose(d_turbo, d_exact, rtol=tol["rtol"], atol=tol["atol"]), (
            f"turbo {metric} distances outside the documented tolerance"
        )
        denom = np.maximum(np.abs(d_exact), 1e-12)
        max_distance_rel_dev = max(
            max_distance_rel_dev, float(np.max(np.abs(d_turbo - d_exact) / denom))
        )
    exact_times["distance"] = exact_distance_total
    turbo_times["distance"] = turbo_distance_total

    # 2. Wave projection of the (pending, candidates, d) tensor — bitwise.
    exact_times["project"], p_exact = _best_of(3, lambda: exact.project_candidates(
        x_wave, wave_candidates, **constraints))
    turbo_times["project"], p_turbo = _best_of(3, lambda: turbo.project_candidates(
        x_wave, wave_candidates, **constraints))
    assert np.array_equal(p_exact, p_turbo), "turbo projection drifted (must be bitwise)"

    exact_total = sum(exact_times.values())
    turbo_total = sum(turbo_times.values())
    speedup = exact_total / turbo_total

    if HAVE_TURBO:
        assert speedup >= MIN_TURBO_SPEEDUP, (
            f"compiled turbo only {speedup:.2f}x over the exact numba tier "
            f"(need >={MIN_TURBO_SPEEDUP}x): exact={exact_times}, turbo={turbo_times}"
        )
    elif speedup < 1.0:
        # Fallback environments make no perf claim, but a drastic regression
        # versus the exact tier would still be a bug worth failing on.
        assert speedup >= 0.5, (
            f"threaded-NumPy turbo fallback {speedup:.2f}x slower than exact"
        )

    # One timed pass through the turbo side for pytest-benchmark stats.
    benchmark.pedantic(lambda: (
        turbo.batch_counterfactual_distance(X_hits, hit_candidates,
                                            scale=scale, metric="l1"),
        turbo.project_candidates(x_wave, wave_candidates, **constraints),
    ), rounds=1, iterations=1)

    record(benchmark, {
        "turbo_compiled": HAVE_TURBO,
        "turbo_speedup_vs_exact": speedup,
        "exact_total_seconds": exact_total,
        "turbo_total_seconds": turbo_total,
        **{f"exact_{name}_seconds": value for name, value in exact_times.items()},
        **{f"turbo_{name}_seconds": value for name, value in turbo_times.items()},
        "max_distance_relative_deviation": max_distance_rel_dev,
        "distance_rtol_bound": tol["rtol"],
        "exact_tier_name": exact.name,
        "n_hit_pairs": N_HITS,
        "wave_shape": f"{N_WAVE_ROWS}x{N_CANDIDATES}x{N_FEATURES}",
    }, experiment="KERNELS_TURBO")


@pytest.mark.skipif(not HAVE_TURBO, reason="parallel numba (turbo tier) not available")
def test_turbo_wide_rows_beat_numpy_reference(benchmark):
    """Beyond the exact tier's 128-feature cap, turbo still runs compiled."""
    d = kernels_module.NUMBA_MAX_REDUCE_FEATURES * 2
    rng = np.random.default_rng(20260807)
    X = rng.normal(size=(20000, d))
    candidates = X + rng.normal(size=X.shape)
    turbo = resolve_kernels("turbo")
    exact = resolve_kernels("numba")  # defers wide rows to the NumPy reference
    turbo.batch_counterfactual_distance(X[:64], candidates[:64])  # JIT warm-up

    exact_time, d_exact = _best_of(3, lambda: exact.batch_counterfactual_distance(
        X, candidates, metric="l1"))
    turbo_time, d_turbo = _best_of(3, lambda: turbo.batch_counterfactual_distance(
        X, candidates, metric="l1"))
    tol = TURBO_KERNEL_TOLERANCES["batch_counterfactual_distance"]
    assert np.allclose(d_turbo, d_exact, rtol=tol["rtol"], atol=tol["atol"])

    benchmark.pedantic(lambda: turbo.batch_counterfactual_distance(
        X, candidates, metric="l1"), rounds=1, iterations=1)
    record(benchmark, {
        "wide_exact_seconds": exact_time,
        "wide_turbo_seconds": turbo_time,
        "wide_speedup": exact_time / turbo_time,
        "n_features": d,
    }, experiment="KERNELS_TURBO")
