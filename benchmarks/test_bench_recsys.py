"""E10: explaining exposure unfairness in recommendation (CEF [87], CFairER [86],
edge-removal counterfactuals [84])."""

from conftest import record

from fairexp.experiments import run_e10_recsys


def test_recommendation_fairness_explanations(benchmark):
    results = record(benchmark, benchmark.pedantic(
        run_e10_recsys, kwargs={"n_users": 60, "n_items": 35}, rounds=1, iterations=1,
    ), experiment="E10")
    # The biased interactions produce clear exposure disparity against long-tail items.
    assert results["base_exposure_disparity"] > 0.3
    # CEF ranks the head-item marker feature as the top fairness explanation.
    assert results["cef_top_feature"] == "feature_0"
    assert results["cef_top_fairness_gain"] > 0.0
    # CFairER finds a small attribute set whose neutralization improves fairness.
    assert results["cfairer_improvement"] > 0.0
    assert results["cfairer_n_attributes"] <= 2
    # The best edge removal reduces exposure disparity (negative change).
    assert results["edge_best_exposure_change"] < 0.0
