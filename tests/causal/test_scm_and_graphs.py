"""Tests for structural causal models, causal graphs and contrastive scores."""

import numpy as np
import pytest

from fairexp.causal import (
    CausalGraph,
    StructuralCausalModel,
    StructuralEquation,
    all_causal_paths,
    contrastive_scores,
    fit_linear_scm_weights,
    path_effect,
    probability_of_necessity,
    probability_of_necessity_and_sufficiency,
    probability_of_sufficiency,
)
from fairexp.exceptions import ValidationError


def linear_scm(random_state=0):
    """x -> y -> z with known coefficients (y = 2x + u, z = 3y + u)."""
    return StructuralCausalModel(
        equations=[
            StructuralEquation("x", parents=(), func=lambda p, u: u,
                               noise=lambda r, n: r.normal(0, 1, n)),
            StructuralEquation("y", parents=("x",), func=lambda p, u: 2.0 * p["x"] + u,
                               noise=lambda r, n: r.normal(0, 0.5, n)),
            StructuralEquation("z", parents=("y",), func=lambda p, u: 3.0 * p["y"] + u,
                               noise=lambda r, n: r.normal(0, 0.5, n)),
        ],
        random_state=random_state,
    )


class TestSCMStructure:
    def test_topological_order(self):
        scm = linear_scm()
        order = scm.order
        assert order.index("x") < order.index("y") < order.index("z")

    def test_cycle_detection(self):
        with pytest.raises(ValidationError):
            StructuralCausalModel([
                StructuralEquation("a", parents=("b",), func=lambda p, u: p["b"]),
                StructuralEquation("b", parents=("a",), func=lambda p, u: p["a"]),
            ])

    def test_missing_parent_equation(self):
        with pytest.raises(ValidationError):
            StructuralCausalModel([
                StructuralEquation("a", parents=("ghost",), func=lambda p, u: u),
            ])

    def test_duplicate_variable(self):
        with pytest.raises(ValidationError):
            StructuralCausalModel([
                StructuralEquation("a", parents=(), func=lambda p, u: u),
                StructuralEquation("a", parents=(), func=lambda p, u: u),
            ])

    def test_to_networkx(self):
        graph = linear_scm().to_networkx()
        assert set(graph.edges) == {("x", "y"), ("y", "z")}


class TestSampling:
    def test_sample_shapes(self):
        sample = linear_scm().sample(500)
        assert set(sample) == {"x", "y", "z"}
        assert all(v.shape == (500,) for v in sample.values())

    def test_observational_relationships(self):
        sample = linear_scm().sample(4000)
        slope_yx = np.polyfit(sample["x"], sample["y"], 1)[0]
        slope_zy = np.polyfit(sample["y"], sample["z"], 1)[0]
        assert slope_yx == pytest.approx(2.0, abs=0.1)
        assert slope_zy == pytest.approx(3.0, abs=0.1)

    def test_intervention_breaks_dependence(self):
        sample = linear_scm().sample(3000, interventions={"y": 1.0})
        assert np.allclose(sample["y"], 1.0)
        # Under do(y=1), z no longer depends on x.
        correlation = np.corrcoef(sample["x"], sample["z"])[0, 1]
        assert abs(correlation) < 0.1

    def test_sample_matrix_column_order(self):
        matrix = linear_scm().sample_matrix(100, variables=["z", "x"])
        assert matrix.shape == (100, 2)

    def test_total_effect(self):
        effect = linear_scm().total_effect("x", "z", baseline=0.0, alternative=1.0,
                                           n_samples=4000)
        assert effect == pytest.approx(6.0, abs=0.3)


class TestCounterfactuals:
    def test_abduction_recovers_noise(self):
        scm = linear_scm()
        observation = {"x": 1.0, "y": 2.5, "z": 8.0}
        noise = scm.abduct_noise(observation)
        assert noise["y"][0] == pytest.approx(0.5)   # y - 2x
        assert noise["z"][0] == pytest.approx(0.5)   # z - 3y

    def test_counterfactual_propagates_downstream(self):
        scm = linear_scm()
        observation = {"x": 1.0, "y": 2.5, "z": 8.0}
        counterfactual = scm.counterfactual(observation, {"x": 2.0})
        # y_cf = 2*2 + 0.5 = 4.5, z_cf = 3*4.5 + 0.5 = 14.0
        assert counterfactual["y"] == pytest.approx(4.5)
        assert counterfactual["z"] == pytest.approx(14.0)

    def test_counterfactual_identity_intervention(self):
        scm = linear_scm()
        observation = {"x": 1.0, "y": 2.5, "z": 8.0}
        counterfactual = scm.counterfactual(observation, {"x": 1.0})
        assert counterfactual["z"] == pytest.approx(observation["z"])

    def test_missing_variable_in_observation(self):
        with pytest.raises(ValidationError):
            linear_scm().abduct_noise({"x": 1.0})


class TestCausalGraph:
    def test_dag_validation(self):
        with pytest.raises(ValidationError):
            CausalGraph([("a", "b"), ("b", "a")])

    def test_paths_enumeration(self):
        graph = CausalGraph([("s", "m"), ("m", "y"), ("s", "y")])
        paths = all_causal_paths(graph, "s", "y")
        assert ("s", "y") in paths
        assert ("s", "m", "y") in paths
        assert len(paths) == 2

    def test_parents_children_descendants(self):
        graph = CausalGraph([("a", "b"), ("b", "c")])
        assert graph.parents("b") == ["a"]
        assert graph.children("b") == ["c"]
        assert graph.descendants("a") == {"b", "c"}
        assert graph.ancestors("c") == {"a", "b"}

    def test_linear_weight_recovery(self):
        scm = linear_scm()
        sample = scm.sample(3000)
        graph = CausalGraph([("x", "y"), ("y", "z")])
        weights = fit_linear_scm_weights(graph, sample)
        assert weights[("x", "y")] == pytest.approx(2.0, abs=0.1)
        assert weights[("y", "z")] == pytest.approx(3.0, abs=0.1)
        assert path_effect(("x", "y", "z"), weights) == pytest.approx(6.0, abs=0.5)


class TestContrastiveScores:
    def test_deterministic_positive_effect(self):
        factor = np.array([1, 1, 1, 0, 0, 0])
        outcome = np.array([1, 1, 1, 0, 0, 0])
        scores = contrastive_scores(factor, outcome)
        assert scores.necessity == pytest.approx(1.0)
        assert scores.sufficiency == pytest.approx(1.0)
        assert scores.necessity_and_sufficiency == pytest.approx(1.0)

    def test_no_effect(self):
        factor = np.array([1, 0, 1, 0])
        outcome = np.array([1, 1, 0, 0])
        assert probability_of_necessity_and_sufficiency(factor, outcome) == pytest.approx(0.0)

    def test_scores_in_unit_interval(self, rng):
        factor = rng.integers(0, 2, 500)
        outcome = rng.integers(0, 2, 500)
        assert 0 <= probability_of_necessity(factor, outcome) <= 1
        assert 0 <= probability_of_sufficiency(factor, outcome) <= 1

    def test_non_binary_rejected(self):
        with pytest.raises(ValidationError):
            probability_of_necessity([0, 1, 2], [0, 1, 1])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            probability_of_necessity([0, 1], [0, 1, 1])
