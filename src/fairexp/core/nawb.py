"""Normalized Accuracy-Weighted Burden (NAWB), Kuratomi et al. [73].

NAWB integrates the counterfactual burden with the false-negative rate so that
groups whose qualified members are both *wrongly rejected* and *far from
recourse* receive a higher unfairness score:

    NAWB_g = sum_{i in FN_g} distance(x_i, x_i') / (L * |{x : G = g, y = 1}|)

where ``L`` is the number of features (normalizing the distance so NAWB is
comparable across datasets) and the denominator counts the group's truly
qualified members.  Equivalently NAWB_g = FNR_g * mean_burden(FN_g) / L.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ValidationError
from ..explanations.base import ExplainerInfo, ExplainerRegistry
from ..explanations.counterfactual import BaseCounterfactualGenerator
from ..explanations.session import AuditSession
from ..fairness.groups import group_masks

__all__ = ["NAWBGroupResult", "NAWBResult", "NAWBExplainer"]


@dataclass
class NAWBGroupResult:
    """NAWB and its ingredients for one group."""

    group: int
    nawb: float
    false_negative_rate: float
    mean_burden_of_false_negatives: float
    n_positive_label: int
    n_false_negatives: int
    n_with_recourse: int


@dataclass
class NAWBResult:
    """NAWB for the protected and reference groups."""

    protected: NAWBGroupResult
    reference: NAWBGroupResult

    @property
    def gap(self) -> float:
        """NAWB(protected) - NAWB(reference); positive means the protected group is worse off."""
        return self.protected.nawb - self.reference.nawb

    def as_dict(self) -> dict[str, float]:
        """The result as a plain JSON-serializable dict."""
        return {
            "nawb_protected": self.protected.nawb,
            "nawb_reference": self.reference.nawb,
            "nawb_gap": self.gap,
            "fnr_protected": self.protected.false_negative_rate,
            "fnr_reference": self.reference.false_negative_rate,
        }


@ExplainerRegistry.register("nawb", capabilities=("fairness-explainer", "counterfactual-based"),
                            data_requirements=("labels",))
class NAWBExplainer:
    """Compute NAWB per group using any counterfactual generator.

    Counterfactual generation for the false negatives of each group runs
    through the batched :class:`~fairexp.explanations.engine.CounterfactualEngine`.
    With a shared :class:`~fairexp.explanations.session.AuditSession` the
    false negatives are a subset of the rows a burden audit already
    explained, so NAWB costs no additional engine pass at all.
    """

    info = ExplainerInfo(
        stage="post-hoc",
        access="black-box",
        agnostic=True,
        coverage="global",
        explanation_type="example",
        multiplicity="multiple",
    )

    def __init__(self, generator: BaseCounterfactualGenerator | None = None, *,
                 session: AuditSession | None = None) -> None:
        # Private sessions are refit-safe (see BurdenExplainer); shared ones
        # pin a frozen model and keep results across audits.
        self.session, self._owns_session = AuditSession.ensure(generator, session)
        self.generator = self.session.generator
        self.engine = self.session.engine

    def explain(self, X, y_true, sensitive, *, protected_value=1) -> NAWBResult:
        """Return per-group NAWB on labelled data."""
        X = np.asarray(X, dtype=float)
        y_true = np.asarray(y_true, dtype=int)
        sensitive = np.asarray(sensitive)
        if X.shape[0] != y_true.shape[0]:
            raise ValidationError("X and y_true must align")
        if self._owns_session:
            self.session.reset_results()
        predictions = np.asarray(self.session.predict(X))
        masks = group_masks(sensitive, protected_value=protected_value)
        n_features = X.shape[1]

        results: dict[int, NAWBGroupResult] = {}
        for group_value, mask in ((1, masks.protected), (0, masks.reference)):
            positive_label = mask & (y_true == 1)
            false_negatives = positive_label & (predictions == 0)
            fn_idx = np.flatnonzero(false_negatives)

            generated = self.session.counterfactuals_for(X, fn_idx)
            distances = np.asarray(
                [generated[i].distance for i in fn_idx if i in generated], dtype=float
            )

            n_positive = int(positive_label.sum())
            total_distance = float(distances.sum())
            nawb = total_distance / (n_features * n_positive) if n_positive else 0.0
            fnr = float(false_negatives.sum() / n_positive) if n_positive else 0.0
            results[group_value] = NAWBGroupResult(
                group=group_value,
                nawb=nawb,
                false_negative_rate=fnr,
                mean_burden_of_false_negatives=(
                    float(distances.mean()) if distances.size else 0.0
                ),
                n_positive_label=n_positive,
                n_false_negatives=int(fn_idx.shape[0]),
                n_with_recourse=int(distances.shape[0]),
            )

        return NAWBResult(protected=results[1], reference=results[0])
