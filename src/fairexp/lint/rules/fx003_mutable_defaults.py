"""FX003 — no mutable default arguments.

A ``def f(xs=[])`` default is evaluated once and shared across calls —
state leaks between engine runs and across threads.  Use ``None`` and
materialise inside the body.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING

from ..engine import Rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from collections.abc import Iterable

    from ..engine import FileContext, Finding

_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray", "defaultdict"})


def _is_mutable(default: ast.AST) -> bool:
    """True for list/dict/set literals, comprehensions and factory calls."""
    if isinstance(default, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(default, (ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(default, ast.Call) and isinstance(default.func, ast.Name):
        return default.func.id in _MUTABLE_CALLS
    return False


class MutableDefaultRule(Rule):
    """Flag mutable default argument values."""

    code = "FX003"
    summary = "mutable default argument (shared across calls)"
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef)

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        """Flag each parameter whose default is a mutable literal/factory."""
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        positional = node.args.posonlyargs + node.args.args
        for arg, default in zip(
            positional[len(positional) - len(node.args.defaults) :],
            node.args.defaults,
        ):
            if _is_mutable(default):
                yield self._flag(ctx, default, node.name, arg.arg)
        for arg, default in zip(node.args.kwonlyargs, node.args.kw_defaults):
            if default is not None and _is_mutable(default):
                yield self._flag(ctx, default, node.name, arg.arg)

    def _flag(
        self, ctx: FileContext, default: ast.AST, func: str, param: str
    ) -> Finding:
        """Build the finding for one mutable default."""
        return self.finding(
            ctx,
            default,
            f"mutable default {ast.unparse(default)!r} for parameter "
            f"'{param}' of {func}() is shared across calls; default to None",
        )
