"""Global feature-importance explanations: permutation importance and PDP/ICE."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..exceptions import ValidationError
from ..models.metrics import accuracy_score
from ..utils import check_random_state
from .base import ExplainerInfo, FeatureAttribution

__all__ = ["permutation_importance", "partial_dependence", "individual_conditional_expectation",
           "PermutationImportanceExplainer"]


def permutation_importance(
    model,
    X,
    y,
    *,
    scoring: Callable[[np.ndarray, np.ndarray], float] = accuracy_score,
    n_repeats: int = 5,
    feature_names: Sequence[str] | None = None,
    random_state=None,
) -> FeatureAttribution:
    """Model-agnostic global importance: drop in score when a column is shuffled.

    The importance of feature ``j`` is ``score(original) - mean(score with
    column j permuted)`` over ``n_repeats`` shuffles.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y)
    rng = check_random_state(random_state)
    baseline = scoring(y, model.predict(X))
    importances = np.zeros(X.shape[1])
    for j in range(X.shape[1]):
        drops = []
        for _ in range(n_repeats):
            permuted = X.copy()
            permuted[:, j] = rng.permutation(permuted[:, j])
            drops.append(baseline - scoring(y, model.predict(permuted)))
        importances[j] = float(np.mean(drops))
    names = list(feature_names) if feature_names is not None else [f"x{j}" for j in range(X.shape[1])]
    return FeatureAttribution(
        feature_names=names, values=importances, baseline=baseline,
        meta={"method": "permutation", "n_repeats": n_repeats},
    )


def partial_dependence(
    model, X, feature_index: int, *, grid_size: int = 20
) -> tuple[np.ndarray, np.ndarray]:
    """Partial dependence of the positive-class probability on one feature.

    Returns ``(grid, pd_values)`` where ``pd_values[i]`` is the mean predicted
    probability when the feature is clamped to ``grid[i]`` for every sample.
    """
    X = np.asarray(X, dtype=float)
    if not 0 <= feature_index < X.shape[1]:
        raise ValidationError("feature_index out of range")
    values = X[:, feature_index]
    grid = np.linspace(values.min(), values.max(), grid_size)
    pd_values = np.zeros(grid_size)
    for i, value in enumerate(grid):
        clamped = X.copy()
        clamped[:, feature_index] = value
        pd_values[i] = float(np.asarray(model.predict_proba(clamped))[:, 1].mean())
    return grid, pd_values


def individual_conditional_expectation(
    model, X, feature_index: int, *, grid_size: int = 20, max_samples: int = 50, random_state=None
) -> tuple[np.ndarray, np.ndarray]:
    """ICE curves: per-sample response to clamping one feature across a grid.

    Returns ``(grid, curves)`` with ``curves`` of shape ``(n_selected, grid_size)``.
    """
    X = np.asarray(X, dtype=float)
    rng = check_random_state(random_state)
    idx = rng.permutation(X.shape[0])[: min(max_samples, X.shape[0])]
    subset = X[idx]
    values = X[:, feature_index]
    grid = np.linspace(values.min(), values.max(), grid_size)
    curves = np.zeros((subset.shape[0], grid_size))
    for i, value in enumerate(grid):
        clamped = subset.copy()
        clamped[:, feature_index] = value
        curves[:, i] = np.asarray(model.predict_proba(clamped))[:, 1]
    return grid, curves


class PermutationImportanceExplainer:
    """Object wrapper over :func:`permutation_importance` carrying taxonomy metadata."""

    info = ExplainerInfo(
        stage="post-hoc",
        access="black-box",
        agnostic=True,
        coverage="global",
        explanation_type="feature",
        multiplicity="single",
    )

    def __init__(self, model, *, n_repeats: int = 5, feature_names=None, random_state=None) -> None:
        self.model = model
        self.n_repeats = n_repeats
        self.feature_names = feature_names
        self.random_state = random_state

    def explain(self, X, y) -> FeatureAttribution:
        """Permutation importances of every feature on ``(X, y)``."""
        return permutation_importance(
            self.model, X, y,
            n_repeats=self.n_repeats, feature_names=self.feature_names,
            random_state=self.random_state,
        )
