"""Session-scoped persistent executor pools for sharded search.

Before this module existed, every sharded
:meth:`~fairexp.explanations.engine.CounterfactualEngine.generate_aligned`
call constructed (and tore down) its own ``ThreadPoolExecutor`` or
``ProcessPoolExecutor``.  Thread pools make that merely wasteful; process
pools make it expensive — each call re-spawned workers, re-imported numpy
and re-unpickled the model, easily dwarfing the shard work itself on the
multi-audit sweeps an :class:`~fairexp.explanations.session.AuditSession`
runs.

:class:`ExecutorPool` amortizes that: one pool object owns at most one live
executor per kind (``"thread"`` / ``"process"``), created lazily on first
use and reused by every subsequent sharded pass — an
:class:`~fairexp.explanations.session.AuditSession` builds one pool and
threads it into every engine call, so a whole sweep with
``executor="process"`` constructs exactly **one** ``ProcessPoolExecutor``
(asserted via a counting factory double in
``tests/explanations/test_pool.py``).  Shard *results* are unaffected:
shards are deterministic and every instance seeds its own random stream, so
pooled and per-call execution are bitwise-identical.

Shutdown is deterministic: pools are context managers, and the session's
own context-manager exit closes the pool it created.  A broken process
pool (e.g. a worker killed mid-sweep) is :meth:`~ExecutorPool.reset` by the
engine, which then falls back to thread sharding for that call; the next
process-sharded call lazily builds a fresh pool.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

from ..exceptions import ValidationError

__all__ = ["ExecutorPool"]

_KINDS = ("thread", "process")


class ExecutorPool:
    """Lazy, reusable thread/process executor pair with deterministic shutdown.

    Parameters
    ----------
    max_workers:
        Worker count for each executor this pool creates.  ``None`` (the
        default) sizes executors to the machine: ``os.cpu_count()``.
        Sizing is fixed at creation — a later request needing more shards
        than workers simply queues them, which cannot change results
        (shards are deterministic and independent).
    thread_factory, process_factory:
        Executor constructors, injectable so tests can count constructions
        or substitute doubles.  Defaults are the ``concurrent.futures``
        classes.

    Attributes
    ----------
    created_counts:
        Mapping ``kind -> number of executors constructed`` over the pool's
        lifetime — the observable the "exactly one ProcessPoolExecutor per
        session sweep" acceptance test asserts on.
    """

    def __init__(self, *, max_workers: int | None = None,
                 thread_factory=ThreadPoolExecutor,
                 process_factory=ProcessPoolExecutor) -> None:
        self.max_workers = max_workers
        self._factories = {"thread": thread_factory, "process": process_factory}
        self._executors: dict[str, object] = {}
        self.created_counts: dict[str, int] = {kind: 0 for kind in _KINDS}
        self._lock = threading.Lock()
        self._closed = False

    @staticmethod
    def ensure(pool) -> "ExecutorPool":
        """Coerce ``pool`` (an :class:`ExecutorPool` or ``None``) to a pool."""
        if pool is None:
            return ExecutorPool()
        if not isinstance(pool, ExecutorPool):
            raise ValidationError(
                f"pool must be an ExecutorPool or None, got {type(pool).__name__}"
            )
        return pool

    # ------------------------------------------------------------ executors
    def executor(self, kind: str):
        """The live executor of ``kind`` (``"thread"`` / ``"process"``),
        created lazily on first request and reused afterwards."""
        if kind not in _KINDS:
            raise ValidationError(f"executor kind must be one of {_KINDS}, got {kind!r}")
        with self._lock:
            if self._closed:
                raise ValidationError("ExecutorPool is closed")
            executor = self._executors.get(kind)
            if executor is None:
                workers = self.max_workers or os.cpu_count() or 1
                executor = self._factories[kind](max_workers=workers)
                self._executors[kind] = executor
                self.created_counts[kind] += 1
            return executor

    def active_kinds(self) -> list[str]:
        """Kinds whose executor is currently alive (constructed, not reset)."""
        with self._lock:
            return sorted(self._executors)

    # ------------------------------------------------------------- lifecycle
    def reset(self, kind: str) -> None:
        """Tear down one executor so the next request builds a fresh one.

        This is the engine's escape hatch for a broken process pool: the
        dead executor is shut down without waiting, forgotten, and the call
        that observed the breakage falls back to thread sharding.
        """
        with self._lock:
            executor = self._executors.pop(kind, None)
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    def shutdown(self, wait: bool = True) -> None:
        """Shut down every live executor; the pool refuses further use."""
        with self._lock:
            executors = list(self._executors.values())
            self._executors.clear()
            self._closed = True
        for executor in executors:
            executor.shutdown(wait=wait)

    def __del__(self):
        # Best-effort backstop for callers that never reach close()/__exit__:
        # when the last reference to the pool (typically its owning
        # AuditSession) is collected, live workers are shut down instead of
        # lingering until interpreter exit.  Deterministic teardown still
        # belongs to the context manager / shutdown().
        try:
            self.shutdown(wait=False)
        except Exception:
            pass

    def __enter__(self) -> "ExecutorPool":
        """Enter a ``with`` block; the pool shuts down on exit."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Deterministically shut down all executors on block exit."""
        self.shutdown()

    def __repr__(self) -> str:
        state = "closed" if self._closed else ",".join(self.active_kinds()) or "idle"
        return f"ExecutorPool(max_workers={self.max_workers}, {state})"
