"""Machine-readable taxonomies (Figures 1-2) and the Table I approach registry.

The paper's display items are two taxonomy figures and one comparison table.
This module encodes them as data structures and provides text renderers, so
the benchmarks can regenerate every figure and table directly from the
library — and cross-check the Table I rows against the classes that actually
implement each surveyed approach.  Implementations are discovered through
:class:`fairexp.explanations.ExplainerRegistry` (every explainer registers
itself at import time) rather than hard-coded import lists.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..explanations.base import ExplainerRegistry

__all__ = [
    "TaxonomyNode",
    "fairness_taxonomy",
    "explanation_taxonomy",
    "render_taxonomy",
    "ApproachEntry",
    "TABLE_I",
    "render_table_i",
    "implemented_class",
    "registry_figure2_coverage",
]


@dataclass
class TaxonomyNode:
    """A node of a taxonomy tree."""

    name: str
    children: list["TaxonomyNode"] = field(default_factory=list)

    def add(self, *names: str) -> "TaxonomyNode":
        """Append child nodes named ``names``; returns ``self`` for chaining."""
        for name in names:
            self.children.append(TaxonomyNode(name))
        return self

    def find(self, name: str) -> "TaxonomyNode | None":
        """The first node named ``name`` in this subtree, or ``None``."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None

    def leaves(self) -> list[str]:
        """The names of every leaf under (or at) this node."""
        if not self.children:
            return [self.name]
        result = []
        for child in self.children:
            result.extend(child.leaves())
        return result

    def size(self) -> int:
        """Number of nodes in this subtree, including this one."""
        return 1 + sum(child.size() for child in self.children)


def fairness_taxonomy() -> TaxonomyNode:
    """Figure 1: taxonomy of fairness approaches."""
    root = TaxonomyNode("Fairness")

    level = TaxonomyNode("Level of fairness")
    individual = TaxonomyNode("Individual")
    individual.add("Distance-based (fairness through awareness)", "Counterfactual fairness")
    group = TaxonomyNode("Group")
    group.add(
        "Base rates (statistical parity / disparate impact)",
        "Accuracy-based (equal opportunity / equalized odds)",
        "Calibration-based",
    )
    level.children = [individual, group]

    criteria = TaxonomyNode("Fairness criteria")
    criteria.add("Observational", "Causal")

    stage = TaxonomyNode("Stage of mitigation")
    stage.add("Pre-processing", "In-processing", "Post-processing")

    tasks = TaxonomyNode("Task")
    classification = TaxonomyNode("Classification")
    ranking = TaxonomyNode("Ranking / recommendation")
    ranking.add(
        "Consumer-side vs producer-side",
        "Exposure-based",
        "Probability-based",
    )
    graphs = TaxonomyNode("Graphs")
    graphs.add(
        "Representation learning",
        "Node classification",
        "Link prediction",
        "Graph clustering",
        "Recommendation over graphs",
    )
    clustering = TaxonomyNode("Clustering")
    tasks.children = [classification, ranking, graphs, clustering]

    modality = TaxonomyNode("Data modality")
    modality.add("Tabular", "Text", "Image", "Video", "Graphs / KGs")

    extra = TaxonomyNode("Fairness in explanations")
    extra.add(
        "Explanation-quality parity (fidelity / stability / sparsity)",
        "Diversity of explanations",
    )

    root.children = [level, criteria, stage, tasks, modality, extra]
    return root


def explanation_taxonomy() -> TaxonomyNode:
    """Figure 2: taxonomy of explanation approaches."""
    root = TaxonomyNode("Explanations")

    stage = TaxonomyNode("Stage")
    stage.add("Intrinsic", "Pre-process / data-based")
    post_hoc = TaxonomyNode("Post-hoc")

    access = TaxonomyNode("Model access")
    access.add("White-box (complete access)", "Gradient access", "Black-box")

    agnosticism = TaxonomyNode("Model agnosticism")
    agnosticism.add("Model-agnostic", "Model-specific")

    coverage = TaxonomyNode("Coverage")
    coverage.add("Global", "Local")

    multiplicity = TaxonomyNode("Multiplicity")
    multiplicity.add("Single explanation", "Multiple explanations")

    explanation_type = TaxonomyNode("Explanation type")
    feature = TaxonomyNode("Feature-based")
    feature.add("Feature importance", "Partial dependence plots", "Shapley values (SHAP)")
    example = TaxonomyNode("Example-based")
    example.add(
        "Counterfactual explanations",
        "Actionable recourse",
        "Prototypes",
        "Nearest neighbours",
        "Influence-based",
        "Contrastive",
    )
    approximation = TaxonomyNode("Approximation-based")
    approximation.add("Surrogate models (local / global)", "Rule-based")
    explanation_type.children = [feature, example, approximation]

    post_hoc.children = [access, agnosticism, coverage, multiplicity, explanation_type]
    stage.children.append(post_hoc)

    task = TaxonomyNode("Task-specific explanations")
    task.add("Classification", "Recommendation", "Ranking", "Graphs / GNNs / KGs")

    root.children = [stage, task]
    return root


def render_taxonomy(node: TaxonomyNode, *, indent: str = "") -> str:
    """Render a taxonomy tree as an indented text outline."""
    lines = [f"{indent}{node.name}"]
    for child in node.children:
        lines.append(render_taxonomy(child, indent=indent + "  "))
    return "\n".join(lines)


# --------------------------------------------------------------------------
# Table I registry
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class ApproachEntry:
    """One row of Table I: a surveyed approach for explaining (un)fairness.

    ``implementation`` names the fairexp class (module-qualified, relative to
    ``fairexp``) that reproduces the approach, so the table can be verified
    against the code.
    """

    reference: str
    name: str
    stage: str            # Post / Intrinsic / Data
    access: str           # B (black-box) / G (gradient) / W (white-box)
    agnostic: str         # A / S
    coverage: str         # G / L / Both
    explanation_type: str
    output: str
    fairness_level: str   # Group / Individual / Both
    fairness_type: str
    task: str             # Clf / Recs / Rank
    goal: str             # E / U / M combinations
    implementation: str


TABLE_I: list[ApproachEntry] = [
    ApproachEntry("[10]", "Probabilistic contrastive counterfactuals", "Post", "B", "A", "Both",
                  "Contrastive CFEs", "Probabilistic contrastive actionable recourses", "Both",
                  "Fairness of recourse", "Clf", "U",
                  "core.probabilistic_contrastive.ProbabilisticContrastiveExplainer"),
    ApproachEntry("[63]", "Gopher (data-based explanations)", "Post", "G", "S", "G",
                  "Influence-based", "Predicate-based causal", "Group",
                  "Base-Rates/Accuracy-Based", "Clf", "U, M",
                  "core.data_explanations.GopherExplainer"),
    ApproachEntry("[71]", "PreCoF", "Post", "B", "A", "L", "CFE",
                  "Most significant feature change", "Group", "Implicit/Explicit bias", "Clf", "U",
                  "core.precof.PreCoFExplainer"),
    ApproachEntry("[72]", "CERTIFAI burden", "Post", "B", "A", "L", "CFE", "CFEs", "Both",
                  "Burden", "Clf", "E, U", "core.burden.BurdenExplainer"),
    ApproachEntry("[73]", "NAWB", "Post", "B", "A", "G", "CFE", "Burden", "Both", "Burden",
                  "Clf", "E, U", "core.nawb.NAWBExplainer"),
    ApproachEntry("[74]", "Two-level recourse sets (AReS)", "Post", "B", "A", "Both", "Recourse",
                  "Two level Recourse Sets", "Both", "User study", "Clf", "U",
                  "core.recourse_sets.RecourseSetExplainer"),
    ApproachEntry("[75]", "GLOBE-CE", "Post", "B", "A", "G", "CFE", "CFEs", "Group",
                  "Fairness of recourse", "Clf", "U", "core.globe_ce.GlobeCEExplainer"),
    ApproachEntry("[77]", "FACTS", "Post", "B", "A", "G", "CFE", "CFEs", "Group",
                  "Fairness of recourse", "Clf", "E, U", "core.facts.FACTSExplainer"),
    ApproachEntry("[82]", "Causal path decomposition", "Post", "B", "A", "G", "Recourse",
                  "Causal path", "Group", "Base-Rates", "Clf", "U, M",
                  "core.causal_paths.CausalPathExplainer"),
    ApproachEntry("[79]", "Equalizing recourse", "Post", "B", "A", "G", "Recourse", "Recourses",
                  "Group", "Fairness of recourse", "Clf", "E, M",
                  "core.fair_recourse.recourse_gap_report"),
    ApproachEntry("[80]", "Fair causal recourse", "Post", "B", "A", "Both", "Recourse",
                  "Recourses", "Both", "Fairness of recourse", "Clf", "E, M",
                  "core.fair_recourse.causal_recourse_fairness"),
    ApproachEntry("[89]", "Structural bias edge sets", "Post", "B", "A", "L", "CFE", "Edge-Set",
                  "Both", "Dist/on Distance-Based Base-Rates/Accuracy-Based", "Clf", "E, U, M",
                  "core.graph_explanations.StructuralBiasExplainer"),
    ApproachEntry("[81]", "Fairness Shapley values", "Post", "B", "A", "Both", "Shapley",
                  "Shapley based visualization", "Group", "Base-Rates", "Clf", "U, M",
                  "core.fairness_shap.FairnessShapExplainer"),
    ApproachEntry("[84]", "Edge-removal CFEs for recommendation bias", "Post", "B", "A", "Both",
                  "CFE", "CFEs", "Both", "Base-Rates", "Recs", "U",
                  "core.rec_explanations.EdgeRemovalExplainer"),
    ApproachEntry("[86]", "CFairER", "Post", "B", "A", "G", "CFE", "CFEs", "Group", "Exposure",
                  "Recs", "U, M", "core.rec_explanations.CFairERExplainer"),
    ApproachEntry("[87]", "CEF (explainable fairness)", "Post", "B", "A", "G", "CFE", "CFEs",
                  "Group", "Exposure", "Recs", "U, M", "core.rec_explanations.CEFExplainer"),
    ApproachEntry("[88]", "Dexer", "Post", "B", "A", "G", "Shapley",
                  "Attribute Shapley value distribution visualization", "Group", "Exposure",
                  "Rank", "U", "core.ranking_explanations.DexerExplainer"),
    ApproachEntry("[90]", "Training-node influence on bias", "Post", "G", "S", "G",
                  "Influence-based", "Node influence", "Group", "Base-Rates/Accuracy-Based",
                  "Clf", "E, U, M", "core.graph_explanations.NodeInfluenceExplainer"),
    ApproachEntry("[83]", "Gopher top-k data subsets", "Post", "B", "A", "G", "Contrastive",
                  "Top-k data subsets", "Group", "Base-Rates/Accuracy-Based", "Clf", "U, M",
                  "core.data_explanations.GopherExplainer"),
    ApproachEntry("[91]", "GNNUERS", "Post", "B", "A", "G", "CFE", "CFE", "Group", "Exposure",
                  "Recs", "U, M", "core.graph_explanations.GNNUERSExplainer"),
    ApproachEntry("[44]", "Fairness-aware KG path re-ranking", "Post", "B", "A", "Both",
                  "Example-based", "Top-k KG-path", "Both", "Constraints", "Recs", "E, U, M",
                  "core.graph_explanations.fairness_aware_path_rerank"),
    ApproachEntry("[65]", "Actionable recourse (SCM interventions)", "Post", "B", "A", "L",
                  "Recourse", "Flipsets / structural interventions", "Both",
                  "Fairness of recourse", "Clf", "U, M",
                  "core.actionable_recourse.CausalRecourseExplainer"),
]


def _ensure_registry_populated() -> None:
    # Registration happens as an import side effect of the explainer modules;
    # importing the core package pulls every one of them in.
    import fairexp.core  # noqa: F401


def implemented_class(entry: ApproachEntry):
    """Resolve a Table I row to the registered object implementing it.

    Resolution goes through :class:`ExplainerRegistry`: an approach counts as
    implemented only when its class (or function) registered itself, so the
    table verifies the registry rather than a hard-coded import list.
    Raises :class:`KeyError` when the row has no registered implementation.
    """
    _ensure_registry_populated()
    resolved = ExplainerRegistry.resolve_path(entry.implementation)
    if resolved is None:
        raise KeyError(
            f"Table I row {entry.reference} {entry.name!r}: no registered explainer "
            f"for {entry.implementation!r}"
        )
    return resolved


def registry_figure2_coverage() -> dict[str, int]:
    """Figure 2 leaf coverage of the *registered* explainers.

    Counts, per taxonomy axis value carried by :class:`ExplainerInfo`, how
    many registered explainers occupy it — letting the Figure 2 bench verify
    that the implemented surface spans the survey's dimensions.
    """
    _ensure_registry_populated()
    coverage: dict[str, int] = {"n_registered": 0}
    for entry in ExplainerRegistry.entries():
        if entry.info is None:
            continue
        coverage["n_registered"] += 1
        for axis, value in (
            ("stage", entry.info.stage),
            ("access", entry.info.access),
            ("coverage", entry.info.coverage),
            ("type", entry.info.explanation_type),
            ("multiplicity", entry.info.multiplicity),
        ):
            key = f"{axis}:{value}"
            coverage[key] = coverage.get(key, 0) + 1
    return coverage


def render_table_i(entries: list[ApproachEntry] | None = None) -> str:
    """Render the Table I comparison as fixed-width text.

    The final ``Impl`` column marks rows whose implementation resolves
    through the explainer registry.
    """
    _ensure_registry_populated()
    entries = entries if entries is not None else TABLE_I
    header = (
        "Appr.", "Stage", "Access", "Agn.", "Coverage", "Type", "Level", "Task", "Goal",
        "Impl",
    )
    rows = [header]
    for entry in entries:
        implemented = ExplainerRegistry.resolve_path(entry.implementation) is not None
        rows.append(
            (
                entry.reference,
                entry.stage,
                entry.access,
                entry.agnostic,
                entry.coverage,
                entry.explanation_type,
                entry.fairness_level,
                entry.task,
                entry.goal,
                "yes" if implemented else "no",
            )
        )
    widths = [max(len(str(row[i])) for row in rows) for i in range(len(header))]
    lines = []
    for index, row in enumerate(rows):
        line = "  ".join(str(value).ljust(widths[i]) for i, value in enumerate(row))
        lines.append(line)
        if index == 0:
            lines.append("-" * len(line))
    return "\n".join(lines)
