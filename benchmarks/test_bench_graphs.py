"""E12: explaining GNN unfairness (structural edge sets [89], node influence [90],
GNNUERS [91])."""

from conftest import record

from fairexp.experiments import run_e12_graphs


def test_graph_bias_explanations(benchmark):
    results = record(benchmark, benchmark.pedantic(
        run_e12_graphs, kwargs={"n_nodes": 90}, rounds=1, iterations=1,
    ), experiment="E12")
    # The homophilous biased graph yields a strongly disparate GCN.
    assert results["gcn_statistical_parity"] < -0.2
    assert results["base_soft_bias"] > 0.1
    # Removing the explained bias edges reduces (soft) disparity and beats
    # removing the same number of random edges.
    assert results["bias_after_explained_edges"] <= results["base_soft_bias"] + 1e-12
    assert bool(results["explained_beats_random"]) is True
    # Some training nodes measurably induce bias.
    assert results["top_node_influence"] > 0.0
    # GNNUERS never increases the consumer-side quality gap.
    assert results["gnnuers_final_gap"] <= results["gnnuers_base_gap"] + 1e-12
