"""Recommendation substrate: interactions, recommenders and exposure metrics."""

from .interactions import InteractionMatrix, make_biased_interactions
from .metrics import (
    exposure_disparity,
    item_group_exposure,
    ndcg_at_k,
    popularity_lift,
    precision_at_k,
    recall_at_k,
    user_group_quality_gap,
)
from .models import (
    BaseRecommender,
    ItemKNNRecommender,
    MatrixFactorization,
    RecWalkRecommender,
)

__all__ = [
    "InteractionMatrix",
    "make_biased_interactions",
    "BaseRecommender",
    "MatrixFactorization",
    "ItemKNNRecommender",
    "RecWalkRecommender",
    "precision_at_k",
    "recall_at_k",
    "ndcg_at_k",
    "item_group_exposure",
    "exposure_disparity",
    "user_group_quality_gap",
    "popularity_lift",
]
