"""Crash/resume: a sweep killed mid-run completes on resume, replaying the
already-journaled cells out of the persistent store at zero engine predict
calls.

The crash is a real one — a child process running ``run_sweep`` SIGKILLs
itself from the ``on_cell`` hook after its first completed cell, so neither
``finally`` blocks nor atexit hooks get to tidy anything up.  The resume is
the real entry point too — ``python -m fairexp sweep resume --json`` in a
fresh process, discovering the store through ``$FAIREXP_STORE_DIR`` exactly
as a user would after a crashed overnight sweep.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")

# 2 explainers x 2 schedules = 4 cells with 4 distinct store fingerprints
# (the schedule and the generator config are both part of the fingerprint).
SELECTION = {
    "where": {"explainer": ["growing_spheres", "random_search"],
              "schedule": ["geometric", "adaptive"],
              "backend": ["numpy"], "kernels": ["default"]},
    "overrides": {"n_samples": 300, "audit_size": 24},
}

CRASH_SCRIPT = textwrap.dedent("""\
    import os, signal, sys
    from fairexp.sweep import run_sweep

    def crash_after_first(result, done, total):
        print(f"completed {result.cell_id} ({done}/{total})", flush=True)
        if done == 1:
            os.kill(os.getpid(), signal.SIGKILL)

    run_sweep(
        ["E1/E2"],
        where={"explainer": ["growing_spheres", "random_search"],
               "schedule": ["geometric", "adaptive"],
               "backend": ["numpy"], "kernels": ["default"]},
        overrides={"n_samples": 300, "audit_size": 24},
        on_cell=crash_after_first,
    )
    sys.exit(3)  # unreachable: the hook killed us first
""")


def _env(store_dir):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    env["FAIREXP_STORE_DIR"] = str(store_dir)
    return env


def _resume_cli_args():
    args = [sys.executable, "-m", "fairexp", "sweep", "resume",
            "--spec", "E1/E2", "--json"]
    for factor, labels in SELECTION["where"].items():
        args += ["--where", f"{factor}={','.join(labels)}"]
    for key, value in SELECTION["overrides"].items():
        args += ["--set", f"{key}={value}"]
    return args


class TestCrashResume:
    def test_killed_sweep_resumes_with_zero_redundant_predicts(self, tmp_path):
        store = tmp_path / "store"
        script = tmp_path / "crash_sweep.py"
        script.write_text(CRASH_SCRIPT)

        crashed = subprocess.run(
            [sys.executable, str(script)], env=_env(store),
            capture_output=True, text=True, timeout=300,
        )
        # SIGKILL from inside on_cell: no exit-code-3 fallthrough, no cleanup.
        assert crashed.returncode == -signal.SIGKILL, crashed.stderr
        assert "completed E1/E2[explainer=growing_spheres,schedule=geometric" \
            in crashed.stdout

        journal_path = store / "SWEEP_JOURNAL.json"
        assert journal_path.exists(), "crash left no journal"
        journal = json.loads(journal_path.read_text())
        assert len(journal["cells"]) == 1  # exactly the one completed cell
        (crashed_cell_id,) = journal["cells"]
        assert journal["cells"][crashed_cell_id]["status"] == "completed"
        journaled_stats = journal["cells"][crashed_cell_id]["stats"]
        assert journaled_stats["engine_predict_calls"] > 0  # cold first pass

        resumed = subprocess.run(
            _resume_cli_args(), env=_env(store),
            capture_output=True, text=True, timeout=600,
        )
        assert resumed.returncode == 0, resumed.stderr
        payload = json.loads(resumed.stdout)

        assert payload["summary"]["emitted_cells"] == 4
        assert payload["summary"]["replayed_cells"] == 1
        assert payload["summary"]["diverged_cells"] == 0

        cells = {cell["cell_id"]: cell for cell in payload["cells"]}
        assert len(cells) == 4

        # The journaled cell replays warm: its counterfactual matrices come
        # back out of the persistent store, costing zero engine predict
        # calls, and its metrics verified bitwise against the journal
        # (status would be "diverged" otherwise).
        replayed = cells.pop(crashed_cell_id)
        assert replayed["replayed"] is True
        assert replayed["status"] == "completed"
        assert replayed["stats"]["engine_predict_calls"] == 0
        assert replayed["stats"]["store_row_hits"] > 0

        # The three cells the crash never reached run fresh (distinct store
        # fingerprints — nothing to reuse), paying real engine predicts.
        for cell in cells.values():
            assert cell["replayed"] is False
            assert cell["status"] == "completed"
            assert cell["stats"]["engine_predict_calls"] > 0

        # Accounting is exact: the summary totals are the per-cell sums.
        for key in ("engine_predict_calls", "store_row_hits",
                    "predict_call_count"):
            total = sum(cell["stats"].get(key, 0)
                        for cell in payload["cells"])
            assert payload["summary"][key] == total

        # A second resume replays everything at zero engine predict calls.
        final = subprocess.run(
            _resume_cli_args(), env=_env(store),
            capture_output=True, text=True, timeout=600,
        )
        assert final.returncode == 0, final.stderr
        final_payload = json.loads(final.stdout)
        assert final_payload["summary"]["replayed_cells"] == 4
        assert final_payload["summary"]["diverged_cells"] == 0
        assert final_payload["summary"]["engine_predict_calls"] == 0
        assert final_payload["summary"]["store_row_hits"] > 0
