"""Opt-in thread sanitizer for the shared-counter discipline.

``FAIREXP_TSAN=1`` swaps the lock primitives in ``backends.py`` /
``pool.py`` / ``serving.py`` (each constructs through :func:`make_lock` /
:func:`make_condition`) for instrumented wrappers, and arms the
:func:`guard_counters` class decorator those modules carry.  The guard
intercepts writes to the declared counter attributes and records which
thread last wrote each one:

* write while holding the owning lock — always legal (the lock serialises
  the transition, whichever thread performs it);
* unlocked write by the same thread that wrote last (or the first write,
  e.g. ``__init__``) — legal single-thread mutation;
* unlocked write by a *different* thread — a real data race; raises
  :class:`TsanError` at the mutation site, not wherever the corrupted
  count is eventually read.

With the variable unset every helper returns the plain ``threading``
primitive and the decorator leaves ``__setattr__`` untouched, so the
production hot path pays nothing.  Stdlib-only on purpose: the
explanations modules import this one, never the other way around.
"""

from __future__ import annotations

import os
import threading
import weakref

_ENV_VAR = "FAIREXP_TSAN"
_override: bool | None = None

# Last-writer idents per (object, counter): the transition log the guard
# checks unlocked writes against.  WeakKey so guarded objects stay
# collectable; the module lock keeps the registry itself race-free.
_owners: weakref.WeakKeyDictionary = weakref.WeakKeyDictionary()
_owners_lock = threading.Lock()


class TsanError(AssertionError):
    """An unlocked cross-thread mutation of a guarded counter."""


def tsan_enabled() -> bool:
    """True when the sanitizer is armed (env var or explicit override)."""
    if _override is not None:
        return _override
    return os.environ.get(_ENV_VAR, "") not in ("", "0")


def set_enabled(value: bool | None) -> None:
    """Force the sanitizer on/off (tests); ``None`` returns to the env var."""
    global _override
    _override = value


class TsanLock:
    """A ``threading.Lock`` that knows which thread holds it."""

    __slots__ = ("_lock", "_owner")

    def __init__(self) -> None:
        """Wrap a fresh non-reentrant lock with owner tracking."""
        self._lock = threading.Lock()
        self._owner: int | None = None

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        """Acquire the underlying lock, recording the owning thread."""
        acquired = self._lock.acquire(blocking, timeout)
        if acquired:
            self._owner = threading.get_ident()
        return acquired

    def release(self) -> None:
        """Release the underlying lock, clearing the owner first."""
        self._owner = None
        self._lock.release()

    def locked(self) -> bool:
        """True while any thread holds the lock."""
        return self._lock.locked()

    def held_by_current_thread(self) -> bool:
        """True when the calling thread is the current owner."""
        return self._owner == threading.get_ident()

    def __enter__(self) -> bool:
        """``with lock:`` support."""
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        """``with lock:`` support."""
        self.release()


def make_lock():
    """A mutex: :class:`TsanLock` when armed, plain ``threading.Lock`` not."""
    return TsanLock() if tsan_enabled() else threading.Lock()


def make_condition() -> threading.Condition:
    """A condition variable for guarded counters.

    ``threading.Condition`` already tracks ownership through its backing
    RLock (``_is_owned``), so the same object serves both modes; the
    guard asks it directly via :func:`held_by_current_thread`.
    """
    return threading.Condition()


def held_by_current_thread(lock: object) -> bool:
    """True when the calling thread holds ``lock`` (TsanLock or Condition)."""
    if isinstance(lock, threading.Condition):
        return lock._is_owned()
    if isinstance(lock, TsanLock):
        return lock.held_by_current_thread()
    return False


def _check_write(obj: object, name: str, lock_attr: str) -> None:
    """Validate one guarded-counter write; raise :class:`TsanError` on a race."""
    ident = threading.get_ident()
    lock = getattr(obj, lock_attr, None)
    with _owners_lock:
        try:
            owners = _owners.setdefault(obj, {})
        except TypeError:  # non-weakrefable object: nothing to track against
            return
        if held_by_current_thread(lock):
            owners[name] = ident
            return
        last = owners.get(name)
        if last is None or last == ident:
            owners[name] = ident
            return
    raise TsanError(
        f"unlocked cross-thread write to {type(obj).__name__}.{name}: "
        f"last written by thread {last}, now thread {ident} without "
        f"holding {lock_attr!r} (set under FAIREXP_TSAN=1)"
    )


def guard_counters(*names: str, lock_attr: str = "_lock"):
    """Class decorator: sanitize writes to ``names`` when TSAN is armed.

    The decorated class must keep its lock (or condition) in
    ``lock_attr``.  Writes made while holding it are always legal;
    unlocked writes are legal only while single-threaded (see the module
    docstring).  With the sanitizer off the per-write cost is one dict
    lookup and one env-var check.
    """
    guarded = frozenset(names)

    def decorate(cls):
        base_setattr = cls.__setattr__

        def __setattr__(self, name, value):
            if name in guarded and tsan_enabled():
                _check_write(self, name, lock_attr)
            base_setattr(self, name, value)

        cls.__setattr__ = __setattr__
        cls._tsan_guarded = guarded
        cls._tsan_lock_attr = lock_attr
        return cls

    return decorate
