"""FX005 — shared counters are mutated only under their owner's lock.

Applies to classes that own a lock (any ``self.<name> = <call>`` where
the attribute name contains ``lock`` or ``cond``): once a class carries a
lock, its counter attributes (``*_count``/``*_counts``/``*_calls``/
``rows_*``) may only be assigned inside a ``with self.<lock>`` block or
in a method the class has whitelisted as lock-holding — the ``_locked``
suffix convention from ``serving.py``, a ``LOCK_HOLDING_METHODS``
declaration, or ``__init__`` (single-threaded construction).

Lock-free classes (e.g. ``AuditSession``, which is documented as
single-threaded) are out of scope: the dynamic sanitizer
(:mod:`fairexp.lint.tsan`) covers the cross-object cases the static rule
cannot see.
"""

from __future__ import annotations

import ast
import re
from typing import TYPE_CHECKING

from ..engine import Rule
from .common import class_constant_names, is_test_path, self_attribute

if TYPE_CHECKING:  # pragma: no cover - typing only
    from collections.abc import Iterable

    from ..engine import FileContext, Finding

_COUNTER_RE = re.compile(r"(_counts?$|_calls$|^rows_)")
_LOCK_NAME_RE = re.compile(r"(lock|cond)", re.IGNORECASE)


def _is_counter(name: str) -> bool:
    """True for ``*_count``/``*_counts``/``*_calls``/``rows_*`` names."""
    return _COUNTER_RE.search(name) is not None


class CounterLockRule(Rule):
    """Flag unlocked counter mutation on lock-bearing classes."""

    code = "FX005"
    summary = (
        "counter attributes on lock-bearing classes may only be mutated "
        "under 'with self.<lock>' or in whitelisted lock-holding methods"
    )
    node_types = (ast.ClassDef,)

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        """Check every self.<counter> mutation inside one class."""
        assert isinstance(node, ast.ClassDef)
        if is_test_path(ctx.path):
            return
        lock_attrs = self._lock_attributes(node, ctx)
        if not lock_attrs:
            return
        whitelisted = class_constant_names(node, "LOCK_HOLDING_METHODS") or (
            frozenset()
        )
        for stmt in ast.walk(node):
            if not isinstance(stmt, (ast.Assign, ast.AugAssign)):
                continue
            if ctx.enclosing_class(stmt) is not node:
                continue  # belongs to a nested class; visited separately
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            for target in targets:
                attr = self_attribute(target)
                if attr is None or not _is_counter(attr):
                    continue
                if self._mutation_is_guarded(
                    stmt, ctx, node, lock_attrs, whitelisted
                ):
                    continue
                yield self.finding(
                    ctx,
                    stmt,
                    f"counter 'self.{attr}' of {node.name} mutated outside "
                    f"'with self.<lock>'; guard it or whitelist the method "
                    "via a '_locked' suffix or LOCK_HOLDING_METHODS",
                )

    def _lock_attributes(
        self, cls: ast.ClassDef, ctx: FileContext
    ) -> frozenset[str]:
        """Attribute names holding locks: ``self.<*lock*|*cond*> = <call>``."""
        names: set[str] = set()
        for stmt in ast.walk(cls):
            if not isinstance(stmt, ast.Assign):
                continue
            if ctx.enclosing_class(stmt) is not cls:
                continue
            if not isinstance(stmt.value, ast.Call):
                continue
            for target in stmt.targets:
                attr = self_attribute(target)
                if attr is not None and _LOCK_NAME_RE.search(attr):
                    names.add(attr)
        return frozenset(names)

    def _mutation_is_guarded(
        self,
        stmt: ast.stmt,
        ctx: FileContext,
        cls: ast.ClassDef,
        lock_attrs: frozenset[str],
        whitelisted: frozenset[str],
    ) -> bool:
        """True when the mutation is whitelisted or under a lock's with."""
        for ancestor in ctx.ancestors(stmt):
            if isinstance(ancestor, ast.With):
                for item in ancestor.items:
                    expr = item.context_expr
                    if isinstance(expr, ast.Call):
                        expr = expr.func
                    attr = self_attribute(expr)
                    if attr in lock_attrs:
                        return True
            elif isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if ctx.enclosing_class(ancestor) is not cls:
                    continue
                if (
                    ancestor.name == "__init__"
                    or ancestor.name.endswith("_locked")
                    or ancestor.name in whitelisted
                ):
                    return True
            elif isinstance(ancestor, ast.ClassDef):
                break
        return False
