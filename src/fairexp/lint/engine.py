"""AST-walking rule engine behind ``fairexp lint``.

The engine parses each file once, builds a :class:`FileContext` (parent
map, ``# fairexp: noqa[...]`` table) and dispatches every AST node to the
rules that subscribed to its type.  Rules are small classes — see
:class:`Rule` — that yield :class:`Finding` objects; the engine filters
suppressed findings and, when a :class:`Baseline` is supplied, separates
grandfathered findings from fresh ones.

Suppression syntax, on the offending line::

    time.sleep(0.1)  # fairexp: noqa[FX007] poll cadence is the contract

A bare ``# fairexp: noqa`` (no rule list) suppresses every rule on that
line.  Baselines are JSON files keyed on ``path::rule::message`` with an
occurrence count, so a baselined file can keep its historical findings
while any *new* occurrence of the same message still fails the build.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from collections.abc import Iterable, Iterator, Sequence

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = "LINT_BASELINE.json"

_NOQA_RE = re.compile(
    r"#\s*fairexp:\s*noqa(?:\[(?P<rules>[A-Z0-9,\s]+)\])?", re.IGNORECASE
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def key(self) -> str:
        """Baseline key: stable across line-number churn (no line/col)."""
        return f"{self.path}::{self.rule}::{self.message}"

    def render(self) -> str:
        """Human-readable ``path:line:col: RULE message`` form."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_json(self) -> dict:
        """Plain-dict form for ``fairexp lint --json``."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


class FileContext:
    """Per-file state shared by every rule: tree, parents, noqa table."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        """Parse-side bookkeeping for one file; built once per file."""
        self.path = path
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        self._parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent
        self._noqa = self._parse_noqa(self.lines)

    @staticmethod
    def _parse_noqa(lines: list[str]) -> dict[int, frozenset[str] | None]:
        """Map 1-based line -> suppressed rule set (None = all rules)."""
        table: dict[int, frozenset[str] | None] = {}
        for lineno, text in enumerate(lines, start=1):
            match = _NOQA_RE.search(text)
            if match is None:
                continue
            rules = match.group("rules")
            if rules is None:
                table[lineno] = None
            else:
                table[lineno] = frozenset(
                    token.strip().upper()
                    for token in rules.split(",")
                    if token.strip()
                )
        return table

    def suppressed(self, rule: str, line: int) -> bool:
        """True when ``line`` carries a noqa comment covering ``rule``."""
        if line not in self._noqa:
            return False
        rules = self._noqa[line]
        return rules is None or rule in rules

    def parent(self, node: ast.AST) -> ast.AST | None:
        """The syntactic parent of ``node`` (None for the module)."""
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Walk ``node``'s parents from nearest to the module root."""
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def enclosing_function(
        self, node: ast.AST
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        """Nearest enclosing function/method definition, if any."""
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    def enclosing_class(self, node: ast.AST) -> ast.ClassDef | None:
        """Nearest enclosing class definition, if any."""
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, ast.ClassDef):
                return ancestor
        return None


class Rule:
    """Base class for lint rules.

    Subclasses set :attr:`code` / :attr:`summary`, declare the AST node
    types they want via :attr:`node_types`, and implement :meth:`visit`.
    The engine walks each file's tree exactly once and dispatches every
    node to the rules subscribed to its type.
    """

    code: str = "FX000"
    summary: str = ""
    node_types: tuple[type, ...] = ()

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        """Yield findings for one dispatched node (override in rules)."""
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        """Build a :class:`Finding` anchored at ``node``."""
        return Finding(
            rule=self.code,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


@dataclass
class LintReport:
    """Outcome of linting a set of files."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    files: int = 0
    parse_errors: list[Finding] = field(default_factory=list)

    def to_json(self, fresh: Sequence[Finding] | None = None) -> dict:
        """JSON payload for ``fairexp lint --json``."""
        payload = {
            "files": self.files,
            "suppressed": self.suppressed,
            "findings": [f.to_json() for f in self.findings],
        }
        if fresh is not None:
            payload["fresh"] = [f.to_json() for f in fresh]
        return payload


class Baseline:
    """Grandfathered findings, keyed on ``path::rule::message`` counts.

    A finding is *fresh* when its key occurs more times in the current
    report than the baseline allows — so a baselined file may keep its
    historical debt while any new occurrence still fails the build.
    """

    def __init__(self, entries: dict[str, int] | None = None) -> None:
        """Wrap a key -> allowed-occurrence-count mapping."""
        self.entries: dict[str, int] = dict(entries or {})

    def __len__(self) -> int:
        """Total number of grandfathered occurrences."""
        return sum(self.entries.values())

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> Baseline:
        """Baseline that exactly covers ``findings`` (for ``write``)."""
        entries: dict[str, int] = {}
        for finding in findings:
            entries[finding.key()] = entries.get(finding.key(), 0) + 1
        return cls(entries)

    @classmethod
    def load(cls, path: str | Path) -> Baseline:
        """Load a baseline file; a missing file means an empty baseline."""
        path = Path(path)
        if not path.exists():
            return cls()
        data = json.loads(path.read_text())
        if data.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline version {data.get('version')!r} in {path}"
            )
        entries = data.get("entries", {})
        if not isinstance(entries, dict):
            raise ValueError(f"malformed baseline entries in {path}")
        return cls({str(k): int(v) for k, v in entries.items()})

    def save(self, path: str | Path) -> None:
        """Write the baseline as deterministic, diff-friendly JSON."""
        payload = {
            "version": BASELINE_VERSION,
            "entries": dict(sorted(self.entries.items())),
        }
        Path(path).write_text(json.dumps(payload, indent=2) + "\n")

    def fresh(self, findings: Sequence[Finding]) -> list[Finding]:
        """The findings not covered by this baseline, in input order."""
        seen: dict[str, int] = {}
        out: list[Finding] = []
        for finding in findings:
            key = finding.key()
            seen[key] = seen.get(key, 0) + 1
            if seen[key] > self.entries.get(key, 0):
                out.append(finding)
        return out


class LintEngine:
    """Run a rule set over source strings or file trees."""

    def __init__(self, rules: Sequence[Rule] | None = None) -> None:
        """Use ``rules`` (default: :data:`fairexp.lint.rules.ALL_RULES`)."""
        if rules is None:
            from .rules import ALL_RULES

            rules = [rule_cls() for rule_cls in ALL_RULES]
        self.rules = list(rules)
        self._dispatch: dict[type, list[Rule]] = {}
        for rule in self.rules:
            for node_type in rule.node_types:
                self._dispatch.setdefault(node_type, []).append(rule)

    def lint_source(
        self, source: str, path: str = "<string>"
    ) -> tuple[list[Finding], int]:
        """Lint one source string: ``(kept findings, suppressed count)``."""
        try:
            tree = ast.parse(source)
        except SyntaxError as error:
            finding = Finding(
                rule="FX000",
                path=path,
                line=error.lineno or 1,
                col=(error.offset or 0) + 1,
                message=f"syntax error: {error.msg}",
            )
            return [finding], 0
        ctx = FileContext(path, source, tree)
        raw: list[Finding] = []
        for node in ast.walk(tree):
            for rule in self._dispatch.get(type(node), ()):
                raw.extend(rule.visit(node, ctx))
        kept: list[Finding] = []
        suppressed = 0
        for finding in raw:
            if ctx.suppressed(finding.rule, finding.line):
                suppressed += 1
            else:
                kept.append(finding)
        kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return kept, suppressed

    def lint_paths(
        self, paths: Sequence[str | Path], root: str | Path | None = None
    ) -> LintReport:
        """Lint files and directory trees; paths in findings are relative
        to ``root`` (default: the current working directory) when possible.
        """
        root = Path(root) if root is not None else Path.cwd()
        report = LintReport()
        for file_path in _iter_python_files(paths):
            display = _display_path(file_path, root)
            source = file_path.read_text(encoding="utf-8")
            findings, suppressed = self.lint_source(source, path=display)
            report.files += 1
            report.suppressed += suppressed
            for finding in findings:
                if finding.rule == "FX000":
                    report.parse_errors.append(finding)
                report.findings.append(finding)
        report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return report


def _iter_python_files(paths: Sequence[str | Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``.py`` files."""
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        else:
            candidates = []
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def _display_path(path: Path, root: Path) -> str:
    """Posix path relative to ``root`` when under it, else as given."""
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def lint_source(source: str, path: str = "<string>") -> list[Finding]:
    """Lint a source string with the full rule set (docs/test helper)."""
    findings, _ = LintEngine().lint_source(source, path=path)
    return findings


def lint_paths(
    paths: Sequence[str | Path], root: str | Path | None = None
) -> LintReport:
    """Lint files/trees with the full rule set (docs/test helper)."""
    return LintEngine().lint_paths(paths, root=root)
