"""User–item interaction data structures and synthetic interaction generators."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ValidationError
from ..utils import check_random_state

__all__ = ["InteractionMatrix", "make_biased_interactions"]


@dataclass
class InteractionMatrix:
    """Dense user–item interaction (implicit feedback) matrix.

    Attributes
    ----------
    matrix:
        ``(n_users, n_items)`` array; positive entries mean an observed
        interaction (1.0 for implicit feedback, or a rating value).
    item_groups:
        Group value per item (1 = protected / long-tail group) — the producer
        side of recommendation fairness.
    user_groups:
        Optional group value per user — the consumer side.
    """

    matrix: np.ndarray
    item_groups: np.ndarray
    user_groups: np.ndarray | None = None
    meta: dict = field(default_factory=dict)

    #: data modality advertised to ``ExplainerRegistry.is_compatible``
    modality = "recsys"

    def __post_init__(self) -> None:
        self.matrix = np.asarray(self.matrix, dtype=float)
        self.item_groups = np.asarray(self.item_groups, dtype=int)
        if self.matrix.ndim != 2:
            raise ValidationError("interaction matrix must be 2-dimensional")
        if self.item_groups.shape[0] != self.matrix.shape[1]:
            raise ValidationError("item_groups must have one entry per item")
        if self.user_groups is not None:
            self.user_groups = np.asarray(self.user_groups, dtype=int)
            if self.user_groups.shape[0] != self.matrix.shape[0]:
                raise ValidationError("user_groups must have one entry per user")

    @property
    def n_users(self) -> int:
        """Number of users (rows)."""
        return int(self.matrix.shape[0])

    @property
    def n_items(self) -> int:
        """Number of items (columns)."""
        return int(self.matrix.shape[1])

    def item_popularity(self) -> np.ndarray:
        """Number of interactions per item."""
        return (self.matrix > 0).sum(axis=0)

    def user_activity(self) -> np.ndarray:
        """Number of interactions per user."""
        return (self.matrix > 0).sum(axis=1)

    def remove_interaction(self, user: int, item: int) -> "InteractionMatrix":
        """Return a copy with one interaction removed (used by counterfactual explainers)."""
        modified = self.matrix.copy()
        modified[user, item] = 0.0
        return InteractionMatrix(
            matrix=modified,
            item_groups=self.item_groups.copy(),
            user_groups=None if self.user_groups is None else self.user_groups.copy(),
            meta=dict(self.meta),
        )

    def to_bipartite_edges(self) -> list[tuple[int, int]]:
        """Return the observed interactions as (user, item) edge pairs."""
        users, items = np.nonzero(self.matrix > 0)
        return list(zip(users.tolist(), items.tolist()))


def make_biased_interactions(
    n_users: int = 120,
    n_items: int = 60,
    *,
    protected_item_fraction: float = 0.4,
    popularity_bias: float = 2.0,
    interactions_per_user: int = 12,
    n_user_groups: int = 2,
    activity_gap: float = 0.5,
    random_state=None,
) -> InteractionMatrix:
    """Generate implicit-feedback interactions with popularity and activity bias.

    Items in the protected group receive systematically fewer interactions
    (popularity bias against the long tail); users in group 1 are less active
    (``activity_gap`` scales their interaction count), reproducing the
    user-activity bias that the fairness-aware KG re-ranking work targets.
    """
    rng = check_random_state(random_state)
    item_groups = (rng.random(n_items) < protected_item_fraction).astype(int)
    user_groups = rng.integers(0, n_user_groups, n_users)

    # Item attractiveness: protected items are down-weighted by the bias factor.
    base_attractiveness = rng.gamma(2.0, 1.0, n_items)
    attractiveness = base_attractiveness * np.where(item_groups == 1, 1.0 / popularity_bias, 1.0)
    probabilities = attractiveness / attractiveness.sum()

    matrix = np.zeros((n_users, n_items))
    for user in range(n_users):
        count = interactions_per_user
        if user_groups[user] == 1:
            count = max(1, int(round(interactions_per_user * activity_gap)))
        items = rng.choice(n_items, size=min(count, n_items), replace=False, p=probabilities)
        matrix[user, items] = 1.0
    return InteractionMatrix(
        matrix=matrix,
        item_groups=item_groups,
        user_groups=user_groups,
        meta={"popularity_bias": popularity_bias, "activity_gap": activity_gap},
    )
