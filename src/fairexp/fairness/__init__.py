"""Fairness metrics (group, individual, ranking) and mitigation methods."""

from . import mitigation
from .group_metrics import (
    GroupFairnessReport,
    average_odds_difference,
    between_group_generalized_entropy,
    calibration_gap,
    disparate_impact,
    equal_opportunity_difference,
    equalized_odds_difference,
    false_negative_rate_difference,
    false_positive_rate_difference,
    generalized_entropy_index,
    group_fairness_report,
    predictive_parity_difference,
    statistical_parity_difference,
)
from .groups import GroupMasks, group_masks, groupwise
from .individual_metrics import (
    consistency_score,
    counterfactual_flip_rate,
    lipschitz_violation,
)
from .ranking_metrics import (
    exposure,
    group_exposure_ratio,
    ndcg_exposure_share,
    position_weights,
    ranking_binomial_pvalue,
    representation_difference,
    top_k_representation,
)

__all__ = [
    "mitigation",
    "GroupMasks",
    "group_masks",
    "groupwise",
    "GroupFairnessReport",
    "group_fairness_report",
    "statistical_parity_difference",
    "disparate_impact",
    "equal_opportunity_difference",
    "equalized_odds_difference",
    "average_odds_difference",
    "predictive_parity_difference",
    "false_negative_rate_difference",
    "false_positive_rate_difference",
    "calibration_gap",
    "generalized_entropy_index",
    "between_group_generalized_entropy",
    "consistency_score",
    "lipschitz_violation",
    "counterfactual_flip_rate",
    "position_weights",
    "exposure",
    "group_exposure_ratio",
    "top_k_representation",
    "representation_difference",
    "ranking_binomial_pvalue",
    "ndcg_exposure_share",
]
