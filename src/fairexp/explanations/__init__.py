"""General-purpose XAI substrate (the methods of the paper's Figure 2 taxonomy).

Feature-based (Shapley, permutation importance, PDP/ICE), example-based
(counterfactuals, prototypes, neighbours, influence, contrastive) and
approximation-based (local surrogates, global surrogate trees, anchors)
explanation methods, all operating on the from-scratch models in
:mod:`fairexp.models` or on any object exposing ``predict``/``predict_proba``.

The counterfactual hot path is layered session → engine → backend → store:
:class:`AuditSession` (``session.py``) shares each population's
counterfactual matrix across audits, :class:`CounterfactualEngine`
(``engine.py``) batches and shards the search (threads or processes,
GIL-aware), the :class:`PredictBackend` protocol (``backends.py``)
dispatches the coalesced predict batches (vectorized NumPy by default;
memoizing / ONNX / remote backends behind the same counting interface), and
:class:`CounterfactualStore` (``store.py``) persists each population's
results across processes under a (population, model, config) fingerprint.
See ``docs/architecture.md`` and ``docs/api/`` for the full reference.
"""

from .base import (
    CompatibilityCheck,
    Counterfactual,
    ExampleExplanation,
    ExplainerInfo,
    ExplainerRegistry,
    FeatureAttribution,
    RegisteredExplainer,
    RuleExplanation,
)
from .counterfactual import (
    ActionabilityConstraints,
    BaseCounterfactualGenerator,
    GradientCounterfactual,
    GrowingSpheresCounterfactual,
    RandomSearchCounterfactual,
    counterfactual_distance,
)
from .backends import (
    CallablePredictBackend,
    MemoizingPredictBackend,
    NumpyPredictBackend,
    PredictBackend,
    ensure_backend,
)
from .engine import BatchModelAdapter, CounterfactualEngine, generator_config, shard_indices
from .kernels import (
    KernelSet,
    active_kernel_info,
    batch_counterfactual_distance,
    build_prefix_revert_trials,
    numba_parallel_supported,
    numba_threading_layer,
    project_candidates,
    rank_changed_features,
    resolve_kernels,
)
from .pool import ExecutorPool, SharedExecutorPool
from .serving import (
    CoalescingScoringClient,
    ComputeGraph,
    OnnxExportBackend,
    RemoteScoringBackend,
    ScoringServer,
    export_model,
    serve_fleet,
    serve_model,
)
from .schedules import (
    AdaptiveSchedule,
    GeometricSchedule,
    SearchSchedule,
    resolve_schedule,
)
from .session import AuditSession
from .store import CounterfactualStore, model_signature, population_fingerprint
from .examples import (
    ExampleBasedExplainer,
    contrastive_example,
    nearest_neighbor_explanation,
    select_criticisms,
    select_prototypes,
)
from .feature_importance import (
    PermutationImportanceExplainer,
    individual_conditional_expectation,
    partial_dependence,
    permutation_importance,
)
from .influence import (
    InfluenceExplainer,
    influence_functions_logistic,
    leave_one_out_influence,
    logistic_gradients,
    logistic_hessian,
)
from .rules import (
    AnchorExplainer,
    Predicate,
    discretize_features,
    frequent_predicate_sets,
)
from .shapley import (
    ShapleyExplainer,
    exact_shapley_values,
    sampled_shapley_values,
    shapley_for_value_function,
)
from .surrogate import GlobalSurrogateTree, LocalSurrogateExplainer

__all__ = [
    "ExplainerInfo",
    "ExplainerRegistry",
    "RegisteredExplainer",
    "CompatibilityCheck",
    "AuditSession",
    "BatchModelAdapter",
    "CounterfactualEngine",
    "CounterfactualStore",
    "ExecutorPool",
    "SearchSchedule",
    "GeometricSchedule",
    "AdaptiveSchedule",
    "resolve_schedule",
    "generator_config",
    "model_signature",
    "population_fingerprint",
    "PredictBackend",
    "NumpyPredictBackend",
    "CallablePredictBackend",
    "MemoizingPredictBackend",
    "ensure_backend",
    "SharedExecutorPool",
    "ComputeGraph",
    "export_model",
    "OnnxExportBackend",
    "CoalescingScoringClient",
    "RemoteScoringBackend",
    "ScoringServer",
    "serve_model",
    "serve_fleet",
    "shard_indices",
    "FeatureAttribution",
    "Counterfactual",
    "RuleExplanation",
    "ExampleExplanation",
    "ShapleyExplainer",
    "exact_shapley_values",
    "sampled_shapley_values",
    "shapley_for_value_function",
    "permutation_importance",
    "partial_dependence",
    "individual_conditional_expectation",
    "PermutationImportanceExplainer",
    "LocalSurrogateExplainer",
    "GlobalSurrogateTree",
    "AnchorExplainer",
    "Predicate",
    "discretize_features",
    "frequent_predicate_sets",
    "KernelSet",
    "resolve_kernels",
    "active_kernel_info",
    "numba_parallel_supported",
    "numba_threading_layer",
    "batch_counterfactual_distance",
    "project_candidates",
    "build_prefix_revert_trials",
    "rank_changed_features",
    "ActionabilityConstraints",
    "counterfactual_distance",
    "BaseCounterfactualGenerator",
    "RandomSearchCounterfactual",
    "GrowingSpheresCounterfactual",
    "GradientCounterfactual",
    "select_prototypes",
    "select_criticisms",
    "nearest_neighbor_explanation",
    "contrastive_example",
    "ExampleBasedExplainer",
    "InfluenceExplainer",
    "influence_functions_logistic",
    "leave_one_out_influence",
    "logistic_gradients",
    "logistic_hessian",
]
