"""Tests for the Dataset container and the synthetic generators."""

import numpy as np
import pytest

from fairexp.datasets import (
    Dataset,
    FeatureSpec,
    make_adult_like,
    make_compas_like,
    make_feature_specs,
    make_german_credit_like,
    make_hiring_dataset,
    make_loan_dataset,
    make_scm_loan_dataset,
)
from fairexp.exceptions import ValidationError


class TestFeatureSpec:
    def test_immutable_implies_not_actionable(self):
        spec = FeatureSpec("race", kind="binary", immutable=True, actionable=True)
        assert spec.actionable is False

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValidationError):
            FeatureSpec("x", kind="text")

    def test_invalid_monotone_rejected(self):
        with pytest.raises(ValidationError):
            FeatureSpec("x", monotone=2)

    def test_make_feature_specs_builder(self):
        specs = make_feature_specs(
            ["a", "b", "c"],
            kinds={"a": "binary"},
            immutable=["a"],
            bounds={"b": (0, 10)},
            monotone={"c": 1},
        )
        assert specs[0].immutable and specs[0].kind == "binary"
        assert specs[1].lower == 0 and specs[1].upper == 10
        assert specs[2].monotone == 1


class TestDataset:
    def make(self):
        X = np.array([[1, 5.0], [0, 3.0], [1, 8.0], [0, 1.0]])
        y = np.array([0, 1, 1, 0])
        specs = [FeatureSpec("g", kind="binary", immutable=True), FeatureSpec("income")]
        return Dataset(X=X, y=y, features=specs, sensitive="g", name="toy")

    def test_basic_properties(self):
        data = self.make()
        assert data.n_samples == 4
        assert data.n_features == 2
        assert data.sensitive_index == 0
        assert data.feature_names == ["g", "income"]
        assert data.protected_mask.tolist() == [True, False, True, False]

    def test_mismatched_specs_rejected(self):
        with pytest.raises(ValidationError):
            Dataset(X=np.ones((2, 2)), y=np.zeros(2), features=[FeatureSpec("a")], sensitive="a")

    def test_unknown_sensitive_rejected(self):
        with pytest.raises(ValidationError):
            Dataset(
                X=np.ones((2, 1)), y=np.zeros(2), features=[FeatureSpec("a")], sensitive="b"
            )

    def test_column_and_index_of(self):
        data = self.make()
        assert np.array_equal(data.column("income"), np.array([5.0, 3.0, 8.0, 1.0]))
        with pytest.raises(ValidationError):
            data.index_of("missing")

    def test_subset_preserves_metadata(self):
        data = self.make()
        sub = data.subset([0, 2])
        assert sub.n_samples == 2
        assert sub.sensitive == "g"
        assert sub.feature_names == data.feature_names

    def test_drop_feature(self):
        data = self.make()
        dropped = data.drop_feature("income")
        assert dropped.n_features == 1
        with pytest.raises(ValidationError):
            data.drop_feature("g")

    def test_features_without_sensitive(self):
        data = self.make()
        X, specs = data.features_without_sensitive()
        assert X.shape == (4, 1)
        assert [s.name for s in specs] == ["income"]

    def test_base_rates_and_group_sizes(self):
        data = self.make()
        rates = data.base_rates()
        assert rates[1] == pytest.approx(0.5)
        assert rates[0] == pytest.approx(0.5)
        assert data.group_sizes() == {0: 2, 1: 2}

    def test_with_values_replaces_labels(self):
        data = self.make()
        new = data.with_values(y=np.array([1, 1, 1, 1]))
        assert new.y.sum() == 4
        assert data.y.sum() == 2  # original untouched

    def test_split_stratified(self):
        dataset = make_loan_dataset(300, random_state=0)
        train, test = dataset.split(test_size=0.3, random_state=1)
        assert train.n_samples + test.n_samples == dataset.n_samples
        assert abs(train.y.mean() - test.y.mean()) < 0.15


GENERATORS = [
    make_adult_like,
    make_german_credit_like,
    make_compas_like,
    make_loan_dataset,
    make_hiring_dataset,
]


class TestSyntheticGenerators:
    @pytest.mark.parametrize("generator", GENERATORS)
    def test_shapes_and_binary_labels(self, generator):
        dataset = generator(300, random_state=0)
        assert dataset.n_samples == 300
        assert set(np.unique(dataset.y)) <= {0, 1}
        assert dataset.X.shape == (300, dataset.n_features)
        assert set(np.unique(dataset.sensitive_values)) == {0, 1}

    @pytest.mark.parametrize("generator", GENERATORS)
    def test_reproducible(self, generator):
        a = generator(200, random_state=5)
        b = generator(200, random_state=5)
        assert np.array_equal(a.X, b.X)
        assert np.array_equal(a.y, b.y)

    @pytest.mark.parametrize("generator", GENERATORS)
    def test_sensitive_is_immutable(self, generator):
        dataset = generator(100, random_state=0)
        assert dataset.spec_of(dataset.sensitive).immutable

    def test_direct_bias_lowers_protected_base_rate(self):
        biased = make_adult_like(3000, direct_bias=2.0, random_state=0)
        fair = make_adult_like(3000, direct_bias=0.0, proxy_bias=0.0, random_state=0)
        biased_gap = biased.base_rates()[1] - biased.base_rates()[0]
        fair_gap = fair.base_rates()[1] - fair.base_rates()[0]
        assert biased_gap < fair_gap - 0.05

    def test_recourse_gap_shifts_protected_features(self):
        dataset = make_loan_dataset(2000, recourse_gap=1.5, random_state=0)
        protected_income = dataset.column("income")[dataset.protected_mask].mean()
        reference_income = dataset.column("income")[~dataset.protected_mask].mean()
        assert protected_income < reference_income - 5.0

    def test_scm_loan_dataset_consistent_with_scm(self):
        dataset, scm = make_scm_loan_dataset(400, random_state=0)
        assert dataset.feature_names == ["group", "education", "income", "savings"]
        assert set(scm.variables) == {"group", "education", "income", "savings"}
        # The SCM says group has a negative total effect on income.
        effect = scm.total_effect("group", "income", baseline=0.0, alternative=1.0,
                                  n_samples=3000)
        assert effect < 0
