"""Tests for the shared-pass AuditSession and sharded engine execution."""

import numpy as np
import pytest

from fairexp.core import BurdenExplainer, NAWBExplainer, PreCoFExplainer
from fairexp.exceptions import ValidationError
from fairexp.explanations import (
    AuditSession,
    BatchModelAdapter,
    CounterfactualEngine,
    GrowingSpheresCounterfactual,
    RandomSearchCounterfactual,
    shard_indices,
)


@pytest.fixture
def workload(loan_data, loan_model):
    dataset, train, test = loan_data
    rejected_idx = np.flatnonzero(loan_model.predict(test.X) == 0)[:25]
    return dataset, train, test, loan_model, rejected_idx


def _generator(generator_cls, train, model, constraints=None):
    return generator_cls(model, train.X, constraints=constraints, random_state=0)


class TestShardIndices:
    def test_contiguous_and_complete(self):
        shards = shard_indices(10, 3)
        assert [list(s) for s in shards] == [[0, 1, 2, 3], [4, 5, 6], [7, 8, 9]]

    def test_more_shards_than_items(self):
        shards = shard_indices(2, 8)
        assert [list(s) for s in shards] == [[0], [1]]

    def test_zero_items(self):
        assert shard_indices(0, 4) == []


class TestShardMergeParity:
    """n_jobs=4 must be bitwise-equal to n_jobs=1 under fixed seeds."""

    @pytest.mark.parametrize("generator_cls", [
        GrowingSpheresCounterfactual, RandomSearchCounterfactual,
    ])
    def test_sharded_bitwise_equal_to_sequential(self, generator_cls, workload,
                                                 loan_cf_generator):
        dataset, train, test, model, rejected_idx = workload
        constraints = loan_cf_generator.constraints
        rejected = test.X[rejected_idx]

        sequential = CounterfactualEngine(
            _generator(generator_cls, train, model, constraints), n_jobs=1
        ).generate_aligned(rejected)
        sharded = CounterfactualEngine(
            _generator(generator_cls, train, model, constraints), n_jobs=4
        ).generate_aligned(rejected)

        assert len(sharded) == len(sequential)
        assert any(result is not None for result in sequential)
        for seq, par in zip(sequential, sharded):
            assert (seq is None) == (par is None)
            if seq is None:
                continue
            assert np.array_equal(seq.counterfactual, par.counterfactual)
            assert seq.changed_features == par.changed_features
            assert seq.distance == par.distance
            assert seq.counterfactual_prediction == par.counterfactual_prediction

    def test_negative_n_jobs_means_cpu_count(self, workload, loan_cf_generator):
        dataset, train, test, model, rejected_idx = workload
        engine = CounterfactualEngine(
            _generator(GrowingSpheresCounterfactual, train, model,
                       loan_cf_generator.constraints),
            n_jobs=-1,
        )
        results = engine.generate_aligned(test.X[rejected_idx[:6]])
        assert len(results) == 6

    def test_session_shared_results_match_direct_engine(self, workload,
                                                        loan_cf_generator):
        dataset, train, test, model, rejected_idx = workload
        constraints = loan_cf_generator.constraints
        direct = CounterfactualEngine(
            _generator(GrowingSpheresCounterfactual, train, model, constraints)
        ).generate_for(test.X, rejected_idx)
        session = AuditSession(
            _generator(GrowingSpheresCounterfactual, train, model, constraints), n_jobs=4
        )
        shared = session.counterfactuals_for(test.X, rejected_idx)
        assert set(direct) == set(shared)
        for i in direct:
            assert np.array_equal(direct[i].counterfactual, shared[i].counterfactual)


class TestAuditSessionSharing:
    def test_overlapping_requests_cost_no_new_predicts(self, workload,
                                                       loan_cf_generator):
        dataset, train, test, model, rejected_idx = workload
        session = AuditSession(
            _generator(GrowingSpheresCounterfactual, train, model,
                       loan_cf_generator.constraints)
        )
        first = session.counterfactuals_for(test.X, rejected_idx)
        calls_after_first = session.predict_call_count
        again = session.counterfactuals_for(test.X, rejected_idx[:10])
        assert session.predict_call_count == calls_after_first
        for i in again:
            assert again[i] is first[i]

    def test_infeasible_rows_are_not_retried(self, workload):
        dataset, train, test, model, _ = workload

        class AlwaysRejects:
            def predict(self, X):
                return np.zeros(np.atleast_2d(X).shape[0], dtype=int)

        generator = GrowingSpheresCounterfactual(AlwaysRejects(), train.X,
                                                 max_shells=2, random_state=0)
        session = AuditSession(generator)
        assert session.counterfactuals_for(test.X, np.arange(5)) == {}
        calls = session.predict_call_count
        assert session.counterfactuals_for(test.X, np.arange(5)) == {}
        assert session.predict_call_count == calls
        assert session.stats()["n_infeasible_cached"] == 5

    def test_distinct_populations_are_cached_separately(self, workload,
                                                        loan_cf_generator):
        dataset, train, test, model, rejected_idx = workload
        session = AuditSession(
            _generator(GrowingSpheresCounterfactual, train, model,
                       loan_cf_generator.constraints)
        )
        session.counterfactuals_for(test.X, rejected_idx[:5])
        session.counterfactuals_for(test.X[:40] + 0.5, np.arange(3))
        assert session.stats()["n_populations"] == 2

    def test_precompute_warms_every_audit(self, workload, loan_cf_generator):
        dataset, train, test, model, _ = workload
        subset_X = test.X[:60]
        session = AuditSession(
            _generator(GrowingSpheresCounterfactual, train, model,
                       loan_cf_generator.constraints)
        )
        n_explained = session.precompute(subset_X)
        assert n_explained > 0
        calls = session.predict_call_count
        pending = np.flatnonzero(session.predict(subset_X) != 1)
        session.counterfactuals_for(subset_X, pending)
        assert session.predict_call_count == calls

    def test_generatorless_session_serves_predictions_only(self, workload):
        dataset, train, test, model, _ = workload
        session = AuditSession(model=model)
        predictions = session.predict(test.X)
        assert np.array_equal(predictions, model.predict(test.X))
        assert session.predict_call_count == 1
        with pytest.raises(ValidationError):
            session.counterfactuals_for(test.X, np.arange(3))
        with pytest.raises(ValidationError):
            session.precompute(test.X)

    def test_session_requires_generator_or_model(self):
        with pytest.raises(ValidationError):
            AuditSession()

    def test_session_rejects_conflicting_model_and_generator(self, workload,
                                                             loan_cf_generator):
        dataset, train, test, model, _ = workload

        class OtherModel:
            def predict(self, X):
                return np.zeros(np.atleast_2d(X).shape[0], dtype=int)

        generator = _generator(GrowingSpheresCounterfactual, train, model,
                               loan_cf_generator.constraints)
        with pytest.raises(ValidationError):
            AuditSession(generator, model=OtherModel())
        # The generator's own model (wrapped or not) is not a conflict.
        AuditSession(generator, model=model)

    def test_result_cache_bounds_populations(self, workload, loan_cf_generator):
        dataset, train, test, model, _ = workload
        session = AuditSession(
            _generator(GrowingSpheresCounterfactual, train, model,
                       loan_cf_generator.constraints),
            max_populations=2,
        )
        for k in range(3):
            session.counterfactuals_for(test.X[:20] + 0.1 * k, np.arange(2))
        assert session.stats()["n_populations"] == 2

    def test_conflicting_generator_and_session_raise(self, workload,
                                                     loan_cf_generator):
        dataset, train, test, model, _ = workload
        session = AuditSession(
            _generator(GrowingSpheresCounterfactual, train, model,
                       loan_cf_generator.constraints)
        )
        other = _generator(GrowingSpheresCounterfactual, train, model,
                           loan_cf_generator.constraints)
        with pytest.raises(ValidationError):
            BurdenExplainer(other, session=session)
        # The session's own generator is not a conflict.
        BurdenExplainer(session.generator, session=session)
        # A generator-less session cannot serve a counterfactual audit —
        # rejected at construction, with or without an explicit generator.
        with pytest.raises(ValidationError):
            BurdenExplainer(other, session=AuditSession(model=model))
        with pytest.raises(ValidationError):
            BurdenExplainer(session=AuditSession(model=model))
        # Adapter without model or backend fails at construction, not predict.
        with pytest.raises(ValidationError):
            BatchModelAdapter()

    def test_private_session_does_not_strip_shared_memo(self, workload,
                                                        loan_cf_generator):
        """A standalone explainer over a generator owned by a live shared
        session must not disable that session's predict memo."""
        dataset, train, test, model, _ = workload
        generator = _generator(GrowingSpheresCounterfactual, train, model,
                               loan_cf_generator.constraints)
        shared = AuditSession(generator)
        assert shared.adapter.cache
        BurdenExplainer(generator)  # builds a private cache-less session
        assert shared.adapter.cache  # shared memo survives
        shared.predict(test.X)
        shared.predict(test.X)
        assert shared.cache_hit_count == 1

    def test_precof_requires_feature_names(self, workload, loan_cf_generator):
        from fairexp.core import PreCoFExplainer as PreCoF

        dataset, train, test, model, _ = workload
        session = AuditSession(
            _generator(GrowingSpheresCounterfactual, train, model,
                       loan_cf_generator.constraints)
        )
        with pytest.raises(ValidationError):
            PreCoF(session=session)

    def test_adapter_cache_flag_reflects_backend_stack(self, workload):
        dataset, train, test, model, _ = workload
        assert BatchModelAdapter(model, cache=True).cache
        assert not BatchModelAdapter(model, cache=False).cache

    def test_reset_drops_results_and_counts(self, workload, loan_cf_generator):
        dataset, train, test, model, rejected_idx = workload
        session = AuditSession(
            _generator(GrowingSpheresCounterfactual, train, model,
                       loan_cf_generator.constraints)
        )
        session.counterfactuals_for(test.X, rejected_idx[:5])
        session.reset()
        assert session.predict_call_count == 0
        assert session.stats()["n_populations"] == 0


class TestSessionRoutedAudits:
    def test_burden_nawb_precof_share_one_engine_pass(self, workload,
                                                      loan_cf_generator):
        dataset, train, test, model, _ = workload
        subset_X, subset_y = test.X[:60], test.y[:60]
        subset_s = test.sensitive_values[:60]
        session = AuditSession(
            _generator(GrowingSpheresCounterfactual, train, model,
                       loan_cf_generator.constraints)
        )
        BurdenExplainer(session=session).explain(subset_X, subset_s)
        calls_after_burden = session.predict_call_count
        NAWBExplainer(session=session).explain(subset_X, subset_y, subset_s)
        PreCoFExplainer(feature_names=dataset.feature_names,
                        sensitive_feature=dataset.sensitive,
                        session=session).explain(subset_X, subset_s)
        # NAWB's false negatives and PreCoF's negatives are subsets of the
        # rows burden already explained; predictions come from the memo.
        assert session.predict_call_count == calls_after_burden

    def test_session_and_standalone_audits_agree(self, workload,
                                                 loan_cf_generator):
        dataset, train, test, model, _ = workload
        subset_X = test.X[:60]
        subset_s = test.sensitive_values[:60]
        constraints = loan_cf_generator.constraints
        standalone = BurdenExplainer(
            _generator(GrowingSpheresCounterfactual, train, model, constraints)
        ).explain(subset_X, subset_s)
        session = AuditSession(
            _generator(GrowingSpheresCounterfactual, train, model, constraints)
        )
        shared = BurdenExplainer(session=session).explain(subset_X, subset_s)
        assert shared.gap == standalone.gap
        assert shared.protected.burden == standalone.protected.burden
        np.testing.assert_array_equal(shared.protected.distances,
                                      standalone.protected.distances)

    def test_private_session_regenerates_after_inplace_refit(self, loan_data):
        """A standalone explainer must pick up an in-place model refit — only
        shared sessions pin a frozen model."""
        dataset, train, test = loan_data

        class MutableModel:
            def __init__(self):
                self.offset = 0.0

            def predict(self, X):
                return (np.atleast_2d(X)[:, 0] + self.offset > 45).astype(int)

        model = MutableModel()
        explainer = BurdenExplainer(
            GrowingSpheresCounterfactual(model, train.X, random_state=0)
        )
        subset_X = test.X[:40]
        subset_s = test.sensitive_values[:40]
        explainer.explain(subset_X, subset_s)
        model.offset = -30.0  # refit in place: approvals now need income > 75
        refit = explainer.explain(subset_X, subset_s)
        fresh = BurdenExplainer(
            GrowingSpheresCounterfactual(model, train.X, random_state=0)
        ).explain(subset_X, subset_s)
        assert refit.protected.burden == fresh.protected.burden
        assert refit.reference.burden == fresh.reference.burden

    def test_private_session_refit_safe_with_prewrapped_memo_adapter(self, loan_data):
        """A leftover memoizing adapter (from an earlier shared session on the
        same generator) must not serve stale predictions to a private-session
        explainer after an in-place refit."""
        dataset, train, test = loan_data

        class MutableModel:
            offset = 0.0

            def predict(self, X):
                return (np.atleast_2d(X)[:, 0] + self.offset > 45).astype(int)

        model = MutableModel()
        generator = GrowingSpheresCounterfactual(model, train.X, random_state=0)
        AuditSession(generator)  # wraps generator.model with a memoizing adapter
        explainer = BurdenExplainer(generator)   # private, refit-safe session
        subset_X, subset_s = test.X[:40], test.sensitive_values[:40]
        explainer.explain(subset_X, subset_s)
        model.offset = -30.0
        refit = explainer.explain(subset_X, subset_s)
        fresh = BurdenExplainer(
            GrowingSpheresCounterfactual(model, train.X, random_state=0)
        ).explain(subset_X, subset_s)
        assert refit.protected.n_negative == fresh.protected.n_negative
        assert refit.protected.burden == fresh.protected.burden

    def test_session_upgrades_cacheless_adapter_to_memo(self, workload,
                                                        loan_cf_generator):
        """An engine-wrapped cache=False adapter gains the session's memo."""
        dataset, train, test, model, _ = workload
        generator = _generator(GrowingSpheresCounterfactual, train, model,
                               loan_cf_generator.constraints)
        CounterfactualEngine(generator)          # wraps with cache=False
        session = AuditSession(generator)        # cache_predictions=True
        session.predict(test.X)
        session.predict(test.X)
        assert session.predict_call_count == 1
        assert session.cache_hit_count == 1

    def test_missing_model_and_session_raise_cleanly(self, workload):
        from fairexp.core import RecourseSetExplainer, recourse_gap_report

        dataset, train, test, model, _ = workload
        with pytest.raises(ValidationError):
            recourse_gap_report(X=test.X, sensitive=test.sensitive_values)
        with pytest.raises(ValidationError):
            RecourseSetExplainer(candidate_actions=(),
                                 feature_names=dataset.feature_names)

    def test_reuse_counter_tracks_served_rows(self, workload, loan_cf_generator):
        dataset, train, test, model, rejected_idx = workload
        session = AuditSession(
            _generator(GrowingSpheresCounterfactual, train, model,
                       loan_cf_generator.constraints)
        )
        session.counterfactuals_for(test.X, rejected_idx)
        assert session.stats()["n_results_reused"] == 0
        session.counterfactuals_for(test.X, rejected_idx[:10])
        assert session.stats()["n_results_reused"] == 10

    def test_explicit_model_wins_over_session(self, workload, loan_cf_generator):
        from fairexp.core import GlobeCEExplainer, recourse_gap_report

        dataset, train, test, model, _ = workload

        class ChallengerModel:
            def predict(self, X):
                return np.ones(np.atleast_2d(X).shape[0], dtype=int)

            def predict_proba(self, X):
                n = np.atleast_2d(X).shape[0]
                return np.column_stack([np.zeros(n), np.ones(n)])

        challenger = ChallengerModel()
        session = AuditSession(
            _generator(GrowingSpheresCounterfactual, train, model,
                       loan_cf_generator.constraints)
        )
        globe = GlobeCEExplainer(challenger, train.X, session=session)
        assert globe.model is challenger
        report = recourse_gap_report(challenger, test.X, test.sensitive_values,
                                     session=session)
        assert report.n_protected == 0  # challenger rejects nobody

    def test_generator_instance_seed_falls_back_to_sequential(self, workload,
                                                              loan_cf_generator):
        """A shared np.random.Generator cannot be sharded: n_jobs>1 must run
        the sequential pass (same stream consumption, no thread race)."""
        dataset, train, test, model, rejected_idx = workload
        constraints = loan_cf_generator.constraints
        rejected = test.X[rejected_idx[:10]]

        sharded = CounterfactualEngine(
            GrowingSpheresCounterfactual(model, train.X, constraints=constraints,
                                         random_state=np.random.default_rng(7)),
            n_jobs=4,
        ).generate_aligned(rejected)
        sequential = CounterfactualEngine(
            GrowingSpheresCounterfactual(model, train.X, constraints=constraints,
                                         random_state=np.random.default_rng(7)),
            n_jobs=1,
        ).generate_aligned(rejected)
        for seq, par in zip(sequential, sharded):
            assert (seq is None) == (par is None)
            if seq is not None:
                assert np.array_equal(seq.counterfactual, par.counterfactual)

    def test_engine_attribute_still_exposed(self, workload, loan_cf_generator):
        dataset, train, test, model, _ = workload
        explainer = BurdenExplainer(
            _generator(GrowingSpheresCounterfactual, train, model,
                       loan_cf_generator.constraints)
        )
        assert isinstance(explainer.engine, CounterfactualEngine)
        assert isinstance(explainer.generator.model, BatchModelAdapter)


class TestSessionLifecycleAndEviction:
    def test_closed_session_raises_a_session_level_error(self, workload,
                                                         loan_cf_generator):
        """Use after close() must name the SESSION, not surface the opaque
        'ExecutorPool is closed' from deep inside a sharded engine pass."""
        dataset, train, test, model, rejected_idx = workload
        session = AuditSession(
            _generator(GrowingSpheresCounterfactual, train, model,
                       loan_cf_generator.constraints),
            n_jobs=2,
        )
        session.counterfactuals_for(test.X, rejected_idx[:4])
        session.close()
        with pytest.raises(ValidationError, match="AuditSession is closed"):
            session.counterfactuals_for(test.X, rejected_idx[:4])
        with pytest.raises(ValidationError, match="AuditSession is closed"):
            session.precompute(test.X[:8])

    def test_evicted_population_republishes_with_merge(self, workload,
                                                       loan_cf_generator, tmp_path):
        """Evict -> re-touch -> publish must merge with the store again.

        After eviction the in-memory cache is rebuilt from scratch, so it is
        no longer guaranteed to be a superset of this session's earlier
        writes; a publish that skips the disk read-back merge (merge=False)
        would silently drop rows from the store entry."""
        from fairexp.explanations import CounterfactualStore

        dataset, train, test, model, _ = workload
        store = CounterfactualStore(tmp_path)
        merge_flags: list[bool] = []
        original_save = store.save

        def spying_save(fingerprint, rows, *, merge=True, **kwargs):
            merge_flags.append(merge)
            return original_save(fingerprint, rows, merge=merge, **kwargs)

        store.save = spying_save
        session = AuditSession(
            _generator(GrowingSpheresCounterfactual, train, model,
                       loan_cf_generator.constraints),
            store=store, max_populations=1,
        )
        population_a = test.X[:20]
        population_b = test.X[20:40]
        session.counterfactuals_for(population_a, np.arange(3))   # publish #1 (A)
        session.counterfactuals_for(population_b, np.arange(3))   # evicts A
        # Re-touch A with rows the first pass never searched: the publish
        # must read the disk entry back and merge (merge=True), exactly as
        # a first-ever publish would.
        session.counterfactuals_for(population_a, np.arange(3, 6))
        assert merge_flags[0] is True
        assert merge_flags[-1] is True, (
            "re-publish after eviction skipped the read-back merge"
        )
        # All rows from both passes survived in the store entry.
        from fairexp.explanations import population_fingerprint
        fingerprint = population_fingerprint(session.generator, np.atleast_2d(
            np.asarray(population_a, dtype=float)))
        stored = store.load(fingerprint)
        assert set(stored) >= set(range(6))

    def test_backend_passthrough_routes_session_predicts(self, workload,
                                                         loan_cf_generator):
        """backend= reroutes every predict of the sweep while keeping audit
        results identical to the in-process default."""
        from fairexp.explanations import OnnxExportBackend

        dataset, train, test, model, rejected_idx = workload
        reference_session = AuditSession(
            _generator(GrowingSpheresCounterfactual, train, model,
                       loan_cf_generator.constraints))
        reference = reference_session.counterfactuals_for(test.X, rejected_idx[:6])

        backend = OnnxExportBackend(model, verify_on=test.X)
        session = AuditSession(
            _generator(GrowingSpheresCounterfactual, train, model,
                       loan_cf_generator.constraints),
            backend=backend,
        )
        routed = session.counterfactuals_for(test.X, rejected_idx[:6])
        assert backend.call_count > 0          # the graph really served the sweep
        assert session.predict_call_count == backend.call_count
        assert set(routed) == set(reference)
        for i in reference:
            assert np.array_equal(routed[i].counterfactual,
                                  reference[i].counterfactual)

    def test_backend_only_session_shares_predictions(self, workload):
        """A session built from just a backend (no model object) still
        serves counted, memoized predictions."""
        from fairexp.explanations import OnnxExportBackend

        dataset, train, test, model, _ = workload
        session = AuditSession(backend=OnnxExportBackend(model))
        first = session.predict(test.X)
        second = session.predict(test.X)
        assert np.array_equal(first, model.predict(test.X))
        assert np.array_equal(first, second)
        assert session.predict_call_count == 1
        assert session.cache_hit_count == 1
