"""E14: mitigation at the three pipeline stages of the fairness taxonomy."""

from conftest import record

from fairexp.experiments import run_e14_mitigation


def test_mitigation_stages_reduce_parity_gap(benchmark):
    results = record(benchmark, benchmark.pedantic(
        run_e14_mitigation, kwargs={"n_samples": 700}, rounds=1, iterations=1,
    ), experiment="E14")
    baseline = abs(results["spd_baseline"])
    assert baseline > 0.05
    # Every stage (pre / in / post) reduces the statistical parity gap...
    for stage in ("preprocessing", "inprocessing", "postprocessing"):
        assert abs(results[f"spd_{stage}"]) < baseline
    # ...at a bounded accuracy cost.
    for stage in ("preprocessing", "inprocessing", "postprocessing"):
        assert results[f"accuracy_{stage}"] > results["accuracy_baseline"] - 0.1
