"""GLOBE-CE: global counterfactual explanations as translation directions (Ley et al. [75]).

GLOBE-CE summarizes the recourse of an entire group by a single *global
direction* ``d``: every negatively classified member ``x`` travels along
``x + k * d`` for the smallest per-instance scaling ``k`` that flips the
prediction.  Comparing the accuracy (coverage) and average minimum cost of the
direction between protected and reference groups exposes recourse bias with a
far more compact artifact than one counterfactual per individual.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ValidationError
from ..explanations.base import ExplainerInfo, ExplainerRegistry
from ..explanations.counterfactual import ActionabilityConstraints
from ..explanations.session import AuditSession
from ..fairness.groups import group_masks
from ..utils import check_random_state

__all__ = ["GlobalDirection", "GlobeCEGroupResult", "GlobeCEResult", "GlobeCEExplainer"]


@dataclass
class GlobalDirection:
    """A single translation direction in (scaled) feature space."""

    direction: np.ndarray
    feature_names: list[str] = field(default_factory=list)

    def top_components(self, k: int = 3) -> list[tuple[str, float]]:
        """The ``k`` features with the largest absolute direction weight."""
        order = np.argsort(-np.abs(self.direction))[:k]
        names = self.feature_names or [f"x{j}" for j in range(self.direction.shape[0])]
        return [(names[j], float(self.direction[j])) for j in order]


@dataclass
class GlobeCEGroupResult:
    """Coverage and cost of the global direction for one group."""

    group: int
    n_affected: int
    coverage: float
    mean_cost: float
    costs: np.ndarray = field(repr=False, default_factory=lambda: np.array([]))


@dataclass
class GlobeCEResult:
    """GLOBE-CE audit: one shared direction, per-group coverage and cost."""

    direction: GlobalDirection
    protected: GlobeCEGroupResult
    reference: GlobeCEGroupResult

    @property
    def coverage_gap(self) -> float:
        """coverage(reference) - coverage(protected); positive = protected group is under-served."""
        return self.reference.coverage - self.protected.coverage

    @property
    def cost_gap(self) -> float:
        """mean_cost(protected) - mean_cost(reference); positive = protected group pays more."""
        return self.protected.mean_cost - self.reference.mean_cost

    def as_dict(self) -> dict[str, float]:
        """The result as a plain JSON-serializable dict."""
        return {
            "coverage_protected": self.protected.coverage,
            "coverage_reference": self.reference.coverage,
            "coverage_gap": self.coverage_gap,
            "cost_protected": self.protected.mean_cost,
            "cost_reference": self.reference.mean_cost,
            "cost_gap": self.cost_gap,
        }


@ExplainerRegistry.register(
    "globe_ce", capabilities=("fairness-explainer", "counterfactual-based", "global-direction")
)
class GlobeCEExplainer:
    """Fit one global translation direction and audit it per group.

    The direction is chosen from a set of random unit candidates plus the
    "mean difference" direction (mean of approved minus mean of rejected),
    scored by coverage at a fixed budget of scalings; per-instance minimum
    scalings then give the cost distribution.

    Parameters
    ----------
    model:
        Classifier under audit.
    constraints:
        Optional actionability constraints; the direction's components on
        immutable features are zeroed.
    n_directions:
        Number of random candidate directions.
    max_scale:
        Largest multiple of the direction tried per instance.
    n_scales:
        Number of scaling steps per instance.
    session:
        Optional :class:`~fairexp.explanations.session.AuditSession`.
        Supplies defaults for whatever is omitted: with ``model=None`` the
        audit scores candidates through the session's shared
        counting/memoizing adapter (joining the sweep-wide predict
        accounting), and ``background``/``constraints`` fall back to the
        session generator's.  An explicitly passed model always wins and is
        used as-is, outside the session's accounting.
    """

    info = ExplainerInfo(
        stage="post-hoc",
        access="black-box",
        agnostic=True,
        coverage="global",
        explanation_type="example",
        multiplicity="single",
    )

    def __init__(
        self,
        model=None,
        background: np.ndarray | None = None,
        *,
        constraints: ActionabilityConstraints | None = None,
        feature_names=None,
        n_directions: int = 30,
        max_scale: float = 4.0,
        n_scales: int = 20,
        random_state=None,
        session: AuditSession | None = None,
    ) -> None:
        if session is not None:
            if model is None:
                model = session.model
            if session.generator is not None:
                if background is None:
                    background = session.generator.background
                if constraints is None:
                    constraints = session.generator.constraints
        if model is None or background is None:
            raise ValidationError(
                "GlobeCEExplainer needs a model and background data "
                "(directly or via a session built around a generator)"
            )
        self.model = model
        self.background = np.asarray(background, dtype=float)
        self.constraints = constraints
        self.feature_names = list(feature_names) if feature_names is not None else None
        self.n_directions = n_directions
        self.max_scale = max_scale
        self.n_scales = n_scales
        self.random_state = random_state
        self.scale_ = self.background.std(axis=0)
        self.scale_[self.scale_ == 0] = 1.0

    def _mask_direction(self, direction: np.ndarray) -> np.ndarray:
        direction = direction.copy()
        if self.constraints is not None:
            direction[self.constraints.immutable] = 0.0
            direction[(self.constraints.monotone == 1) & (direction < 0)] = 0.0
            direction[(self.constraints.monotone == -1) & (direction > 0)] = 0.0
        norm = np.linalg.norm(direction)
        return direction / norm if norm > 0 else direction

    def _candidate_directions(self, X_affected: np.ndarray) -> list[np.ndarray]:
        rng = check_random_state(self.random_state)
        candidates = []
        predictions = np.asarray(self.model.predict(self.background))
        approved = self.background[predictions == 1]
        if approved.shape[0] and X_affected.shape[0]:
            mean_diff = (approved.mean(axis=0) - X_affected.mean(axis=0)) / self.scale_
            candidates.append(self._mask_direction(mean_diff))
        for _ in range(self.n_directions):
            random_dir = rng.normal(size=X_affected.shape[1])
            candidates.append(self._mask_direction(random_dir))
        return [c for c in candidates if np.linalg.norm(c) > 0]

    def _min_scales(self, X_affected: np.ndarray, direction: np.ndarray) -> np.ndarray:
        """Smallest scaling flipping each instance; inf when the budget is insufficient."""
        scales = np.linspace(self.max_scale / self.n_scales, self.max_scale, self.n_scales)
        minimum = np.full(X_affected.shape[0], np.inf)
        step = direction * self.scale_
        for k in scales:
            unresolved = ~np.isfinite(minimum)
            if not unresolved.any():
                break
            candidates = X_affected[unresolved] + k * step
            if self.constraints is not None:
                candidates = self.constraints.project(X_affected[unresolved], candidates)
            success = np.asarray(self.model.predict(candidates)) == 1
            idx = np.flatnonzero(unresolved)[success]
            minimum[idx] = k
        return minimum

    def explain(self, X, sensitive, *, protected_value=1) -> GlobeCEResult:
        """Pick the best global direction on all affected individuals, audit per group."""
        X = np.asarray(X, dtype=float)
        sensitive = np.asarray(sensitive)
        predictions = np.asarray(self.model.predict(X))
        affected_mask = predictions == 0
        X_affected = X[affected_mask]
        masks = group_masks(sensitive, protected_value=protected_value)

        best_direction, best_coverage, best_scales = None, -1.0, None
        for direction in self._candidate_directions(X_affected):
            scales = self._min_scales(X_affected, direction)
            coverage = float(np.isfinite(scales).mean()) if scales.size else 0.0
            if coverage > best_coverage:
                best_direction, best_coverage, best_scales = direction, coverage, scales

        names = self.feature_names or [f"x{j}" for j in range(X.shape[1])]
        direction = GlobalDirection(direction=best_direction, feature_names=names)

        group_results = {}
        affected_sensitive = sensitive[affected_mask]
        for group_value, group_mask in ((1, masks.protected), (0, masks.reference)):
            member = (affected_sensitive == protected_value) == (group_value == 1)
            scales = best_scales[member]
            finite = scales[np.isfinite(scales)]
            group_results[group_value] = GlobeCEGroupResult(
                group=group_value,
                n_affected=int(member.sum()),
                coverage=float(np.isfinite(scales).mean()) if scales.size else 0.0,
                mean_cost=float(finite.mean()) if finite.size else 0.0,
                costs=finite,
            )
        return GlobeCEResult(
            direction=direction, protected=group_results[1], reference=group_results[0]
        )
