"""Dataset containers, synthetic benchmark generators and bias injection."""

from .bias import (
    inject_label_bias,
    inject_measurement_bias,
    inject_proxy_feature,
    inject_selection_bias,
    proxy_correlation,
)
from .io import load_csv, save_csv
from .schema import Dataset, FeatureSpec, make_feature_specs
from .synthetic import (
    make_adult_like,
    make_compas_like,
    make_german_credit_like,
    make_hiring_dataset,
    make_loan_dataset,
    make_scm_loan_dataset,
)

__all__ = [
    "Dataset",
    "FeatureSpec",
    "make_feature_specs",
    "make_adult_like",
    "make_german_credit_like",
    "make_compas_like",
    "make_loan_dataset",
    "make_hiring_dataset",
    "make_scm_loan_dataset",
    "inject_label_bias",
    "inject_selection_bias",
    "inject_proxy_feature",
    "inject_measurement_bias",
    "proxy_correlation",
    "save_csv",
    "load_csv",
]
