"""Tests for Shapley-value explanations."""

import numpy as np
import pytest

from fairexp.exceptions import ValidationError
from fairexp.explanations import (
    ShapleyExplainer,
    exact_shapley_values,
    sampled_shapley_values,
    shapley_for_value_function,
)
from fairexp.models import LogisticRegression


class TestSetShapley:
    def test_additive_game_recovers_weights(self):
        # v(S) = sum of weights of members -> Shapley value = weight.
        weights = np.array([1.0, 2.0, 3.0])
        values = shapley_for_value_function(
            lambda S: sum(weights[i] for i in S), 3, method="exact"
        )
        assert np.allclose(values, weights)

    def test_efficiency_property(self):
        rng = np.random.default_rng(0)
        table = {frozenset(s): rng.random() for s in
                 [(), (0,), (1,), (2,), (0, 1), (0, 2), (1, 2), (0, 1, 2)]}
        values = shapley_for_value_function(lambda S: table[frozenset(S)], 3, method="exact")
        assert values.sum() == pytest.approx(
            table[frozenset({0, 1, 2})] - table[frozenset()]
        )

    def test_symmetry_property(self):
        # Players 0 and 1 are interchangeable.
        def value(S):
            return float(len(S & {0, 1}) > 0) + 2.0 * (2 in S)

        values = shapley_for_value_function(value, 3, method="exact")
        assert values[0] == pytest.approx(values[1])

    def test_dummy_player_gets_zero(self):
        values = shapley_for_value_function(lambda S: float(0 in S), 3, method="exact")
        assert values[1] == pytest.approx(0.0)
        assert values[2] == pytest.approx(0.0)

    def test_sampling_approximates_exact(self):
        weights = np.array([1.0, -2.0, 0.5, 3.0])
        exact = shapley_for_value_function(
            lambda S: sum(weights[i] for i in S), 4, method="exact"
        )
        sampled = shapley_for_value_function(
            lambda S: sum(weights[i] for i in S), 4, method="sampling",
            n_permutations=300, random_state=0,
        )
        assert np.allclose(exact, sampled, atol=0.2)

    def test_unknown_method(self):
        with pytest.raises(ValidationError):
            shapley_for_value_function(lambda S: 0.0, 2, method="magic")


class TestModelShapley:
    @pytest.fixture(scope="class")
    def linear_model(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(400, 4))
        logits = 2.0 * X[:, 0] - 1.0 * X[:, 1] + 0.0 * X[:, 2] + 0.5 * X[:, 3]
        y = (logits > 0).astype(int)
        model = LogisticRegression(n_iter=800).fit(X, y)
        return model, X

    def test_exact_efficiency_on_model(self, linear_model):
        model, X = linear_model
        attribution = exact_shapley_values(
            lambda Z: model.predict_proba(Z)[:, 1], X[0], X[:100]
        )
        full = model.predict_proba(X[0][None, :])[0, 1]
        assert attribution.total() == pytest.approx(full - attribution.baseline, abs=1e-6)

    def test_exact_ranks_informative_features_higher(self, linear_model):
        model, X = linear_model
        explainer = ShapleyExplainer(model, X[:100], method="exact",
                                     feature_names=["a", "b", "c", "d"])
        global_attribution = explainer.explain_global(X[:40], max_samples=15)
        importance = dict(zip(global_attribution.feature_names, global_attribution.values))
        assert importance["a"] > importance["c"]
        assert importance["b"] > importance["c"]

    def test_sampling_close_to_exact(self, linear_model):
        model, X = linear_model
        exact = exact_shapley_values(lambda Z: model.predict_proba(Z)[:, 1], X[3], X[:100])
        sampled = sampled_shapley_values(
            lambda Z: model.predict_proba(Z)[:, 1], X[3], X[:100],
            n_permutations=400, random_state=0,
        )
        assert np.allclose(exact.values, sampled.values, atol=0.12)

    def test_exact_rejects_too_many_features(self, rng):
        X = rng.normal(size=(20, 16))
        with pytest.raises(ValidationError):
            exact_shapley_values(lambda Z: Z.sum(axis=1), X[0], X)

    def test_attribution_helpers(self, linear_model):
        model, X = linear_model
        explainer = ShapleyExplainer(model, X[:50], feature_names=["a", "b", "c", "d"],
                                     random_state=0)
        attribution = explainer.explain(X[0])
        top = attribution.top(2)
        assert len(top) == 2
        assert set(attribution.as_dict()) == {"a", "b", "c", "d"}
