"""Tests for actionable recourse [65], fair (causal) recourse [79, 80],
fairness Shapley [81], causal path decomposition [82] and probabilistic
contrastive counterfactuals [10]."""

import numpy as np
import pytest

from fairexp.causal import CausalGraph
from fairexp.core import (
    CausalRecourseExplainer,
    CausalPathExplainer,
    FairnessShapExplainer,
    ProbabilisticContrastiveExplainer,
    causal_flip_rate,
    causal_recourse_fairness,
    recourse_gap_report,
)
from fairexp.exceptions import InfeasibleRecourseError, ValidationError
from fairexp.fairness import statistical_parity_difference


@pytest.fixture(scope="module")
def recourse_explainer(scm_loan):
    dataset, scm, train, test, model = scm_loan
    explainer = CausalRecourseExplainer(
        model,
        scm,
        dataset.feature_names,
        actionable=["education", "income", "savings"],
        scales={"education": 2.0, "income": 10.0, "savings": 5.0},
        value_ranges={"education": (4, 20), "income": (5, 200), "savings": (0, 100)},
        grid_size=6,
    )
    return dataset, scm, train, test, model, explainer


class TestCausalRecourse:
    def test_flipset_flips_prediction(self, recourse_explainer):
        *_ignore, test, model, explainer = recourse_explainer
        rejected = test.X[model.predict(test.X) == 0]
        result = explainer.explain(rejected[0])
        assert result.best.prediction == 1
        assert result.best.cost > 0
        assert len(result.candidates) >= 1

    def test_candidates_sorted_by_cost(self, recourse_explainer):
        *_ignore, test, model, explainer = recourse_explainer
        rejected = test.X[model.predict(test.X) == 0]
        result = explainer.explain(rejected[0], top_k=5)
        costs = [flipset.cost for flipset in result.candidates]
        assert costs == sorted(costs)

    def test_already_approved_individual_rejected(self, recourse_explainer):
        *_ignore, test, model, explainer = recourse_explainer
        approved = test.X[model.predict(test.X) == 1]
        with pytest.raises(ValidationError):
            explainer.explain(approved[0])

    def test_immutable_variable_never_intervened(self, recourse_explainer):
        *_ignore, test, model, explainer = recourse_explainer
        rejected = test.X[model.predict(test.X) == 0]
        for row in rejected[:5]:
            result = explainer.explain(row)
            assert "group" not in result.best.interventions

    def test_causal_cost_never_exceeds_independent_cost(self, recourse_explainer):
        *_ignore, test, model, explainer = recourse_explainer
        rejected = test.X[model.predict(test.X) == 0][:6]
        for row in rejected:
            causal = explainer.recourse_cost(row)
            independent = explainer.independent_manipulation_cost(row)
            assert causal <= independent + 1e-9

    def test_causal_strictly_cheaper_for_some_individual(self, recourse_explainer):
        # Intervening on education propagates to income in the SCM, so for at
        # least some rejected individuals the causal flipset is strictly cheaper
        # than independently manipulating the same variables.
        *_ignore, test, model, explainer = recourse_explainer
        rejected = test.X[model.predict(test.X) == 0][:12]
        diffs = [
            explainer.independent_manipulation_cost(row) - explainer.recourse_cost(row)
            for row in rejected
        ]
        assert max(diffs) > 1e-6

    def test_unknown_variable_order_rejected(self, scm_loan):
        dataset, scm, _, _, model = scm_loan
        with pytest.raises(ValidationError):
            CausalRecourseExplainer(model, scm, ["group", "nope"], actionable=["nope"])

    def test_flipset_describe(self, recourse_explainer):
        *_ignore, test, model, explainer = recourse_explainer
        rejected = test.X[model.predict(test.X) == 0]
        assert "do(" in explainer.explain(rejected[0]).best.describe()


class TestFairRecourse:
    def test_distance_recourse_gap_positive_for_biased_model(self, loan_data, loan_model):
        _, _, test = loan_data
        report = recourse_gap_report(loan_model, test.X, test.sensitive_values)
        assert report.recourse_protected > report.recourse_reference
        assert report.gap > 0
        assert report.ratio > 1

    def test_recourse_gap_counts(self, loan_data, loan_model):
        _, _, test = loan_data
        report = recourse_gap_report(loan_model, test.X, test.sensitive_values)
        rejected = (loan_model.predict(test.X) == 0).sum()
        assert report.n_protected + report.n_reference == rejected

    def test_causal_recourse_fairness_detects_disadvantage(self, recourse_explainer):
        _, scm, _, test, model, explainer = recourse_explainer
        result = causal_recourse_fairness(
            explainer, scm, test.X, sensitive_variable="group",
            max_individuals=6, random_state=0,
        )
        assert result.mean_unfairness >= 0
        assert 0.0 <= result.fraction_disadvantaged <= 1.0
        assert result.cost_factual.shape == result.cost_counterfactual.shape

    def test_causal_flip_rate_positive_for_biased_model(self, recourse_explainer):
        dataset, scm, _, test, model, _ = recourse_explainer
        rate = causal_flip_rate(model, scm, test.X[:80], dataset.feature_names,
                                sensitive_variable="group")
        assert rate > 0.02

    def test_causal_flip_rate_bounded(self, recourse_explainer):
        dataset, scm, _, test, model, _ = recourse_explainer
        rate = causal_flip_rate(model, scm, test.X[:40], dataset.feature_names,
                                sensitive_variable="group")
        assert 0.0 <= rate <= 1.0


class TestFairnessShap:
    def test_efficiency_attributions_sum_to_metric(self, loan_data, loan_model):
        dataset, train, test = loan_data
        explainer = FairnessShapExplainer(
            loan_model, train.X[:80], feature_names=dataset.feature_names,
            method="exact", n_background=8, random_state=0,
        )
        attribution = explainer.explain(test.X[:120], test.sensitive_values[:120])
        full = attribution.meta["metric_full_model"]
        empty = attribution.meta["metric_no_features"]
        assert attribution.total() == pytest.approx(full - empty, abs=1e-9)

    def test_sensitive_feature_blamed_most(self, loan_data, loan_model):
        dataset, train, test = loan_data
        explainer = FairnessShapExplainer(
            loan_model, train.X[:80], feature_names=dataset.feature_names,
            method="exact", n_background=8, random_state=0,
        )
        attribution = explainer.explain(test.X[:120], test.sensitive_values[:120])
        scores = attribution.as_dict()
        # The direct-bias feature carries the largest (most negative) share.
        assert scores["group"] == min(scores.values())

    def test_sampling_close_to_exact(self, loan_data, loan_model):
        dataset, train, test = loan_data
        common = dict(feature_names=dataset.feature_names, n_background=8, random_state=0)
        exact = FairnessShapExplainer(loan_model, train.X[:60], method="exact", **common)
        sampled = FairnessShapExplainer(loan_model, train.X[:60], method="sampling",
                                        n_permutations=80, **common)
        a = exact.explain(test.X[:80], test.sensitive_values[:80]).values
        b = sampled.explain(test.X[:80], test.sensitive_values[:80]).values
        assert np.allclose(a, b, atol=0.15)

    def test_custom_metric(self, loan_data, loan_model):
        dataset, train, test = loan_data

        def selection_rate_gap(y_pred, sensitive):
            return statistical_parity_difference(y_pred, sensitive)

        explainer = FairnessShapExplainer(
            loan_model, train.X[:50], metric=selection_rate_gap,
            feature_names=dataset.feature_names, method="exact", n_background=5,
            random_state=0,
        )
        attribution = explainer.explain(test.X[:60], test.sensitive_values[:60])
        assert len(attribution.values) == dataset.n_features


class TestCausalPaths:
    def test_decomposition_explains_disparity(self, scm_loan):
        dataset, scm, train, test, model = scm_loan
        graph = CausalGraph([
            ("group", "education"), ("group", "income"),
            ("education", "income"), ("income", "savings"),
        ])
        explainer = CausalPathExplainer(model, graph, sensitive="group",
                                        feature_order=dataset.feature_names)
        decomposition = explainer.explain(test.X)
        assert decomposition.total_disparity < 0  # protected group disadvantaged
        assert decomposition.explained_fraction() == pytest.approx(1.0, abs=1e-6)
        assert len(decomposition.paths) >= 2

    def test_paths_start_at_sensitive(self, scm_loan):
        dataset, _, _, test, model = scm_loan
        graph = CausalGraph([("group", "education"), ("education", "income"),
                             ("income", "savings")])
        explainer = CausalPathExplainer(model, graph, sensitive="group",
                                        feature_order=dataset.feature_names)
        decomposition = explainer.explain(test.X)
        for path in decomposition.paths:
            assert path.path[0] == "group"

    def test_mediated_disparity_dominates_when_no_direct_edge(self, scm_loan):
        dataset, _, _, test, model = scm_loan
        graph = CausalGraph([("group", "income"), ("income", "savings"),
                             ("group", "education"), ("education", "income")])
        explainer = CausalPathExplainer(model, graph, sensitive="group",
                                        feature_order=dataset.feature_names)
        decomposition = explainer.explain(test.X)
        mediated = sum(p.contribution for p in decomposition.paths)
        # Most of the disparity flows through income/education, not the
        # residual direct term.
        assert abs(mediated) > abs(decomposition.direct_contribution)

    def test_sensitive_must_be_a_feature(self, scm_loan):
        dataset, _, _, _, model = scm_loan
        graph = CausalGraph([("group", "income")])
        with pytest.raises(ValidationError):
            CausalPathExplainer(model, graph, sensitive="zipcode",
                                feature_order=dataset.feature_names)


class TestProbabilisticContrastive:
    def test_sensitive_necessity_high_for_biased_model(self, scm_loan):
        dataset, _, _, test, model = scm_loan
        explainer = ProbabilisticContrastiveExplainer(
            model, dataset.feature_names, dataset.sensitive_index
        )
        scores = explainer.explain_sensitive(test.X)
        assert scores.necessity > 0.3

    def test_attribute_ranking_prefers_causal_drivers(self, scm_loan):
        dataset, _, _, test, model = scm_loan
        explainer = ProbabilisticContrastiveExplainer(
            model, dataset.feature_names, dataset.sensitive_index
        )
        ranking = explainer.rank_attributes(test.X)
        assert ranking[0].attribute in {"income", "education", "savings"}
        assert ranking[0].scores.sufficiency >= ranking[-1].scores.sufficiency

    def test_unknown_attribute_rejected(self, scm_loan):
        dataset, _, _, test, model = scm_loan
        explainer = ProbabilisticContrastiveExplainer(
            model, dataset.feature_names, dataset.sensitive_index
        )
        with pytest.raises(ValidationError):
            explainer.explain_attribute(test.X, "zipcode")

    def test_scores_bounded(self, scm_loan):
        dataset, _, _, test, model = scm_loan
        explainer = ProbabilisticContrastiveExplainer(
            model, dataset.feature_names, dataset.sensitive_index
        )
        result = explainer.explain_attribute(test.X, "income")
        for scores in (result.scores, result.scores_protected, result.scores_reference):
            assert 0.0 <= scores.necessity <= 1.0
            assert 0.0 <= scores.sufficiency <= 1.0
