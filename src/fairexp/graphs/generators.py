"""Biased graph generators for GNN fairness experiments.

The structural-bias explanation literature ([89]–[91]) studies graphs whose
*topology* transmits group disadvantage: nodes connect preferentially within
their sensitive group (homophily), so message passing propagates group-typical
features and produces disparate predictions even without the sensitive
attribute as an input feature.  :func:`make_biased_sbm` reproduces exactly
this setting with a two-block stochastic block model, group-shifted node
features and group-dependent labels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from ..exceptions import ValidationError
from ..utils import check_random_state, sigmoid

__all__ = ["AttributedGraph", "make_biased_sbm"]


@dataclass
class AttributedGraph:
    """An undirected graph with node features, sensitive groups and binary labels."""

    adjacency: np.ndarray
    features: np.ndarray
    groups: np.ndarray
    labels: np.ndarray
    meta: dict = field(default_factory=dict)

    #: data modality advertised to ``ExplainerRegistry.is_compatible``
    modality = "graph"

    def __post_init__(self) -> None:
        self.adjacency = np.asarray(self.adjacency, dtype=float)
        self.features = np.asarray(self.features, dtype=float)
        self.groups = np.asarray(self.groups, dtype=int)
        self.labels = np.asarray(self.labels, dtype=int)
        n = self.adjacency.shape[0]
        if self.adjacency.shape != (n, n):
            raise ValidationError("adjacency must be square")
        if not np.allclose(self.adjacency, self.adjacency.T):
            raise ValidationError("adjacency must be symmetric (undirected graph)")
        for name, array in (("features", self.features), ("groups", self.groups),
                            ("labels", self.labels)):
            if array.shape[0] != n:
                raise ValidationError(f"{name} must have one entry per node")

    @property
    def n_nodes(self) -> int:
        """Number of nodes in the graph."""
        return int(self.adjacency.shape[0])

    def edges(self) -> list[tuple[int, int]]:
        """Return the undirected edge list (i < j)."""
        rows, cols = np.nonzero(np.triu(self.adjacency, k=1))
        return list(zip(rows.tolist(), cols.tolist()))

    def degree(self) -> np.ndarray:
        """Per-node degree vector."""
        return self.adjacency.sum(axis=1)

    def homophily(self) -> float:
        """Fraction of edges connecting nodes of the same sensitive group."""
        edges = self.edges()
        if not edges:
            return 0.0
        same = sum(1 for i, j in edges if self.groups[i] == self.groups[j])
        return same / len(edges)

    def remove_edges(self, edges: list[tuple[int, int]]) -> "AttributedGraph":
        """Return a copy with the listed undirected edges removed."""
        adjacency = self.adjacency.copy()
        for i, j in edges:
            adjacency[i, j] = 0.0
            adjacency[j, i] = 0.0
        return AttributedGraph(
            adjacency=adjacency,
            features=self.features.copy(),
            groups=self.groups.copy(),
            labels=self.labels.copy(),
            meta=dict(self.meta),
        )

    def to_networkx(self) -> nx.Graph:
        """The graph as a ``networkx.Graph`` with node attributes attached."""
        graph = nx.from_numpy_array(self.adjacency)
        for node in graph.nodes:
            graph.nodes[node]["group"] = int(self.groups[node])
            graph.nodes[node]["label"] = int(self.labels[node])
        return graph


def make_biased_sbm(
    n_nodes: int = 200,
    *,
    protected_fraction: float = 0.4,
    p_within: float = 0.08,
    p_between: float = 0.01,
    n_features: int = 6,
    feature_shift: float = 1.0,
    label_bias: float = 1.0,
    random_state=None,
) -> AttributedGraph:
    """Two-block SBM with homophily, group-shifted features and biased labels.

    Parameters
    ----------
    p_within, p_between:
        Edge probabilities within / across sensitive groups; the gap controls
        the topological bias the structural explainers should discover.
    feature_shift:
        How far the protected group's feature mean is shifted (proxy signal).
    label_bias:
        Log-odds penalty on the favourable label for the protected group.
    """
    rng = check_random_state(random_state)
    groups = (rng.random(n_nodes) < protected_fraction).astype(int)

    same = groups[:, None] == groups[None, :]
    probabilities = np.where(same, p_within, p_between)
    upper = np.triu(rng.random((n_nodes, n_nodes)) < probabilities, k=1)
    adjacency = (upper | upper.T).astype(float)
    np.fill_diagonal(adjacency, 0.0)

    features = rng.normal(0.0, 1.0, (n_nodes, n_features))
    features[:, 0] -= feature_shift * groups
    features[:, 1] += 0.5 * feature_shift * groups

    logits = 0.8 * features[:, 0] + 0.5 * features[:, 2] - label_bias * groups
    labels = (rng.random(n_nodes) < sigmoid(logits)).astype(int)

    return AttributedGraph(
        adjacency=adjacency,
        features=features,
        groups=groups,
        labels=labels,
        meta={
            "p_within": p_within,
            "p_between": p_between,
            "feature_shift": feature_shift,
            "label_bias": label_bias,
        },
    )
