"""CART-style decision tree classifier (numpy implementation)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ValidationError
from ..utils import check_random_state
from .base import BaseClassifier

__all__ = ["DecisionTreeClassifier", "TreeNode"]


@dataclass
class TreeNode:
    """A node in the decision tree.

    Leaf nodes have ``feature is None`` and carry the class distribution in
    ``value``; internal nodes route samples with ``x[feature] <= threshold``
    to ``left`` and the rest to ``right``.
    """

    feature: int | None = None
    threshold: float = 0.0
    left: "TreeNode | None" = None
    right: "TreeNode | None" = None
    value: np.ndarray = field(default_factory=lambda: np.zeros(2))
    n_samples: int = 0
    depth: int = 0

    @property
    def is_leaf(self) -> bool:
        """True when this node has no children."""
        return self.feature is None

    def predict_one(self, x: np.ndarray) -> np.ndarray:
        """Class probabilities at the leaf reached by sample ``x``."""
        node = self
        while not node.is_leaf:
            node = node.left if x[node.feature] <= node.threshold else node.right
        return node.value

    def decision_path(self, x: np.ndarray) -> list[tuple[int, float, bool]]:
        """Return the list of ``(feature, threshold, went_left)`` splits for ``x``."""
        path = []
        node = self
        while not node.is_leaf:
            went_left = x[node.feature] <= node.threshold
            path.append((node.feature, node.threshold, bool(went_left)))
            node = node.left if went_left else node.right
        return path


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    proportions = counts / total
    return float(1.0 - np.sum(proportions**2))


class DecisionTreeClassifier(BaseClassifier):
    """Binary-split decision tree using the Gini impurity criterion.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (``None`` for unlimited).
    min_samples_split:
        Minimum number of samples required to consider splitting a node.
    min_samples_leaf:
        Minimum number of samples each child must retain.
    max_features:
        Number of candidate features examined at each split (``None`` = all);
        the random-forest ensemble sets this to ``sqrt``.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | str | None = None,
        random_state: int | None = 0,
    ) -> None:
        super().__init__()
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state
        self.root_: TreeNode | None = None
        self.n_features_: int = 0
        self.feature_importances_: np.ndarray | None = None

    # ------------------------------------------------------------------ fit
    def fit(self, X, y, sample_weight=None) -> "DecisionTreeClassifier":
        """Grow the tree on ``X``/``y``; returns ``self``."""
        X, y = self._validate_fit_input(X, y)
        y = y.astype(int)
        if self.classes_.shape[0] < 2:
            raise ValidationError("need at least two classes to fit a tree")
        self.n_features_ = X.shape[1]
        self._n_classes = int(self.classes_.shape[0])
        self._class_index = {c: i for i, c in enumerate(self.classes_)}
        y_idx = np.array([self._class_index[label] for label in y])
        self._rng = check_random_state(self.random_state)
        self._importance_accumulator = np.zeros(self.n_features_)
        if sample_weight is None:
            sample_weight = np.ones(X.shape[0])
        else:
            sample_weight = np.asarray(sample_weight, dtype=float)
        self.root_ = self._build(X, y_idx, sample_weight, depth=0)
        total = self._importance_accumulator.sum()
        self.feature_importances_ = (
            self._importance_accumulator / total if total > 0 else self._importance_accumulator
        )
        self._fitted = True
        return self

    def _n_candidate_features(self) -> int:
        if self.max_features is None:
            return self.n_features_
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(self.n_features_)))
        if self.max_features == "log2":
            return max(1, int(np.log2(self.n_features_)))
        return min(self.n_features_, int(self.max_features))

    def _build(self, X, y_idx, weights, depth) -> TreeNode:
        counts = np.bincount(y_idx, weights=weights, minlength=self._n_classes)
        node = TreeNode(value=counts / max(counts.sum(), 1e-12), n_samples=len(y_idx), depth=depth)

        if (
            len(np.unique(y_idx)) == 1
            or len(y_idx) < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
        ):
            return node

        best = self._best_split(X, y_idx, weights)
        if best is None:
            return node

        feature, threshold, gain = best
        left_mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        self._importance_accumulator[feature] += gain * len(y_idx)
        node.left = self._build(X[left_mask], y_idx[left_mask], weights[left_mask], depth + 1)
        node.right = self._build(X[~left_mask], y_idx[~left_mask], weights[~left_mask], depth + 1)
        return node

    def _best_split(self, X, y_idx, weights):
        n_samples = X.shape[0]
        parent_counts = np.bincount(y_idx, weights=weights, minlength=self._n_classes)
        parent_impurity = _gini(parent_counts)
        best_gain = 0.0
        best = None

        candidates = self._rng.permutation(self.n_features_)[: self._n_candidate_features()]
        for feature in candidates:
            values = X[:, feature]
            order = np.argsort(values, kind="stable")
            sorted_values = values[order]
            sorted_y = y_idx[order]
            sorted_w = weights[order]

            left_counts = np.zeros(self._n_classes)
            right_counts = parent_counts.copy()
            for i in range(n_samples - 1):
                label = sorted_y[i]
                left_counts[label] += sorted_w[i]
                right_counts[label] -= sorted_w[i]
                if sorted_values[i] == sorted_values[i + 1]:
                    continue
                n_left, n_right = i + 1, n_samples - i - 1
                if n_left < self.min_samples_leaf or n_right < self.min_samples_leaf:
                    continue
                weighted_impurity = (
                    left_counts.sum() * _gini(left_counts)
                    + right_counts.sum() * _gini(right_counts)
                ) / max(parent_counts.sum(), 1e-12)
                gain = parent_impurity - weighted_impurity
                if gain > best_gain + 1e-12:
                    best_gain = gain
                    threshold = (sorted_values[i] + sorted_values[i + 1]) / 2.0
                    best = (int(feature), float(threshold), float(gain))
        return best

    # ------------------------------------------------------------- predict
    def predict_proba(self, X) -> np.ndarray:
        """Class-membership probabilities for each row of ``X``."""
        X = self._validate_predict_input(X)
        return np.vstack([self.root_.predict_one(x) for x in X])

    def predict(self, X) -> np.ndarray:
        """Predicted class labels for ``X``."""
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    # -------------------------------------------------------------- export
    def decision_path(self, x) -> list[tuple[int, float, bool]]:
        """Return the split sequence taken by a single sample ``x``."""
        self._check_fitted()
        return self.root_.decision_path(np.asarray(x, dtype=float))

    def export_rules(self, feature_names=None) -> list[str]:
        """Return a human-readable rule per leaf (used for rule-based explanations)."""
        self._check_fitted()
        if feature_names is None:
            feature_names = [f"x{i}" for i in range(self.n_features_)]
        rules: list[str] = []

        def walk(node: TreeNode, conditions: list[str]) -> None:
            if node.is_leaf:
                label = self.classes_[int(np.argmax(node.value))]
                premise = " AND ".join(conditions) if conditions else "TRUE"
                rules.append(f"IF {premise} THEN class={label}")
                return
            name = feature_names[node.feature]
            walk(node.left, conditions + [f"{name} <= {node.threshold:.4g}"])
            walk(node.right, conditions + [f"{name} > {node.threshold:.4g}"])

        walk(self.root_, [])
        return rules

    def depth(self) -> int:
        """Return the depth of the fitted tree."""
        self._check_fitted()

        def walk(node: TreeNode) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self.root_)

    def n_leaves(self) -> int:
        """Return the number of leaves in the fitted tree."""
        self._check_fitted()

        def walk(node: TreeNode) -> int:
            if node.is_leaf:
                return 1
            return walk(node.left) + walk(node.right)

        return walk(self.root_)
