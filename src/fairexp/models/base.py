"""Base classes and protocols for fairexp models.

All classifiers in :mod:`fairexp.models` follow the familiar
``fit`` / ``predict`` / ``predict_proba`` convention so they can be swapped
freely under the fairness-explanation methods, which only require black-box
(or, where noted, gradient) access.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

import numpy as np

from ..exceptions import NotFittedError
from ..utils import check_array, check_binary_labels, check_consistent_length

__all__ = ["BaseClassifier", "ProbabilisticClassifier"]


class BaseClassifier(ABC):
    """Abstract binary/multiclass classifier.

    Subclasses must implement :meth:`fit` and :meth:`predict_proba`;
    :meth:`predict` defaults to an argmax over the predicted probabilities.
    """

    classes_: np.ndarray

    def __init__(self) -> None:
        self._fitted = False

    # ------------------------------------------------------------------ API
    @abstractmethod
    def fit(self, X, y) -> "BaseClassifier":
        """Fit the model on features ``X`` and labels ``y`` and return ``self``."""

    @abstractmethod
    def predict_proba(self, X) -> np.ndarray:
        """Return an ``(n_samples, n_classes)`` array of class probabilities."""

    def predict(self, X) -> np.ndarray:
        """Return the most probable class for each sample."""
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    def decision_function(self, X) -> np.ndarray:
        """Return a score for the positive class (probability by default)."""
        return self.predict_proba(X)[:, -1]

    def score(self, X, y) -> float:
        """Return accuracy on the given data."""
        y = np.asarray(y)
        return float(np.mean(self.predict(X) == y))

    # -------------------------------------------------------------- helpers
    def _check_fitted(self) -> None:
        if not getattr(self, "_fitted", False):
            raise NotFittedError(f"{type(self).__name__} is not fitted; call fit() first")

    def _validate_fit_input(self, X, y) -> tuple[np.ndarray, np.ndarray]:
        X = check_array(X, ndim=2, name="X")
        y = np.asarray(y)
        check_consistent_length(X, y)
        if y.ndim != 1:
            y = y.ravel()
        self.classes_ = np.unique(y)
        return X, y

    def _validate_predict_input(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_array(X, ndim=2, name="X")
        return X

    def get_params(self) -> dict[str, Any]:
        """Return constructor parameters (public attributes set in ``__init__``)."""
        return {
            key: value
            for key, value in vars(self).items()
            if not key.endswith("_") and not key.startswith("_")
        }

    def clone(self) -> "BaseClassifier":
        """Return an unfitted copy of this estimator with identical parameters."""
        return type(self)(**self.get_params())

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in sorted(self.get_params().items()))
        return f"{type(self).__name__}({params})"


class ProbabilisticClassifier(BaseClassifier):
    """Marker base class for classifiers with calibrated probability output."""


def fit_binary(model: BaseClassifier, X, y) -> BaseClassifier:
    """Fit ``model`` after validating that ``y`` is a 0/1 label vector."""
    check_binary_labels(y)
    return model.fit(X, y)
