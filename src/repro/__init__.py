"""``repro`` distribution shim: the implementation lives in :mod:`fairexp`.

``import repro`` re-exports the fairexp public API so both names work.
"""

from fairexp import *  # noqa: F401,F403
from fairexp import (  # noqa: F401
    __version__,
    causal,
    core,
    datasets,
    explanations,
    fairness,
    graphs,
    models,
    ranking,
    recsys,
)
