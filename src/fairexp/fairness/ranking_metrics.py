"""Fairness metrics for rankings and recommendations.

The paper's taxonomy distinguishes *exposure-based* fairness (expected
attention received by a group, driven by position bias) from
*probability-based* fairness (statistical tests of whether a ranking prefix
could have been produced by an unbiased process).  Both are provided here,
along with simple representation metrics used by Dexer-style explanations.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from ..exceptions import ValidationError
from ..utils import safe_divide

__all__ = [
    "position_weights",
    "exposure",
    "group_exposure_ratio",
    "top_k_representation",
    "representation_difference",
    "ranking_binomial_pvalue",
    "ndcg_exposure_share",
]


def position_weights(n_positions: int, *, scheme: str = "log") -> np.ndarray:
    """Return per-position attention weights.

    ``"log"`` uses the standard DCG discount ``1/log2(rank+1)``;
    ``"inverse"`` uses ``1/rank``; ``"uniform"`` gives equal attention.
    """
    ranks = np.arange(1, n_positions + 1, dtype=float)
    if scheme == "log":
        return 1.0 / np.log2(ranks + 1)
    if scheme == "inverse":
        return 1.0 / ranks
    if scheme == "uniform":
        return np.ones(n_positions)
    raise ValidationError(f"unknown position-weight scheme {scheme!r}")


def exposure(ranking_groups, *, scheme: str = "log") -> dict[int, float]:
    """Total exposure received by each group value in a single ranking.

    Parameters
    ----------
    ranking_groups:
        Group value of the item at each rank (rank 0 = top).
    """
    ranking_groups = np.asarray(ranking_groups)
    weights = position_weights(ranking_groups.shape[0], scheme=scheme)
    return {
        int(value): float(weights[ranking_groups == value].sum())
        for value in np.unique(ranking_groups)
    }


def group_exposure_ratio(
    ranking_groups, *, protected_value=1, scheme: str = "log", normalize_by_size: bool = True
) -> float:
    """Exposure of the protected group divided by exposure of the rest.

    With ``normalize_by_size`` the exposures are divided by group sizes first
    (average exposure per item), so a value of 1.0 means size-proportional
    attention and values below 1.0 mean the protected group is under-exposed.
    """
    ranking_groups = np.asarray(ranking_groups)
    exposures = exposure(ranking_groups, scheme=scheme)
    protected_exposure = exposures.get(int(protected_value), 0.0)
    reference_exposure = sum(v for k, v in exposures.items() if k != int(protected_value))
    if normalize_by_size:
        n_protected = int(np.sum(ranking_groups == protected_value))
        n_reference = int(np.sum(ranking_groups != protected_value))
        protected_exposure = safe_divide(protected_exposure, n_protected)
        reference_exposure = safe_divide(reference_exposure, n_reference)
    return float(safe_divide(protected_exposure, reference_exposure))


def top_k_representation(ranking_groups, k: int, *, protected_value=1) -> float:
    """Fraction of the top-``k`` positions occupied by the protected group."""
    ranking_groups = np.asarray(ranking_groups)
    if k <= 0:
        raise ValidationError("k must be positive")
    top = ranking_groups[: min(k, ranking_groups.shape[0])]
    return float(np.mean(top == protected_value))


def representation_difference(ranking_groups, k: int, *, protected_value=1) -> float:
    """Top-k protected share minus the protected share in the full candidate pool."""
    ranking_groups = np.asarray(ranking_groups)
    overall = float(np.mean(ranking_groups == protected_value))
    return top_k_representation(ranking_groups, k, protected_value=protected_value) - overall


def ranking_binomial_pvalue(ranking_groups, k: int, *, protected_value=1) -> float:
    """Probability-based fairness test for a ranking prefix.

    Two-sided binomial test of whether the number of protected items in the
    top-``k`` is consistent with drawing positions at random from the
    candidate pool.  Small p-values indicate the prefix composition is
    unlikely under an unbiased process.
    """
    ranking_groups = np.asarray(ranking_groups)
    pool_share = float(np.mean(ranking_groups == protected_value))
    top = ranking_groups[: min(k, ranking_groups.shape[0])]
    successes = int(np.sum(top == protected_value))
    result = stats.binomtest(successes, n=len(top), p=pool_share, alternative="two-sided")
    return float(result.pvalue)


def ndcg_exposure_share(scores, groups, k: int | None = None, *, protected_value=1) -> float:
    """Share of total DCG-weighted exposure captured by the protected group.

    Items are ranked by ``scores`` (descending); the result is in ``[0, 1]``.
    """
    scores = np.asarray(scores, dtype=float)
    groups = np.asarray(groups)
    order = np.argsort(-scores, kind="stable")
    if k is not None:
        order = order[:k]
    weights = position_weights(order.shape[0])
    protected_mask = groups[order] == protected_value
    total = weights.sum()
    return float(safe_divide(weights[protected_mask].sum(), total))
