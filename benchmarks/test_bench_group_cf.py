"""E5: group counterfactual summaries (GLOBE-CE [75], CF trees [76], AReS [74])
plus the counterfactual-search ablation."""

from conftest import record

from fairexp.experiments import run_e5_group_counterfactuals


def test_group_counterfactual_summaries(benchmark):
    results = record(benchmark, benchmark.pedantic(
        run_e5_group_counterfactuals, kwargs={"n_samples": 600}, rounds=1, iterations=1,
    ), experiment="E5")
    # GLOBE-CE: travelling along the shared direction costs the protected group more.
    assert results["globe_cost_gap"] > 0.2
    # Counterfactual explanation tree: a handful of leaves explains most of the
    # rejected population, and the shared actions work less well (or cost more)
    # for the protected group.
    assert 1 <= results["cftree_n_leaves"] <= 8
    assert results["cftree_validity"] > 0.3
    assert results["cftree_validity_gap"] > -0.05
    # Two-level recourse set: compact rule set with meaningful coverage and a
    # coverage gap against the protected group.
    assert results["recourse_set_n_rules"] <= 4
    assert results["recourse_set_coverage"] > 0.3
    assert results["recourse_set_coverage_gap"] > -0.05

    # Ablation: every registered search strategy reaches (almost) full
    # coverage; growing spheres finds counterfactuals at least as close as
    # random search, and the gradient search trades distance for speed on
    # gradient-access models.  Strategy names come from the explainer
    # registry, so newly registered generators join the ablation for free.
    from fairexp.explanations import ExplainerRegistry

    strategies = [e.name for e in ExplainerRegistry.with_capability("counterfactual-generator")]
    assert {"random_search", "growing_spheres", "gradient"} <= set(strategies)
    for strategy in strategies:
        assert results[f"cf_{strategy}_coverage"] > 0.9
    assert (
        results["cf_growing_spheres_mean_distance"]
        <= results["cf_random_search_mean_distance"] * 1.2
    )
