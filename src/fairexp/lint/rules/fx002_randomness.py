"""FX002 — randomness flows through injected ``numpy.random.Generator``.

Every experiment runner seeds a ``Generator`` via ``check_random_state``
and threads it explicitly so populations are store-addressable (the
fingerprint covers the seed).  Legacy ``np.random.*`` calls draw from the
hidden global ``RandomState`` — invisible to fingerprints and racy under
the thread pools — and any module-level RNG call creates global state at
import time.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING

from ..engine import Rule
from .common import dotted_name, is_test_path

if TYPE_CHECKING:  # pragma: no cover - typing only
    from collections.abc import Iterable

    from ..engine import FileContext, Finding

# The seeded-Generator construction surface; everything else under
# np.random is the legacy global-state API.
_ALLOWED = frozenset(
    {"default_rng", "Generator", "SeedSequence", "BitGenerator", "PCG64", "Philox"}
)
_NUMPY_RANDOM_PREFIXES = ("np.random.", "numpy.random.")


def _np_random_member(name: str | None) -> str | None:
    """The member name for ``np.random.<member>`` chains, else ``None``."""
    if name is None:
        return None
    for prefix in _NUMPY_RANDOM_PREFIXES:
        if name.startswith(prefix):
            member = name[len(prefix) :]
            if member and "." not in member:
                return member
    return None


class LegacyRandomRule(Rule):
    """Flag legacy and module-level ``np.random`` usage in library code."""

    code = "FX002"
    summary = (
        "no module-level or legacy np.random.* calls; inject a seeded "
        "numpy.random.Generator instead"
    )
    node_types = (ast.Call, ast.ImportFrom)

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        """Flag legacy np.random calls, module-level RNG construction, and
        legacy ``from numpy.random import`` names.
        """
        if is_test_path(ctx.path):
            return
        if isinstance(node, ast.ImportFrom):
            if node.module == "numpy.random":
                for alias in node.names:
                    if alias.name not in _ALLOWED:
                        yield self.finding(
                            ctx,
                            node,
                            f"legacy 'from numpy.random import {alias.name}' "
                            "draws from hidden global RNG state; inject a "
                            "seeded numpy.random.Generator",
                        )
            return
        assert isinstance(node, ast.Call)
        member = _np_random_member(dotted_name(node.func))
        if member is None:
            return
        if member not in _ALLOWED:
            yield self.finding(
                ctx,
                node,
                f"legacy np.random.{member}() draws from hidden global RNG "
                "state; inject a seeded numpy.random.Generator",
            )
        elif ctx.enclosing_function(node) is None:
            yield self.finding(
                ctx,
                node,
                f"module-level np.random.{member}() creates global RNG state "
                "at import time; construct Generators inside the code path "
                "that receives the seed",
            )
