"""Hot-path kernels vs. the pre-kernel loop implementations (BENCH_KERNELS.json).

The four kernels of :mod:`fairexp.explanations.kernels` replaced Python
loops that dominated wall time at the 100x E1 scale point: the per-hit
``counterfactual_distance`` list comprehension, the broadcast/``np.where``
projection cascade, ``greedy_sparsify_batch``'s per-feature ``trial.copy()``
chain, and the per-row greedy feature ranking.  This module keeps verbatim
copies of those pre-kernel implementations as the baseline, times both
sides on 100x-E1-shaped inputs, asserts the dispatched kernels are (a)
bitwise-equal and (b) at least ``MIN_SPEEDUP``x faster in aggregate, and
records the per-kernel timings to ``BENCH_KERNELS.json`` with the active
kernel path stamped in.
"""

import time

import numpy as np
from conftest import record

from fairexp.explanations import resolve_kernels

# The 100x E1 point audits 8000 rows of the 6-feature loan workload; a
# lockstep wave projects a (pending, candidates, d) tensor and scores tens
# of thousands of hit distances.  These shapes mirror that profile.
N_WAVE_ROWS = 2000        # pending instances in one lockstep wave
N_CANDIDATES = 200        # candidate draws per instance per rung
N_FEATURES = 6            # loan workload width
N_HITS = 60000            # hit pairs distance-scored across the run
N_SPARSIFY_ROWS = 4000    # instances entering greedy sparsification

# Acceptance bar: the dispatched kernels must at least halve the aggregate
# wall time of the pre-kernel loops (ISSUE 6 acceptance criterion).
MIN_SPEEDUP = 2.0


# --------------------------------------------------------------------------
# Verbatim pre-kernel implementations (the baseline being replaced).
# --------------------------------------------------------------------------
def _legacy_distance(x, x_prime, *, scale=None, metric="l1"):
    """Pre-kernel scalar ``counterfactual_distance`` (one pair per call)."""
    x = np.asarray(x, dtype=float)
    x_prime = np.asarray(x_prime, dtype=float)
    delta = x_prime - x
    if scale is not None:
        scale = np.asarray(scale, dtype=float).copy()
        scale[scale == 0] = 1.0
        delta = delta / scale
    if metric == "l1":
        return float(np.sum(np.abs(delta)))
    if metric == "l2":
        return float(np.linalg.norm(delta))
    return float(np.sum(~np.isclose(delta, 0.0)))


def _legacy_distance_per_hit(X_hits, candidates, *, scale, metric):
    """The per-hit list comprehension from ``lockstep_candidate_search``."""
    return np.array([
        _legacy_distance(x, c, scale=scale, metric=metric)
        for x, c in zip(X_hits, candidates)
    ])


def _legacy_project(x_original, candidate, *, immutable, lower, upper, monotone):
    """Pre-kernel ``ActionabilityConstraints.project`` (np.where cascade)."""
    candidate = np.asarray(candidate, dtype=float)
    x_original = np.asarray(x_original, dtype=float)
    lower = np.where(np.isnan(lower), -np.inf, lower)
    upper = np.where(np.isnan(upper), np.inf, upper)
    projected = np.clip(candidate, lower, upper)
    originals = np.broadcast_to(x_original, projected.shape)
    projected = np.where(monotone == 1, np.maximum(projected, originals), projected)
    projected = np.where(monotone == -1, np.minimum(projected, originals), projected)
    return np.where(immutable, originals, projected)


def _legacy_prefix_trials(candidate, x_row, order):
    """The per-feature ``trial.copy()`` chain from ``greedy_sparsify_batch``."""
    trial = candidate.copy()
    rows = []
    for column in order:
        trial[column] = x_row[column]
        rows.append(trial.copy())
    return np.stack(rows)


def _legacy_rank_changed(X_rows, candidates, scale):
    """The per-row greedy feature ranking from ``greedy_sparsify_batch``."""
    orders = []
    for k in range(candidates.shape[0]):
        delta = candidates[k] - X_rows[k]
        changed = np.flatnonzero(~np.isclose(candidates[k], X_rows[k]))
        ranked = changed[np.argsort(np.abs(delta / scale)[changed])]
        orders.append(ranked)
    return orders


# --------------------------------------------------------------------------
# Workload construction (deterministic; 100x-E1-shaped).
# --------------------------------------------------------------------------
def _workload():
    rng = np.random.default_rng(20260807)
    scale = rng.uniform(0.5, 2.0, size=N_FEATURES)
    X_hits = rng.normal(size=(N_HITS, N_FEATURES))
    hit_candidates = X_hits + rng.normal(size=X_hits.shape)
    x_wave = rng.normal(size=(N_WAVE_ROWS, 1, N_FEATURES))
    wave_candidates = x_wave + rng.normal(size=(N_WAVE_ROWS, N_CANDIDATES, N_FEATURES))
    constraints = {
        "immutable": np.array([True, False, False, False, False, True]),
        "lower": np.array([-np.inf, -1.0, np.nan, 0.0, -np.inf, -np.inf]),
        "upper": np.array([np.inf, 1.0, 2.0, np.nan, np.inf, np.inf]),
        "monotone": np.array([0, 1, -1, 0, 1, 0]),
    }
    X_sparse = rng.normal(size=(N_SPARSIFY_ROWS, N_FEATURES))
    sparse_candidates = X_sparse.copy()
    changed = rng.random(sparse_candidates.shape) < 0.7
    sparse_candidates[changed] += rng.normal(size=sparse_candidates.shape)[changed]
    return scale, X_hits, hit_candidates, x_wave, wave_candidates, constraints, \
        X_sparse, sparse_candidates


def _best_of(runs, fn):
    """Minimum wall time of ``fn`` over ``runs`` calls (returns last result)."""
    best = np.inf
    result = None
    for _ in range(runs):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_kernels_vs_legacy_loops(benchmark):
    """Dispatched kernels: bitwise-equal to the pre-kernel loops, >=2x faster."""
    kernels = resolve_kernels(None)
    (scale, X_hits, hit_candidates, x_wave, wave_candidates, constraints,
     X_sparse, sparse_candidates) = _workload()

    legacy_times: dict[str, float] = {}
    kernel_times: dict[str, float] = {}

    # 1. Batched hit distances (l1, the burden metric).
    legacy_times["distance"], d_legacy = _best_of(3, lambda: _legacy_distance_per_hit(
        X_hits, hit_candidates, scale=scale, metric="l1"))
    kernel_times["distance"], d_kernel = _best_of(3, lambda: (
        kernels.batch_counterfactual_distance(
            X_hits, hit_candidates, scale=scale, metric="l1")))
    assert np.array_equal(d_legacy, d_kernel)

    # 2. Wave projection of the (pending, candidates, d) tensor.
    legacy_times["project"], p_legacy = _best_of(3, lambda: _legacy_project(
        x_wave, wave_candidates, **constraints))
    kernel_times["project"], p_kernel = _best_of(3, lambda: kernels.project_candidates(
        x_wave, wave_candidates, **constraints))
    assert np.array_equal(p_legacy, p_kernel)

    # 3 + 4. Greedy ranking and the prefix-revert trial chains.
    legacy_times["rank"], orders_legacy = _best_of(3, lambda: _legacy_rank_changed(
        X_sparse, sparse_candidates, scale))
    kernel_times["rank"], orders_kernel = _best_of(3, lambda: kernels.rank_changed_features(
        X_sparse, sparse_candidates, scale))
    assert all(np.array_equal(a, b) for a, b in zip(orders_legacy, orders_kernel))

    orders = [list(map(int, order)) for order in orders_legacy]
    legacy_times["prefix"], t_legacy = _best_of(3, lambda: np.vstack([
        _legacy_prefix_trials(sparse_candidates[k], X_sparse[k], orders[k])
        for k in range(N_SPARSIFY_ROWS) if orders[k]
    ]))

    def _kernel_prefix():
        total = sum(len(order) for order in orders)
        out = np.empty((total, N_FEATURES))
        offset = 0
        for k, order in enumerate(orders):
            if not order:
                continue
            kernels.build_prefix_revert_trials(
                sparse_candidates[k], X_sparse[k], np.asarray(order),
                out=out[offset:offset + len(order)])
            offset += len(order)
        return out

    kernel_times["prefix"], t_kernel = _best_of(3, _kernel_prefix)
    assert np.array_equal(t_legacy, t_kernel)

    legacy_total = sum(legacy_times.values())
    kernel_total = sum(kernel_times.values())
    speedup = legacy_total / kernel_total

    # The acceptance bar: aggregate >=2x over the pre-kernel loops.
    assert speedup >= MIN_SPEEDUP, (
        f"kernel path only {speedup:.2f}x faster than the legacy loops "
        f"(need >={MIN_SPEEDUP}x): legacy={legacy_times}, kernel={kernel_times}"
    )

    # One timed pass through the full kernel side for pytest-benchmark stats.
    benchmark.pedantic(lambda: (
        kernels.batch_counterfactual_distance(X_hits, hit_candidates,
                                              scale=scale, metric="l1"),
        kernels.project_candidates(x_wave, wave_candidates, **constraints),
        kernels.rank_changed_features(X_sparse, sparse_candidates, scale),
        _kernel_prefix(),
    ), rounds=1, iterations=1)

    record(benchmark, {
        "kernel_speedup_aggregate": speedup,
        "legacy_total_seconds": legacy_total,
        "kernel_total_seconds": kernel_total,
        **{f"legacy_{name}_seconds": value for name, value in legacy_times.items()},
        **{f"kernel_{name}_seconds": value for name, value in kernel_times.items()},
        "n_hit_pairs": N_HITS,
        "wave_shape": f"{N_WAVE_ROWS}x{N_CANDIDATES}x{N_FEATURES}",
        "n_sparsify_rows": N_SPARSIFY_ROWS,
    }, experiment="KERNELS")
