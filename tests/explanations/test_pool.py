"""Tests for the session-scoped persistent executor pool."""

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

import numpy as np
import pytest

from fairexp.exceptions import ValidationError
from fairexp.explanations import (
    AuditSession,
    CounterfactualEngine,
    ExecutorPool,
    GrowingSpheresCounterfactual,
)


@pytest.fixture
def workload(loan_data, loan_model, loan_cf_generator):
    dataset, train, test = loan_data
    rejected = test.X[np.flatnonzero(loan_model.predict(test.X) == 0)[:16]]
    return train, loan_model, loan_cf_generator.constraints, rejected


def _generator(train, model, constraints):
    return GrowingSpheresCounterfactual(model, train.X, constraints=constraints,
                                        random_state=0)


class _CountingFactory:
    """Executor factory double that counts constructions."""

    def __init__(self, inner):
        self.inner = inner
        self.constructed = 0

    def __call__(self, *args, **kwargs):
        self.constructed += 1
        return self.inner(*args, **kwargs)


class TestExecutorPool:
    def test_lazy_creation_and_reuse(self):
        factory = _CountingFactory(ThreadPoolExecutor)
        with ExecutorPool(max_workers=2, thread_factory=factory) as pool:
            assert factory.constructed == 0  # nothing until first use
            first = pool.executor("thread")
            second = pool.executor("thread")
            assert first is second
            assert factory.constructed == 1
            assert pool.created_counts == {"thread": 1, "process": 0}
            assert pool.active_kinds() == ["thread"]

    def test_shutdown_refuses_further_use(self):
        pool = ExecutorPool(max_workers=1)
        pool.executor("thread")
        pool.shutdown()
        with pytest.raises(ValidationError):
            pool.executor("thread")

    def test_reset_builds_a_fresh_executor(self):
        factory = _CountingFactory(ThreadPoolExecutor)
        with ExecutorPool(max_workers=1, thread_factory=factory) as pool:
            first = pool.executor("thread")
            pool.reset("thread")
            assert pool.active_kinds() == []
            second = pool.executor("thread")
            assert second is not first
            assert factory.constructed == 2

    def test_invalid_kind_rejected(self):
        with ExecutorPool() as pool:
            with pytest.raises(ValidationError):
                pool.executor("fiber")

    def test_ensure(self):
        pool = ExecutorPool()
        assert ExecutorPool.ensure(pool) is pool
        assert isinstance(ExecutorPool.ensure(None), ExecutorPool)
        with pytest.raises(ValidationError):
            ExecutorPool.ensure(ThreadPoolExecutor(max_workers=1))


class TestEnginePooling:
    def test_pooled_thread_shards_bitwise_equal_to_per_call(self, workload):
        train, model, constraints, rejected = workload
        per_call = CounterfactualEngine(
            _generator(train, model, constraints), n_jobs=3
        ).generate_aligned(rejected)
        factory = _CountingFactory(ThreadPoolExecutor)
        with ExecutorPool(thread_factory=factory) as pool:
            engine = CounterfactualEngine(_generator(train, model, constraints),
                                          n_jobs=3, pool=pool)
            pooled_first = engine.generate_aligned(rejected)
            pooled_second = engine.generate_aligned(rejected)
        assert factory.constructed == 1  # reused across both calls
        for reference, first, second in zip(per_call, pooled_first, pooled_second):
            assert np.array_equal(reference.counterfactual, first.counterfactual)
            assert np.array_equal(reference.counterfactual, second.counterfactual)

    def test_engine_rejects_non_pool(self, workload):
        train, model, constraints, _ = workload
        with pytest.raises(ValidationError):
            CounterfactualEngine(_generator(train, model, constraints),
                                 pool=ThreadPoolExecutor(max_workers=1))

    def test_broken_process_pool_resets_and_falls_back(self, workload):
        """A pool whose process executor dies mid-call falls back to threads
        for that call and leaves the pool usable (fresh executor next time)."""
        train, model, constraints, rejected = workload

        class ExplodingExecutor:
            def __init__(self, *args, **kwargs):
                pass

            def map(self, *args, **kwargs):
                raise RuntimeError("worker died")

            def shutdown(self, wait=True, cancel_futures=False):
                pass

        factory = _CountingFactory(ExplodingExecutor)
        with ExecutorPool(process_factory=factory) as pool:
            engine = CounterfactualEngine(_generator(train, model, constraints),
                                          n_jobs=2, executor="process", pool=pool)
            results = engine.generate_aligned(rejected)  # thread fallback
            assert all(result is not None for result in results)
            assert factory.constructed == 1
            assert "process" not in pool.active_kinds()  # reset after breakage


class TestSessionPooling:
    def test_process_sweep_constructs_exactly_one_process_pool(self, workload):
        """The PR's acceptance criterion: a session-scoped sweep with
        executor="process" constructs exactly one ProcessPoolExecutor, with
        results bitwise-equal to per-call pools."""
        train, model, constraints, rejected = workload
        per_call = CounterfactualEngine(
            _generator(train, model, constraints), n_jobs=2, executor="process"
        ).generate_aligned(rejected)

        factory = _CountingFactory(ProcessPoolExecutor)
        pool = ExecutorPool(max_workers=2, process_factory=factory)
        with AuditSession(_generator(train, model, constraints), n_jobs=2,
                          executor="process", pool=pool) as session:
            # Three audits over three distinct populations: three sharded
            # engine passes, one worker pool.
            first = session.counterfactuals_for(rejected, np.arange(len(rejected)))
            session.counterfactuals_for(rejected + 0.25, np.arange(8))
            session.counterfactuals_for(rejected + 0.5, np.arange(8))
        assert factory.constructed == 1
        assert set(first) == {i for i, r in enumerate(per_call) if r is not None}
        for i, reference in enumerate(per_call):
            if reference is not None:
                assert np.array_equal(reference.counterfactual,
                                      first[i].counterfactual)

    def test_session_owns_and_closes_its_own_pool(self, workload):
        train, model, constraints, rejected = workload
        with AuditSession(_generator(train, model, constraints), n_jobs=2) as session:
            session.counterfactuals_for(rejected, np.arange(4))
            pool = session.pool
            assert pool.active_kinds() == ["thread"]
        with pytest.raises(ValidationError):
            pool.executor("thread")  # closed deterministically on exit
        session.close()  # idempotent

    def test_injected_pool_is_shared_not_owned(self, workload):
        train, model, constraints, rejected = workload
        with ExecutorPool(max_workers=2) as shared:
            with AuditSession(_generator(train, model, constraints), n_jobs=2,
                              pool=shared) as session:
                session.counterfactuals_for(rejected, np.arange(4))
            # The session exit must NOT shut the injected pool down.
            shared.executor("thread").submit(lambda: None).result()

    def test_sequential_session_never_spawns_workers(self, workload):
        train, model, constraints, rejected = workload
        with AuditSession(_generator(train, model, constraints)) as session:
            session.counterfactuals_for(rejected, np.arange(4))
            assert session.pool.active_kinds() == []
            assert session.pool.created_counts == {"thread": 0, "process": 0}


class TestPoolInstrumentation:
    def test_stats_report_busy_workers_and_queue_depth(self):
        import threading
        import time

        release = threading.Event()

        def blocked_task(_):
            release.wait(timeout=10)
            return True

        with ExecutorPool(max_workers=2) as pool:
            runner = threading.Thread(
                target=lambda: pool.map("thread", blocked_task, range(5)))
            runner.start()
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:  # wait for all 5 submissions
                stats = pool.stats()["thread"]
                if stats["queue_depth"] == 3:
                    break
                time.sleep(0.01)
            assert stats["executors_created"] == 1
            assert stats["workers"] == 2
            assert stats["busy_workers"] == 2
            assert stats["queue_depth"] == 3
            release.set()
            runner.join(timeout=10)
            assert not runner.is_alive()
            drained = pool.stats()["thread"]
            assert drained["busy_workers"] == 0 and drained["queue_depth"] == 0

    def test_pending_gauge_and_peak_high_water_mark(self):
        """pending() is the instantaneous admission-control gauge;
        peak_pending in stats() keeps the lifetime high-water mark after
        the load drains."""
        import threading
        import time

        release = threading.Event()

        def blocked_task(_):
            release.wait(timeout=10)
            return True

        with ExecutorPool(max_workers=2) as pool:
            assert pool.pending("thread") == 0      # no live executor yet
            with pytest.raises(ValidationError, match="executor kind"):
                pool.pending("tractor")
            runner = threading.Thread(
                target=lambda: pool.map("thread", blocked_task, range(4)))
            runner.start()
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline and pool.pending("thread") < 4:
                time.sleep(0.01)
            assert pool.pending("thread") == 4
            release.set()
            runner.join(timeout=10)
            assert pool.pending("thread") == 0
            assert pool.stats()["thread"]["peak_pending"] == 4

    def test_map_preserves_order_and_raises_first_error(self):
        with ExecutorPool(max_workers=2) as pool:
            assert pool.map("thread", lambda x: x * x, range(6)) == [
                0, 1, 4, 9, 16, 25]
            with pytest.raises(ZeroDivisionError):
                pool.map("thread", lambda x: 1 // x, [2, 1, 0])

    def test_reset_defers_shutdown_until_inflight_map_drains(self):
        """reset() during another thread's map must not kill that map: the
        retired executor drains first, and only the NEXT request builds a
        fresh generation."""
        import threading

        release = threading.Event()
        entered = threading.Event()

        def slow_task(x):
            entered.set()
            release.wait(timeout=5)
            return x + 1

        with ExecutorPool(max_workers=2) as pool:
            results: list = []
            runner = threading.Thread(
                target=lambda: results.extend(pool.map("thread", slow_task, range(4))))
            runner.start()
            entered.wait(timeout=5)
            pool.reset("thread")                  # concurrent with the map
            assert pool.active_kinds() == []      # forgotten immediately ...
            release.set()
            runner.join(timeout=10)
            assert results == [1, 2, 3, 4]        # ... but never shut down under it
            pool.executor("thread")               # next request: fresh generation
            assert pool.created_counts["thread"] == 2

    def test_concurrent_executor_reset_shutdown_stress(self):
        """Hammer executor()/map()/reset() from many threads, then shut down:
        no deadlock, no exception besides the expected closed-pool error."""
        import threading

        errors: list[Exception] = []
        stop = threading.Event()
        pool = ExecutorPool(max_workers=2)

        def hammer(worker: int):
            while not stop.is_set():
                try:
                    if worker % 3 == 0:
                        pool.reset("thread")
                    else:
                        pool.map("thread", lambda x: x, range(3))
                except ValidationError:
                    return  # pool closed under us: the documented outcome
                except Exception as error:  # pragma: no cover - failure path
                    errors.append(error)
                    return

        threads = [threading.Thread(target=hammer, args=(k,)) for k in range(6)]
        for thread in threads:
            thread.start()
        import time
        time.sleep(0.3)
        pool.shutdown()
        stop.set()
        for thread in threads:
            thread.join(timeout=10)
            assert not thread.is_alive(), "stress thread deadlocked"
        assert errors == []


class TestSharedExecutorPool:
    def test_shared_is_refcounted_singleton(self):
        from fairexp.explanations import SharedExecutorPool

        first = ExecutorPool.shared(max_workers=1)
        try:
            assert isinstance(first, SharedExecutorPool)
            second = ExecutorPool.shared()
            assert second is first
            assert first.refcount == 2
            first.executor("thread")
            second.shutdown()               # one release: still alive
            assert first.refcount == 1
            first.executor("thread").submit(lambda: None).result()
        finally:
            first.shutdown()                # last release: workers stop
        with pytest.raises(ValidationError):
            first.executor("thread")
        fresh = ExecutorPool.shared(max_workers=1)  # next acquisition: new pool
        try:
            assert fresh is not first
        finally:
            fresh.shutdown()

    def test_shared_rejects_reconfiguration_while_alive(self):
        pool = ExecutorPool.shared(max_workers=1)
        try:
            with pytest.raises(ValidationError):
                ExecutorPool.shared(max_workers=4)
        finally:
            pool.shutdown()

    def test_ensure_accepts_shared_marker(self):
        from fairexp.explanations import SharedExecutorPool

        pool = ExecutorPool.ensure("shared")
        try:
            assert isinstance(pool, SharedExecutorPool)
            assert pool.refcount >= 1
            assert ExecutorPool.ensure("shared") is pool
            pool.shutdown()  # release the second acquisition
        finally:
            pool.shutdown()

    def test_sessions_with_shared_pool_build_one_executor_set(self, workload):
        """Concurrent sessions on pool="shared" construct ONE thread executor
        between them, and each close() releases without killing the others."""
        train, model, constraints, rejected = workload
        factory = _CountingFactory(ThreadPoolExecutor)
        shared = ExecutorPool.shared(max_workers=2, thread_factory=factory)
        try:
            sessions = [
                AuditSession(_generator(train, model, constraints), n_jobs=2,
                             pool="shared")
                for _ in range(3)
            ]
            assert all(s.pool is shared for s in sessions)
            for offset, session in enumerate(sessions):
                session.counterfactuals_for(rejected + 0.1 * offset, np.arange(4))
            assert factory.constructed == 1
            sessions[0].close()
            # Remaining holders keep working after one session closes.
            sessions[1].counterfactuals_for(rejected + 0.9, np.arange(2))
            for session in sessions[1:]:
                session.close()
            assert shared.refcount == 1  # only our own acquisition remains
        finally:
            shared.shutdown()

    def test_failed_session_construction_releases_shared_reference(self, loan_model):
        """A session whose __init__ raises AFTER acquiring pool="shared" must
        release its reference — a leaked refcount would pin the process-wide
        pool (and its configuration) forever."""
        with pytest.raises(ValidationError):
            # schedule= without a generator is rejected after pool acquisition.
            AuditSession(model=loan_model, schedule="adaptive", pool="shared")
        # The shared slot is free again: acquiring WITH configuration succeeds,
        # which the leaked reference would have turned into a ValidationError.
        pool = ExecutorPool.shared(max_workers=1)
        try:
            assert pool.refcount == 1
        finally:
            pool.shutdown()
