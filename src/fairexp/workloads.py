"""Parameterized experiment workloads (the runner bodies behind the specs).

Each function here builds one experiment's workload from the synthetic
generators, runs the relevant fairexp components, and returns a flat
dictionary of the numbers the benchmark harness asserts on and that
EXPERIMENTS.md records.  ``n_samples`` scales every workload so the same
code serves both the fast benchmark configuration and larger runs.

These are the *implementations* the declarative layer executes: every
experiment id in :mod:`fairexp.experiments` is a
:class:`~fairexp.sweep.SweepSpec` whose factors (explainer, schedule,
predict backend, kernel path, model family, dataset) map onto keyword
arguments of one of these functions, and whose defaults reproduce the
historical single-configuration runs bit for bit.  Two sweep hooks thread
through every workload:

* every :class:`~fairexp.explanations.AuditSession` is registered with
  :func:`fairexp.sweep.track_session` (a no-op passthrough outside a
  sweep), so an enclosing sweep cell folds uniform accounting — predict
  calls, engine predict calls, store row hits, pool gauges — out of
  whichever sessions the workload builds;
* the counterfactual-heavy runners (E1–E9) attach the cross-process
  persistent result store resolved by :func:`_experiment_store`: the
  directory an enclosing ``run_sweep(store=...)`` injected, else
  ``$FAIREXP_STORE_DIR``.  A repeated run (a resumed sweep, a CI re-run)
  warm-starts from the matrices a previous process already computed.
  (Generator-less sessions — E4/E6/E7/E8's prediction-sharing ones — have
  no counterfactuals to persist and take no store.)
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

from .causal import CausalGraph
from .core import (
    BurdenExplainer,
    CausalPathExplainer,
    CausalRecourseExplainer,
    CEFExplainer,
    CFairERExplainer,
    CounterfactualExplanationTree,
    DexerExplainer,
    FACTSExplainer,
    FairnessShapExplainer,
    GNNUERSExplainer,
    GlobeCEExplainer,
    GopherExplainer,
    NAWBExplainer,
    NodeInfluenceExplainer,
    PreCoFExplainer,
    ProbabilisticContrastiveExplainer,
    RecourseSetExplainer,
    StructuralBiasExplainer,
    TABLE_I,
    causal_recourse_fairness,
    explanation_taxonomy,
    fairness_taxonomy,
    implemented_class,
    recourse_gap_report,
    registry_figure2_coverage,
    render_table_i,
    render_taxonomy,
)
from .datasets import make_adult_like, make_loan_dataset, make_scm_loan_dataset
from .exceptions import ValidationError
from .explanations import (
    ActionabilityConstraints,
    AuditSession,
    CoalescingScoringClient,
    CounterfactualStore,
    ExplainerRegistry,
    OnnxExportBackend,
    RemoteScoringBackend,
    ScoringServer,
    export_model,
)
from .fairness import statistical_parity_difference
from .fairness.mitigation import (
    FairLogisticRegression,
    GroupThresholdOptimizer,
    RecourseRegularizedClassifier,
    reweighing_weights,
)
from .graphs import GCNClassifier, make_biased_sbm
from .models import (
    DecisionTreeClassifier,
    LogisticRegression,
    MLPClassifier,
    RandomForestClassifier,
)
from .ranking import make_ranking_candidates
from .recsys import (
    RecWalkRecommender,
    exposure_disparity,
    make_biased_interactions,
)
from .sweep import active_store_dir, track_session

__all__ = [
    "run_fig1_taxonomy",
    "run_fig2_taxonomy",
    "run_table1",
    "run_e1_e2_burden_nawb",
    "run_e3_precof",
    "run_e4_facts",
    "run_e5_group_counterfactuals",
    "run_e6_causal_recourse",
    "run_e7_fair_recourse",
    "run_e8_fairness_shap",
    "run_e9_data_explanations",
    "run_e10_recsys",
    "run_e11_ranking",
    "run_e12_graphs",
    "run_e13_contrastive",
    "run_e14_mitigation",
]


# --------------------------------------------------------------------------
# Shared workload builders
# --------------------------------------------------------------------------
#: Audited model families for the specs' ``model`` factor.  ``"logistic"``
#: is the historical default (bitwise-identical to the pre-sweep runs);
#: every family here is servable (exports through
#: :func:`~fairexp.explanations.export_model`), so the backend factor
#: crosses with all of them.
MODEL_FAMILIES = {
    "logistic": lambda: LogisticRegression(n_iter=1200, random_state=0),
    "tree": lambda: DecisionTreeClassifier(max_depth=6, random_state=0),
    "forest": lambda: RandomForestClassifier(n_estimators=15, max_depth=6,
                                             random_state=0),
    "mlp": lambda: MLPClassifier(hidden_sizes=(16,), n_epochs=150, random_state=0),
}


def _loan_workload(n_samples: int, *, direct_bias=1.2, recourse_gap=1.0, seed=0,
                   model: str = "logistic"):
    dataset = make_loan_dataset(n_samples, direct_bias=direct_bias, recourse_gap=recourse_gap,
                                random_state=seed)
    train, test = dataset.split(test_size=0.3, random_state=seed + 1)
    if model not in MODEL_FAMILIES:
        raise ValidationError(
            f"model must be one of {sorted(MODEL_FAMILIES)}, got {model!r}"
        )
    fitted = MODEL_FAMILIES[model]().fit(train.X, train.y)
    return dataset, train, test, fitted


def _generator_for(dataset, train, model, *, seed=0, name="growing_spheres"):
    """Build a counterfactual generator resolved from the explainer registry."""
    constraints = ActionabilityConstraints.from_feature_specs(dataset.features)
    generator_cls = ExplainerRegistry.get(name)
    return generator_cls(model, train.X, constraints=constraints, random_state=seed)


@contextmanager
def _serving_fleet(models, backend):
    """Resolve a runner's ``backend`` name for a list of fitted models.

    A context manager yielding one predict backend per model (``None``
    entries for the in-process default): exported
    :class:`~fairexp.explanations.OnnxExportBackend` graphs for
    ``"onnx"``, or — for ``"remote"`` — **one** loopback
    :class:`~fairexp.explanations.ScoringServer` hosting every model's
    compute graph as a fleet, each backend routing its batches by the
    graph's content hash through one shared coalescing client.  This is
    the same serving path a separate ``python -m fairexp serve --graph a
    --graph b`` process runs.  Exiting the block always tears the remote
    server/client down, even when an audit inside raises (exactly the
    scorer-failure path the backend accounting is hardened against).
    """
    if backend in (None, "numpy"):
        yield [None] * len(models)
        return
    if backend == "onnx":
        yield [OnnxExportBackend(model) for model in models]
        return
    if backend == "remote":
        graphs = [export_model(model) for model in models]
        server = ScoringServer(graphs)
        client = CoalescingScoringClient(server.url, window="auto")
        remotes = [RemoteScoringBackend(client, graph=graph)
                   for graph in graphs]
        try:
            yield remotes
        finally:
            for remote in remotes:
                remote.close()
            server.close()
        return
    raise ValidationError(
        f"backend must be 'numpy', 'onnx' or 'remote', got {backend!r}"
    )


@contextmanager
def _serving_backend(model, backend):
    """Single-model convenience over :func:`_serving_fleet`."""
    with _serving_fleet([model], backend) as backends:
        yield backends[0]


def _experiment_store():
    """The cross-process store the E1–E9 sessions share, or ``None``.

    Resolved per call (not at import time) so tests and CI steps can flip
    ``FAIREXP_STORE_DIR`` between runs.  An enclosing sweep's injected
    store directory (:func:`fairexp.sweep.active_store_dir`) wins over the
    environment — ``run_sweep(store=...)`` must not have to mutate
    process-global state to warm-start its cells.
    """
    directory = active_store_dir()
    if directory is not None:
        return CounterfactualStore.ensure(directory)
    return CounterfactualStore.from_env()


def _session_for(dataset, train, model, *, seed=0, name="growing_spheres", n_jobs=1,
                 schedule=None, executor="auto", predict_backend=None, kernels=None):
    """One shared-pass :class:`AuditSession` per workload: every audit of the
    workload draws counterfactuals and predictions from the same engine +
    backend, so overlapping populations are explained once — and, with
    ``FAIREXP_STORE_DIR`` set, across processes too.  ``schedule`` (a
    :class:`~fairexp.explanations.SearchSchedule` or a name like
    ``"adaptive"``) selects the candidate-search schedule every audit of the
    sweep runs under; ``predict_backend`` (from :func:`_serving_backend`)
    reroutes the sweep's predict batches out of process; ``kernels`` selects
    the hot-path kernel implementation (exact tiers are bitwise-neutral;
    ``"turbo"`` is tolerance-bound and fingerprint-visible); sharded passes
    reuse the session's executor pool."""
    return track_session(
        AuditSession(_generator_for(dataset, train, model, seed=seed, name=name),
                     n_jobs=n_jobs, schedule=schedule, executor=executor,
                     backend=predict_backend, kernels=kernels,
                     store=_experiment_store())
    )


# --------------------------------------------------------------------------
# FIG1 / FIG2 / TAB1
# --------------------------------------------------------------------------
def run_fig1_taxonomy() -> dict:
    """Figure 1: regenerate the fairness taxonomy and report its structure."""
    taxonomy = fairness_taxonomy()
    return {
        "rendered": render_taxonomy(taxonomy),
        "n_nodes": taxonomy.size(),
        "dimensions": [child.name for child in taxonomy.children],
        "n_leaves": len(taxonomy.leaves()),
    }


def run_fig2_taxonomy() -> dict:
    """Figure 2: regenerate the explanation taxonomy and report its structure,
    plus how many registered explainers cover each taxonomy axis value."""
    taxonomy = explanation_taxonomy()
    coverage = registry_figure2_coverage()
    return {
        "rendered": render_taxonomy(taxonomy),
        "n_nodes": taxonomy.size(),
        "dimensions": [child.name for child in taxonomy.children],
        "n_leaves": len(taxonomy.leaves()),
        "n_registered_explainers": coverage["n_registered"],
        "n_registered_local": coverage.get("coverage:local", 0),
        "n_registered_global": coverage.get("coverage:global", 0),
    }


def run_table1() -> dict:
    """Table I: regenerate the comparison table and verify every row is implemented."""

    def is_implemented(entry) -> bool:
        try:
            return implemented_class(entry) is not None
        except KeyError:
            return False

    n = len(TABLE_I)
    resolved = sum(1 for entry in TABLE_I if is_implemented(entry))
    return {
        "rendered": render_table_i(),
        "n_rows": n,
        "n_implemented": resolved,
        "share_post_hoc": sum(e.stage == "Post" for e in TABLE_I) / n,
        "share_black_box": sum(e.access == "B" for e in TABLE_I) / n,
        "share_model_agnostic": sum(e.agnostic == "A" for e in TABLE_I) / n,
        "share_cfe": sum("CFE" in e.explanation_type for e in TABLE_I) / n,
        "share_group_level": sum(e.fairness_level in ("Group", "Both") for e in TABLE_I) / n,
    }


# --------------------------------------------------------------------------
# E1 / E2 — burden and NAWB
# --------------------------------------------------------------------------
def run_e1_e2_burden_nawb(n_samples: int = 600, audit_size: int = 80,
                          n_jobs: int = 1, schedule=None,
                          backend: str = "numpy",
                          explainer: str = "growing_spheres",
                          kernels=None) -> dict:
    """Burden [72] and NAWB [73] on a biased vs. an unbiased loan model.

    Both explainers share one :class:`AuditSession` per workload: burden
    explains the negatively classified members, NAWB's false negatives are a
    subset of those rows, so the sweep costs a single engine pass.  The
    session-wide number of ``model.predict`` invocations is reported per
    workload so the benchmarks can track predict-call reduction;
    ``schedule`` selects the search schedule (``"adaptive"`` issues strictly
    fewer predict calls than the default geometric ladder, asserted in
    ``benchmarks/test_bench_schedules.py``); ``backend`` selects where the
    predict batches run (``"onnx"`` = exported compute graph, ``"remote"``
    = loopback scoring server); ``explainer`` names the registered
    counterfactual generator the shared session draws from; ``kernels``
    picks the hot-path kernel implementation (exact tiers bitwise-neutral,
    ``"turbo"`` tolerance-bound and fingerprint-visible).
    """
    results: dict[str, float] = {"predict_backend": backend}
    for label, direct_bias, recourse_gap in (("biased", 1.2, 1.0), ("fair", 0.0, 0.0)):
        dataset, train, test, model = _loan_workload(
            n_samples, direct_bias=direct_bias, recourse_gap=recourse_gap, seed=0
        )
        with _serving_backend(model, backend) as predict_backend, \
                _session_for(dataset, train, model, name=explainer, n_jobs=n_jobs,
                             schedule=schedule, predict_backend=predict_backend,
                             kernels=kernels) as session:
            subset = test.subset(np.arange(min(audit_size, test.n_samples)))
            burden = BurdenExplainer(session=session).explain(subset.X,
                                                              subset.sensitive_values)
            nawb = NAWBExplainer(session=session).explain(subset.X, subset.y,
                                                          subset.sensitive_values)
            stats = session.stats()
        results[f"burden_gap_{label}"] = burden.gap
        results[f"burden_ratio_{label}"] = burden.ratio
        results[f"nawb_gap_{label}"] = nawb.gap
        results[f"fnr_gap_{label}"] = (
            nawb.protected.false_negative_rate - nawb.reference.false_negative_rate
        )
        results[f"predict_calls_{label}"] = stats["predict_call_count"]
        results[f"engine_predict_calls_{label}"] = stats["engine_predict_calls"]
        results[f"schedule_steps_{label}"] = stats["schedule_steps"]
        results[f"schedule_draws_{label}"] = stats["schedule_draws"]
        results[f"cf_reused_{label}"] = stats["n_results_reused"]
    return results


# --------------------------------------------------------------------------
# E3 — PreCoF
# --------------------------------------------------------------------------
def run_e3_precof(n_samples: int = 600, audit_size: int = 80, schedule=None,
                  backend: str = "numpy") -> dict:
    """PreCoF [71]: explicit bias via sensitive flips, implicit bias via proxies."""
    dataset = make_adult_like(n_samples, direct_bias=1.2, proxy_bias=0.9, random_state=0)
    train, test = dataset.split(test_size=0.3, random_state=1)
    subset = test.subset(np.arange(min(audit_size, test.n_samples)))

    # Two trained models (explicit vs. blind), one session each (a session
    # pins a frozen model).  With backend="remote" BOTH models' graphs are
    # hosted by ONE fleet server and each session's batches route by graph
    # content hash — the multi-model deployment shape, not a server per
    # model.
    spheres_cls = ExplainerRegistry.get("growing_spheres")
    model_explicit = LogisticRegression(n_iter=1200, random_state=0).fit(train.X, train.y)
    X_train_blind, _ = train.features_without_sensitive()
    X_sub_blind, blind_specs = subset.features_without_sensitive()
    blind_names = [spec.name for spec in blind_specs]
    model_blind = LogisticRegression(n_iter=1200, random_state=0).fit(X_train_blind, train.y)

    with _serving_fleet([model_explicit, model_blind], backend) as \
            (backend_explicit, backend_blind):
        # Explicit analysis: model sees the sensitive attribute,
        # counterfactuals may flip it.
        with track_session(
                AuditSession(spheres_cls(model_explicit, train.X, random_state=0),
                             schedule=schedule, backend=backend_explicit,
                             store=_experiment_store())) as session_explicit:
            explicit = PreCoFExplainer(
                feature_names=dataset.feature_names, sensitive_feature=dataset.sensitive,
                mode="explicit", session=session_explicit,
            ).explain(subset.X, subset.sensitive_values)

        # Implicit analysis: sensitive attribute removed from training
        # (fairness through unawareness); the proxy attribute should
        # surface in the change-frequency gap.
        with track_session(
                AuditSession(spheres_cls(model_blind, X_train_blind, random_state=0),
                             schedule=schedule, backend=backend_blind,
                             store=_experiment_store())) as session_blind:
            implicit = PreCoFExplainer(
                feature_names=blind_names, sensitive_feature=dataset.sensitive,
                mode="implicit", session=session_blind,
            ).explain(X_sub_blind, subset.sensitive_values)
    implicit_top = implicit.implicit_bias_attributes(3)

    return {
        "explicit_sensitive_change_rate": explicit.sensitive_change_rate,
        "explicit_bias_rate": explicit.explicit_bias_rate,
        "implicit_top_attribute": implicit_top[0][0] if implicit_top else "",
        "implicit_top_gap": implicit_top[0][1] if implicit_top else 0.0,
        "proxy_gap": implicit.frequency_gap.get("occupation_score", 0.0),
        "predict_calls_explicit": session_explicit.predict_call_count,
        "predict_calls_implicit": session_blind.predict_call_count,
    }


# --------------------------------------------------------------------------
# E4 — FACTS
# --------------------------------------------------------------------------
def run_e4_facts(n_samples: int = 700, backend: str = "numpy",
                 model: str = "logistic") -> dict:
    """FACTS [77]: equal effectiveness / equal choice of recourse across subgroups.

    ``model`` names the audited model family (:data:`MODEL_FAMILIES`) —
    FACTS only needs ``predict``, so the spec crosses it over every family,
    and each of them is servable, so ``backend`` crosses too.
    """
    dataset, train, test, fitted = _loan_workload(n_samples, model=model)
    # Generator-less session: FACTS never asks for counterfactuals, but its
    # action scoring routes through the session's counting/memoizing adapter
    # (and, with backend= set, out of process).
    with _serving_backend(fitted, backend) as predict_backend:
        session = track_session(AuditSession(model=fitted, backend=predict_backend))
        explainer = FACTSExplainer(session.model, dataset.feature_names,
                                   dataset.sensitive_index, random_state=0)
        result = explainer.explain(test.X, test.sensitive_values)
    top = result.top_biased(3)
    return {
        "global_effectiveness_gap": result.global_audit.effectiveness_gap,
        "global_choice_gap": result.global_audit.choice_gap,
        "global_cost_gap": result.global_audit.cost_gap,
        "n_subgroups_audited": len(result.subgroups),
        "max_subgroup_effectiveness_gap": top[0].effectiveness_gap if top else 0.0,
        "is_fair": result.is_fair(),
        "predict_calls": session.predict_call_count,
    }


# --------------------------------------------------------------------------
# E5 — group counterfactuals (GLOBE-CE, CF trees, recourse sets) + CF ablation
# --------------------------------------------------------------------------
def run_e5_group_counterfactuals(n_samples: int = 600, schedule=None,
                                 backend: str = "numpy") -> dict:
    """GLOBE-CE [75], CF trees [76] and recourse sets [74] + CF search ablation."""
    dataset, train, test, model = _loan_workload(n_samples)
    constraints = ActionabilityConstraints.from_feature_specs(dataset.features)
    # One session per workload: GLOBE-CE, the CF tree and the recourse set all
    # score candidates through the same counting/memoizing adapter.
    with _serving_backend(model, backend) as predict_backend, \
            _session_for(dataset, train, model, schedule=schedule,
                         predict_backend=predict_backend) as session:

        globe = GlobeCEExplainer(feature_names=dataset.feature_names, random_state=0,
                                 session=session).explain(test.X, test.sensitive_values)

        facts = FACTSExplainer(session.model, dataset.feature_names, dataset.sensitive_index,
                               random_state=0)
        actions = facts._candidate_actions(train.X, session.predict(train.X))
        tree = CounterfactualExplanationTree(session.model, actions,
                                             feature_names=dataset.feature_names,
                                             max_depth=2).fit(test.X)
        tree_audit = tree.audit(test.X, test.sensitive_values)
        recourse_set = RecourseSetExplainer(
            candidate_actions=actions, feature_names=dataset.feature_names,
            sensitive_index=dataset.sensitive_index, session=session,
        ).explain(test.X, test.sensitive_values)

        # Ablation: every *compatible* counterfactual search strategy (distance and
        # sparsity of the CFs), auto-selected through the registry's structured
        # compatibility check instead of a hard-coded list + try/except.
        ablation: dict[str, float] = {}
        rejected = test.X[session.predict(test.X) == 0][:20]
        for entry in ExplainerRegistry.compatible(capability="counterfactual-generator",
                                                  model=model, dataset=dataset):
            generator = entry.obj(model, train.X, constraints=constraints, random_state=0)
            counterfactuals = generator.generate_batch(rejected)
            ablation[f"cf_{entry.name}_mean_distance"] = (
                float(np.mean([c.distance for c in counterfactuals])) if counterfactuals else np.inf
            )
            ablation[f"cf_{entry.name}_mean_sparsity"] = (
                float(np.mean([c.sparsity() for c in counterfactuals])) if counterfactuals else 0.0
            )
            ablation[f"cf_{entry.name}_coverage"] = len(counterfactuals) / max(len(rejected), 1)

    return {
        "globe_cost_gap": globe.cost_gap,
        "globe_coverage_gap": globe.coverage_gap,
        "cftree_n_leaves": tree_audit.n_leaves,
        "cftree_validity": tree_audit.overall_validity,
        "cftree_validity_gap": tree_audit.validity_gap,
        "recourse_set_n_rules": len(recourse_set.rules),
        "recourse_set_coverage": recourse_set.total_coverage,
        "recourse_set_coverage_gap": recourse_set.coverage_gap,
        "predict_calls": session.predict_call_count,
        **ablation,
    }


# --------------------------------------------------------------------------
# E6 — actionable recourse over an SCM
# --------------------------------------------------------------------------
def run_e6_causal_recourse(n_samples: int = 500, audit_size: int = 12,
                           backend: str = "numpy") -> dict:
    """Actionable recourse [65]: SCM-intervention cost vs independent manipulation cost."""
    dataset, scm = make_scm_loan_dataset(n_samples, random_state=0)
    train, test = dataset.split(test_size=0.3, random_state=1)
    model = LogisticRegression(n_iter=1000, random_state=0).fit(train.X, train.y)
    # Generator-less session: the flipset grid search repeats many small
    # intervention matrices, which the session's memoizing backend coalesces.
    with _serving_backend(model, backend) as predict_backend:
        session = track_session(AuditSession(model=model, backend=predict_backend))
        # The SCM travels on the dataset, so the causal explainer is
        # auto-selected through the registry's declared data requirements
        # instead of being hard-coded: only SCM-carrying datasets offer it.
        causal_entries = {
            entry.name
            for entry in ExplainerRegistry.compatible(capability="causal",
                                                      model=model, dataset=train)
        }
        explainer_cls = ExplainerRegistry.get("causal_recourse")
        explainer = explainer_cls(
            session.model, scm, dataset.feature_names,
            actionable=["education", "income", "savings"],
            scales={"education": 2.0, "income": 10.0, "savings": 5.0},
            value_ranges={"education": (4, 20), "income": (5, 200),
                          "savings": (0, 100)},
            grid_size=6,
        )
        rejected = test.X[session.predict(test.X) == 0][:audit_size]
        causal_costs, independent_costs = [], []
        for row in rejected:
            causal_costs.append(explainer.recourse_cost(row))
            independent_costs.append(explainer.independent_manipulation_cost(row))
    causal_costs = np.asarray(causal_costs)
    independent_costs = np.asarray(independent_costs)
    finite = np.isfinite(causal_costs) & np.isfinite(independent_costs)
    return {
        "n_audited": int(finite.sum()),
        "mean_causal_cost": float(causal_costs[finite].mean()),
        "mean_independent_cost": float(independent_costs[finite].mean()),
        "mean_saving": float((independent_costs[finite] - causal_costs[finite]).mean()),
        "fraction_strictly_cheaper": float(
            np.mean(independent_costs[finite] - causal_costs[finite] > 1e-9)
        ),
        "n_causal_explainers_selected": len(causal_entries),
        "causal_recourse_auto_selected": "causal_recourse" in causal_entries,
        "predict_calls": session.predict_call_count,
    }


# --------------------------------------------------------------------------
# E7 — fair recourse (distance-based + causal)
# --------------------------------------------------------------------------
def run_e7_fair_recourse(n_samples: int = 600, backend: str = "numpy") -> dict:
    """Equalizing recourse [79] and fair causal recourse [80]."""
    dataset, train, test, model = _loan_workload(n_samples)
    # Generator-less session: prediction sharing only (no counterfactuals
    # to persist, so no store is attached).
    with _serving_backend(model, backend) as predict_backend:
        base_session = track_session(AuditSession(model=model, backend=predict_backend))
        base_report = recourse_gap_report(X=test.X, sensitive=test.sensitive_values,
                                          session=base_session)

    regularized = RecourseRegularizedClassifier(recourse_weight=3.0, n_iter=1200,
                                                random_state=0).fit(
        train.X, train.y, sensitive=train.sensitive_values
    )
    regularized_report = recourse_gap_report(regularized, test.X, test.sensitive_values)

    scm_dataset, scm = make_scm_loan_dataset(400, random_state=0)
    scm_train, scm_test = scm_dataset.split(test_size=0.3, random_state=1)
    scm_model = LogisticRegression(n_iter=800, random_state=0).fit(scm_train.X, scm_train.y)
    causal_explainer = CausalRecourseExplainer(
        scm_model, scm, scm_dataset.feature_names,
        actionable=["education", "income", "savings"],
        scales={"education": 2.0, "income": 10.0, "savings": 5.0},
        value_ranges={"education": (4, 20), "income": (5, 200), "savings": (0, 100)},
        grid_size=5,
    )
    causal = causal_recourse_fairness(causal_explainer, scm, scm_test.X,
                                      sensitive_variable="group", max_individuals=8,
                                      random_state=0)
    return {
        "recourse_gap_base": base_report.gap,
        "recourse_gap_regularized": regularized_report.gap,
        "accuracy_base": model.score(test.X, test.y),
        "accuracy_regularized": regularized.score(test.X, test.y),
        "causal_recourse_unfairness": causal.mean_unfairness,
        "causal_fraction_disadvantaged": causal.fraction_disadvantaged,
        "predict_calls_base": base_session.predict_call_count,
    }


# --------------------------------------------------------------------------
# E8 — fairness Shapley + causal path decomposition
# --------------------------------------------------------------------------
def run_e8_fairness_shap(n_samples: int = 600, audit_size: int = 120,
                         backend: str = "numpy") -> dict:
    """Fairness-Shapley decomposition [81] and causal path decomposition [82]."""
    dataset, train, test, model = _loan_workload(n_samples)
    subset = test.subset(np.arange(min(audit_size, test.n_samples)))

    # The exact and sampled Shapley passes evaluate many identical coalition
    # matrices; one generator-less session memoizes them across both runs.
    with _serving_backend(model, backend) as predict_backend:
        session = track_session(AuditSession(model=model, backend=predict_backend))
        exact = FairnessShapExplainer(session.model, train.X[:80],
                                      feature_names=dataset.feature_names,
                                      method="exact", n_background=8,
                                      random_state=0).explain(
            subset.X, subset.sensitive_values
        )
        sampled = FairnessShapExplainer(session.model, train.X[:80],
                                        feature_names=dataset.feature_names,
                                        method="sampling", n_permutations=60,
                                        n_background=8, random_state=0).explain(
            subset.X, subset.sensitive_values)
        sampling_error = float(np.max(np.abs(exact.values - sampled.values)))

    scm_dataset, scm = make_scm_loan_dataset(500, random_state=0)
    scm_train, scm_test = scm_dataset.split(test_size=0.3, random_state=1)
    scm_model = LogisticRegression(n_iter=800, random_state=0).fit(scm_train.X, scm_train.y)
    graph = CausalGraph([("group", "education"), ("group", "income"),
                         ("education", "income"), ("income", "savings")])
    decomposition = CausalPathExplainer(scm_model, graph, sensitive="group",
                                        feature_order=scm_dataset.feature_names).explain(
        scm_test.X
    )
    top_path = decomposition.ranked()[0]
    return {
        "parity_gap": exact.meta["metric_full_model"],
        "shap_attribution_sum": float(exact.values.sum()),
        "shap_efficiency_gap": float(exact.meta["efficiency_gap"]),
        "shap_sensitive_share": exact.as_dict()["group"],
        "shap_sampling_max_error": sampling_error,
        "path_total_disparity": decomposition.total_disparity,
        "path_explained_fraction": decomposition.explained_fraction(),
        "path_top": " -> ".join(top_path.path),
        "path_top_contribution": top_path.contribution,
    }


# --------------------------------------------------------------------------
# E9 — data-based explanations (Gopher)
# --------------------------------------------------------------------------
def run_e9_data_explanations(n_samples: int = 600, backend: str = "numpy") -> dict:
    """Gopher [63, 83]: returned pattern reduces unfairness more than random patterns."""
    dataset = make_adult_like(n_samples, direct_bias=1.2, proxy_bias=0.8, random_state=0)
    factory = lambda: LogisticRegression(n_iter=500, random_state=0)  # noqa: E731
    explainer = GopherExplainer(factory, feature_names=dataset.feature_names,
                                min_support=0.1, top_k=5)
    result = explainer.explain(dataset.X, dataset.y, dataset.sensitive_values)
    best = result.patterns[0]

    # Gopher's search refits the factory model per candidate pattern, so the
    # refit loop itself stays in-process; the requested backend is still
    # exercised (and its export verified bitwise) against the factory model
    # fitted on the full workload — E9's model family must stay servable.
    backend_parity = True
    if backend not in (None, "numpy"):
        reference = factory().fit(dataset.X, dataset.y)
        with _serving_backend(reference, backend) as predict_backend:
            backend_parity = bool(
                np.array_equal(predict_backend.predict(dataset.X),
                               reference.predict(dataset.X))
            )

    # Baseline: mean reduction over all candidate patterns (proxy for a random pattern).
    all_reductions = [pattern.unfairness_reduction for pattern in result.patterns]
    return {
        "predict_backend": backend,
        "backend_parity": backend_parity,
        "baseline_unfairness": result.baseline_unfairness,
        "best_pattern": best.describe(),
        "best_reduction": best.unfairness_reduction,
        "best_support": best.support,
        "mean_topk_reduction": float(np.mean(all_reductions)),
        "verified_new_unfairness": explainer.verify_pattern(
            dataset.X, dataset.y, dataset.sensitive_values, best
        ),
    }


# --------------------------------------------------------------------------
# E10 — recommendation fairness explanations
# --------------------------------------------------------------------------
def run_e10_recsys(n_users: int = 60, n_items: int = 35) -> dict:
    """CEF [87], CFairER [86] and edge-removal [84] explanations of exposure bias."""
    rng = np.random.default_rng(0)
    interactions = make_biased_interactions(n_users, n_items, popularity_bias=2.5,
                                            random_state=0)
    recommender = RecWalkRecommender(n_steps=15).fit(interactions)
    recommendations = recommender.recommend_all(5)
    base_disparity = exposure_disparity(recommendations, interactions.item_groups)

    item_attributes = (rng.random((n_items, 5)) < 0.3).astype(float)
    item_attributes[:, 0] = (interactions.item_groups == 0).astype(float)
    holdout = (rng.random(interactions.matrix.shape) < 0.1).astype(float)

    cef = CEFExplainer(recommender, item_attributes, holdout, k=5).explain()
    cfairer = CFairERExplainer(recommender, item_attributes, k=5, max_attributes=2).explain()
    from .core import EdgeRemovalExplainer

    edge = EdgeRemovalExplainer(recommender, k=5, max_edges=15, random_state=0)
    edge_explanations = edge.explain_group_exposure()
    best_edge = edge_explanations[0]
    return {
        "base_exposure_disparity": base_disparity,
        "cef_top_feature": cef.ranked()[0][0],
        "cef_top_fairness_gain": float(cef.fairness_gain.max()),
        "cfairer_improvement": cfairer.improvement,
        "cfairer_n_attributes": len(cfairer.selected_attributes),
        "edge_best_exposure_change": best_edge.exposure_change,
    }


# --------------------------------------------------------------------------
# E11 — ranking explanations (Dexer)
# --------------------------------------------------------------------------
def run_e11_ranking(n_candidates: int = 200) -> dict:
    """Dexer [88]: detect and explain under-representation in the top-k."""
    candidates, ranker = make_ranking_candidates(n_candidates, score_penalty=1.5,
                                                 random_state=0)
    explainer = DexerExplainer(ranker, k=20, n_permutations=40, random_state=0)
    result = explainer.explain(candidates)
    unbiased_candidates, unbiased_ranker = make_ranking_candidates(
        n_candidates, score_penalty=0.0, random_state=1
    )
    unbiased_detection = DexerExplainer(unbiased_ranker, k=20, random_state=0).detect(
        unbiased_candidates
    )
    return {
        "representation_gap": result.detection.representation_gap,
        "detection_p_value": result.detection.p_value,
        "top_attribute": result.top_attributes(1)[0][0],
        "top_attribute_shap_gap": result.top_attributes(1)[0][1],
        "unbiased_p_value": unbiased_detection.p_value,
    }


# --------------------------------------------------------------------------
# E12 — graph explanations
# --------------------------------------------------------------------------
def run_e12_graphs(n_nodes: int = 90) -> dict:
    """Structural bias edge sets [89], node influence [90], GNNUERS [91]."""
    rng = np.random.default_rng(0)
    graph = make_biased_sbm(n_nodes, random_state=0)
    gcn = GCNClassifier(n_epochs=120, random_state=0).fit(graph)
    base_bias = abs(gcn.soft_statistical_parity(graph))

    structural = StructuralBiasExplainer(gcn, graph, max_edges=12, top_k=3)
    explanation = structural.explain_node(0)
    # Compare against removing the same number of random edges.
    random_edges = [graph.edges()[i] for i in
                    rng.choice(len(graph.edges()), size=max(len(explanation.bias_edges), 1),
                               replace=False)]
    random_bias = abs(gcn.soft_statistical_parity(graph.remove_edges(random_edges)))

    influence = NodeInfluenceExplainer(
        lambda: GCNClassifier(n_epochs=60, random_state=0), graph
    ).explain(max_nodes=8, random_state=0)
    top_influence = influence.most_bias_inducing(1)[0][1]

    interactions = make_biased_interactions(40, 25, random_state=0)
    recommender = RecWalkRecommender(n_steps=10).fit(interactions)
    holdout = (rng.random(interactions.matrix.shape) < 0.1).astype(float)
    gnnuers = GNNUERSExplainer(recommender, holdout, k=5, max_removals=2,
                               candidate_edges=10, random_state=0).explain()
    return {
        "gcn_statistical_parity": gcn.statistical_parity(graph),
        "base_soft_bias": base_bias,
        "bias_after_explained_edges": explanation.bias_after_removal,
        "bias_after_random_edges": random_bias,
        "explained_beats_random": explanation.bias_after_removal <= random_bias + 1e-12,
        "top_node_influence": top_influence,
        "gnnuers_base_gap": gnnuers.base_gap,
        "gnnuers_final_gap": gnnuers.final_gap,
    }


# --------------------------------------------------------------------------
# E13 — probabilistic contrastive counterfactuals
# --------------------------------------------------------------------------
def run_e13_contrastive(n_samples: int = 600) -> dict:
    """Probabilistic contrastive counterfactuals [10] before and after mitigation."""
    dataset, train, test, model = _loan_workload(n_samples)
    explainer = ProbabilisticContrastiveExplainer(model, dataset.feature_names,
                                                  dataset.sensitive_index)
    biased_scores = explainer.explain_sensitive(test.X)

    mitigated = FairLogisticRegression(fairness_weight=5.0, n_iter=1200, random_state=0).fit(
        train.X, train.y, sensitive=train.sensitive_values
    )
    mitigated_explainer = ProbabilisticContrastiveExplainer(
        mitigated, dataset.feature_names, dataset.sensitive_index
    )
    mitigated_scores = mitigated_explainer.explain_sensitive(test.X)
    ranking = explainer.rank_attributes(test.X)
    return {
        "sensitive_necessity_biased": biased_scores.necessity,
        "sensitive_sufficiency_biased": biased_scores.sufficiency,
        "sensitive_necessity_mitigated": mitigated_scores.necessity,
        "top_ranked_attribute": ranking[0].attribute,
        "top_attribute_sufficiency": ranking[0].scores.sufficiency,
    }


# --------------------------------------------------------------------------
# E14 — mitigation stages
# --------------------------------------------------------------------------
def run_e14_mitigation(n_samples: int = 700, dataset: str = "adult") -> dict:
    """Pre- / in- / post-processing mitigation, on the adult-like or loan dataset.

    ``dataset`` selects the workload the mitigation ladder runs on:
    ``"adult"`` (the historical default) or ``"loan"`` — both carry the
    sensitive column and labels the three mitigation stages need.
    """
    if dataset == "adult":
        data = make_adult_like(n_samples, direct_bias=1.2, proxy_bias=0.8, random_state=0)
    elif dataset == "loan":
        data = make_loan_dataset(n_samples, direct_bias=1.2, recourse_gap=1.0,
                                 random_state=0)
    else:
        raise ValidationError(
            f"dataset must be 'adult' or 'loan', got {dataset!r}"
        )
    train, test = data.split(test_size=0.3, random_state=1)
    base = LogisticRegression(n_iter=1200, random_state=0).fit(train.X, train.y)

    def spd(model_like, predictions=None):
        predicted = predictions if predictions is not None else model_like.predict(test.X)
        return statistical_parity_difference(predicted, test.sensitive_values)

    weights = reweighing_weights(train.y, train.sensitive_values)
    pre = LogisticRegression(n_iter=1200, random_state=0).fit(train.X, train.y,
                                                              sample_weight=weights)
    inproc = FairLogisticRegression(fairness_weight=5.0, n_iter=1200, random_state=0).fit(
        train.X, train.y, sensitive=train.sensitive_values
    )
    optimizer = GroupThresholdOptimizer().fit(
        base.predict_proba(train.X)[:, 1], train.y, train.sensitive_values
    )
    post_predictions = optimizer.predict(base.predict_proba(test.X)[:, 1],
                                         test.sensitive_values)
    return {
        "spd_baseline": spd(base),
        "spd_preprocessing": spd(pre),
        "spd_inprocessing": spd(inproc),
        "spd_postprocessing": spd(None, post_predictions),
        "accuracy_baseline": base.score(test.X, test.y),
        "accuracy_preprocessing": pre.score(test.X, test.y),
        "accuracy_inprocessing": inproc.score(test.X, test.y),
        "accuracy_postprocessing": float(np.mean(post_predictions == test.y)),
    }
