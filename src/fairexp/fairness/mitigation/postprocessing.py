"""Post-processing mitigation: modify model outputs after training.

* :class:`GroupThresholdOptimizer` — pick per-group decision thresholds to
  satisfy a chosen parity criterion (statistical parity or equal opportunity)
  while maximizing accuracy.
* :class:`RejectOptionClassifier` — within a low-confidence band around the
  decision boundary, favour the protected group and disfavour the reference
  group (Kamiran et al. reject-option classification).
"""

from __future__ import annotations

import numpy as np

from ...exceptions import NotFittedError, ValidationError
from ..groups import group_masks

__all__ = ["GroupThresholdOptimizer", "RejectOptionClassifier"]


class GroupThresholdOptimizer:
    """Select per-group thresholds on a score to satisfy a fairness constraint.

    Parameters
    ----------
    criterion:
        ``"statistical_parity"`` (equal selection rates) or
        ``"equal_opportunity"`` (equal true positive rates).
    grid_size:
        Number of candidate thresholds per group.
    tolerance:
        Maximum allowed gap in the chosen criterion; among candidate pairs
        within tolerance, the most accurate is selected.
    """

    def __init__(
        self,
        criterion: str = "statistical_parity",
        grid_size: int = 51,
        tolerance: float = 0.02,
    ) -> None:
        if criterion not in ("statistical_parity", "equal_opportunity"):
            raise ValidationError(f"unknown criterion {criterion!r}")
        self.criterion = criterion
        self.grid_size = grid_size
        self.tolerance = tolerance
        self.threshold_protected_: float | None = None
        self.threshold_reference_: float | None = None

    def fit(self, scores, y_true, sensitive, *, protected_value=1) -> "GroupThresholdOptimizer":
        """Search per-group decision thresholds; returns ``self``."""
        scores = np.asarray(scores, dtype=float)
        y_true = np.asarray(y_true, dtype=int)
        masks = group_masks(sensitive, protected_value=protected_value)
        grid = np.linspace(0.0, 1.0, self.grid_size)

        best = None
        for t_protected in grid:
            pred_protected = (scores[masks.protected] >= t_protected).astype(int)
            for t_reference in grid:
                pred_reference = (scores[masks.reference] >= t_reference).astype(int)
                gap = self._criterion_gap(
                    pred_protected, pred_reference,
                    y_true[masks.protected], y_true[masks.reference],
                )
                accuracy = (
                    np.sum(pred_protected == y_true[masks.protected])
                    + np.sum(pred_reference == y_true[masks.reference])
                ) / y_true.shape[0]
                key = (gap > self.tolerance, -accuracy, gap)
                if best is None or key < best[0]:
                    best = (key, t_protected, t_reference)

        _, self.threshold_protected_, self.threshold_reference_ = best
        return self

    def _criterion_gap(self, pred_protected, pred_reference, y_protected, y_reference) -> float:
        if self.criterion == "statistical_parity":
            return abs(float(pred_protected.mean()) - float(pred_reference.mean()))
        # equal opportunity: TPR gap
        def tpr(pred, y):
            positives = y == 1
            if not positives.any():
                return 0.0
            return float(pred[positives].mean())

        return abs(tpr(pred_protected, y_protected) - tpr(pred_reference, y_reference))

    def predict(self, scores, sensitive, *, protected_value=1) -> np.ndarray:
        """Labels thresholded with each row's group-specific cutoff."""
        if self.threshold_protected_ is None:
            raise NotFittedError("GroupThresholdOptimizer is not fitted")
        scores = np.asarray(scores, dtype=float)
        sensitive = np.asarray(sensitive)
        predictions = np.zeros(scores.shape[0], dtype=int)
        protected = sensitive == protected_value
        predictions[protected] = (scores[protected] >= self.threshold_protected_).astype(int)
        predictions[~protected] = (scores[~protected] >= self.threshold_reference_).astype(int)
        return predictions


class RejectOptionClassifier:
    """Flip low-confidence decisions in favour of the protected group.

    Within the "critical region" ``|score - 0.5| < margin`` the protected
    group receives the favourable outcome and the reference group the
    unfavourable one; outside the region the base decision stands.
    """

    def __init__(self, margin: float = 0.1) -> None:
        if not 0.0 < margin < 0.5:
            raise ValidationError("margin must be in (0, 0.5)")
        self.margin = margin

    def predict(self, scores, sensitive, *, protected_value=1) -> np.ndarray:
        """Labels with the critical-region band flipped toward fairness."""
        scores = np.asarray(scores, dtype=float)
        sensitive = np.asarray(sensitive)
        predictions = (scores >= 0.5).astype(int)
        critical = np.abs(scores - 0.5) < self.margin
        protected = sensitive == protected_value
        predictions[critical & protected] = 1
        predictions[critical & ~protected] = 0
        return predictions
