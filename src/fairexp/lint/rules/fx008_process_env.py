"""FX008 — process and environment mutation stay at the CLI boundary.

``subprocess`` use and ``os.environ`` writes inside the library make
behaviour depend on ambient process state that fingerprints never see,
and leak into every other thread sharing the interpreter.  ``cli.py``
(and tests/benchmarks) are the sanctioned boundary; library code reads
configuration through explicit parameters — reading ``os.environ`` is
fine, mutating it is not.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING

from ..engine import Rule
from .common import dotted_name, is_cli_module, is_test_path

if TYPE_CHECKING:  # pragma: no cover - typing only
    from collections.abc import Iterable

    from ..engine import FileContext, Finding

_ENV_MUTATORS = frozenset(
    {
        "os.environ.setdefault",
        "os.environ.pop",
        "os.environ.update",
        "os.environ.clear",
        "os.putenv",
        "os.unsetenv",
    }
)


def _is_environ_subscript(node: ast.AST) -> bool:
    """True for ``os.environ[...]`` targets."""
    return (
        isinstance(node, ast.Subscript)
        and dotted_name(node.value) == "os.environ"
    )


class ProcessEnvRule(Rule):
    """Flag subprocess use and os.environ mutation in library code."""

    code = "FX008"
    summary = (
        "subprocess/os.environ mutation outside cli.py, tests and benchmarks"
    )
    node_types = (ast.Import, ast.ImportFrom, ast.Call, ast.Assign, ast.Delete)

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        """Flag subprocess imports and environment writes."""
        if is_cli_module(ctx.path) or is_test_path(ctx.path):
            return
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] == "subprocess":
                    yield self.finding(
                        ctx,
                        node,
                        "subprocess imported in library code; process "
                        "spawning belongs in cli.py, tests or benchmarks",
                    )
            return
        if isinstance(node, ast.ImportFrom):
            if (node.module or "").split(".")[0] == "subprocess":
                yield self.finding(
                    ctx,
                    node,
                    "subprocess imported in library code; process spawning "
                    "belongs in cli.py, tests or benchmarks",
                )
            return
        if isinstance(node, ast.Call):
            if dotted_name(node.func) in _ENV_MUTATORS:
                yield self.finding(
                    ctx,
                    node,
                    "os.environ mutated in library code; pass configuration "
                    "explicitly instead of writing process state",
                )
            return
        targets = node.targets
        for target in targets:
            if _is_environ_subscript(target):
                yield self.finding(
                    ctx,
                    node,
                    "os.environ mutated in library code; pass configuration "
                    "explicitly instead of writing process state",
                )
