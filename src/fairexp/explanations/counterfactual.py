"""Counterfactual explanation generation.

A counterfactual explanation for an instance ``x`` with prediction
``f(x) = 0`` is a nearby point ``x'`` with ``f(x') = 1`` (Wachter et al.),
formally ``x' = argmin distance(x, x') s.t. f(x') != f(x)``.

Three search strategies are provided (and ablated against each other in the
benchmarks):

* :class:`RandomSearchCounterfactual` — rejection sampling around ``x`` with a
  growing radius, followed by greedy sparsification;
* :class:`GrowingSpheresCounterfactual` — the growing-spheres algorithm
  (uniform sampling in expanding L2 shells, then feature-wise projection);
* :class:`GradientCounterfactual` — gradient ascent on the favourable-class
  probability for models exposing ``gradient_input``.

All generators honour per-feature actionability constraints
(:class:`ActionabilityConstraints`), which encode the immutability, bounds,
and monotonicity information carried by :class:`fairexp.datasets.FeatureSpec`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..datasets.schema import FeatureSpec
from ..exceptions import InfeasibleRecourseError, ValidationError
from ..utils import check_random_state
from .base import Counterfactual, ExplainerInfo, ExplainerRegistry
from .engine import greedy_sparsify_batch, lockstep_candidate_search
from .kernels import batch_counterfactual_distance, project_candidates, resolve_kernels
from .schedules import resolve_schedule

__all__ = [
    "ActionabilityConstraints",
    "counterfactual_distance",
    "BaseCounterfactualGenerator",
    "RandomSearchCounterfactual",
    "GrowingSpheresCounterfactual",
    "GradientCounterfactual",
]


@dataclass
class ActionabilityConstraints:
    """Per-feature constraints that a counterfactual must respect.

    Attributes
    ----------
    immutable:
        Boolean mask of features that must keep their original value.
    lower, upper:
        Plausibility bounds per feature (NaN = unbounded).
    monotone:
        +1 (may only increase), -1 (may only decrease), 0 (free) per feature.
    """

    immutable: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    monotone: np.ndarray

    @classmethod
    def unconstrained(cls, n_features: int) -> "ActionabilityConstraints":
        """Constraints allowing every feature to move freely."""
        return cls(
            immutable=np.zeros(n_features, dtype=bool),
            lower=np.full(n_features, -np.inf),
            upper=np.full(n_features, np.inf),
            monotone=np.zeros(n_features, dtype=int),
        )

    @classmethod
    def from_feature_specs(cls, specs: Sequence[FeatureSpec]) -> "ActionabilityConstraints":
        """Build constraints from dataset feature metadata.

        Immutable *or* non-actionable features are frozen; numeric bounds and
        monotonicity directions are carried over.
        """
        n = len(specs)
        constraints = cls.unconstrained(n)
        for j, spec in enumerate(specs):
            constraints.immutable[j] = spec.immutable or not spec.actionable
            constraints.lower[j] = -np.inf if spec.lower is None else spec.lower
            constraints.upper[j] = np.inf if spec.upper is None else spec.upper
            constraints.monotone[j] = spec.monotone
        return constraints

    def project(self, x_original: np.ndarray, candidate: np.ndarray, *,
                kernels=None) -> np.ndarray:
        """Project candidate counterfactuals onto the feasible set.

        Accepts a single candidate of shape ``(d,)`` or any stacked candidate
        tensor of shape ``(..., d)`` — e.g. ``(n_candidates, d)`` for one
        instance's candidate matrix, or ``(n_instances, n_candidates, d)``
        with ``x_original`` of shape ``(n_instances, 1, d)`` for the batched
        engine.  ``x_original`` must broadcast against ``candidate``; NaN
        bounds are treated as unbounded.

        The projection cascade runs on the
        :mod:`~fairexp.explanations.kernels` dispatch layer; ``kernels``
        overrides the resolved kernel set for this call (all sets are
        bitwise-equal, so this only changes speed).
        """
        return project_candidates(
            x_original, candidate, immutable=self.immutable, lower=self.lower,
            upper=self.upper, monotone=self.monotone, kernels=kernels,
        )

    def is_feasible(self, x_original: np.ndarray, candidate: np.ndarray, *, atol=1e-9):
        """Whether ``candidate`` satisfies all constraints relative to ``x_original``.

        Returns a scalar ``bool`` for a single ``(d,)`` candidate and a
        boolean array (reduced over the feature axis) for stacked candidates.
        """
        candidate = np.asarray(candidate, dtype=float)
        close = np.isclose(candidate, self.project(x_original, candidate), atol=atol)
        if candidate.ndim <= 1:
            return bool(np.all(close))
        return np.all(close, axis=-1)


def counterfactual_distance(
    x: np.ndarray, x_prime: np.ndarray, *, scale: np.ndarray | None = None,
    metric: str = "l1", kernels=None,
) -> float:
    """Distance between an instance and its counterfactual.

    ``metric`` is ``"l1"`` (MAD-style, the default used for burden), ``"l2"``
    or ``"l0"`` (number of changed features).  ``scale`` normalizes features
    (e.g. per-feature standard deviation or median absolute deviation).

    Delegates to the (bitwise-equal) batched kernel
    :func:`~fairexp.explanations.kernels.batch_counterfactual_distance`;
    callers scoring many pairs should call that directly with stacked rows.
    """
    x = np.asarray(x, dtype=float).reshape(1, -1)
    x_prime = np.asarray(x_prime, dtype=float).reshape(1, -1)
    return float(batch_counterfactual_distance(
        x, x_prime, scale=scale, metric=metric, kernels=kernels
    )[0])


class BaseCounterfactualGenerator:
    """Shared machinery for counterfactual generators.

    Parameters
    ----------
    model:
        Classifier with ``predict`` (and ``predict_proba`` where needed).
    background:
        Reference data used to scale distances and bound the search.
    constraints:
        Optional :class:`ActionabilityConstraints`.
    target_class:
        The favourable outcome to reach (default 1).
    metric:
        Distance metric reported on the returned counterfactuals.
    schedule:
        A :class:`~fairexp.explanations.schedules.SearchSchedule` (or its
        name, ``"geometric"`` / ``"adaptive"``) deciding which rung of the
        generator's :meth:`draw_schedule` ladder each still-unsolved
        instance probes next in the batched lockstep search.  ``None``
        resolves to the default
        :class:`~fairexp.explanations.schedules.GeometricSchedule`, which
        reproduces the historical fixed widening bitwise-exactly.  The
        schedule is part of the search configuration: it is introspected by
        ``generator_config`` and therefore folded into store fingerprints.
        (The sequential :meth:`generate` reference path always walks the
        full fixed ladder; generators without a rung ladder — gradient
        ascent — ignore the schedule.)
    kernels:
        Hot-path kernel selection for this generator's searches: ``None``
        (default — honour the ``FAIREXP_KERNELS`` environment variable),
        ``"auto"`` / ``"numpy"`` / ``"numba"``, or a resolved
        :class:`~fairexp.explanations.kernels.KernelSet`.  All kernel sets
        are bitwise-equal, so the choice only changes wall time — which is
        why it is deliberately **not** part of ``generator_config`` and
        never reaches store fingerprints.

    Attributes
    ----------
    search_step_count, search_draw_count:
        Lockstep schedule steps taken and candidate rows drawn across this
        generator's batched searches (thread-safe; process-sharded passes
        fold their workers' totals back in).  Surfaced through
        :meth:`~fairexp.explanations.session.AuditSession.stats` as
        ``schedule_steps`` / ``schedule_draws``.
    """

    info = ExplainerInfo(
        stage="post-hoc",
        access="black-box",
        agnostic=True,
        coverage="local",
        explanation_type="example",
        multiplicity="single",
    )

    def __init__(
        self,
        model,
        background: np.ndarray,
        *,
        constraints: ActionabilityConstraints | None = None,
        target_class: int = 1,
        metric: str = "l1",
        random_state=None,
        schedule=None,
        kernels=None,
    ) -> None:
        self.model = model
        self.kernels = kernels
        self.background = np.asarray(background, dtype=float)
        self.constraints = constraints or ActionabilityConstraints.unconstrained(
            self.background.shape[1]
        )
        self.target_class = target_class
        self.metric = metric
        self.random_state = random_state
        self.schedule = resolve_schedule(schedule)
        self.scale_ = self.background.std(axis=0)
        self.scale_[self.scale_ == 0] = 1.0
        self.search_step_count = 0
        self.search_draw_count = 0
        self._search_count_lock = threading.Lock()

    # ------------------------------------------------------------- helpers
    def draw_schedule(self) -> list:
        """Per-rung parameters of this generator's search ladder.

        One entry per rung of the widening search (radii, shell bounds, …),
        lowest rung first.  The lockstep kernel searches over
        ``len(draw_schedule())`` rungs and the generator's ``schedule``
        decides the order instances probe them in; generators without a
        rung ladder (gradient ascent) return an empty list.
        """
        return []

    def add_search_counts(self, steps: int, draws: int) -> None:
        """Fold one search pass's schedule steps / candidate draws into the
        generator's thread-safe totals (also used by process-sharded passes
        to report their workers' totals)."""
        with self._search_count_lock:
            self.search_step_count += int(steps)
            self.search_draw_count += int(draws)

    def reset_search_counts(self) -> None:
        """Zero the schedule step / draw totals."""
        with self._search_count_lock:
            self.search_step_count = 0
            self.search_draw_count = 0

    def _predict(self, X: np.ndarray) -> np.ndarray:
        return np.asarray(self.model.predict(np.atleast_2d(X)))

    def _make_results_batch(self, X_rows: np.ndarray, candidates: np.ndarray
                            ) -> list[Counterfactual]:
        """Build :class:`Counterfactual` results for many rows with two
        predict calls (originals + counterfactuals) instead of two per row."""
        kernel_set = resolve_kernels(self.kernels)
        X_rows = np.atleast_2d(np.asarray(X_rows, dtype=float))
        candidates = self.constraints.project(
            X_rows, np.atleast_2d(np.asarray(candidates, dtype=float)),
            kernels=kernel_set,
        )
        original_predictions = self._predict(X_rows)
        counterfactual_predictions = self._predict(candidates)
        feasible = self.constraints.is_feasible(X_rows, candidates)
        changed_matrix = ~np.isclose(candidates, X_rows)
        distances = kernel_set.batch_counterfactual_distance(
            X_rows, candidates, scale=self.scale_, metric=self.metric
        )
        results = []
        for k in range(X_rows.shape[0]):
            x, candidate = X_rows[k], candidates[k]
            changed = tuple(int(j) for j in np.flatnonzero(changed_matrix[k]))
            results.append(Counterfactual(
                original=x.copy(),
                counterfactual=candidate.copy(),
                original_prediction=int(original_predictions[k]),
                counterfactual_prediction=int(counterfactual_predictions[k]),
                changed_features=changed,
                distance=float(distances[k]),
                feasible=bool(feasible[k]),
            ))
        return results

    def _make_result(self, x: np.ndarray, candidate: np.ndarray) -> Counterfactual:
        return self._make_results_batch(
            np.asarray(x, dtype=float)[None, :], np.asarray(candidate, dtype=float)[None, :]
        )[0]

    def _sparsify(self, x: np.ndarray, candidate: np.ndarray) -> np.ndarray:
        """Greedily revert changed features back to their original value while
        the counterfactual still reaches the target class.

        The greedy semantics of the original one-predict-per-feature loop are
        preserved, but all revert trials of a speculation round are evaluated
        in a single batched predict (see :func:`greedy_sparsify_batch`).
        """
        return greedy_sparsify_batch(
            self, np.asarray(x, dtype=float)[None, :],
            np.asarray(candidate, dtype=float)[None, :],
        )[0]

    def generate(self, x: np.ndarray) -> Counterfactual:
        """Return one counterfactual for ``x``; raises if none is found."""
        raise NotImplementedError

    def generate_batch_aligned(self, X: np.ndarray) -> list[Counterfactual | None]:
        """Counterfactuals for every row of ``X``, aligned with the rows.

        Rows whose search budget is exhausted map to ``None``.  Subclasses
        with a vectorized cross-instance kernel override this; the fallback
        simply loops :meth:`generate`.
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        results: list[Counterfactual | None] = []
        for i in range(X.shape[0]):
            try:
                results.append(self.generate(X[i]))
            except InfeasibleRecourseError:
                results.append(None)
        return results

    def generate_batch(self, X: np.ndarray, *, skip_failures: bool = True) -> list[Counterfactual]:
        """Generate counterfactuals for many instances.

        Instances already classified as the target class are skipped.  With
        ``skip_failures`` infeasible instances are dropped instead of raising.
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        predictions = self._predict(X)
        pending = np.flatnonzero(predictions != self.target_class)
        aligned = self.generate_batch_aligned(X[pending]) if pending.size else []
        results = []
        for row, result in zip(pending, aligned):
            if result is None:
                if not skip_failures:
                    raise InfeasibleRecourseError(
                        f"no counterfactual found for instance {int(row)} "
                        "within the search budget"
                    )
                continue
            results.append(result)
        return results


@ExplainerRegistry.register("random_search", capabilities=("counterfactual-generator",),
                            data_requirements=("feature-specs",))
class RandomSearchCounterfactual(BaseCounterfactualGenerator):
    """Rejection sampling with a growing Gaussian radius plus greedy sparsification."""

    def __init__(self, model, background, *, n_samples: int = 300, max_radius: float = 4.0,
                 n_radii: int = 8, **kwargs) -> None:
        super().__init__(model, background, **kwargs)
        self.n_samples = n_samples
        self.max_radius = max_radius
        self.n_radii = n_radii

    def _radii(self) -> np.ndarray:
        return np.linspace(self.max_radius / self.n_radii, self.max_radius, self.n_radii)

    def draw_schedule(self) -> list[float]:
        """The rung ladder: one Gaussian radius per search step, smallest first."""
        return [float(radius) for radius in self._radii()]

    def _draw(self, rng, x: np.ndarray, step: int) -> np.ndarray:
        noise = rng.normal(0.0, self._radii()[step], (self.n_samples, x.shape[0])) * self.scale_
        return x[None, :] + noise

    def generate(self, x: np.ndarray) -> Counterfactual:
        """One counterfactual for ``x`` via widening rejection sampling.

        This sequential reference path always walks the full fixed ladder
        (rung 0, 1, 2, …); the pluggable ``schedule`` only drives the
        batched :meth:`generate_batch_aligned` search.
        """
        x = np.asarray(x, dtype=float).ravel()
        rng = check_random_state(self.random_state)
        for step in range(len(self.draw_schedule())):
            candidates = self.constraints.project(x, self._draw(rng, x, step))
            predictions = self._predict(candidates)
            hits = np.flatnonzero(predictions == self.target_class)
            if hits.size == 0:
                continue
            distances = batch_counterfactual_distance(
                x, candidates[hits], scale=self.scale_, metric=self.metric,
                kernels=self.kernels,
            )
            best = candidates[hits[np.argmin(distances)]]
            best = self._sparsify(x, best)
            return self._make_result(x, best)
        raise InfeasibleRecourseError("random search found no counterfactual within the radius")

    def generate_batch_aligned(self, X: np.ndarray) -> list[Counterfactual | None]:
        """Row-aligned counterfactuals via the cross-instance lockstep kernel,
        probing the radius ladder in the order this generator's ``schedule``
        plans."""
        return lockstep_candidate_search(self, X, self._draw,
                                         len(self.draw_schedule()),
                                         schedule=self.schedule)


@ExplainerRegistry.register("growing_spheres", capabilities=("counterfactual-generator",),
                            data_requirements=("feature-specs",))
class GrowingSpheresCounterfactual(BaseCounterfactualGenerator):
    """Growing-spheres search: uniform sampling in expanding L2 shells."""

    def __init__(self, model, background, *, n_samples_per_shell: int = 200,
                 initial_radius: float = 0.1, growth: float = 1.5, max_shells: int = 12,
                 **kwargs) -> None:
        super().__init__(model, background, **kwargs)
        self.n_samples_per_shell = n_samples_per_shell
        self.initial_radius = initial_radius
        self.growth = growth
        self.max_shells = max_shells

    def _shell_schedule(self) -> list[tuple[float, float]]:
        """(inner, outer) radii of every shell, accumulated iteratively so the
        sequential and batched paths see bit-identical bounds."""
        schedule = []
        inner, outer = 0.0, self.initial_radius
        for _ in range(self.max_shells):
            schedule.append((inner, outer))
            inner, outer = outer, outer * self.growth
        return schedule

    def draw_schedule(self) -> list[tuple[float, float]]:
        """The rung ladder: one ``(inner, outer)`` shell per search step,
        innermost first."""
        return self._shell_schedule()

    def _sample_shell(self, rng, x, inner: float, outer: float) -> np.ndarray:
        n_features = x.shape[0]
        directions = rng.normal(size=(self.n_samples_per_shell, n_features))
        directions /= np.linalg.norm(directions, axis=1, keepdims=True) + 1e-12
        radii = rng.uniform(inner, outer, self.n_samples_per_shell)
        return x[None, :] + directions * radii[:, None] * self.scale_

    def _draw(self, rng, x: np.ndarray, step: int) -> np.ndarray:
        inner, outer = self._shell_schedule()[step]
        return self._sample_shell(rng, x, inner, outer)

    def generate(self, x: np.ndarray) -> Counterfactual:
        """One counterfactual for ``x`` via expanding L2 shells.

        This sequential reference path always walks the full fixed ladder
        (innermost shell outward); the pluggable ``schedule`` only drives
        the batched :meth:`generate_batch_aligned` search.
        """
        x = np.asarray(x, dtype=float).ravel()
        rng = check_random_state(self.random_state)
        for step in range(len(self.draw_schedule())):
            candidates = self.constraints.project(x, self._draw(rng, x, step))
            predictions = self._predict(candidates)
            hits = np.flatnonzero(predictions == self.target_class)
            if hits.size > 0:
                distances = batch_counterfactual_distance(
                    x, candidates[hits], scale=self.scale_, metric=self.metric,
                    kernels=self.kernels,
                )
                best = candidates[hits[np.argmin(distances)]]
                best = self._sparsify(x, best)
                return self._make_result(x, best)
        raise InfeasibleRecourseError("growing spheres exhausted the search radius")

    def generate_batch_aligned(self, X: np.ndarray) -> list[Counterfactual | None]:
        """Row-aligned counterfactuals via the cross-instance lockstep kernel,
        probing the shell ladder in the order this generator's ``schedule``
        plans."""
        return lockstep_candidate_search(self, X, self._draw,
                                         len(self.draw_schedule()),
                                         schedule=self.schedule)


@ExplainerRegistry.register(
    "gradient", capabilities=("counterfactual-generator", "requires-gradient"),
    data_requirements=("feature-specs",), resource_requirements=("gradients",),
)
class GradientCounterfactual(BaseCounterfactualGenerator):
    """Gradient ascent on the target-class probability (gradient-access models).

    Requires the model to expose ``gradient_input(X)`` returning the gradient
    of the positive-class probability with respect to the features
    (``LogisticRegression`` and ``MLPClassifier`` do).
    """

    info = ExplainerInfo(
        stage="post-hoc",
        access="gradient",
        agnostic=False,
        coverage="local",
        explanation_type="example",
        multiplicity="single",
    )

    def __init__(self, model, background, *, step_size: float = 0.25, max_iter: int = 300,
                 **kwargs) -> None:
        super().__init__(model, background, **kwargs)
        if not hasattr(model, "gradient_input"):
            raise ValidationError("GradientCounterfactual requires model.gradient_input")
        self.step_size = step_size
        self.max_iter = max_iter

    def _anchor(self) -> np.ndarray:
        # Anchor for plateau escapes: the centroid of background points already
        # classified as the target class (gradients vanish far from the
        # boundary of a well-separated model, so pure gradient steps can stall).
        background_predictions = self._predict(self.background)
        target_rows = self.background[background_predictions == self.target_class]
        return target_rows.mean(axis=0) if target_rows.shape[0] else self.background.mean(axis=0)

    def generate(self, x: np.ndarray) -> Counterfactual:
        """One counterfactual for ``x`` via gradient ascent on the target class."""
        x = np.asarray(x, dtype=float).ravel()
        candidate = x.copy()
        sign = 1.0 if self.target_class == 1 else -1.0
        anchor = self._anchor()
        for _ in range(self.max_iter):
            if int(self._predict(candidate)[0]) == self.target_class:
                candidate = self._sparsify(x, candidate)
                return self._make_result(x, candidate)
            gradient = np.asarray(self.model.gradient_input(candidate[None, :]))[0]
            step = sign * self.step_size * gradient * self.scale_**2
            norm = np.linalg.norm(step / self.scale_)
            if norm < 1e-4:
                # Plateau: move a fixed fraction of the way toward the anchor.
                step = 0.2 * (anchor - candidate)
            candidate = self.constraints.project(x, candidate + step)
        if int(self._predict(candidate)[0]) == self.target_class:
            return self._make_result(x, candidate)
        raise InfeasibleRecourseError("gradient search did not cross the decision boundary")

    def generate_batch_aligned(self, X: np.ndarray) -> list[Counterfactual | None]:
        """Cross-instance gradient ascent: all still-unsolved instances share
        one predict and one ``gradient_input`` call per iteration."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        n_instances = X.shape[0]
        candidates = X.copy()
        sign = 1.0 if self.target_class == 1 else -1.0
        anchor = self._anchor()
        unsolved = np.arange(n_instances)
        solved: dict[int, np.ndarray] = {}     # crossed mid-loop -> sparsified
        exhausted: dict[int, np.ndarray] = {}  # crossed only at the budget check
        for _ in range(self.max_iter):
            if unsolved.size == 0:
                break
            predictions = self._predict(candidates[unsolved])
            crossed = predictions == self.target_class
            for i in unsolved[crossed]:
                solved[int(i)] = candidates[i].copy()
            unsolved = unsolved[~crossed]
            if unsolved.size == 0:
                break
            gradients = np.asarray(self.model.gradient_input(candidates[unsolved]))
            steps = sign * self.step_size * gradients * self.scale_**2
            plateau = np.linalg.norm(steps / self.scale_, axis=1) < 1e-4
            steps[plateau] = 0.2 * (anchor - candidates[unsolved][plateau])
            candidates[unsolved] = self.constraints.project(
                X[unsolved], candidates[unsolved] + steps
            )
        if unsolved.size:
            predictions = self._predict(candidates[unsolved])
            for i in unsolved[predictions == self.target_class]:
                exhausted[int(i)] = candidates[i].copy()

        results: list[Counterfactual | None] = [None] * n_instances
        if solved:
            rows = sorted(solved)
            sparse = greedy_sparsify_batch(self, X[rows], np.stack([solved[i] for i in rows]))
            for i, result in zip(rows, self._make_results_batch(X[rows], sparse)):
                results[i] = result
        if exhausted:
            rows = sorted(exhausted)
            made = self._make_results_batch(X[rows], np.stack([exhausted[i] for i in rows]))
            for i, result in zip(rows, made):
                results[i] = result
        return results
