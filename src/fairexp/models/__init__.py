"""From-scratch numpy models and ML utilities used as the modelling substrate.

The fairness-explanation methods in :mod:`fairexp.core` treat these models as
black boxes (``predict`` / ``predict_proba``), except where the explanation
taxonomy calls for gradient access (``LogisticRegression.gradient_input``,
``MLPClassifier.gradient_input``) or white-box access
(``DecisionTreeClassifier.decision_path``).
"""

from .base import BaseClassifier, ProbabilisticClassifier
from .calibration import CalibratedClassifier, PlattCalibrator, expected_calibration_error
from .forest import RandomForestClassifier
from .knn import KNeighborsClassifier
from .logistic import LogisticRegression
from .metrics import (
    accuracy_score,
    brier_score,
    calibration_curve,
    confusion_matrix,
    f1_score,
    false_negative_rate,
    false_positive_rate,
    log_loss,
    precision_score,
    recall_score,
    roc_auc_score,
    roc_curve,
    selection_rate,
    true_negative_rate,
    true_positive_rate,
)
from .mlp import MLPClassifier
from .model_selection import GridSearch, cross_val_score, k_fold_indices
from .naive_bayes import GaussianNaiveBayes
from .preprocessing import (
    LabelEncoder,
    MinMaxScaler,
    OneHotEncoder,
    StandardScaler,
    train_test_split,
)
from .tree import DecisionTreeClassifier, TreeNode

__all__ = [
    "BaseClassifier",
    "ProbabilisticClassifier",
    "LogisticRegression",
    "DecisionTreeClassifier",
    "TreeNode",
    "RandomForestClassifier",
    "GaussianNaiveBayes",
    "KNeighborsClassifier",
    "MLPClassifier",
    "CalibratedClassifier",
    "PlattCalibrator",
    "expected_calibration_error",
    "StandardScaler",
    "MinMaxScaler",
    "OneHotEncoder",
    "LabelEncoder",
    "train_test_split",
    "GridSearch",
    "cross_val_score",
    "k_fold_indices",
    "accuracy_score",
    "precision_score",
    "recall_score",
    "f1_score",
    "confusion_matrix",
    "roc_auc_score",
    "roc_curve",
    "log_loss",
    "brier_score",
    "calibration_curve",
    "selection_rate",
    "true_positive_rate",
    "false_positive_rate",
    "false_negative_rate",
    "true_negative_rate",
]
