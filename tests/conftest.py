"""Shared fixtures for the fairexp test suite.

Expensive artifacts (synthetic datasets, trained models, fitted recommenders)
are session-scoped so the several hundred tests stay fast; tests that mutate
data must work on copies.
"""

from __future__ import annotations

import numpy as np
import pytest

from fairexp.datasets import (
    make_adult_like,
    make_compas_like,
    make_loan_dataset,
    make_scm_loan_dataset,
)
from fairexp.explanations import ActionabilityConstraints, GrowingSpheresCounterfactual
from fairexp.graphs import GCNClassifier, make_biased_sbm
from fairexp.models import LogisticRegression
from fairexp.recsys import RecWalkRecommender, make_biased_interactions


@pytest.fixture(scope="session")
def loan_data():
    """Biased loan dataset split into train/test."""
    dataset = make_loan_dataset(700, direct_bias=1.2, recourse_gap=1.0, random_state=0)
    train, test = dataset.split(test_size=0.3, random_state=1)
    return dataset, train, test


@pytest.fixture(scope="session")
def loan_model(loan_data):
    """Logistic regression trained on the biased loan dataset."""
    _, train, _ = loan_data
    return LogisticRegression(n_iter=1200, random_state=0).fit(train.X, train.y)


@pytest.fixture(scope="session")
def loan_cf_generator(loan_data, loan_model):
    """Growing-spheres counterfactual generator honouring the loan constraints."""
    dataset, train, _ = loan_data
    constraints = ActionabilityConstraints.from_feature_specs(dataset.features)
    return GrowingSpheresCounterfactual(
        loan_model, train.X, constraints=constraints, random_state=0
    )


@pytest.fixture(scope="session")
def adult_data():
    """Adult-like income dataset with direct + proxy bias."""
    dataset = make_adult_like(700, direct_bias=1.0, proxy_bias=0.8, random_state=0)
    train, test = dataset.split(test_size=0.3, random_state=1)
    return dataset, train, test


@pytest.fixture(scope="session")
def adult_model(adult_data):
    _, train, _ = adult_data
    return LogisticRegression(n_iter=1200, random_state=0).fit(train.X, train.y)


@pytest.fixture(scope="session")
def compas_data():
    dataset = make_compas_like(600, random_state=0)
    train, test = dataset.split(test_size=0.3, random_state=1)
    return dataset, train, test


@pytest.fixture(scope="session")
def scm_loan():
    """(dataset, scm, trained model) triple for causal-recourse tests."""
    dataset, scm = make_scm_loan_dataset(600, random_state=0)
    train, test = dataset.split(test_size=0.3, random_state=1)
    model = LogisticRegression(n_iter=1000, random_state=0).fit(train.X, train.y)
    return dataset, scm, train, test, model


@pytest.fixture(scope="session")
def interactions():
    """Biased user-item interactions."""
    return make_biased_interactions(50, 30, random_state=0)


@pytest.fixture(scope="session")
def recwalk(interactions):
    """Fitted RecWalk recommender on the biased interactions."""
    return RecWalkRecommender(n_steps=15).fit(interactions)


@pytest.fixture(scope="session")
def sbm_graph():
    """Biased stochastic-block-model graph."""
    return make_biased_sbm(100, random_state=0)


@pytest.fixture(scope="session")
def gcn(sbm_graph):
    """Trained GCN on the biased graph."""
    return GCNClassifier(n_epochs=150, learning_rate=0.3, random_state=0).fit(sbm_graph)


@pytest.fixture
def rng():
    return np.random.default_rng(0)
