"""Quickstart: audit a credit-scoring model and explain its unfairness.

Trains a classifier on a synthetic German-credit-like dataset, measures the
standard group fairness metrics, and produces the three kinds of explanations
for fairness the paper distinguishes: a metric-enhancing explanation (burden /
NAWB), cause-understanding explanations (fairness Shapley values, FACTS
subgroups), all through the one-call :class:`fairexp.FairnessAuditor`.

Run with:  python examples/quickstart.py
"""

from fairexp import FairnessAuditor
from fairexp.datasets import make_german_credit_like
from fairexp.models import LogisticRegression


def main() -> None:
    dataset = make_german_credit_like(1200, direct_bias=1.0, random_state=0)
    train, test = dataset.split(test_size=0.3, random_state=1)
    print(f"dataset: {dataset.name}, base rates per group: {dataset.base_rates()}")

    model = LogisticRegression(n_iter=1500, random_state=0).fit(train.X, train.y)
    print(f"model accuracy on the test split: {model.score(test.X, test.y):.3f}\n")

    auditor = FairnessAuditor(include=("burden", "nawb", "shap", "facts"),
                              max_explained=40, random_state=0)
    report = auditor.audit(model, test, train_dataset=train)
    print(report.summary())


if __name__ == "__main__":
    main()
