"""Quickstart: audit a credit-scoring model and explain its unfairness.

Trains a classifier on a synthetic German-credit-like dataset, measures the
standard group fairness metrics, and produces the three kinds of explanations
for fairness the paper distinguishes: a metric-enhancing explanation (burden /
NAWB), cause-understanding explanations (fairness Shapley values, FACTS
subgroups), all through the one-call :class:`fairexp.FairnessAuditor`.

The second half shows the persistent counterfactual store: the same audit
sweep through a store-backed :class:`fairexp.explanations.AuditSession` runs
cold once, then warm-starts — zero engine passes — from the matrices the
cold run persisted, exactly as a repeated CI run or dashboard refresh would
in a fresh process.

Run with:  python examples/quickstart.py
"""

import tempfile
import time

from fairexp import FairnessAuditor
from fairexp.core import BurdenExplainer, NAWBExplainer
from fairexp.datasets import make_german_credit_like
from fairexp.explanations import AuditSession, ExplainerRegistry
from fairexp.models import LogisticRegression


def audit_report(model, train, test) -> None:
    """One-call audit: metrics plus burden/NAWB/Shapley/FACTS explanations."""
    auditor = FairnessAuditor(include=("burden", "nawb", "shap", "facts"),
                              max_explained=40, random_state=0)
    report = auditor.audit(model, test, train_dataset=train)
    print(report.summary())


def store_backed_sweep(model, train, test) -> None:
    """Cold vs warm: the persistent store removes repeated engine passes."""
    print("== Persistent counterfactual store (cold vs warm sweep)")
    generator_cls = ExplainerRegistry.get("growing_spheres")
    subset = test.subset(range(min(60, test.n_samples)))

    def sweep(store_dir) -> tuple[float, AuditSession]:
        # A fresh session per sweep, as a fresh process would build one.
        session = AuditSession(generator_cls(model, train.X, random_state=0),
                               store=store_dir)
        start = time.perf_counter()
        BurdenExplainer(session=session).explain(subset.X, subset.sensitive_values)
        NAWBExplainer(session=session).explain(subset.X, subset.y,
                                               subset.sensitive_values)
        return time.perf_counter() - start, session

    with tempfile.TemporaryDirectory() as store_dir:
        cold_time, cold_session = sweep(store_dir)
        warm_time, warm_session = sweep(store_dir)
        print(f"   cold sweep: {cold_time * 1000:7.1f} ms "
              f"({cold_session.stats()['engine_predict_calls']} engine predict calls)")
        print(f"   warm sweep: {warm_time * 1000:7.1f} ms "
              f"({warm_session.stats()['engine_predict_calls']} engine predict calls, "
              f"{warm_session.store_row_hits} rows from the store)")
        print(f"   speedup: {cold_time / max(warm_time, 1e-9):.1f}x")


def main() -> None:
    dataset = make_german_credit_like(1200, direct_bias=1.0, random_state=0)
    train, test = dataset.split(test_size=0.3, random_state=1)
    print(f"dataset: {dataset.name}, base rates per group: {dataset.base_rates()}")

    model = LogisticRegression(n_iter=1500, random_state=0).fit(train.X, train.y)
    print(f"model accuracy on the test split: {model.score(test.X, test.y):.3f}\n")

    audit_report(model, train, test)
    store_backed_sweep(model, train, test)


if __name__ == "__main__":
    main()
