"""Logistic regression trained with full-batch gradient descent.

The model exposes gradients (:meth:`LogisticRegression.gradient_input`) so
gradient-based explanation methods in :mod:`fairexp.explanations` can use it
as a "gradient access" model in the sense of the explanation taxonomy
(Figure 2 of the paper).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConvergenceError, ValidationError
from ..utils import check_random_state, sigmoid
from .base import BaseClassifier

__all__ = ["LogisticRegression"]


class LogisticRegression(BaseClassifier):
    """Binary logistic regression with optional L2 regularisation.

    Parameters
    ----------
    learning_rate:
        Step size for gradient descent.
    n_iter:
        Maximum number of full-batch iterations.
    l2:
        L2 regularisation strength (0 disables regularisation).
    tol:
        Stop early when the gradient norm falls below this threshold.
    fit_intercept:
        Whether to learn an intercept term.
    sample_weight_support:
        The ``fit`` method accepts per-sample weights, which the fairness
        mitigation layer (reweighing) relies on.
    """

    def __init__(
        self,
        learning_rate: float = 0.5,
        n_iter: int = 2000,
        l2: float = 0.0,
        tol: float = 1e-6,
        fit_intercept: bool = True,
        random_state: int | None = 0,
    ) -> None:
        super().__init__()
        self.learning_rate = learning_rate
        self.n_iter = n_iter
        self.l2 = l2
        self.tol = tol
        self.fit_intercept = fit_intercept
        self.random_state = random_state
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self.n_iter_: int = 0

    # ------------------------------------------------------------------ fit
    def fit(self, X, y, sample_weight=None) -> "LogisticRegression":
        """Fit by batch gradient descent; returns ``self``."""
        X, y = self._validate_fit_input(X, y)
        if set(np.unique(y)) - {0, 1}:
            raise ValidationError("LogisticRegression supports binary 0/1 labels only")
        y = y.astype(float)
        n_samples, n_features = X.shape

        if sample_weight is None:
            weights = np.ones(n_samples)
        else:
            weights = np.asarray(sample_weight, dtype=float)
            if weights.shape != (n_samples,):
                raise ValidationError("sample_weight must have one entry per sample")
        weights = weights / weights.sum() * n_samples

        # Optimize in standardized feature space so gradient descent is robust
        # to raw feature scales; coefficients are folded back afterwards.
        mean = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0] = 1.0
        Z = (X - mean) / scale

        rng = check_random_state(self.random_state)
        coef = rng.normal(scale=0.01, size=n_features)
        intercept = 0.0
        # Keep the L2 shrinkage step contractive: learning_rate * l2 must stay
        # below 1 or the ridge term alone makes the iteration diverge.
        learning_rate = self.learning_rate
        if self.l2 > 0:
            learning_rate = min(learning_rate, 0.9 / self.l2)

        for iteration in range(self.n_iter):
            scores = Z @ coef + intercept
            probabilities = sigmoid(scores)
            error = weights * (probabilities - y)
            grad_coef = Z.T @ error / n_samples + self.l2 * coef
            grad_intercept = float(error.mean()) if self.fit_intercept else 0.0

            coef -= learning_rate * grad_coef
            intercept -= learning_rate * grad_intercept

            gradient_norm = float(np.linalg.norm(grad_coef))
            if gradient_norm < self.tol:
                break
        else:
            iteration = self.n_iter - 1

        if not np.all(np.isfinite(coef)):
            raise ConvergenceError("logistic regression diverged; lower the learning rate")

        self.coef_ = coef / scale
        self.intercept_ = intercept - float(np.sum(coef * mean / scale))
        self.n_iter_ = iteration + 1
        self.classes_ = np.array([0, 1])
        self._fitted = True
        return self

    # ------------------------------------------------------------- predict
    def decision_function(self, X) -> np.ndarray:
        """Signed decision scores for each row of ``X``."""
        X = self._validate_predict_input(X)
        return X @ self.coef_ + self.intercept_

    def predict_proba(self, X) -> np.ndarray:
        """Class-membership probabilities for each row of ``X``."""
        positive = sigmoid(self.decision_function(X))
        return np.column_stack([1 - positive, positive])

    def predict(self, X) -> np.ndarray:
        """Predicted class labels for ``X``."""
        return (self.decision_function(X) >= 0).astype(int)

    # ------------------------------------------------------------ gradients
    def gradient_input(self, X) -> np.ndarray:
        """Gradient of the positive-class probability w.r.t. each input feature.

        Returns an array of shape ``(n_samples, n_features)``.
        """
        X = self._validate_predict_input(X)
        probabilities = sigmoid(X @ self.coef_ + self.intercept_)
        return (probabilities * (1 - probabilities))[:, None] * self.coef_[None, :]

    def distance_to_boundary(self, X) -> np.ndarray:
        """Signed Euclidean distance of each sample to the decision hyperplane.

        Used by the recourse-equalization methods (Gupta et al.), where group
        recourse is defined as the average distance of negatively classified
        individuals from the boundary.
        """
        X = self._validate_predict_input(X)
        norm = float(np.linalg.norm(self.coef_))
        if norm == 0:
            return np.zeros(X.shape[0])
        return (X @ self.coef_ + self.intercept_) / norm
