"""Group handling utilities shared by all fairness metrics."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ValidationError

__all__ = ["GroupMasks", "group_masks", "groupwise"]


@dataclass(frozen=True)
class GroupMasks:
    """Boolean masks for the protected and non-protected groups.

    By the paper's convention, ``protected`` corresponds to the group
    ``G+`` (sensitive value 1) and ``reference`` to ``G-``.
    """

    protected: np.ndarray
    reference: np.ndarray

    @property
    def n_protected(self) -> int:
        """Number of rows in the protected group."""
        return int(self.protected.sum())

    @property
    def n_reference(self) -> int:
        """Number of rows in the reference group."""
        return int(self.reference.sum())


def group_masks(sensitive, *, protected_value=1) -> GroupMasks:
    """Build :class:`GroupMasks` from a sensitive-attribute vector.

    Parameters
    ----------
    sensitive:
        Group-membership values, one per sample.
    protected_value:
        The value identifying the protected group; every other value is
        treated as the reference group.
    """
    sensitive = np.asarray(sensitive)
    if sensitive.ndim != 1:
        raise ValidationError("sensitive must be 1-dimensional")
    protected = sensitive == protected_value
    if protected.all() or (~protected).all():
        raise ValidationError(
            "both a protected and a reference group are required "
            f"(protected_value={protected_value!r} produced a single group)"
        )
    return GroupMasks(protected=protected, reference=~protected)


def groupwise(values, sensitive, statistic=np.mean, *, protected_value=1) -> dict[str, float]:
    """Apply ``statistic`` to ``values`` separately for each group.

    Returns a dictionary with ``protected``, ``reference`` and ``difference``
    (protected minus reference) entries.
    """
    values = np.asarray(values, dtype=float)
    masks = group_masks(sensitive, protected_value=protected_value)
    protected_value_ = float(statistic(values[masks.protected]))
    reference_value = float(statistic(values[masks.reference]))
    return {
        "protected": protected_value_,
        "reference": reference_value,
        "difference": protected_value_ - reference_value,
    }
