"""Random forest classifier built from :class:`fairexp.models.tree.DecisionTreeClassifier`."""

from __future__ import annotations

import numpy as np

from ..utils import check_random_state
from .base import BaseClassifier
from .tree import DecisionTreeClassifier

__all__ = ["RandomForestClassifier"]


class RandomForestClassifier(BaseClassifier):
    """Bagged ensemble of decision trees with feature subsampling.

    Parameters
    ----------
    n_estimators:
        Number of trees.
    max_depth, min_samples_split, min_samples_leaf:
        Passed through to each tree.
    max_features:
        Candidate features per split; defaults to ``sqrt``.
    bootstrap:
        Whether each tree is trained on a bootstrap resample.
    """

    def __init__(
        self,
        n_estimators: int = 25,
        max_depth: int | None = 8,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | str | None = "sqrt",
        bootstrap: bool = True,
        random_state: int | None = 0,
    ) -> None:
        super().__init__()
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.random_state = random_state
        self.estimators_: list[DecisionTreeClassifier] = []
        self.feature_importances_: np.ndarray | None = None

    def fit(self, X, y, sample_weight=None) -> "RandomForestClassifier":
        """Fit the bootstrapped trees on ``X``/``y``; returns ``self``."""
        X, y = self._validate_fit_input(X, y)
        rng = check_random_state(self.random_state)
        n_samples = X.shape[0]
        self.estimators_ = []
        importances = np.zeros(X.shape[1])

        for i in range(self.n_estimators):
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                random_state=int(rng.integers(0, 2**31 - 1)),
            )
            if self.bootstrap:
                idx = rng.integers(0, n_samples, size=n_samples)
            else:
                idx = np.arange(n_samples)
            weights = None if sample_weight is None else np.asarray(sample_weight)[idx]
            tree.fit(X[idx], y[idx], sample_weight=weights)
            importances += tree.feature_importances_
            self.estimators_.append(tree)

        self.feature_importances_ = importances / self.n_estimators
        self._fitted = True
        return self

    def predict_proba(self, X) -> np.ndarray:
        """Class-membership probabilities averaged over the trees."""
        X = self._validate_predict_input(X)
        n_classes = self.classes_.shape[0]
        total = np.zeros((X.shape[0], n_classes))
        for tree in self.estimators_:
            proba = tree.predict_proba(X)
            # Trees trained on bootstrap samples may have seen fewer classes;
            # align their output columns with the forest's class set.
            aligned = np.zeros((X.shape[0], n_classes))
            for j, cls in enumerate(tree.classes_):
                aligned[:, int(np.flatnonzero(self.classes_ == cls)[0])] = proba[:, j]
            total += aligned
        return total / self.n_estimators
