"""Probabilistic contrastive counterfactual scores.

Implements the probability-of-necessity / probability-of-sufficiency style
quantities used by probabilistic contrastive counterfactual explanations
(Galhotra, Pradhan, Salimi [10]).  Unlike interventions on a fully specified
SCM, these quantities are *estimated from historical data* under standard
identifiability assumptions (monotonicity + exogeneity), which is precisely
the distinction the paper highlights for this family of approaches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ValidationError
from ..utils import safe_divide

__all__ = [
    "ContrastiveScores",
    "probability_of_necessity",
    "probability_of_sufficiency",
    "probability_of_necessity_and_sufficiency",
    "contrastive_scores",
]


@dataclass(frozen=True)
class ContrastiveScores:
    """Necessity / sufficiency scores of a binary factor for a binary outcome.

    Attributes
    ----------
    necessity:
        P(outcome would be 0 had the factor been 0 | factor = 1, outcome = 1).
    sufficiency:
        P(outcome would be 1 had the factor been 1 | factor = 0, outcome = 0).
    necessity_and_sufficiency:
        P(outcome responds to the factor in both directions).
    """

    necessity: float
    sufficiency: float
    necessity_and_sufficiency: float


def _validate(factor: np.ndarray, outcome: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    factor = np.asarray(factor, dtype=int)
    outcome = np.asarray(outcome, dtype=int)
    if factor.shape != outcome.shape:
        raise ValidationError("factor and outcome must have the same shape")
    if set(np.unique(factor)) - {0, 1} or set(np.unique(outcome)) - {0, 1}:
        raise ValidationError("factor and outcome must be binary 0/1")
    return factor, outcome


def probability_of_necessity(factor, outcome) -> float:
    """PN under monotonicity: ``(P(y=1|t=1) - P(y=1|t=0)) / P(y=1|t=1)``."""
    factor, outcome = _validate(factor, outcome)
    p_y1_t1 = outcome[factor == 1].mean() if np.any(factor == 1) else 0.0
    p_y1_t0 = outcome[factor == 0].mean() if np.any(factor == 0) else 0.0
    return float(np.clip(safe_divide(p_y1_t1 - p_y1_t0, p_y1_t1), 0.0, 1.0))


def probability_of_sufficiency(factor, outcome) -> float:
    """PS under monotonicity: ``(P(y=1|t=1) - P(y=1|t=0)) / (1 - P(y=1|t=0))``."""
    factor, outcome = _validate(factor, outcome)
    p_y1_t1 = outcome[factor == 1].mean() if np.any(factor == 1) else 0.0
    p_y1_t0 = outcome[factor == 0].mean() if np.any(factor == 0) else 0.0
    return float(np.clip(safe_divide(p_y1_t1 - p_y1_t0, 1.0 - p_y1_t0), 0.0, 1.0))


def probability_of_necessity_and_sufficiency(factor, outcome) -> float:
    """PNS under monotonicity: ``P(y=1|t=1) - P(y=1|t=0)`` (clipped at 0)."""
    factor, outcome = _validate(factor, outcome)
    p_y1_t1 = outcome[factor == 1].mean() if np.any(factor == 1) else 0.0
    p_y1_t0 = outcome[factor == 0].mean() if np.any(factor == 0) else 0.0
    return float(np.clip(p_y1_t1 - p_y1_t0, 0.0, 1.0))


def contrastive_scores(factor, outcome) -> ContrastiveScores:
    """Bundle PN, PS and PNS for a binary factor / outcome pair."""
    return ContrastiveScores(
        necessity=probability_of_necessity(factor, outcome),
        sufficiency=probability_of_sufficiency(factor, outcome),
        necessity_and_sufficiency=probability_of_necessity_and_sufficiency(factor, outcome),
    )
