"""Fairness-aware causal path decomposition (Pan et al. [82]).

Feature-level disparity attributions ignore causal relationships between
features.  This method instead decomposes the model's disparity over the
*causal paths* linking the sensitive attribute to the outcome: each directed
path ``S -> ... -> f(X)`` receives a share of the statistical disparity,
computed by "deactivating" the path (cutting the transmission of the
group difference along its first edge) and measuring how much of the
disparity disappears.  With a linear SCM the shares coincide with the
products of edge coefficients along each path, which the tests verify.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..causal.graphs import CausalGraph, all_causal_paths, fit_linear_scm_weights, path_effect
from ..exceptions import ValidationError
from ..explanations.base import ExplainerInfo, ExplainerRegistry

__all__ = ["PathContribution", "CausalPathDecomposition", "CausalPathExplainer"]


@dataclass
class PathContribution:
    """Disparity share attributed to one causal path."""

    path: tuple[str, ...]
    contribution: float
    linear_effect: float

    def describe(self) -> str:
        """Human-readable one-line summary of this path's contribution."""
        chain = " -> ".join(self.path)
        return f"{chain}: {self.contribution:+.4f}"


@dataclass
class CausalPathDecomposition:
    """Decomposition of the model disparity over sensitive-to-outcome causal paths."""

    total_disparity: float
    direct_contribution: float
    paths: list[PathContribution]

    def ranked(self) -> list[PathContribution]:
        """Path contributions sorted by absolute effect, largest first."""
        return sorted(self.paths, key=lambda p: -abs(p.contribution))

    def explained_fraction(self) -> float:
        """Fraction of the total disparity explained by the enumerated paths + direct effect."""
        if self.total_disparity == 0:
            return 1.0
        covered = self.direct_contribution + sum(p.contribution for p in self.paths)
        return float(covered / self.total_disparity)


@ExplainerRegistry.register("causal_paths", capabilities=("fairness-explainer", "causal"),
                            data_requirements=("scm",), resource_requirements=("scm",))
class CausalPathExplainer:
    """Decompose model disparity over causal paths from the sensitive attribute.

    Parameters
    ----------
    model:
        Classifier under audit; its features are the graph's non-outcome nodes
        in ``feature_order``.
    graph:
        Causal DAG over the feature names (no explicit outcome node needed —
        the model plays that role).
    sensitive:
        Name of the sensitive node.
    feature_order:
        Mapping from graph node names to model feature columns.
    """

    info = ExplainerInfo(
        stage="post-hoc",
        access="black-box",
        agnostic=True,
        coverage="global",
        explanation_type="feature",
        multiplicity="multiple",
    )

    def __init__(
        self,
        model,
        graph: CausalGraph,
        *,
        sensitive: str,
        feature_order: Sequence[str],
    ) -> None:
        self.model = model
        self.graph = graph
        self.sensitive = sensitive
        self.feature_order = list(feature_order)
        if sensitive not in self.feature_order:
            raise ValidationError("sensitive node must be one of the model features")

    def _disparity(self, X: np.ndarray, sensitive_values: np.ndarray) -> float:
        predictions = np.asarray(self.model.predict(X)).astype(float)
        protected = sensitive_values == 1
        if protected.all() or (~protected).all():
            return 0.0
        return float(predictions[protected].mean() - predictions[~protected].mean())

    def _neutralize_mediator(
        self, X: np.ndarray, sensitive_values: np.ndarray, mediator: str
    ) -> np.ndarray:
        """Remove the group difference transmitted into ``mediator``.

        The mediator column is shifted so that both groups share the pooled
        group-conditional mean — equivalent to cutting the edge
        ``sensitive -> mediator`` in a linear system.
        """
        j = self.feature_order.index(mediator)
        modified = X.copy()
        protected = sensitive_values == 1
        pooled_mean = X[:, j].mean()
        for mask in (protected, ~protected):
            if mask.any():
                modified[mask, j] += pooled_mean - X[mask, j].mean()
        return modified

    def explain(self, X, data: dict[str, np.ndarray] | None = None) -> CausalPathDecomposition:
        """Decompose the disparity of ``model`` on ``X`` over causal paths.

        Parameters
        ----------
        X:
            Feature matrix with columns in ``feature_order``.
        data:
            Optional mapping of node name to values used to estimate linear
            edge weights (defaults to the columns of ``X``).
        """
        X = np.asarray(X, dtype=float)
        sensitive_values = X[:, self.feature_order.index(self.sensitive)].astype(int)
        total = self._disparity(X, sensitive_values)

        if data is None:
            data = {name: X[:, j] for j, name in enumerate(self.feature_order)}
        weights = fit_linear_scm_weights(self.graph, data)

        # Indirect paths go through the sensitive attribute's children.
        contributions: list[PathContribution] = []
        mediators = [c for c in self.graph.children(self.sensitive) if c in self.feature_order]
        accounted = 0.0
        for mediator in mediators:
            neutralized = self._neutralize_mediator(X, sensitive_values, mediator)
            disparity_without = self._disparity(neutralized, sensitive_values)
            contribution = total - disparity_without
            accounted += contribution
            # Distribute the mediator's contribution over the concrete paths
            # through it, proportionally to their linear effects.
            paths_through = [
                path
                for path in all_causal_paths(self.graph, self.sensitive, mediator)
                if len(path) == 2
            ]
            downstream_paths: list[tuple[str, ...]] = []
            for node in self.feature_order:
                if node in (self.sensitive, mediator):
                    continue
                for path in all_causal_paths(self.graph, mediator, node):
                    downstream_paths.append((self.sensitive, *path))
            all_paths = [(self.sensitive, mediator)] + downstream_paths
            effects = np.asarray([abs(path_effect(p, weights)) for p in all_paths])
            if effects.sum() == 0:
                shares = np.ones(len(all_paths)) / len(all_paths)
            else:
                shares = effects / effects.sum()
            for path, share in zip(all_paths, shares):
                contributions.append(
                    PathContribution(
                        path=path,
                        contribution=float(contribution * share),
                        linear_effect=path_effect(path, weights),
                    )
                )

        direct = total - accounted
        return CausalPathDecomposition(
            total_disparity=total, direct_contribution=float(direct), paths=contributions
        )
