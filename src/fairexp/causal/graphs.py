"""Causal DAG utilities: path enumeration and simple linear-SCM estimation.

The fairness-aware causal path decomposition method [82] attributes a model's
disparity to causal paths from the sensitive attribute to the outcome; these
helpers enumerate such paths and estimate linear edge weights from data when
no ground-truth SCM is available.
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx
import numpy as np

from ..exceptions import ValidationError

__all__ = [
    "CausalGraph",
    "all_causal_paths",
    "fit_linear_scm_weights",
    "path_effect",
]


class CausalGraph:
    """A thin wrapper over :class:`networkx.DiGraph` with validation and helpers."""

    def __init__(self, edges: Sequence[tuple[str, str]]) -> None:
        self.graph = nx.DiGraph()
        self.graph.add_edges_from(edges)
        if not nx.is_directed_acyclic_graph(self.graph):
            raise ValidationError("causal graph must be a DAG")

    @property
    def nodes(self) -> list[str]:
        """The graph's variable names."""
        return list(self.graph.nodes)

    @property
    def edges(self) -> list[tuple[str, str]]:
        """The directed edges as ``(parent, child)`` pairs."""
        return list(self.graph.edges)

    def parents(self, node: str) -> list[str]:
        """Direct parents of ``node``."""
        return list(self.graph.predecessors(node))

    def children(self, node: str) -> list[str]:
        """Direct children of ``node``."""
        return list(self.graph.successors(node))

    def descendants(self, node: str) -> set[str]:
        """Every variable reachable from ``node``."""
        return set(nx.descendants(self.graph, node))

    def ancestors(self, node: str) -> set[str]:
        """Every variable with a directed path into ``node``."""
        return set(nx.ancestors(self.graph, node))

    def topological_order(self) -> list[str]:
        """The variables in one topological order of the DAG."""
        return list(nx.topological_sort(self.graph))


def all_causal_paths(graph: CausalGraph, source: str, target: str) -> list[tuple[str, ...]]:
    """Return every directed path from ``source`` to ``target`` as a tuple of nodes."""
    if source not in graph.graph or target not in graph.graph:
        return []
    return [tuple(path) for path in nx.all_simple_paths(graph.graph, source, target)]


def fit_linear_scm_weights(
    graph: CausalGraph, data: dict[str, np.ndarray]
) -> dict[tuple[str, str], float]:
    """Estimate linear structural coefficients by per-node least squares.

    Each node is regressed on its parents; the returned mapping gives the
    coefficient attached to every edge ``(parent, child)``.
    """
    weights: dict[tuple[str, str], float] = {}
    for node in graph.topological_order():
        parents = graph.parents(node)
        if not parents:
            continue
        X = np.column_stack([np.asarray(data[p], dtype=float) for p in parents])
        y = np.asarray(data[node], dtype=float)
        design = np.column_stack([X, np.ones(X.shape[0])])
        coef, *_ = np.linalg.lstsq(design, y, rcond=None)
        for parent, value in zip(parents, coef[:-1]):
            weights[(parent, node)] = float(value)
    return weights


def path_effect(path: tuple[str, ...], weights: dict[tuple[str, str], float]) -> float:
    """Product of edge coefficients along a path (the path-specific linear effect)."""
    effect = 1.0
    for parent, child in zip(path[:-1], path[1:]):
        effect *= weights.get((parent, child), 0.0)
    return float(effect)
