"""Tests for the pluggable predict backends and their adapter integration."""

import numpy as np
import pytest

from fairexp.explanations import (
    BatchModelAdapter,
    CallablePredictBackend,
    MemoizingPredictBackend,
    NumpyPredictBackend,
    ensure_backend,
)


class _CountingModel:
    """Minimal model: predicts 1 when the first feature is positive."""

    def __init__(self):
        self.n_predict = 0

    def predict(self, X):
        self.n_predict += 1
        return (np.asarray(X)[:, 0] > 0).astype(int)


@pytest.fixture
def X():
    rng = np.random.default_rng(0)
    return rng.normal(size=(12, 4))


class TestNumpyPredictBackend:
    def test_counts_calls_and_rows(self, X):
        backend = NumpyPredictBackend(_CountingModel())
        backend.predict(X)
        backend.predict(X[:5])
        assert backend.call_count == 2
        assert backend.row_count == 17
        assert backend.cache_hit_count == 0

    def test_predictions_match_model(self, X):
        model = _CountingModel()
        backend = NumpyPredictBackend(model)
        assert np.array_equal(backend.predict(X), (X[:, 0] > 0).astype(int))

    def test_reset_counts(self, X):
        backend = NumpyPredictBackend(_CountingModel())
        backend.predict(X)
        backend.reset_counts()
        assert backend.call_count == 0
        assert backend.row_count == 0

    def test_raising_predict_does_not_count(self, X):
        """A dispatch that raises (a remote scorer timeout, a worker crash)
        must not inflate the accounting: only successful dispatches count,
        so a caller retrying the batch is not double-counted."""

        class FlakyModel:
            def __init__(self):
                self.attempts = 0

            def predict(self, Z):
                self.attempts += 1
                if self.attempts == 1:
                    raise TimeoutError("scorer timed out")
                return np.zeros(np.atleast_2d(Z).shape[0], dtype=int)

        backend = NumpyPredictBackend(FlakyModel())
        with pytest.raises(TimeoutError):
            backend.predict(X)
        assert backend.call_count == 0
        assert backend.row_count == 0
        backend.predict(X)  # the retry succeeds and is counted exactly once
        assert backend.call_count == 1
        assert backend.row_count == X.shape[0]


class TestCallablePredictBackend:
    def test_wraps_bare_function(self, X):
        backend = CallablePredictBackend(lambda Z: (Z[:, 0] > 0).astype(int),
                                         name="remote-scorer")
        assert backend.name == "remote-scorer"
        assert np.array_equal(backend.predict(X), (X[:, 0] > 0).astype(int))
        assert backend.call_count == 1

    def test_slots_into_adapter_without_a_model(self, X):
        backend = CallablePredictBackend(lambda Z: np.zeros(Z.shape[0], dtype=int))
        adapter = BatchModelAdapter(backend=backend, cache=False)
        assert np.array_equal(adapter.predict(X), np.zeros(12, dtype=int))
        assert adapter.predict_call_count == 1
        # No wrapped model: attribute passthrough must fail cleanly, keeping
        # hasattr-based capability checks honest.
        assert not hasattr(adapter, "gradient_input")


class TestMemoizingPredictBackend:
    def test_serves_repeats_from_memo(self, X):
        inner = NumpyPredictBackend(_CountingModel())
        backend = MemoizingPredictBackend(inner)
        first = backend.predict(X)
        second = backend.predict(X)
        assert np.array_equal(first, second)
        assert backend.call_count == 1          # delegated to inner
        assert backend.cache_hit_count == 1

    def test_routing_equivalence_memoized_vs_plain(self, X):
        """Backend-routing equivalence: identical predictions, fewer forwarded
        calls through the memoizing wrapper (the satellite acceptance check)."""
        model = _CountingModel()
        plain = NumpyPredictBackend(model)
        memo = MemoizingPredictBackend(NumpyPredictBackend(model))
        batches = [X, X[:6], X, X[:6], X]
        plain_out = [plain.predict(batch) for batch in batches]
        memo_out = [memo.predict(batch) for batch in batches]
        for a, b in zip(plain_out, memo_out):
            assert np.array_equal(a, b)
        assert plain.call_count == len(batches)
        assert memo.call_count == 2             # one per distinct matrix
        assert memo.cache_hit_count == 3

    def test_large_matrices_bypass_memo(self, X):
        backend = MemoizingPredictBackend(NumpyPredictBackend(_CountingModel()),
                                          max_rows=4)
        backend.predict(X)
        backend.predict(X)
        assert backend.call_count == 2
        assert backend.cache_hit_count == 0

    def test_memo_cleared_at_capacity(self, X):
        backend = MemoizingPredictBackend(NumpyPredictBackend(_CountingModel()),
                                          max_entries=2)
        for k in range(4):
            backend.predict(X + k)
        backend.predict(X + 3)  # still memoized (inserted after the clear)
        assert backend.cache_hit_count == 1

    def test_reset_clears_memo_and_inner(self, X):
        backend = MemoizingPredictBackend(NumpyPredictBackend(_CountingModel()))
        backend.predict(X)
        backend.predict(X)
        backend.reset_counts()
        assert backend.call_count == 0
        assert backend.cache_hit_count == 0
        backend.predict(X)
        assert backend.call_count == 1          # memo was dropped


class TestEnsureBackend:
    def test_backend_passthrough(self):
        backend = NumpyPredictBackend(_CountingModel())
        assert ensure_backend(backend) is backend

    def test_model_is_wrapped(self):
        backend = ensure_backend(_CountingModel())
        assert isinstance(backend, NumpyPredictBackend)

    def test_third_party_flag_respected(self, X):
        class OnnxLike:
            is_predict_backend = True
            name = "onnx"
            call_count = row_count = 0

            def predict(self, Z):
                return np.ones(np.atleast_2d(Z).shape[0], dtype=int)

            def reset_counts(self):
                pass

        backend = OnnxLike()
        assert ensure_backend(backend) is backend
        adapter = BatchModelAdapter(backend=backend, cache=False)
        assert np.array_equal(adapter.predict(X), np.ones(12, dtype=int))


class TestAdapterBackendIntegration:
    def test_adapter_counters_delegate_to_backend(self, X):
        backend = NumpyPredictBackend(_CountingModel())
        adapter = BatchModelAdapter(backend=backend, cache=False)
        adapter.predict(X)
        assert adapter.predict_call_count == backend.call_count == 1
        assert adapter.predict_row_count == backend.row_count == 12

    def test_cache_flag_builds_memo_stack(self, X):
        adapter = BatchModelAdapter(_CountingModel(), cache=True)
        adapter.predict(X)
        adapter.predict(X)
        assert adapter.predict_call_count == 1
        assert adapter.cache_hit_count == 1
