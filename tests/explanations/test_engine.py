"""Tests for the batched counterfactual engine, adapter and explainer registry."""

import numpy as np
import pytest

from fairexp.datasets import make_loan_dataset
from fairexp.exceptions import InfeasibleRecourseError
from fairexp.explanations import (
    ActionabilityConstraints,
    BatchModelAdapter,
    CounterfactualEngine,
    ExplainerRegistry,
    GradientCounterfactual,
    GrowingSpheresCounterfactual,
    RandomSearchCounterfactual,
)
from fairexp.models import LogisticRegression


@pytest.fixture(scope="module")
def loan_workload():
    dataset = make_loan_dataset(500, direct_bias=1.2, recourse_gap=1.0, random_state=0)
    train, test = dataset.split(test_size=0.3, random_state=1)
    model = LogisticRegression(n_iter=1000, random_state=0).fit(train.X, train.y)
    constraints = ActionabilityConstraints.from_feature_specs(dataset.features)
    rejected = test.X[model.predict(test.X) == 0][:25]
    return model, train.X, constraints, rejected


class TestBatchModelAdapter:
    def test_counts_forwarded_calls_and_rows(self, loan_workload):
        model, _, _, rejected = loan_workload
        adapter = BatchModelAdapter(model, cache=False)
        adapter.predict(rejected)
        adapter.predict(rejected[:5])
        assert adapter.predict_call_count == 2
        assert adapter.predict_row_count == rejected.shape[0] + 5

    def test_predictions_match_wrapped_model(self, loan_workload):
        model, _, _, rejected = loan_workload
        adapter = BatchModelAdapter(model)
        assert np.array_equal(adapter.predict(rejected), model.predict(rejected))

    def test_cache_serves_repeated_matrices(self, loan_workload):
        model, _, _, rejected = loan_workload
        adapter = BatchModelAdapter(model, cache=True)
        first = adapter.predict(rejected)
        second = adapter.predict(rejected)
        assert adapter.predict_call_count == 1
        assert adapter.cache_hit_count == 1
        assert np.array_equal(first, second)

    def test_reset_counts(self, loan_workload):
        model, _, _, rejected = loan_workload
        adapter = BatchModelAdapter(model)
        adapter.predict(rejected)
        adapter.reset_counts()
        assert adapter.predict_call_count == 0
        assert adapter.predict_row_count == 0

    def test_attribute_passthrough(self, loan_workload):
        model, _, _, _ = loan_workload
        adapter = BatchModelAdapter(model)
        assert hasattr(adapter, "gradient_input")
        assert np.array_equal(np.asarray(adapter.coef_), np.asarray(model.coef_))


class TestBatchParity:
    """Fixed-seed regression: the engine path reproduces the sequential path."""

    @pytest.mark.parametrize("generator_cls", [
        RandomSearchCounterfactual, GrowingSpheresCounterfactual,
    ])
    def test_sampling_generators_bitwise_identical(self, generator_cls, loan_workload):
        model, background, constraints, rejected = loan_workload
        generator = generator_cls(model, background, constraints=constraints, random_state=0)
        sequential = [generator.generate(row) for row in rejected]
        batched = generator.generate_batch_aligned(rejected)
        assert len(batched) == len(sequential)
        for seq, bat in zip(sequential, batched):
            assert bat is not None
            assert np.array_equal(seq.counterfactual, bat.counterfactual)
            assert seq.changed_features == bat.changed_features
            assert seq.distance == bat.distance
            assert seq.original_prediction == bat.original_prediction
            assert seq.counterfactual_prediction == bat.counterfactual_prediction
            assert seq.feasible == bat.feasible

    def test_gradient_generator_matches_to_float_associativity(self, loan_workload):
        # Batched mat-vec products differ from single-row ones in the last
        # ulp, which the gradient trajectory amplifies to ~1e-13 — still far
        # below any quantity the fairness audits report.
        model, background, constraints, rejected = loan_workload
        generator = GradientCounterfactual(model, background, constraints=constraints,
                                           random_state=0)
        sequential = []
        for row in rejected:
            try:
                sequential.append(generator.generate(row))
            except InfeasibleRecourseError:
                sequential.append(None)
        batched = generator.generate_batch_aligned(rejected)
        assert any(result is not None for result in sequential)
        for seq, bat in zip(sequential, batched):
            assert (seq is None) == (bat is None)
            if seq is None:
                continue
            np.testing.assert_allclose(bat.counterfactual, seq.counterfactual, atol=1e-9)
            assert seq.changed_features == bat.changed_features
            assert seq.counterfactual_prediction == bat.counterfactual_prediction

    def test_batch_issues_fewer_predict_calls(self, loan_workload):
        model, background, constraints, rejected = loan_workload
        sequential_adapter = BatchModelAdapter(model, cache=False)
        generator = GrowingSpheresCounterfactual(sequential_adapter, background,
                                                 constraints=constraints, random_state=0)
        for row in rejected:
            generator.generate(row)
        batch_adapter = BatchModelAdapter(model, cache=False)
        generator = GrowingSpheresCounterfactual(batch_adapter, background,
                                                 constraints=constraints, random_state=0)
        generator.generate_batch_aligned(rejected)
        assert sequential_adapter.predict_call_count >= 5 * batch_adapter.predict_call_count

    def test_sparsify_batched_predict_preserves_greedy_result(self, loan_workload):
        # The batched _sparsify must reproduce the one-predict-per-feature
        # greedy loop exactly, including the path-dependent accept/reject
        # decisions.
        model, background, constraints, rejected = loan_workload
        generator = GrowingSpheresCounterfactual(model, background, constraints=constraints,
                                                 random_state=0)
        x = rejected[0]
        candidate = generator.constraints.project(x, x + 2.5 * generator.scale_)

        reference = candidate.copy()
        changed = np.flatnonzero(~np.isclose(reference, x))
        order = changed[np.argsort(np.abs((reference - x) / generator.scale_)[changed])]
        for j in order:
            trial = reference.copy()
            trial[j] = x[j]
            if int(np.asarray(model.predict(trial[None]))[0]) == generator.target_class:
                reference = trial
        assert np.array_equal(generator._sparsify(x, candidate), reference)


class TestCounterfactualEngine:
    def test_wraps_model_once_and_counts(self, loan_workload):
        model, background, constraints, rejected = loan_workload
        generator = GrowingSpheresCounterfactual(model, background, constraints=constraints,
                                                 random_state=0)
        engine = CounterfactualEngine(generator)
        assert isinstance(generator.model, BatchModelAdapter)
        again = CounterfactualEngine(generator)
        assert again.adapter is engine.adapter  # shared, not double-wrapped
        engine.generate_aligned(rejected[:4])
        assert engine.predict_call_count > 0

    def test_generate_for_keys_results_by_row_index(self, loan_workload):
        model, background, constraints, rejected = loan_workload
        generator = GrowingSpheresCounterfactual(model, background, constraints=constraints,
                                                 random_state=0)
        engine = CounterfactualEngine(generator)
        indices = np.array([3, 7, 11])
        results = engine.generate_for(rejected, indices)
        assert set(results) <= set(int(i) for i in indices)
        for i, counterfactual in results.items():
            assert np.array_equal(counterfactual.original, rejected[i])

    def test_generate_for_dedupes_duplicate_indices(self, loan_workload):
        """A duplicated index must trigger (and pay for) exactly one search
        of that row — matching AuditSession.counterfactuals_for, which
        already dedupes while preserving order."""
        model, background, constraints, rejected = loan_workload
        generator = GrowingSpheresCounterfactual(model, background, constraints=constraints,
                                                 random_state=0)
        engine = CounterfactualEngine(generator)
        searched_rows: list[int] = []
        original = engine.generate_aligned

        def spying_generate_aligned(X):
            searched_rows.append(np.atleast_2d(X).shape[0])
            return original(X)

        engine.generate_aligned = spying_generate_aligned
        duplicated = engine.generate_for(rejected, np.array([3, 7, 3, 11, 7, 3]))
        assert searched_rows == [3]  # one search per DISTINCT row
        engine.generate_aligned = original
        reference = engine.generate_for(rejected, np.array([3, 7, 11]))
        assert set(duplicated) == set(reference)
        for i in reference:
            assert np.array_equal(duplicated[i].counterfactual,
                                  reference[i].counterfactual)

    def test_generate_for_empty_indices(self, loan_workload):
        model, background, constraints, rejected = loan_workload
        generator = GrowingSpheresCounterfactual(model, background, constraints=constraints,
                                                 random_state=0)
        assert CounterfactualEngine(generator).generate_for(rejected, np.array([], int)) == {}

    def test_invalid_executor_rejected(self, loan_workload):
        from fairexp.exceptions import ValidationError

        model, background, constraints, _ = loan_workload
        generator = GrowingSpheresCounterfactual(model, background, constraints=constraints,
                                                 random_state=0)
        with pytest.raises(ValidationError):
            CounterfactualEngine(generator, executor="fibers")


def _assert_same_results(sequential, other):
    assert len(sequential) == len(other)
    for seq, alt in zip(sequential, other):
        assert (seq is None) == (alt is None)
        if seq is None:
            continue
        assert np.array_equal(seq.counterfactual, alt.counterfactual)
        assert seq.changed_features == alt.changed_features
        assert seq.distance == alt.distance


class TestProcessExecutor:
    """Process-based sharding: picklable shard specs, bitwise merges,
    GIL-aware auto-selection, and graceful fallbacks."""

    def test_process_shards_bitwise_equal_to_sequential(self, loan_workload):
        model, background, constraints, rejected = loan_workload
        make = lambda: GrowingSpheresCounterfactual(  # noqa: E731
            model, background, constraints=constraints, random_state=0
        )
        sequential = CounterfactualEngine(make(), n_jobs=1).generate_aligned(rejected)
        engine = CounterfactualEngine(make(), n_jobs=2, executor="process")
        _assert_same_results(sequential, engine.generate_aligned(rejected))

    def test_process_shards_absorb_worker_predict_counts(self, loan_workload):
        model, background, constraints, rejected = loan_workload
        generator = GrowingSpheresCounterfactual(model, background, constraints=constraints,
                                                 random_state=0)
        engine = CounterfactualEngine(generator, n_jobs=2, executor="process")
        engine.generate_aligned(rejected[:8])
        assert engine.predict_call_count > 0

    def test_auto_uses_threads_for_gil_releasing_backends(self, loan_workload):
        model, background, constraints, _ = loan_workload
        generator = GrowingSpheresCounterfactual(model, background, constraints=constraints,
                                                 random_state=0)
        engine = CounterfactualEngine(generator, n_jobs=2)
        assert engine._resolve_executor() == "thread"

    def test_auto_uses_processes_for_gil_holding_backends(self, loan_workload):
        from fairexp.explanations import CallablePredictBackend

        model, background, constraints, _ = loan_workload
        backend = CallablePredictBackend(model.predict)  # releases_gil=False
        adapted = BatchModelAdapter(model, backend=backend, cache=False)
        generator = GrowingSpheresCounterfactual(adapted, background,
                                                 constraints=constraints, random_state=0)
        engine = CounterfactualEngine(generator, n_jobs=2)
        assert engine._resolve_executor() == "process"

    def test_gil_holding_backend_process_run_matches_sequential(self, loan_workload):
        from fairexp.explanations import CallablePredictBackend

        model, background, constraints, rejected = loan_workload
        sequential = CounterfactualEngine(
            GrowingSpheresCounterfactual(model, background, constraints=constraints,
                                         random_state=0),
            n_jobs=1,
        ).generate_aligned(rejected[:10])
        backend = CallablePredictBackend(model.predict)
        adapted = BatchModelAdapter(model, backend=backend, cache=False)
        generator = GrowingSpheresCounterfactual(adapted, background,
                                                 constraints=constraints, random_state=0)
        engine = CounterfactualEngine(generator, n_jobs=2)  # auto -> process
        _assert_same_results(sequential, engine.generate_aligned(rejected[:10]))

    def test_process_workers_honour_custom_callable_backend(self, loan_workload):
        """The shard spec must ship the callable's decision boundary, not the
        bare model's: when they disagree (an out-of-date export, a remote
        model version skew), the process-sharded results must match the
        sequential results under the SAME callable."""
        from fairexp.datasets import make_loan_dataset
        from fairexp.explanations import CallablePredictBackend
        from fairexp.models import LogisticRegression

        model, background, constraints, rejected = loan_workload
        # A genuinely different predictor standing in for "the export".
        other_dataset = make_loan_dataset(400, direct_bias=0.0, recourse_gap=0.0,
                                          random_state=7)
        other_model = LogisticRegression(n_iter=400, random_state=7).fit(
            other_dataset.X, other_dataset.y
        )
        assert not np.array_equal(model.predict(rejected), other_model.predict(rejected))

        def build(n_jobs, executor):
            backend = CallablePredictBackend(other_model.predict)
            adapted = BatchModelAdapter(model, backend=backend, cache=False)
            generator = GrowingSpheresCounterfactual(
                adapted, background, constraints=constraints, random_state=0
            )
            return CounterfactualEngine(generator, n_jobs=n_jobs, executor=executor)

        sequential = build(1, "thread").generate_aligned(rejected[:10])
        sharded = build(2, "process").generate_aligned(rejected[:10])
        _assert_same_results(sequential, sharded)
        # And every counterfactual flips the class under the CALLABLE.
        found = [r for r in sharded if r is not None]
        assert found, "workload produced no counterfactuals to check"
        for result in found:
            assert int(other_model.predict(result.counterfactual[None, :])[0]) == 1

    def test_unpicklable_spec_falls_back_to_threads(self, loan_workload):
        from fairexp.explanations import CallablePredictBackend

        model, background, constraints, rejected = loan_workload
        # A closure-based backend with no reachable bare model cannot be
        # shipped to workers; the engine must still produce correct results.
        backend = CallablePredictBackend(lambda X: model.predict(X))
        adapted = BatchModelAdapter(backend=backend, cache=False)
        generator = GrowingSpheresCounterfactual(adapted, background,
                                                 constraints=constraints, random_state=0)
        engine = CounterfactualEngine(generator, n_jobs=2, executor="process")
        sequential = CounterfactualEngine(
            GrowingSpheresCounterfactual(model, background, constraints=constraints,
                                         random_state=0),
            n_jobs=1,
        ).generate_aligned(rejected[:8])
        _assert_same_results(sequential, engine.generate_aligned(rejected[:8]))

    def test_worker_pool_failure_falls_back_to_threads(self, loan_workload,
                                                       monkeypatch):
        """A pool that breaks at run time (spawn-method rebuild failures,
        BrokenProcessPool) must degrade to thread shards, not crash audits."""
        from fairexp.explanations import engine as engine_module
        from fairexp.explanations.pool import ExecutorPool

        real_map = ExecutorPool.map

        def exploding_map(self, kind, fn, *iterables):
            if kind == "process":
                raise RuntimeError("worker bootstrap failed")
            return real_map(self, kind, fn, *iterables)

        monkeypatch.setattr(engine_module.ExecutorPool, "map", exploding_map)
        model, background, constraints, rejected = loan_workload
        sequential = CounterfactualEngine(
            GrowingSpheresCounterfactual(model, background, constraints=constraints,
                                         random_state=0),
            n_jobs=1,
        ).generate_aligned(rejected[:6])
        engine = CounterfactualEngine(
            GrowingSpheresCounterfactual(model, background, constraints=constraints,
                                         random_state=0),
            n_jobs=2, executor="process",
        )
        _assert_same_results(sequential, engine.generate_aligned(rejected[:6]))

    def test_shared_stream_generator_stays_sequential(self, loan_workload):
        model, background, constraints, rejected = loan_workload
        generator = GrowingSpheresCounterfactual(
            model, background, constraints=constraints,
            random_state=np.random.default_rng(0),
        )
        engine = CounterfactualEngine(generator, n_jobs=4, executor="process")
        assert engine._resolve_n_jobs(rejected.shape[0]) == 1


class TestExplainerRegistry:
    def test_generators_registered_with_capability(self):
        names = {e.name for e in ExplainerRegistry.with_capability("counterfactual-generator")}
        assert {"random_search", "growing_spheres", "gradient"} <= names

    def test_core_fairness_explainers_registered(self):
        import fairexp.core  # registration happens at import time  # noqa: F401

        names = set(ExplainerRegistry.names())
        assert {"burden", "nawb", "precof", "globe_ce", "recourse_sets", "facts"} <= names

    def test_get_returns_class_and_sets_registry_name(self):
        assert ExplainerRegistry.get("growing_spheres") is GrowingSpheresCounterfactual
        assert GrowingSpheresCounterfactual.registry_name == "growing_spheres"

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            ExplainerRegistry.get("does-not-exist")

    def test_resolve_path(self):
        resolved = ExplainerRegistry.resolve_path(
            "explanations.counterfactual.GrowingSpheresCounterfactual"
        )
        assert resolved is GrowingSpheresCounterfactual
        assert ExplainerRegistry.resolve_path("no.such.Thing") is None

    def test_entries_carry_info(self):
        entry = ExplainerRegistry.entry("gradient")
        assert entry.info is not None
        assert entry.info.access == "gradient"
        assert "requires-gradient" in entry.capabilities
