"""The docs are executable: every snippet runs, every link resolves.

``docs/api/*.md`` and ``docs/architecture.md`` are the public API surface's
reference pages.  Two guarantees keep them truthful:

* every fenced ``python`` block on a page executes cleanly, top to bottom,
  in one shared namespace per page (snippets may build on earlier ones) —
  a doctest-style check without doctest's output-matching brittleness,
  since the snippets carry their own ``assert``s;
* every relative markdown link in README and the docs tree points at a file
  that exists, and every in-page anchor at a heading that exists.
"""

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
DOC_PAGES = sorted((REPO_ROOT / "docs").rglob("*.md"))
LINK_SOURCES = [REPO_ROOT / "README.md", *DOC_PAGES]

FENCED_PYTHON = re.compile(r"```python\n(.*?)```", re.DOTALL)
MARKDOWN_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def test_docs_pages_exist():
    names = {page.relative_to(REPO_ROOT).as_posix() for page in DOC_PAGES}
    assert {"docs/architecture.md", "docs/api/session.md", "docs/api/engine.md",
            "docs/api/schedules.md", "docs/api/kernels.md", "docs/api/pool.md",
            "docs/api/backends.md", "docs/api/store.md",
            "docs/api/sweep.md", "docs/api/lint.md"} <= names


@pytest.mark.parametrize(
    "page", [p for p in DOC_PAGES if FENCED_PYTHON.search(p.read_text())],
    ids=lambda p: p.relative_to(REPO_ROOT).as_posix(),
)
def test_page_snippets_execute(page):
    snippets = FENCED_PYTHON.findall(page.read_text())
    assert snippets, f"{page} advertises runnable snippets but has none"
    namespace: dict = {"__name__": f"docs_snippet_{page.stem}"}
    for position, snippet in enumerate(snippets, start=1):
        try:
            exec(compile(snippet, f"{page}:snippet{position}", "exec"), namespace)
        except Exception as error:  # pragma: no cover - failure reporting
            pytest.fail(
                f"{page.relative_to(REPO_ROOT)} snippet #{position} raised "
                f"{type(error).__name__}: {error}\n---\n{snippet}"
            )


def _github_anchor(heading: str) -> str:
    """GitHub's heading -> anchor slug (enough of it for our own pages)."""
    slug = heading.strip().lower()
    slug = re.sub(r"[`*_]", "", slug)
    slug = re.sub(r"[^\w\s-]", "", slug, flags=re.UNICODE)
    return re.sub(r"\s+", "-", slug.strip())


def _anchors(page: Path) -> set[str]:
    return {
        _github_anchor(line.lstrip("#"))
        for line in page.read_text().splitlines()
        if line.startswith("#")
    }


@pytest.mark.parametrize("source", LINK_SOURCES,
                         ids=lambda p: p.relative_to(REPO_ROOT).as_posix())
def test_relative_links_resolve(source):
    broken = []
    for target in MARKDOWN_LINK.findall(source.read_text()):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, anchor = target.partition("#")
        resolved = (source.parent / path_part).resolve() if path_part else source
        if not resolved.exists():
            broken.append(f"{target} (missing file)")
            continue
        if anchor and resolved.suffix == ".md" and anchor not in _anchors(resolved):
            broken.append(f"{target} (missing anchor)")
    assert not broken, f"{source.relative_to(REPO_ROOT)} has broken links: {broken}"
