"""Batched counterfactual engine: predict-call reduction on the E1/E2 workload.

Verifies the engine acceptance criterion: with a fixed ``random_state`` the
engine-backed ``generate_batch`` produces the same counterfactuals as the
sequential per-instance path on the E1/E2 burden workload while issuing at
least 5x fewer ``model.predict`` calls (counted by
:class:`~fairexp.explanations.BatchModelAdapter`).
"""

import numpy as np

from conftest import record

from fairexp.datasets import make_loan_dataset
from fairexp.explanations import (
    ActionabilityConstraints,
    BatchModelAdapter,
    ExplainerRegistry,
    GrowingSpheresCounterfactual,
)
from fairexp.models import LogisticRegression


def _burden_workload(n_samples=600, audit_size=80):
    dataset = make_loan_dataset(n_samples, direct_bias=1.2, recourse_gap=1.0, random_state=0)
    train, test = dataset.split(test_size=0.3, random_state=1)
    model = LogisticRegression(n_iter=1200, random_state=0).fit(train.X, train.y)
    constraints = ActionabilityConstraints.from_feature_specs(dataset.features)
    subset = test.subset(np.arange(min(audit_size, test.n_samples)))
    rejected = subset.X[model.predict(subset.X) == 0]
    return model, train, constraints, rejected


def test_engine_matches_sequential_with_fewer_predict_calls(benchmark):
    model, train, constraints, rejected = _burden_workload()

    # Sequential per-instance path (the seed implementation's access pattern).
    sequential_adapter = BatchModelAdapter(model, cache=False)
    sequential_generator = GrowingSpheresCounterfactual(
        sequential_adapter, train.X, constraints=constraints, random_state=0
    )
    sequential = [sequential_generator.generate(row) for row in rejected]

    # Engine path: one lockstep batch over all instances.
    batch_adapter = BatchModelAdapter(model, cache=False)
    batch_generator = GrowingSpheresCounterfactual(
        batch_adapter, train.X, constraints=constraints, random_state=0
    )
    batched = benchmark.pedantic(
        lambda: batch_generator.generate_batch_aligned(rejected), rounds=1, iterations=1,
    )

    assert len(batched) == len(sequential)
    for seq, bat in zip(sequential, batched):
        assert bat is not None
        assert np.array_equal(seq.counterfactual, bat.counterfactual)
        assert seq.changed_features == bat.changed_features
        assert seq.distance == bat.distance
        assert seq.counterfactual_prediction == bat.counterfactual_prediction

    # >=5x fewer model.predict invocations (the engine acceptance criterion).
    batch_calls = batch_adapter.predict_call_count
    assert sequential_adapter.predict_call_count >= 5 * batch_calls
    record(benchmark, {
        "n_instances": len(rejected),
        "sequential_predict_calls": sequential_adapter.predict_call_count,
        "batched_predict_calls": batch_calls,
        "reduction_factor": sequential_adapter.predict_call_count / max(batch_calls, 1),
    }, adapter=batch_adapter, experiment="ENGINE")


def test_registered_generators_reduce_predict_calls(benchmark):
    """Every registered generator's batch kernel beats its sequential path."""
    model, train, constraints, rejected = _burden_workload(n_samples=400, audit_size=40)
    reductions = {}

    def run_all():
        for entry in ExplainerRegistry.with_capability("counterfactual-generator"):
            sequential_adapter = BatchModelAdapter(model, cache=False)
            generator = entry.obj(sequential_adapter, train.X, constraints=constraints,
                                  random_state=0)
            for row in rejected:
                generator.generate(row)
            batch_adapter = BatchModelAdapter(model, cache=False)
            generator = entry.obj(batch_adapter, train.X, constraints=constraints,
                                  random_state=0)
            generator.generate_batch_aligned(rejected)
            reductions[entry.name] = (
                sequential_adapter.predict_call_count / max(batch_adapter.predict_call_count, 1)
            )
        return reductions

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    for name, reduction in reductions.items():
        assert reduction >= 5.0, f"{name}: only {reduction:.1f}x fewer predict calls"
    record(benchmark, {f"reduction_{name}": value for name, value in reductions.items()},
           experiment="ENGINE_ABLATION")
