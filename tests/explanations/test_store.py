"""Tests for the persistent counterfactual store and its session integration.

Covers the PR's store edge-case checklist: fingerprint sensitivity (what
busts the cache), corruption fallback (a damaged manifest or payload is a
miss, not an error), concurrent same-fingerprint writers (atomic publishes
never interleave), and LRU eviction under the entry/byte bounds.
"""

import json
import os
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from fairexp.core import BurdenExplainer, NAWBExplainer
from fairexp.datasets import make_loan_dataset
from fairexp.explanations import (
    ActionabilityConstraints,
    AuditSession,
    Counterfactual,
    CounterfactualStore,
    GrowingSpheresCounterfactual,
    model_signature,
    population_fingerprint,
)
from fairexp.models import LogisticRegression

SRC_DIR = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "src")


def _module_scorer(X):
    """Module-level stand-in for a hand-written scoring function."""
    return np.zeros(np.atleast_2d(X).shape[0], dtype=int)


def _module_scorer_edited(X):
    """The 'edited' body the code-sensitivity test swaps in."""
    return np.ones(np.atleast_2d(X).shape[0], dtype=int)


def _module_scorer_with_inner(X):
    """Scorer whose inner lambda puts a code object into co_consts."""
    threshold = (lambda rows: rows * 0)(np.atleast_2d(X).shape[0])
    return np.full(np.atleast_2d(X).shape[0], threshold, dtype=int)


@pytest.fixture(scope="module")
def loan_workload():
    dataset = make_loan_dataset(400, direct_bias=1.2, recourse_gap=1.0, random_state=0)
    train, test = dataset.split(test_size=0.3, random_state=1)
    model = LogisticRegression(n_iter=800, random_state=0).fit(train.X, train.y)
    constraints = ActionabilityConstraints.from_feature_specs(dataset.features)
    subset = test.subset(np.arange(min(50, test.n_samples)))
    return dataset, train, subset, model, constraints


def _generator(model, train, constraints, **kwargs):
    params = dict(constraints=constraints, random_state=0)
    params.update(kwargs)
    return GrowingSpheresCounterfactual(model, train.X, **params)


def _some_results(n_features=3):
    counterfactual = Counterfactual(
        original=np.arange(n_features, dtype=float),
        counterfactual=np.arange(n_features, dtype=float) + [1.0, 0.0, 0.0],
        original_prediction=0,
        counterfactual_prediction=1,
        changed_features=(0,),
        distance=1.25,
        feasible=True,
    )
    return {3: counterfactual, 7: None}


class TestRoundTrip:
    def test_save_load_preserves_results_and_infeasible_rows(self, tmp_path):
        store = CounterfactualStore(tmp_path)
        store.save("f" * 64, _some_results(), n_features=3)
        loaded = store.load("f" * 64)
        assert set(loaded) == {3, 7}
        assert loaded[7] is None
        original = _some_results()[3]
        assert np.array_equal(loaded[3].counterfactual, original.counterfactual)
        assert np.array_equal(loaded[3].original, original.original)
        assert loaded[3].changed_features == (0,)
        assert loaded[3].distance == original.distance
        assert loaded[3].original_prediction == 0
        assert loaded[3].counterfactual_prediction == 1
        assert loaded[3].feasible is True

    def test_missing_entry_is_a_miss(self, tmp_path):
        store = CounterfactualStore(tmp_path)
        assert store.load("0" * 64) is None
        assert store.stats()["store_misses"] == 1

    def test_merge_grows_an_entry_incrementally(self, tmp_path):
        store = CounterfactualStore(tmp_path)
        results = _some_results()
        store.save("a" * 64, {3: results[3]}, n_features=3)
        store.save("a" * 64, {7: None}, n_features=3)
        assert set(store.load("a" * 64)) == {3, 7}

    def test_empty_save_is_a_noop(self, tmp_path):
        store = CounterfactualStore(tmp_path)
        store.save("b" * 64, {}, n_features=3)
        assert store.entries() == []

    def test_meta_survives_round_trip(self, tmp_path):
        store = CounterfactualStore(tmp_path)
        results = _some_results()
        results[3].meta["search_steps"] = 4
        store.save("e" * 64, results, n_features=3)
        loaded = store.load("e" * 64)
        assert loaded[3].meta == {"search_steps": 4}
        assert loaded[7] is None

    def test_unserializable_meta_skips_persistence(self, tmp_path):
        """Meta the store cannot round-trip faithfully must not be persisted
        at all: a miss-and-recompute is safe, a silently stripped meta isn't."""
        store = CounterfactualStore(tmp_path)
        results = _some_results()
        results[3].meta["trace"] = object()
        store.save("f0" * 32, results, n_features=3)
        assert store.entries() == []
        assert store.load("f0" * 32) is None

    def test_full_disk_degrades_to_skipped_publish(self, tmp_path, monkeypatch):
        """A full or unwritable store volume must not abort an audit whose
        results are already in memory — the publish is simply skipped."""
        import errno
        import pathlib

        store = CounterfactualStore(tmp_path)

        def disk_full(self, data):
            raise OSError(errno.ENOSPC, "No space left on device")

        monkeypatch.setattr(pathlib.Path, "write_bytes", disk_full)
        store.save("aa" * 32, _some_results(), n_features=3)  # must not raise
        assert store.entries() == []

    def test_meta_with_nonstring_keys_skips_persistence(self, tmp_path):
        """json.dumps coerces int keys to strings without raising; meta that
        would come back changed must not be persisted either."""
        store = CounterfactualStore(tmp_path)
        results = _some_results()
        results[3].meta[7] = "int-keyed"
        store.save("f1" * 32, results, n_features=3)
        assert store.entries() == []


class TestFingerprint:
    def test_same_configuration_same_fingerprint(self, loan_workload):
        _, train, subset, model, constraints = loan_workload
        first = population_fingerprint(_generator(model, train, constraints), subset.X)
        second = population_fingerprint(_generator(model, train, constraints), subset.X)
        assert first == second

    def test_population_change_busts_fingerprint(self, loan_workload):
        _, train, subset, model, constraints = loan_workload
        generator = _generator(model, train, constraints)
        base = population_fingerprint(generator, subset.X)
        assert population_fingerprint(generator, subset.X[:-1]) != base
        shifted = subset.X.copy()
        shifted[0, 0] += 1.0
        assert population_fingerprint(generator, shifted) != base

    def test_refit_busts_fingerprint(self, loan_workload):
        dataset, train, subset, model, constraints = loan_workload
        base = population_fingerprint(_generator(model, train, constraints), subset.X)
        refit = LogisticRegression(n_iter=800, random_state=0).fit(
            train.X[:-5], train.y[:-5]
        )
        changed = population_fingerprint(_generator(refit, train, constraints), subset.X)
        assert changed != base
        assert model_signature(model) != model_signature(refit)

    def test_search_config_busts_fingerprint(self, loan_workload):
        _, train, subset, model, constraints = loan_workload
        base = population_fingerprint(_generator(model, train, constraints), subset.X)
        assert population_fingerprint(
            _generator(model, train, constraints, max_shells=9), subset.X
        ) != base
        assert population_fingerprint(
            _generator(model, train, constraints, random_state=1), subset.X
        ) != base
        assert population_fingerprint(
            _generator(model, train, ActionabilityConstraints.unconstrained(
                train.X.shape[1]
            )), subset.X
        ) != base

    def test_hash_framing_distinguishes_adjacent_values(self):
        """Concatenated reprs must be unambiguous: [1, 23] vs [12, 3] (and
        dict analogues) are different configs and must hash differently."""
        import hashlib

        from fairexp.explanations.store import _hash_value

        def digest_of(value):
            digest = hashlib.sha256()
            assert _hash_value(digest, value)
            return digest.hexdigest()

        assert digest_of([1, 23]) != digest_of([12, 3])
        assert digest_of((1, 23)) != digest_of((12, 3))
        assert digest_of({0: 1, 11: 1}) != digest_of({0: 11, 1: 1})
        assert digest_of(["a", "bc"]) != digest_of(["ab", "c"])

    def test_set_literal_scorer_token_stable_across_hash_seeds(self):
        """frozenset constants iterate in hash-seed order; the code token
        must sort them so every process fingerprints the callable alike."""
        script = (
            "import hashlib\n"
            "from fairexp.explanations.store import _code_token\n"
            "def scorer(unit):\n"
            "    return unit in {'kg', 'lb', 'oz', 'g', 't'}\n"
            "print(hashlib.sha256(_code_token(scorer.__code__)).hexdigest())\n"
        )
        digests = set()
        for seed in ("0", "1", "42"):
            env = {**os.environ, "PYTHONHASHSEED": seed,
                   "PYTHONPATH": SRC_DIR + os.pathsep + os.environ.get("PYTHONPATH", "")}
            completed = subprocess.run([sys.executable, "-c", script],
                                       capture_output=True, text=True, env=env,
                                       timeout=60)
            assert completed.returncode == 0, completed.stderr
            digests.add(completed.stdout.strip())
        assert len(digests) == 1, f"token varies with hash seed: {digests}"

    def test_shared_random_stream_has_no_fingerprint(self, loan_workload):
        _, train, subset, model, constraints = loan_workload
        generator = _generator(model, train, constraints,
                               random_state=np.random.default_rng(0))
        assert population_fingerprint(generator, subset.X) is None

    def test_unseeded_generator_has_no_fingerprint(self, loan_workload):
        """random_state=None draws fresh OS entropy each run: replaying one
        run's draws warm would make a nondeterministic audit sticky."""
        _, train, subset, model, constraints = loan_workload
        generator = _generator(model, train, constraints, random_state=None)
        assert population_fingerprint(generator, subset.X) is None

    def test_package_code_change_busts_fingerprint(self, loan_workload, monkeypatch):
        """The package source digest is part of the key: a dev checkout that
        edits a search kernel (same __version__) must retire old entries."""
        from fairexp.explanations import store as store_module

        _, train, subset, model, constraints = loan_workload
        generator = _generator(model, train, constraints)
        before = population_fingerprint(generator, subset.X)
        assert store_module._PACKAGE_CODE_TOKEN is not None  # computed + cached
        monkeypatch.setattr(store_module, "_PACKAGE_CODE_TOKEN",
                            "0" * 64)  # simulate edited sources
        after = population_fingerprint(generator, subset.X)
        assert before is not None and after is not None
        assert before != after

    def test_predict_backend_busts_fingerprint(self, loan_workload):
        """Two sessions differing only in their callable predict backend
        (onnx-v1 vs onnx-v2 style) must not share store entries."""
        from fairexp.explanations import BatchModelAdapter, CallablePredictBackend

        _, train, subset, model, constraints = loan_workload
        other = LogisticRegression(n_iter=800, random_state=7).fit(
            train.X[:-20], train.y[:-20]
        )

        def fingerprint_with(fn):
            adapted = BatchModelAdapter(model,
                                        backend=CallablePredictBackend(fn),
                                        cache=False)
            generator = GrowingSpheresCounterfactual(
                adapted, train.X, constraints=constraints, random_state=0
            )
            return population_fingerprint(generator, subset.X)

        v1 = fingerprint_with(model.predict)
        v2 = fingerprint_with(other.predict)
        assert v1 is not None and v2 is not None
        assert v1 != v2
        bare = population_fingerprint(_generator(model, train, constraints), subset.X)
        assert v1 != bare  # dispatch through a callable is part of the key

    def test_callable_code_edit_busts_fingerprint(self, loan_workload):
        """A module-level scorer pickles by reference (import path only), so
        the dispatch token must also fold in its bytecode: editing the
        function's body in place must change the fingerprint."""
        from fairexp.explanations import BatchModelAdapter, CallablePredictBackend

        _, train, subset, model, constraints = loan_workload

        def fingerprint_now():
            adapted = BatchModelAdapter(
                model, backend=CallablePredictBackend(_module_scorer), cache=False
            )
            generator = GrowingSpheresCounterfactual(
                adapted, train.X, constraints=constraints, random_state=0
            )
            return population_fingerprint(generator, subset.X)

        original_code = _module_scorer.__code__
        try:
            before = fingerprint_now()
            # Simulate editing the scorer's body between runs: same function
            # object, same import path/pickle bytes, different bytecode.
            _module_scorer.__code__ = _module_scorer_edited.__code__
            after = fingerprint_now()
        finally:
            _module_scorer.__code__ = original_code
        assert before is not None and after is not None
        assert before != after

    def test_nested_lambda_scorer_token_is_process_stable(self, loan_workload):
        """A scorer containing an inner lambda puts a code object into
        co_consts; its repr embeds a per-process memory address, which must
        NOT leak into the dispatch token (it would turn every warm start
        into a cold path)."""
        import re

        from fairexp.explanations import BatchModelAdapter, CallablePredictBackend
        from fairexp.explanations.store import _dispatch_token

        _, train, _, model, _ = loan_workload
        adapted = BatchModelAdapter(
            model, backend=CallablePredictBackend(_module_scorer_with_inner),
            cache=False,
        )
        token = _dispatch_token(adapted)
        assert token is not None
        assert not re.search(rb"0x[0-9a-f]{6,}", token), (
            "dispatch token embeds a memory address and cannot be "
            "reproduced by another process"
        )

    def test_slots_model_has_no_signature(self, loan_workload):
        """__slots__ models hide their state from vars(); hashing them as
        empty would alias differently-fitted models onto one fingerprint."""
        _, train, subset, model, constraints = loan_workload

        class SlottedModel:
            __slots__ = ("coef",)

            def __init__(self, coef):
                self.coef = coef

            def predict(self, X):
                return (np.atleast_2d(X) @ self.coef > 0).astype(int)

        slotted = SlottedModel(np.ones(train.X.shape[1]))
        assert model_signature(slotted) is None
        generator = GrowingSpheresCounterfactual(slotted, train.X,
                                                 constraints=constraints,
                                                 random_state=0)
        assert population_fingerprint(generator, subset.X) is None

    def test_unpicklable_callable_backend_has_no_fingerprint(self, loan_workload):
        from fairexp.explanations import BatchModelAdapter, CallablePredictBackend

        _, train, subset, model, constraints = loan_workload
        adapted = BatchModelAdapter(
            model, backend=CallablePredictBackend(lambda X: model.predict(X)),
            cache=False,
        )
        generator = GrowingSpheresCounterfactual(adapted, train.X,
                                                 constraints=constraints, random_state=0)
        assert population_fingerprint(generator, subset.X) is None

    def test_exotic_model_state_hashes_or_degrades_gracefully(self, loan_workload):
        """Set-valued and __dict__-less attributes must never crash the
        fingerprint path — they either hash deterministically or poison the
        fingerprint to None (store skipped, audit still runs)."""
        _, train, subset, model, constraints = loan_workload
        refit = LogisticRegression(n_iter=800, random_state=0).fit(train.X, train.y)
        refit.labels_seen = {0, 1}                      # set: deterministic hash
        refit.converged_ = np.bool_(True)               # np scalar: hashes fine
        with_set = model_signature(refit)
        assert with_set is not None
        assert with_set != model_signature(model)
        refit.codec = np.dtype(float)                   # no __dict__: degrade
        generator = _generator(refit, train, constraints)
        assert model_signature(refit) is None
        assert population_fingerprint(generator, subset.X) is None

    def test_private_fitted_state_busts_fingerprint(self, loan_workload):
        """Models keeping their fitted state under leading underscores (KNN
        stores the training set as _X/_y) must not alias onto one signature."""
        from fairexp.models import KNeighborsClassifier

        _, train, subset, model, constraints = loan_workload
        knn_a = KNeighborsClassifier(n_neighbors=3).fit(train.X[:100], train.y[:100])
        knn_b = KNeighborsClassifier(n_neighbors=3).fit(train.X[100:200],
                                                        train.y[100:200])
        assert model_signature(knn_a) is not None
        assert model_signature(knn_a) != model_signature(knn_b)
        fp_a = population_fingerprint(_generator(knn_a, train, constraints), subset.X)
        fp_b = population_fingerprint(_generator(knn_b, train, constraints), subset.X)
        assert fp_a is not None and fp_a != fp_b

    def test_unwalkably_deep_model_state_degrades_instead_of_crashing(
        self, loan_workload
    ):
        _, train, subset, model, constraints = loan_workload
        refit = LogisticRegression(n_iter=800, random_state=0).fit(train.X, train.y)

        class Node:
            def __init__(self, parent):
                self.parent = parent

        chain = None
        for _ in range(10000):  # deeper than the interpreter can walk
            chain = Node(chain)
        refit.history = chain
        assert model_signature(refit) is None
        generator = _generator(refit, train, constraints)
        assert population_fingerprint(generator, subset.X) is None

    def test_object_dtype_array_state_poisons_fingerprint(self, loan_workload):
        """Object arrays serialize memory pointers through tobytes() — never
        reproducible across processes, so they must poison the fingerprint."""
        _, train, subset, model, constraints = loan_workload
        refit = LogisticRegression(n_iter=800, random_state=0).fit(train.X, train.y)
        refit.feature_labels = np.array(["income", "debt"], dtype=object)
        assert model_signature(refit) is None
        generator = _generator(refit, train, constraints)
        assert population_fingerprint(generator, subset.X) is None

    def test_cyclic_model_state_degrades_instead_of_crashing(self, loan_workload):
        _, train, subset, model, constraints = loan_workload
        refit = LogisticRegression(n_iter=800, random_state=0).fit(train.X, train.y)

        class Pipeline:
            pass

        refit.pipeline = Pipeline()
        refit.pipeline.model = refit                    # back-reference cycle
        assert model_signature(refit) is None
        generator = _generator(refit, train, constraints)
        assert population_fingerprint(generator, subset.X) is None

    def test_lossy_generator_config_has_no_fingerprint(self, loan_workload):
        """A generator storing an __init__ arg under a different name cannot
        be fingerprinted faithfully — the store must be skipped, not fed a
        key that is blind to the hidden parameter."""
        _, train, subset, model, constraints = loan_workload

        class SneakyGenerator(GrowingSpheresCounterfactual):
            """Growing spheres with a renamed constructor attribute."""

            def __init__(self, model, background, *, secret_boost=1.0, **kwargs):
                super().__init__(model, background, **kwargs)
                self._boost = secret_boost  # not stored as self.secret_boost

        generator = SneakyGenerator(model, train.X, constraints=constraints,
                                    random_state=0)
        assert population_fingerprint(generator, subset.X) is None


class TestCorruptionFallback:
    def _store_with_entry(self, tmp_path):
        store = CounterfactualStore(tmp_path)
        store.save("c" * 64, _some_results(), n_features=3)
        return store

    def test_corrupted_manifest_is_a_miss_and_discarded(self, tmp_path):
        store = self._store_with_entry(tmp_path)
        manifest = store._manifest_path("c" * 64)
        manifest.write_text("{ not json")
        assert store.load("c" * 64) is None
        assert store.entries() == []

    def test_truncated_payload_fails_checksum(self, tmp_path):
        store = self._store_with_entry(tmp_path)
        manifest = json.loads(store._manifest_path("c" * 64).read_text())
        payload = tmp_path / manifest["payload"]
        payload.write_bytes(payload.read_bytes()[:-20])
        assert store.load("c" * 64) is None

    def test_missing_payload_is_a_miss_and_manifest_discarded(self, tmp_path):
        store = self._store_with_entry(tmp_path)
        manifest = json.loads(store._manifest_path("c" * 64).read_text())
        (tmp_path / manifest["payload"]).unlink()
        assert store.load("c" * 64) is None
        # The dead manifest must not linger: it would occupy an LRU slot and
        # advertise a fingerprint that can never load.
        assert store.entries() == []

    def test_future_format_version_is_a_miss(self, tmp_path):
        store = self._store_with_entry(tmp_path)
        manifest_path = store._manifest_path("c" * 64)
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = 999
        manifest_path.write_text(json.dumps(manifest))
        assert store.load("c" * 64) is None

    def test_stale_reader_does_not_destroy_republished_entry(self, tmp_path):
        """A reader that fails on a stale view (entry republished + old
        payload swept between its manifest read and payload read) must NOT
        discard the writer's fresh, valid entry."""
        store = self._store_with_entry(tmp_path)
        stale_text = '{"this is": "the manifest the failing reader saw"}'
        store._discard_if_unchanged("c" * 64, stale_text)
        assert store.entries() == ["c" * 64]          # fresh entry survives
        assert store.load("c" * 64) is not None
        current_text = store._manifest_path("c" * 64).read_text()
        store._discard_if_unchanged("c" * 64, current_text)
        assert store.entries() == []                  # genuine corruption goes

    def test_session_recomputes_after_corruption(self, tmp_path, loan_workload):
        """End to end: a corrupted entry falls back to a fresh engine pass."""
        _, train, subset, model, constraints = loan_workload
        cold = AuditSession(_generator(model, train, constraints), store=tmp_path)
        cold_result = BurdenExplainer(session=cold).explain(
            subset.X, subset.sensitive_values
        )
        for manifest in tmp_path.glob("*.json"):
            manifest.write_text("garbage")
        warm = AuditSession(_generator(model, train, constraints), store=tmp_path)
        warm_result = BurdenExplainer(session=warm).explain(
            subset.X, subset.sensitive_values
        )
        assert warm.engine_predict_call_count > 0  # genuinely recomputed
        assert warm_result.gap == cold_result.gap


class TestEviction:
    def test_entry_bound_evicts_least_recently_used(self, tmp_path):
        store = CounterfactualStore(tmp_path, max_entries=2)
        fingerprints = ["1" * 64, "2" * 64, "3" * 64]
        for k, fingerprint in enumerate(fingerprints):
            store.save(fingerprint, _some_results(), n_features=3)
            os.utime(store._manifest_path(fingerprint), (k + 1, k + 1))
        store.save("4" * 64, _some_results(), n_features=3)
        kept = store.entries()
        assert len(kept) <= 2
        assert "1" * 64 not in kept
        assert "4" * 64 in kept

    def test_byte_bound_is_respected(self, tmp_path):
        store = CounterfactualStore(tmp_path, max_bytes=1)
        for k, fingerprint in enumerate(["5" * 64, "6" * 64]):
            store.save(fingerprint, _some_results(), n_features=3)
            os.utime(store._manifest_path(fingerprint), (k + 1, k + 1))
        # A single entry may exceed a tiny bound (evicting everything would
        # thrash), but the bound caps the directory at that one entry.
        assert len(store.entries()) == 1
        assert store.entries() == ["6" * 64]

    def test_load_bumps_recency(self, tmp_path):
        store = CounterfactualStore(tmp_path, max_entries=2)
        for k, fingerprint in enumerate(["7" * 64, "8" * 64]):
            store.save(fingerprint, _some_results(), n_features=3)
            os.utime(store._manifest_path(fingerprint), (k + 1, k + 1))
        store.load("7" * 64)  # touch the older entry
        store.save("9" * 64, _some_results(), n_features=3)
        kept = store.entries()
        assert "7" * 64 in kept and "8" * 64 not in kept

    def test_foreign_json_files_are_not_entries(self, tmp_path):
        """A sweep's journal shares the store directory — the store must not
        list, count, evict or clear it as if it were a population entry."""
        journal = tmp_path / "SWEEP_JOURNAL.json"
        journal.write_text('{"version": 1, "cells": {}}')
        store = CounterfactualStore(tmp_path, max_entries=1)

        assert store.entries() == []
        assert store.stats()["store_entries"] == 0
        assert [d["fingerprint"] for d in store.entry_details()] == []

        # Eviction pressure: the oldest *.json in the directory is the
        # journal, but only real entries may be LRU-evicted.
        os.utime(journal, (1, 1))
        store.save("a" * 64, _some_results(), n_features=3)
        os.utime(store._manifest_path("a" * 64), (2, 2))
        store.save("b" * 64, _some_results(), n_features=3)
        assert journal.exists()
        assert store.entries() == ["b" * 64]

        store.clear()
        assert store.entries() == []
        assert journal.exists()  # clearing the store spares foreign files


_WRITER_SCRIPT = textwrap.dedent("""
    import sys
    import numpy as np
    from fairexp.explanations import Counterfactual, CounterfactualStore

    directory, value, repeats = sys.argv[1], float(sys.argv[2]), int(sys.argv[3])
    store = CounterfactualStore(directory)
    results = {
        i: Counterfactual(
            original=np.zeros(3),
            counterfactual=np.full(3, value),
            original_prediction=0,
            counterfactual_prediction=1,
            changed_features=(0, 1, 2),
            distance=value,
            feasible=True,
        )
        for i in range(6)
    }
    for _ in range(repeats):
        store.save("d" * 64, results, n_features=3, merge=False)
""")


class TestConcurrentWriters:
    def test_same_fingerprint_writers_never_interleave(self, tmp_path):
        """Two processes hammering one fingerprint leave a coherent entry.

        Every published state must be wholly one writer's payload: after the
        dust settles the entry loads cleanly and every row carries the same
        writer's constant — a torn mix of the two would either fail the
        checksum (treated as a miss) or mix constants (asserted against).
        """
        env = {**os.environ,
               "PYTHONPATH": SRC_DIR + os.pathsep + os.environ.get("PYTHONPATH", "")}
        writers = [
            subprocess.Popen(
                [sys.executable, "-c", _WRITER_SCRIPT, str(tmp_path), value, "25"],
                env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            )
            for value in ("1.0", "2.0")
        ]
        for writer in writers:
            _, stderr = writer.communicate(timeout=120)
            assert writer.returncode == 0, stderr.decode()
        store = CounterfactualStore(tmp_path)
        loaded = store.load("d" * 64)
        assert loaded is not None and set(loaded) == set(range(6))
        constants = {float(result.distance) for result in loaded.values()}
        assert len(constants) == 1 and constants <= {1.0, 2.0}
        for result in loaded.values():
            assert np.all(result.counterfactual == result.distance)


class TestSessionIntegration:
    def test_warm_session_serves_rows_with_zero_engine_calls(
        self, tmp_path, loan_workload
    ):
        _, train, subset, model, constraints = loan_workload
        cold = AuditSession(_generator(model, train, constraints), store=str(tmp_path))
        cold_burden = BurdenExplainer(session=cold).explain(
            subset.X, subset.sensitive_values
        )
        cold_nawb = NAWBExplainer(session=cold).explain(
            subset.X, subset.y, subset.sensitive_values
        )
        assert cold.engine_predict_call_count > 0
        assert cold.stats()["store_entries"] == 1

        warm = AuditSession(_generator(model, train, constraints), store=str(tmp_path))
        warm_burden = BurdenExplainer(session=warm).explain(
            subset.X, subset.sensitive_values
        )
        warm_nawb = NAWBExplainer(session=warm).explain(
            subset.X, subset.y, subset.sensitive_values
        )
        assert warm.engine_predict_call_count == 0
        assert warm.store_row_hits > 0
        assert warm_burden.gap == cold_burden.gap
        assert warm_nawb.gap == cold_nawb.gap

    def test_unfingerprintable_generator_skips_store(self, tmp_path, loan_workload):
        _, train, subset, model, constraints = loan_workload
        generator = _generator(model, train, constraints,
                               random_state=np.random.default_rng(0))
        session = AuditSession(generator, store=str(tmp_path))
        BurdenExplainer(session=session).explain(subset.X, subset.sensitive_values)
        assert session.stats()["store_entries"] == 0

    def test_store_disabled_by_default(self, loan_workload):
        _, train, subset, model, constraints = loan_workload
        session = AuditSession(_generator(model, train, constraints))
        assert session.store is None

    def test_from_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("FAIREXP_STORE_DIR", raising=False)
        assert CounterfactualStore.from_env() is None
        monkeypatch.setenv("FAIREXP_STORE_DIR", str(tmp_path))
        store = CounterfactualStore.from_env()
        assert store is not None and store.directory == tmp_path

    def test_ensure_treats_empty_path_as_disabled(self, tmp_path):
        """ensure('') must mean "no store", like from_env with an unset
        variable — not a store silently rooted in the current directory."""
        assert CounterfactualStore.ensure(None) is None
        assert CounterfactualStore.ensure("") is None
        assert CounterfactualStore.ensure("  ") is None
        store = CounterfactualStore(tmp_path)
        assert CounterfactualStore.ensure(store) is store
        assert CounterfactualStore.ensure(str(tmp_path)).directory == tmp_path


class TestCompressionAndFormatCompat:
    def test_new_entries_are_compressed_and_versioned(self, tmp_path):
        from fairexp.explanations.store import STORE_FORMAT_VERSION, _pack_results

        store = CounterfactualStore(tmp_path)
        # Repetitive payload so deflate has something to chew on.
        results = {
            i: Counterfactual(
                original=np.zeros(16), counterfactual=np.ones(16),
                original_prediction=0, counterfactual_prediction=1,
                changed_features=tuple(range(16)), distance=16.0,
            )
            for i in range(64)
        }
        store.save("a" * 64, results, n_features=16)
        manifest = json.loads(store._manifest_path("a" * 64).read_text())
        assert manifest["format_version"] == STORE_FORMAT_VERSION == 2
        import io

        packed = _pack_results(results, 16)
        uncompressed, compressed = io.BytesIO(), io.BytesIO()
        np.savez(uncompressed, **packed)
        np.savez_compressed(compressed, **packed)
        on_disk = (store.directory / manifest["payload"]).stat().st_size
        assert on_disk == len(compressed.getvalue())
        assert on_disk < len(uncompressed.getvalue())
        loaded = store.load("a" * 64)
        assert set(loaded) == set(results)
        assert np.array_equal(loaded[0].counterfactual, results[0].counterfactual)

    def test_v1_uncompressed_entries_still_read(self, tmp_path):
        """An entry published by a version-1 (uncompressed npz) build loads."""
        import hashlib
        import io

        from fairexp.explanations.store import _pack_results

        store = CounterfactualStore(tmp_path)
        results = _some_results()
        buffer = io.BytesIO()
        np.savez(buffer, **_pack_results(results, 3))  # v1 wrote plain npz
        blob = buffer.getvalue()
        payload_path = store._payload_path("b" * 64, "deadbeef")
        payload_path.write_bytes(blob)
        store._manifest_path("b" * 64).write_text(json.dumps({
            "format_version": 1,
            "fingerprint": "b" * 64,
            "payload": payload_path.name,
            "payload_sha256": hashlib.sha256(blob).hexdigest(),
            "n_rows": len(results),
            "n_features": 3,
            "updated_at": "2026-01-01T00:00:00+0000",
        }))
        loaded = store.load("b" * 64)
        assert loaded is not None
        assert loaded[7] is None
        assert np.array_equal(loaded[3].counterfactual, results[3].counterfactual)

    def test_payload_encoding_bump_does_not_bust_fingerprints(self, loan_workload):
        """Fingerprints fold the fingerprint version, not the payload format
        version — otherwise read-compat across the v1->v2 bump would be moot."""
        from fairexp.explanations import store as store_module

        dataset, train, subset, model, constraints = loan_workload
        generator = _generator(model, train, constraints)
        before = population_fingerprint(generator, subset.X)
        original = store_module.STORE_FORMAT_VERSION
        try:
            store_module.STORE_FORMAT_VERSION = original + 1
            assert population_fingerprint(generator, subset.X) == before
        finally:
            store_module.STORE_FORMAT_VERSION = original


class TestStoreMetrics:
    def test_bytes_read_accumulates_on_validated_loads(self, tmp_path):
        store = CounterfactualStore(tmp_path)
        store.save("a" * 64, _some_results(), n_features=3)
        assert store.bytes_read == 0
        store.load("a" * 64)
        payload_bytes = sum(p.stat().st_size for p in store.directory.glob("*.npz"))
        assert store.bytes_read == payload_bytes
        store.load("a" * 64)
        assert store.bytes_read == 2 * payload_bytes
        store.load("missing" * 9 + "f")  # misses read nothing
        assert store.bytes_read == 2 * payload_bytes
        assert store.stats()["store_bytes_read"] == store.bytes_read
        store.reset_counts()
        assert store.bytes_read == 0

    def test_stats_report_entry_ages(self, tmp_path):
        store = CounterfactualStore(tmp_path)
        assert store.stats()["store_entry_age_seconds_max"] == 0
        store.save("a" * 64, _some_results(), n_features=3)
        old = store._manifest_path("a" * 64)
        os.utime(old, (old.stat().st_atime, old.stat().st_mtime - 3600))
        stats = store.stats()
        assert 3595 <= stats["store_entry_age_seconds_max"] <= 3605
        assert stats["store_entry_age_seconds_mean"] >= 3595

    def test_entry_details_oldest_first(self, tmp_path):
        store = CounterfactualStore(tmp_path)
        store.save("a" * 64, _some_results(), n_features=3)
        store.save("b" * 64, _some_results(), n_features=3)
        older = store._manifest_path("b" * 64)
        os.utime(older, (older.stat().st_atime, older.stat().st_mtime - 600))
        details = store.entry_details()
        assert [d["fingerprint"][0] for d in details] == ["b", "a"]
        for detail in details:
            assert detail["n_rows"] == 2
            assert detail["bytes"] > 0
            assert detail["format_version"] == 2

    def test_session_stats_fold_in_bytes_read(self, tmp_path, loan_workload):
        dataset, train, subset, model, constraints = loan_workload
        cold = AuditSession(_generator(model, train, constraints), store=tmp_path)
        cold.precompute(subset.X)
        warm = AuditSession(_generator(model, train, constraints), store=tmp_path)
        warm.precompute(subset.X)
        stats = warm.stats()
        assert stats["store_row_hits"] > 0
        assert stats["store_bytes_read"] > 0


class TestExplicitEviction:
    def test_evict_by_fingerprint_prefix(self, tmp_path):
        store = CounterfactualStore(tmp_path)
        store.save("a" * 64, _some_results(), n_features=3)
        store.save("b" * 64, _some_results(), n_features=3)
        assert store.evict(fingerprint="a") == 1
        assert store.entries() == ["b" * 64]
        assert store.evict(fingerprint="nope") == 0

    def test_ambiguous_prefix_raises_instead_of_mass_deleting(self, tmp_path):
        store = CounterfactualStore(tmp_path)
        store.save("ab" + "0" * 62, _some_results(), n_features=3)
        store.save("ac" + "0" * 62, _some_results(), n_features=3)
        with pytest.raises(ValueError, match="ambiguous"):
            store.evict(fingerprint="a")
        assert len(store.entries()) == 2  # nothing was deleted
        assert store.evict(fingerprint="ab") == 1

    def test_fingerprint_and_bounds_compose(self, tmp_path):
        store = CounterfactualStore(tmp_path)
        for letter in "abc":
            store.save(letter * 64, _some_results(), n_features=3)
        removed = store.evict(fingerprint="a", max_entries=1)
        assert removed == 2  # the named entry plus one more for the bound
        assert len(store.entries()) == 1

    def test_evict_to_entry_and_byte_bounds(self, tmp_path):
        store = CounterfactualStore(tmp_path)
        for k, letter in enumerate("abcd"):
            store.save(letter * 64, _some_results(), n_features=3)
            older = store._manifest_path(letter * 64)
            os.utime(older, (older.stat().st_atime,
                             older.stat().st_mtime - (4 - k) * 100))
        assert store.evict(max_entries=2) == 2
        assert store.entries() == ["c" * 64, "d" * 64]  # oldest two evicted
        assert store.evict(max_bytes=0) == 2
        assert store.entries() == []
