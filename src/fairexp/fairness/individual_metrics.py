"""Individual fairness metrics.

Individual fairness asks that *similar individuals are treated similarly*
(Dwork et al.).  This module provides:

* consistency — agreement of each prediction with its k nearest neighbours;
* Lipschitz violation — the largest ratio of output distance to input distance;
* counterfactual flip rate — how often the prediction changes when only the
  sensitive attribute is flipped (an observational proxy for counterfactual
  fairness; the SCM-based version lives in :mod:`fairexp.core`).
"""

from __future__ import annotations

import numpy as np
from scipy.spatial.distance import cdist, pdist, squareform

from ..exceptions import ValidationError

__all__ = ["consistency_score", "lipschitz_violation", "counterfactual_flip_rate"]


def consistency_score(X, y_pred, *, n_neighbors: int = 5) -> float:
    """1 minus the mean absolute difference between each prediction and its neighbours'.

    A score of 1.0 means every individual receives the same decision as its
    ``n_neighbors`` most similar peers.
    """
    X = np.asarray(X, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    if X.shape[0] != y_pred.shape[0]:
        raise ValidationError("X and y_pred must align")
    if n_neighbors >= X.shape[0]:
        raise ValidationError("n_neighbors must be smaller than the number of samples")
    distances = cdist(X, X)
    np.fill_diagonal(distances, np.inf)
    neighbour_idx = np.argsort(distances, axis=1)[:, :n_neighbors]
    neighbour_mean = y_pred[neighbour_idx].mean(axis=1)
    return float(1.0 - np.mean(np.abs(y_pred - neighbour_mean)))


def lipschitz_violation(X, scores, *, epsilon: float = 1e-8) -> float:
    """Largest observed ratio |score_i - score_j| / ||x_i - x_j||.

    Small values indicate the model treats similar individuals similarly in
    the "fairness through awareness" (distance-based) sense.
    """
    X = np.asarray(X, dtype=float)
    scores = np.asarray(scores, dtype=float)
    if X.shape[0] != scores.shape[0]:
        raise ValidationError("X and scores must align")
    if X.shape[0] < 2:
        return 0.0
    input_distances = pdist(X)
    output_distances = pdist(scores[:, None])
    ratios = output_distances / (input_distances + epsilon)
    return float(ratios.max())


def counterfactual_flip_rate(model, X, sensitive_index: int) -> float:
    """Fraction of samples whose prediction flips when the sensitive bit is toggled.

    This is the observational analogue of counterfactual fairness: it
    intervenes on the sensitive column alone, without propagating effects to
    descendants (for the causal version see
    :func:`fairexp.core.fair_recourse.causal_flip_rate`).
    """
    X = np.asarray(X, dtype=float)
    original = np.asarray(model.predict(X))
    flipped = X.copy()
    flipped[:, sensitive_index] = 1.0 - flipped[:, sensitive_index]
    counterfactual = np.asarray(model.predict(flipped))
    return float(np.mean(original != counterfactual))
