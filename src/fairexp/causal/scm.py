"""Structural causal models (SCMs).

An SCM is a set of structural equations ``X_i := f_i(parents(X_i), U_i)``
over a DAG.  This module supports:

* ancestral sampling from the observational distribution,
* ``do()`` interventions (replacing a structural equation with a constant),
* abduction–action–prediction counterfactuals for additive-noise equations,

which is exactly the machinery the actionable-recourse [65] and fair causal
recourse [80] methods in :mod:`fairexp.core` need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from ..exceptions import ValidationError
from ..utils import check_random_state

__all__ = ["StructuralEquation", "StructuralCausalModel"]

NoiseSampler = Callable[[np.random.Generator, int], np.ndarray]
Mechanism = Callable[[Mapping[str, np.ndarray], np.ndarray], np.ndarray]


def _zero_noise(rng: np.random.Generator, n: int) -> np.ndarray:
    return np.zeros(n)


@dataclass
class StructuralEquation:
    """One structural equation ``variable := func(parents, noise)``.

    Attributes
    ----------
    variable:
        Name of the variable this equation determines.
    parents:
        Names of the parent variables, in the order ``func`` expects them in
        its mapping argument.
    func:
        Mechanism ``f(parent_values, noise) -> values``; ``parent_values`` is a
        dict of arrays keyed by parent name.
    noise:
        Sampler ``noise(rng, n) -> array`` for the exogenous term.
    additive_noise:
        Whether the mechanism is of the form ``g(parents) + U``.  Only
        additive-noise equations support exact abduction in counterfactuals;
        for the rest the noise is re-sampled (interventional semantics).
    """

    variable: str
    parents: tuple[str, ...]
    func: Mechanism
    noise: NoiseSampler = field(default=_zero_noise)
    additive_noise: bool = True

    def evaluate(self, parent_values: Mapping[str, np.ndarray], noise: np.ndarray) -> np.ndarray:
        """This variable's values given parent values and exogenous noise."""
        return np.asarray(self.func(parent_values, noise), dtype=float)


class StructuralCausalModel:
    """A collection of structural equations over a DAG.

    Parameters
    ----------
    equations:
        Structural equations; their variables must form a DAG.
    random_state:
        Seed or generator used for sampling exogenous noise.
    """

    def __init__(self, equations: Sequence[StructuralEquation], random_state=None) -> None:
        self.equations = {eq.variable: eq for eq in equations}
        if len(self.equations) != len(equations):
            raise ValidationError("duplicate variable names in structural equations")
        self._rng = check_random_state(random_state)
        self.order = self._topological_order()

    # ------------------------------------------------------------ structure
    @property
    def variables(self) -> list[str]:
        """The model's variable names."""
        return list(self.equations)

    def parents(self, variable: str) -> tuple[str, ...]:
        """The parents of ``variable`` in the underlying DAG."""
        return self.equations[variable].parents

    def _topological_order(self) -> list[str]:
        order: list[str] = []
        visiting: set[str] = set()
        visited: set[str] = set()

        def visit(name: str) -> None:
            if name in visited:
                return
            if name in visiting:
                raise ValidationError(f"cycle detected at variable {name!r}")
            if name not in self.equations:
                raise ValidationError(f"parent {name!r} has no structural equation")
            visiting.add(name)
            for parent in self.equations[name].parents:
                visit(parent)
            visiting.discard(name)
            visited.add(name)
            order.append(name)

        for name in self.equations:
            visit(name)
        return order

    def to_networkx(self):
        """Return the causal DAG as a :class:`networkx.DiGraph`."""
        import networkx as nx

        graph = nx.DiGraph()
        graph.add_nodes_from(self.variables)
        for equation in self.equations.values():
            for parent in equation.parents:
                graph.add_edge(parent, equation.variable)
        return graph

    # ------------------------------------------------------------- sampling
    def sample(
        self,
        n_samples: int,
        *,
        interventions: Mapping[str, float] | None = None,
        noise: Mapping[str, np.ndarray] | None = None,
    ) -> dict[str, np.ndarray]:
        """Sample from the (possibly intervened) model.

        Parameters
        ----------
        n_samples:
            Number of samples to draw.
        interventions:
            Mapping ``{variable: value}`` implementing ``do(variable := value)``.
        noise:
            Optional pre-drawn exogenous noise per variable (used by
            counterfactual computation).
        """
        interventions = dict(interventions or {})
        noise = dict(noise or {})
        values: dict[str, np.ndarray] = {}
        for name in self.order:
            if name in interventions:
                values[name] = np.full(n_samples, float(interventions[name]))
                continue
            equation = self.equations[name]
            u = noise.get(name)
            if u is None:
                u = np.asarray(equation.noise(self._rng, n_samples), dtype=float)
            parent_values = {parent: values[parent] for parent in equation.parents}
            values[name] = equation.evaluate(parent_values, u)
        return values

    def sample_matrix(
        self, n_samples: int, variables: Sequence[str] | None = None, **kwargs
    ) -> np.ndarray:
        """Like :meth:`sample` but stacked into an ``(n, len(variables))`` matrix."""
        sample = self.sample(n_samples, **kwargs)
        variables = list(variables or self.order)
        return np.column_stack([sample[name] for name in variables])

    # ------------------------------------------------------- counterfactuals
    def abduct_noise(self, observation: Mapping[str, float]) -> dict[str, np.ndarray]:
        """Recover exogenous noise consistent with a single observation.

        For additive-noise equations ``x = g(parents) + u`` the noise is
        ``u = x - g(parents)``; for other equations the noise is set to zero
        (interventional approximation), which is the standard fallback.
        """
        noise: dict[str, np.ndarray] = {}
        values = {name: np.asarray([float(observation[name])]) for name in self.order
                  if name in observation}
        missing = [name for name in self.order if name not in observation]
        if missing:
            raise ValidationError(f"observation is missing variables: {missing}")
        for name in self.order:
            equation = self.equations[name]
            parent_values = {parent: values[parent] for parent in equation.parents}
            baseline = equation.evaluate(parent_values, np.zeros(1))
            if equation.additive_noise:
                noise[name] = values[name] - baseline
            else:
                noise[name] = np.zeros(1)
        return noise

    def counterfactual(
        self,
        observation: Mapping[str, float],
        interventions: Mapping[str, float],
    ) -> dict[str, float]:
        """Abduction–action–prediction counterfactual for one observation.

        Returns the counterfactual value of every variable had
        ``interventions`` been performed, holding the exogenous noise fixed at
        the values abducted from ``observation``.
        """
        noise = self.abduct_noise(observation)
        values: dict[str, np.ndarray] = {}
        for name in self.order:
            if name in interventions:
                values[name] = np.asarray([float(interventions[name])])
                continue
            equation = self.equations[name]
            parent_values = {parent: values[parent] for parent in equation.parents}
            values[name] = equation.evaluate(parent_values, noise[name])
        return {name: float(value[0]) for name, value in values.items()}

    def total_effect(
        self,
        treatment: str,
        outcome: str,
        *,
        baseline: float,
        alternative: float,
        n_samples: int = 2000,
    ) -> float:
        """Average total causal effect ``E[outcome | do(t=alt)] - E[outcome | do(t=base)]``."""
        high = self.sample(n_samples, interventions={treatment: alternative})[outcome]
        low = self.sample(n_samples, interventions={treatment: baseline})[outcome]
        return float(high.mean() - low.mean())
