"""Shared-pass audit sessions.

The paper's counterfactual-based fairness audits (burden [72], NAWB [73],
PreCoF [71], and the recourse audits) all consume counterfactuals over the
*same* population: burden explains every negatively classified individual,
NAWB the false negatives (a subset), PreCoF the negatives again.  Run
independently, each audit pays for its own engine pass.

:class:`AuditSession` removes that duplication with result-level sharing:

* the session owns **one** :class:`~fairexp.explanations.engine.BatchModelAdapter`
  (with a memoizing predict backend), so every audit's predictions route
  through the same counting/caching interface;
* each population's counterfactual matrix is computed **once** — the first
  audit to request rows triggers a (optionally sharded, ``n_jobs``) engine
  pass, later audits requesting overlapping rows are served from the
  session's result cache, including rows whose search was infeasible;
* predict-call accounting is session-wide, which is what the benchmarks
  assert on: a burden+NAWB+PreCoF sweep through one session issues strictly
  fewer predict calls than three independent audits.

The layering is session → engine → backend: the session decides *what* to
explain and shares results, the engine decides *how* to batch/shard the
search, the backend decides *where* predict batches run.  With a
:class:`~fairexp.explanations.store.CounterfactualStore` attached the
sharing additionally crosses process boundaries: each population's results
are persisted under a fingerprint of (population, model, engine config), so
a repeated sweep in a fresh process warm-starts with zero engine passes.

A session pins its model: the wrapped model must stay frozen for the
session's lifetime (refitting it in place would serve stale predictions and
stale counterfactuals).  Refit workflows should create a fresh session per
fit, or call :meth:`AuditSession.reset`.
"""

from __future__ import annotations

import hashlib

import numpy as np

from ..exceptions import ValidationError
from .backends import MemoizingPredictBackend, ensure_backend
from .base import Counterfactual
from .engine import BatchModelAdapter, CounterfactualEngine
from .kernels import resolve_kernels
from .pool import ExecutorPool
from .schedules import resolve_schedule
from .store import CounterfactualStore, population_fingerprint

__all__ = ["AuditSession"]


class AuditSession:
    """One shared adapter + engine + counterfactual-result cache for a sweep of audits.

    Parameters
    ----------
    generator:
        A :class:`~fairexp.explanations.counterfactual.BaseCounterfactualGenerator`
        whose model the session takes ownership of.  Optional: a session
        built with only ``model`` still shares predictions (for audits that
        never generate counterfactuals, e.g. GLOBE-CE or recourse sets) but
        raises on :meth:`counterfactuals_for`.
    model:
        The classifier under audit; defaults to ``generator.model``.  At
        least one of ``generator``, ``model`` or ``backend`` must be given.
    backend:
        A :class:`~fairexp.explanations.backends.PredictBackend` every
        predict batch of the sweep dispatches through — the passthrough
        that points a whole audit sweep at an out-of-process scorer:
        an :class:`~fairexp.explanations.serving.OnnxExportBackend`
        (exported compute graph) or
        :class:`~fairexp.explanations.serving.RemoteScoringBackend`
        (coalescing client over ``python -m fairexp serve``).  ``None``
        (default) keeps the in-process vectorized NumPy backend.  The
        model object (when present) still serves attribute access —
        gradients, probabilities — only ``predict`` routing changes.
    n_jobs:
        Workers for sharded counterfactual generation (forwarded to
        :class:`~fairexp.explanations.engine.CounterfactualEngine`).
    executor:
        Sharded execution strategy, forwarded to the engine: ``"thread"``,
        ``"process"``, or ``"auto"`` (pick processes when the predict
        backend declares it holds the GIL).
    schedule:
        A :class:`~fairexp.explanations.schedules.SearchSchedule` (or its
        name, ``"geometric"`` / ``"adaptive"``) installed on the session's
        generator before the engine is built, so every audit of the sweep
        searches under the same schedule.  ``None`` (default) keeps the
        generator's own schedule.  Because the schedule is part of the
        generator's search configuration it also keys the persistent store:
        geometric and adaptive results never alias.
    kernels:
        Hot-path kernel selection for the sweep's searches (``"auto"`` /
        ``"numpy"`` / ``"numba"`` / ``"turbo"`` or a resolved
        :class:`~fairexp.explanations.kernels.KernelSet`), installed on the
        generator like ``schedule`` and forwarded to process-shard workers.
        ``None`` (default) keeps the generator's choice / the
        ``FAIREXP_KERNELS`` environment variable.  Unlike ``schedule``, the
        *exact* choices are bitwise-neutral, so they never reach the store
        fingerprint — numpy- and numba-computed populations share entries.
        The opt-in ``turbo`` tier is the exception: its outputs are only
        tolerance-bound, so the resolved tier joins the fingerprint and
        turbo-computed populations publish under their own entries.  The
        path that actually ran is reported by :meth:`stats` as
        ``kernel_path``.
    pool:
        An :class:`~fairexp.explanations.pool.ExecutorPool` the engine runs
        every sharded pass on.  ``None`` (default) makes the session create
        its own — lazily populated, so a sequential sweep never spawns
        workers — and the session then owns its shutdown: use the session
        as a context manager (or call :meth:`close`) to tear workers down
        deterministically.  A sweep with ``executor="process"`` thereby
        constructs exactly one ``ProcessPoolExecutor``, reused across all
        audits, instead of one per engine call.  The string ``"shared"``
        acquires the process-wide refcounted pool instead
        (:meth:`ExecutorPool.shared`): concurrent sessions of one process
        then share a single set of workers — N process-sharded sessions
        construct exactly one ``ProcessPoolExecutor`` between them — and
        each session's :meth:`close` releases its reference, the last one
        stopping the workers.
    store:
        A :class:`~fairexp.explanations.store.CounterfactualStore` (or a
        directory path coerced into one) persisting each population's
        results across processes.  On the first touch of a population the
        session seeds its in-memory cache from the store; after every
        engine pass it publishes the merged rows back.  ``None`` (default)
        keeps sharing in-process only.
    cache_predictions:
        When ``True`` (default), the adapter memoizes repeated predict
        matrices — audits scoring the same population only pay once.
        ``False`` skips installing a memo on adapters this session creates
        (an inherited adapter's memo is left alone — it may belong to a live
        shared session); refit workflows should call :meth:`reset_results`
        after each refit, which drops cached results and any memo.
    max_populations:
        Bound on distinct populations whose results are kept; the oldest
        population is evicted beyond it (one audit sweep touches a handful,
        so the default only matters for long-lived multi-population sessions).
    """

    # Fingerprint-safety declarations for lint rule FX006 (params never
    # stored as session attributes, each covered elsewhere or neutral):
    # - backend only rewires the adapter's dispatch; graph-backed remote
    #   backends contribute their dispatch token to the population
    #   fingerprint through the store instead.
    # - executor picks thread vs process sharding; shard outputs are
    #   bitwise-equal under the engine's parity contract.
    # - schedule and kernels are installed onto the generator in __init__,
    #   so generator_config carries both (the population memo additionally
    #   keys on the schedule and the kernel tier token).
    # - cache_predictions toggles the predict memo only; labels unchanged.
    FINGERPRINT_INVARIANT = (
        "backend", "executor", "schedule", "kernels", "cache_predictions",
    )

    def __init__(self, generator=None, *, model=None, backend=None, n_jobs: int = 1,
                 executor: str = "auto", schedule=None, kernels=None, pool=None,
                 store=None, cache_predictions: bool = True,
                 max_populations: int = 32) -> None:
        if generator is None and model is None and backend is None:
            raise ValidationError(
                "AuditSession needs a generator, a model or a backend"
            )
        if generator is not None and model is not None and model is not generator.model \
                and model is not getattr(generator.model, "model", None):
            raise ValidationError(
                "conflicting arguments: the generator already carries its model; "
                "pass one or the other"
            )
        self.generator = generator
        self.max_populations = max_populations
        self.n_jobs = n_jobs
        self.store = CounterfactualStore.ensure(store)
        # One lazily populated executor pool per session: every sharded
        # engine pass of the sweep reuses its workers, and close() (or the
        # context-manager exit) shuts them down deterministically.  An
        # injected pool is shared, not owned — its creator shuts it down.
        # pool="shared" acquires a reference on the process-wide refcounted
        # pool; the session "owns" (and on close releases) that reference,
        # while the workers live until the last concurrent holder releases.
        self._owns_pool = pool is None or pool == "shared"
        self.pool = ExecutorPool.ensure(pool)
        self._closed = False
        try:
            self._finish_init(generator, model, backend, n_jobs, executor,
                              schedule, kernels, cache_predictions)
        except BaseException:
            # A validation failure below must not leak the pool this
            # half-built session would have owned — in particular a
            # pool="shared" acquisition, whose reference nobody could ever
            # release (the caller never receives the session to close()).
            if self._owns_pool:
                self.pool.shutdown()
            raise

    def _finish_init(self, generator, model, backend, n_jobs, executor,
                     schedule, kernels, cache_predictions) -> None:
        """Everything of ``__init__`` that may raise after the pool exists."""
        if backend is not None:
            backend = ensure_backend(backend)
        if generator is not None:
            if schedule is not None:
                generator.schedule = resolve_schedule(schedule)
            if kernels is not None:
                resolve_kernels(kernels)  # validate eagerly, before any search
                generator.kernels = kernels
            if backend is not None:
                # backend= rewires WHERE this sweep's predict batches run
                # (ONNX graph, remote scorer, ...) while keeping the model
                # object for attribute passthrough (gradients, proba).
                base_model = generator.model
                if isinstance(base_model, BatchModelAdapter):
                    base_model = base_model.model
                generator.model = BatchModelAdapter(base_model, backend=backend,
                                                    cache=cache_predictions)
            elif not isinstance(generator.model, BatchModelAdapter):
                generator.model = BatchModelAdapter(generator.model,
                                                    cache=cache_predictions)
            self._adapter = generator.model
            self.engine = CounterfactualEngine(generator, n_jobs=n_jobs,
                                               executor=executor, pool=self.pool)
        else:
            if schedule is not None:
                # A model-only session runs no candidate search; silently
                # accepting a schedule would let sweeps believe they compared
                # schedules when nothing changed.
                raise ValidationError(
                    "schedule= requires a generator (a model-only session "
                    "never runs a counterfactual search)"
                )
            if kernels is not None:
                # Same reasoning: the hot-path kernels only run inside the
                # candidate search, which a model-only session never does.
                raise ValidationError(
                    "kernels= requires a generator (a model-only session "
                    "never runs a counterfactual search)"
                )
            if backend is not None:
                self._adapter = BatchModelAdapter(model, backend=backend,
                                                  cache=cache_predictions)
            else:
                self._adapter = (model if isinstance(model, BatchModelAdapter)
                                 else BatchModelAdapter(model, cache=cache_predictions))
            self.engine = None
        self._reconcile_cache(cache_predictions)
        self.result_reuse_count = 0
        self.store_row_hits = 0
        # Predict calls attributable to engine generation passes (excludes
        # the audits' own scoring traffic) — 0 on a fully warm start.
        self.engine_predict_call_count = 0
        # population key -> {row index -> Counterfactual | None (infeasible)}
        self._results: dict[str, dict[int, Counterfactual | None]] = {}
        # population key -> (schedule observed at compute time, kernel-tier
        # token observed at compute time, fingerprint); cleared with the
        # results, since a refit invalidates all three.  The schedule and
        # tier ride along because another session sharing this generator can
        # swap them mid-sweep (schedule=... / kernels="turbo"), and a
        # memoized fingerprint from before the swap would publish the new
        # configuration's rows under the old configuration's store entry.
        self._store_fingerprints: dict[str, tuple[object, str | None, str | None]] = {}
        # Fingerprints this session has already published once: later
        # publishes skip the disk read-back merge — the in-memory cache is a
        # superset of this session's own last write (cross-process races
        # stay last-writer-wins either way).
        self._published_fingerprints: set[str] = set()

    @classmethod
    def ensure(cls, generator, session: "AuditSession | None"
               ) -> tuple["AuditSession", bool]:
        """Resolve an explainer's ``(generator, session)`` constructor pair.

        Returns ``(session, owns_session)``: without a session, a private
        refit-safe one (no predict memo; results dropped per ``explain``) is
        built around ``generator``.  Passing both a session and a *different*
        generator is a conflict and raises, instead of silently auditing with
        the session's search configuration.
        """
        if session is None:
            return cls(generator, cache_predictions=False), True
        if session.generator is None:
            # Counterfactual explainers always need the engine; fail at
            # construction rather than mid-audit.
            raise ValidationError(
                "this session was built without a generator (predict sharing "
                "only); build the AuditSession around a generator to share "
                "its counterfactuals"
            )
        if generator is None or generator is session.generator:
            return session, False
        raise ValidationError(
            "conflicting arguments: pass either a generator or a session "
            "(the session already carries its own generator)"
        )

    def _reconcile_cache(self, cache_predictions: bool) -> None:
        """Make an inherited adapter honour this session's cache setting.

        The generator's model may already be wrapped (by an earlier engine or
        session) without a memo; requesting ``cache_predictions`` upgrades the
        backend stack in place, preserving the counting backend and its
        totals.  The reverse is deliberately NOT done: an inherited memo may
        belong to a live shared session, and stripping it here would silently
        disable that session's predict sharing.  Refit safety without a memo
        guarantee comes from :meth:`reset_results`, which clears both the
        result cache and any memo — private explainer sessions call it at
        the start of every ``explain``.
        """
        backend = self._adapter.backend
        if cache_predictions and not isinstance(backend, MemoizingPredictBackend):
            self._adapter.backend = MemoizingPredictBackend(backend)

    # ---------------------------------------------------------------- access
    @property
    def model(self) -> BatchModelAdapter:
        """The shared counting adapter — hand this to audits expecting a model."""
        return self._adapter

    @property
    def adapter(self) -> BatchModelAdapter:
        """The session's shared counting adapter (alias of :attr:`model`)."""
        return self._adapter

    @property
    def predict_call_count(self) -> int:
        """Session-wide predict invocations forwarded to the backend."""
        return self._adapter.predict_call_count

    @property
    def predict_row_count(self) -> int:
        """Session-wide rows across forwarded predict calls."""
        return self._adapter.predict_row_count

    @property
    def cache_hit_count(self) -> int:
        """Session-wide predict requests served from the memo."""
        return self._adapter.cache_hit_count

    @property
    def schedule_step_count(self) -> int:
        """Lockstep schedule steps taken by this session's engine passes."""
        return self.engine.search_step_count if self.engine is not None else 0

    @property
    def schedule_draw_count(self) -> int:
        """Candidate rows drawn by this session's engine passes."""
        return self.engine.search_draw_count if self.engine is not None else 0

    def predict(self, X) -> np.ndarray:
        """Model predictions through the session's counting (memoizing) backend."""
        return self._adapter.predict(X)

    # -------------------------------------------------------------- lifecycle
    def _check_open(self) -> None:
        """Raise a session-level error for use after :meth:`close`.

        Without this, a sharded pass on a closed session surfaces as the
        opaque "ExecutorPool is closed" from deep inside the engine — and a
        *sequential* pass would silently succeed, so the failure mode would
        even depend on ``n_jobs``.
        """
        if self._closed:
            raise ValidationError(
                "this AuditSession is closed; create a new session (or keep "
                "the `with` block open) to run further audits"
            )

    def close(self) -> None:
        """Shut down the session's executor pool (idempotent).

        Only a pool the session created itself is shut down; an injected
        pool is left running for its owner.  Results and counters survive —
        ``close`` only releases worker threads/processes.
        """
        if self._closed:
            return
        self._closed = True
        if self._owns_pool:
            self.pool.shutdown()

    def __enter__(self) -> "AuditSession":
        """Use the session as a context manager for deterministic pool shutdown."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Shut the session's worker pool down on block exit."""
        self.close()

    # ------------------------------------------------------- result sharing
    @staticmethod
    def population_key(X) -> str:
        """Stable fingerprint of a population matrix (shape + content hash)."""
        X = np.ascontiguousarray(np.atleast_2d(np.asarray(X, dtype=float)))
        digest = hashlib.sha1(X.tobytes()).hexdigest()
        return f"{X.shape[0]}x{X.shape[1]}:{digest}"

    def counterfactuals_for(self, X, indices) -> dict[int, Counterfactual]:
        """Counterfactuals for ``X[indices]``, keyed by row index, shared across audits.

        Rows already explained for this population (by *any* earlier audit
        in the session) are served from the result cache — including rows
        whose search exhausted its budget, which are remembered as
        infeasible and never retried.  Only genuinely new rows trigger an
        engine pass.  Rows without a feasible counterfactual are absent from
        the returned mapping, mirroring
        :meth:`~fairexp.explanations.engine.CounterfactualEngine.generate_for`.
        """
        if self.engine is None:
            raise ValidationError(
                "this AuditSession was built without a counterfactual generator"
            )
        self._check_open()
        X = np.atleast_2d(np.asarray(X, dtype=float))
        indices = np.asarray(indices, dtype=int)
        if indices.size == 0:
            return {}
        key = self.population_key(X)
        if key not in self._results and len(self._results) >= self.max_populations:
            # Bound the result cache like the predict memo: evict the oldest
            # population (audits of one sweep share a handful of populations;
            # unbounded growth only hurts long-lived multi-population sessions).
            evicted = next(iter(self._results))
            self._results.pop(evicted)
            memo = self._store_fingerprints.pop(evicted, None)
            if memo is not None and memo[2] is not None:
                # The published-fingerprint memo must fall with the results:
                # after eviction the in-memory cache is no longer a superset
                # of this session's own writes, so the next publish of a
                # re-touched population has to do the disk read-back merge
                # again or it would silently drop rows from the store entry.
                self._published_fingerprints.discard(memo[2])
        first_touch = key not in self._results
        cache = self._results.setdefault(key, {})
        if first_touch:
            self._seed_from_store(key, X, cache)
        # Dedupe while preserving order: a duplicated index must not trigger
        # (or pay for) two searches of the same row.
        distinct = list(dict.fromkeys(int(i) for i in indices))
        missing = np.asarray([i for i in distinct if i not in cache], dtype=int)
        self.result_reuse_count += len(distinct) - int(missing.size)
        if missing.size:
            calls_before = self._adapter.predict_call_count
            for i, result in zip(missing, self.engine.generate_aligned(X[missing])):
                cache[int(i)] = result
            self.engine_predict_call_count += (
                self._adapter.predict_call_count - calls_before
            )
            self._publish_to_store(key, X, cache)
        return {
            int(i): cache[int(i)] for i in indices if cache[int(i)] is not None
        }

    def _store_fingerprint(self, key: str, X: np.ndarray) -> str | None:
        """Store fingerprint for a population, memoized per population key.

        The memo is invalidated when the generator's schedule object or its
        resolved kernel-tier token changed since it was computed (a second
        session over the same generator can install a different schedule or
        swap between an exact tier and ``turbo``), so rows searched under
        the new configuration are never published under the old entry.
        """
        schedule = getattr(self.generator, "schedule", None)
        tier_token = resolve_kernels(
            getattr(self.generator, "kernels", None)
        ).fingerprint_token
        memo = self._store_fingerprints.get(key)
        if memo is None or memo[0] is not schedule or memo[1] != tier_token:
            memo = (schedule, tier_token, population_fingerprint(self.generator, X))
            self._store_fingerprints[key] = memo
        return memo[2]

    def _seed_from_store(self, key: str, X: np.ndarray,
                         cache: dict[int, Counterfactual | None]) -> None:
        """Warm a population's in-memory cache from the persistent store."""
        if self.store is None:
            return
        fingerprint = self._store_fingerprint(key, X)
        if fingerprint is None:
            return
        stored = self.store.load(fingerprint)
        if stored:
            cache.update(stored)
            self.store_row_hits += len(stored)

    def _publish_to_store(self, key: str, X: np.ndarray,
                          cache: dict[int, Counterfactual | None]) -> None:
        """Persist a population's results after an engine pass added rows."""
        if self.store is None:
            return
        fingerprint = self._store_fingerprint(key, X)
        if fingerprint is not None:
            self.store.save(fingerprint, cache, n_features=X.shape[1],
                            merge=fingerprint not in self._published_fingerprints)
            self._published_fingerprints.add(fingerprint)

    def precompute(self, X) -> int:
        """Warm the session for ``X``: one engine pass over every row not yet
        predicted as the generator's target class.  Returns the number of
        rows explained.

        Calling this first makes every subsequent audit of the population a
        pure cache read regardless of which subset it selects.  (The target
        class is always the generator's — generation and selection must
        agree, or the cache would hold wrong-direction counterfactuals.)
        """
        if self.engine is None:
            raise ValidationError(
                "this AuditSession was built without a counterfactual generator"
            )
        X = np.atleast_2d(np.asarray(X, dtype=float))
        pending = np.flatnonzero(self.predict(X) != self.generator.target_class)
        self.counterfactuals_for(X, pending)
        return int(pending.size)

    # ------------------------------------------------------------ accounting
    def stats(self) -> dict[str, int]:
        """Session-wide sharing statistics (for benchmarks and reports)."""
        n_cached = sum(len(rows) for rows in self._results.values())
        n_infeasible = sum(
            1 for rows in self._results.values() for r in rows.values() if r is None
        )
        stats = {
            "n_populations": len(self._results),
            "n_counterfactuals_cached": n_cached - n_infeasible,
            "n_infeasible_cached": n_infeasible,
            # Rows served from the result cache instead of a fresh engine
            # pass — the honest measure of cross-audit sharing (stays 0 if
            # the sharing mechanism silently breaks).
            "n_results_reused": self.result_reuse_count,
            "predict_call_count": self.predict_call_count,
            "predict_row_count": self.predict_row_count,
            "predict_cache_hits": self._adapter.cache_hit_count,
            # Predict calls spent inside engine generation passes — 0 when
            # every population came warm from the persistent store.
            "engine_predict_calls": self.engine_predict_call_count,
            # Lockstep schedule steps and candidate draws spent by those
            # passes — how the geometric/adaptive schedules are compared.
            "schedule_steps": self.schedule_step_count,
            "schedule_draws": self.schedule_draw_count,
            # Rows warm-started from the persistent store (cross-process
            # sharing; stays 0 without a store attached).
            "store_row_hits": self.store_row_hits,
        }
        # Which hot-path kernel set the sweep's searches resolve to ("numpy"
        # or "numba") — stamped into the BENCH_* trajectories so wall-time
        # curves from different environments stay comparable.  Model-only
        # sessions report the process-wide default.
        stats["kernel_path"] = (
            self.engine.kernel_path if self.engine is not None
            else resolve_kernels(None).name
        )
        # Pool utilization (executors created, busy workers, queue depth),
        # flattened so the BENCH_* trajectory points stay scalar-valued.
        for kind, metrics in self.pool.stats().items():
            for name, value in metrics.items():
                stats[f"pool_{kind}_{name}"] = value
        if self.store is not None:
            stats.update(self.store.stats())
        return stats

    def reset_results(self) -> None:
        """Drop the shared results (counterfactuals AND memoized predictions)
        but keep the predict counters.

        Explainers that own a private session call this at the start of every
        ``explain`` so a model refit in place between audits is picked up —
        result-level sharing across calls is an opt-in of *shared* sessions,
        whose model is pinned for the session's lifetime.

        The memo clear deliberately extends to a memo inherited from another
        session over the same generator: there is no way to tell whether that
        session is still live, and a cleared memo merely costs re-predicts,
        while a stale one would silently corrupt audit results after a refit.
        Correctness wins; keep sweeps on one shared session to keep the memo
        warm.
        """
        self._results.clear()
        # Fingerprints fold in the fitted model state, so they are stale the
        # moment a refit happens — recompute on next touch.  The persistent
        # store itself needs no clearing: the refit model simply fingerprints
        # to different keys.
        self._store_fingerprints.clear()
        self._published_fingerprints.clear()
        self._adapter.clear_memo()

    def reset(self) -> None:
        """Drop all shared results and zero the predict counters."""
        self._results.clear()
        self._store_fingerprints.clear()
        self._published_fingerprints.clear()
        self._adapter.reset_counts()
        if self.store is not None:
            self.store.reset_counts()
        reset_search = getattr(self.generator, "reset_search_counts", None)
        if reset_search is not None:
            reset_search()
        self.result_reuse_count = 0
        self.store_row_hits = 0
        self.engine_predict_call_count = 0
