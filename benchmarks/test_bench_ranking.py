"""E11: Dexer [88] detects and explains biased representation in rankings."""

from conftest import record

from fairexp.experiments import run_e11_ranking


def test_dexer_detection_and_explanation(benchmark):
    results = record(benchmark, benchmark.pedantic(
        run_e11_ranking, kwargs={"n_candidates": 200}, rounds=1, iterations=1,
    ), experiment="E11")
    # The protected group is significantly under-represented in the biased top-k.
    assert results["representation_gap"] < -0.1
    assert results["detection_p_value"] < 0.05
    # The Shapley evidence singles out the penalized attribute.
    assert results["top_attribute"] == "assessment"
    assert results["top_attribute_shap_gap"] > 0.0
    # An unbiased ranking of the same size is not flagged.
    assert results["unbiased_p_value"] > 0.05
