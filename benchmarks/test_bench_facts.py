"""E4: FACTS [77] detects recourse bias between protected subgroups."""

from conftest import record

from fairexp.experiments import run_e4_facts


def test_facts_recourse_bias_detection(benchmark):
    results = record(benchmark, benchmark.pedantic(
        run_e4_facts, kwargs={"n_samples": 700}, rounds=1, iterations=1,
    ), experiment="E4")
    # Equal Effectiveness is violated: the reference group achieves recourse
    # through the candidate actions more often than the protected group.
    assert results["global_effectiveness_gap"] > 0.05
    # Equal Choice of Recourse is violated too (fewer sufficiently effective actions).
    assert results["global_choice_gap"] >= 0
    # At least one subgroup shows a larger violation than the population audit.
    assert results["max_subgroup_effectiveness_gap"] >= results["global_effectiveness_gap"]
    assert results["n_subgroups_audited"] >= 5
    assert results["is_fair"] is False
