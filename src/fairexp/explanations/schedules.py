"""Pluggable search schedules for the lockstep counterfactual search.

The lockstep kernel (:func:`~fairexp.explanations.engine.lockstep_candidate_search`)
advances every still-unsolved instance through a ladder of search *rungs* —
growing Gaussian radii for :class:`~fairexp.explanations.counterfactual.RandomSearchCounterfactual`,
expanding L2 shells for :class:`~fairexp.explanations.counterfactual.GrowingSpheresCounterfactual`
(each generator publishes its ladder through ``draw_schedule()``).  *Which*
rung each instance probes next was historically hard-coded: every instance
walked rung 0, 1, 2, … until its first hit.  This module turns that control
flow into a first-class, observable object:

* :class:`SearchSchedule` — the pluggable strategy interface.  A schedule is
  immutable configuration (a frozen dataclass, so it can be pickled into
  process-shard specs and folded into store fingerprints); each search pass
  asks it to :meth:`~SearchSchedule.begin` a fresh mutable *cursor* that
  plans one rung per still-unsolved instance per step and observes the hit
  counts the kernel already computes.
* :class:`GeometricSchedule` — the default: every instance climbs the fixed
  ladder bottom-up, reproducing the pre-schedule behaviour **bitwise
  exactly** (same draws from the same random streams, same predict batches,
  same chosen candidates).
* :class:`AdaptiveSchedule` — consumes the per-step hit rates to probe the
  ladder adaptively per instance: one wide feasibility probe at the top
  rung (instances that miss the widest rung are abandoned immediately
  instead of crawling the whole ladder), then a bisection toward the lowest
  hitting rung, shortcut by the observed hit rates — a saturated rung means
  the decision boundary is far below, so the next probe jumps straight to
  the lowest untested rung.  Fewer waves means strictly fewer
  ``model.predict`` calls on E1-style sweeps (asserted in
  ``benchmarks/test_bench_schedules.py``).  Each instance's probe sequence
  depends only on its own observations, so sharded adaptive runs stay
  bitwise-identical to sequential ones — sharding config never needs to
  bust a store fingerprint.

Because a schedule changes which candidates are drawn, it is part of every
generator's search configuration: ``generator_config`` captures it, so two
sessions differing only in their schedule never share
:class:`~fairexp.explanations.store.CounterfactualStore` entries.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ValidationError

__all__ = [
    "SearchSchedule",
    "GeometricSchedule",
    "AdaptiveSchedule",
    "resolve_schedule",
]


@dataclass(frozen=True)
class SearchSchedule:
    """Strategy deciding which ladder rung each unsolved instance probes next.

    Subclasses are immutable configuration objects; all per-pass mutable
    state lives in the cursor returned by :meth:`begin`, so one schedule
    instance can drive many concurrent search passes (the engine shards a
    work-list across threads, each shard beginning its own cursor).

    The cursor contract, as consumed by
    :func:`~fairexp.explanations.engine.lockstep_candidate_search`:

    * ``cursor.plan(pending)`` returns ``{instance: rung}`` for the
      instances to probe this step, in ``pending`` order; an empty mapping
      ends the search.
    * ``cursor.observe(instance, rung, n_hits, n_candidates)`` feeds back
      the hit count of one probe.
    * ``cursor.finished`` is the set of instances needing no further probes
      (first hit reached for the geometric ladder; bisection converged or
      instance abandoned for the adaptive one).
    """

    def begin(self, n_steps: int):
        """Start one search pass over a ladder of ``n_steps`` rungs."""
        raise NotImplementedError


@dataclass(frozen=True)
class GeometricSchedule(SearchSchedule):
    """The fixed bottom-up ladder walk (the historical default).

    Every still-unsolved instance probes rung 0, 1, 2, … in lockstep and
    stops at its first hit.  This reproduces the pre-schedule search
    bitwise: identical random-stream consumption, identical predict
    batches, identical chosen candidates (asserted in
    ``tests/explanations/test_schedules.py`` against the sequential
    per-instance path, across thread and process executors).
    """

    def begin(self, n_steps: int):
        """Return a fresh bottom-up cursor over ``n_steps`` rungs."""
        return _GeometricCursor(int(n_steps))


@dataclass(frozen=True)
class AdaptiveSchedule(SearchSchedule):
    """Hit-rate-driven ladder probing: feasibility probe, then bisection.

    Per instance, the cursor maintains the bracket ``[lo, hi)`` of rungs
    that could still be the lowest hitting rung: a miss at rung ``r``
    raises ``lo`` to ``r + 1``, a hit lowers ``hi`` to ``r``, and probing
    stops when the bracket closes.  Two refinements consume the observed
    hit rates:

    * the **first** probe is the widest rung — an instance that misses
      there is abandoned immediately (the widest shell carries the most
      candidate volume, so a miss there makes the instance near-certainly
      infeasible) instead of consuming the entire ladder;
    * a hit whose hit rate reaches ``eager_hit_rate`` means the boundary is
      well below the probed rung, so the next probe jumps straight to the
      lowest untested rung instead of the bracket midpoint.

    The search typically finishes in ``2 + log2(n_steps)`` waves per
    instance instead of up to ``n_steps`` (every probe strictly shrinks
    the bracket, so ``n_steps + 1`` probes per instance is a hard bound),
    which is what makes it issue strictly fewer ``model.predict`` calls
    than :class:`GeometricSchedule` on E1-style sweeps.  Results are *not*
    bitwise-comparable to the geometric walk (different rungs draw
    different candidates), but they ARE deterministic per seed and
    shard-invariant: the cursor keeps no cross-instance state, so an
    instance's probe sequence — and hence its result — is the same whether
    the batch runs whole or split across workers.  Each instance returns
    its minimum-distance hit across every rung it probed.

    Parameters
    ----------
    eager_hit_rate:
        Hit-rate threshold at which the bisection shortcuts to the lowest
        untested rung (default ``0.5``).
    """

    eager_hit_rate: float = 0.5

    def begin(self, n_steps: int):
        """Return a fresh adaptive (bisection) cursor over ``n_steps`` rungs."""
        return _AdaptiveCursor(int(n_steps), float(self.eager_hit_rate))


class _GeometricCursor:
    """Mutable state of one bottom-up ladder walk."""

    def __init__(self, n_steps: int) -> None:
        self.n_steps = n_steps
        self.finished: set[int] = set()
        self._step = 0

    def plan(self, pending) -> dict[int, int]:
        """Every pending instance probes the current rung; empty when the
        ladder is exhausted."""
        if self._step >= self.n_steps:
            return {}
        rung = self._step
        self._step += 1
        return {i: rung for i in pending}

    def observe(self, instance: int, rung: int, n_hits: int, n_candidates: int) -> None:
        """A hit finishes the instance (first-hit-stops, as the fixed
        schedule always behaved); misses keep it climbing."""
        if n_hits > 0:
            self.finished.add(instance)


class _AdaptiveCursor:
    """Mutable state of one adaptive (feasibility probe + bisection) pass."""

    def __init__(self, n_steps: int, eager_hit_rate: float) -> None:
        self.n_steps = n_steps
        self.eager_hit_rate = eager_hit_rate
        self.finished: set[int] = set()
        self._lo: dict[int, int] = {}        # lowest rung not yet ruled out
        self._hi: dict[int, int] = {}        # lowest known-hit rung
        self._eager: dict[int, bool] = {}    # last hit saturated the rung

    def plan(self, pending) -> dict[int, int]:
        """One probe rung per pending instance: the widest rung on first
        touch, afterwards the bracket midpoint (or the lowest untested rung
        after a saturated hit).

        Deliberately per-instance only: any cross-instance coupling would
        make an instance's probe sequence depend on which other instances
        share its batch, so sharded results would stop being identical to
        sequential ones — and sharding config must never need to bust a
        store fingerprint.
        """
        if self.n_steps <= 0:
            # Degenerate ladder (a custom generator's draw_schedule() may be
            # empty): there is no rung to probe — end the pass like
            # _GeometricCursor does instead of planning rung -1.
            self.finished.update(pending)
            return {}
        probes: dict[int, int] = {}
        for i in pending:
            if i not in self._lo:  # feasibility probe at the widest rung
                self._lo[i] = 0
                probes[i] = self.n_steps - 1
                continue
            lo, hi = self._lo[i], self._hi[i]
            rung = lo if self._eager.get(i) else (lo + hi) // 2
            probes[i] = min(max(rung, lo), hi - 1)
        return probes

    def observe(self, instance: int, rung: int, n_hits: int, n_candidates: int) -> None:
        """Tighten the instance's bracket with one probe's hit count."""
        if n_hits > 0:
            self._hi[instance] = rung
            self._eager[instance] = (
                n_candidates > 0 and n_hits / n_candidates >= self.eager_hit_rate
            )
        elif instance not in self._hi:
            # Missed the widest rung on the feasibility probe: abandoned.
            self.finished.add(instance)
            return
        else:
            self._lo[instance] = rung + 1
            self._eager[instance] = False
        if self._lo[instance] >= self._hi[instance]:
            self.finished.add(instance)


def resolve_schedule(schedule) -> SearchSchedule:
    """Coerce ``schedule`` (``None``, a name, or an instance) to a schedule.

    ``None`` resolves to the default :class:`GeometricSchedule`; the strings
    ``"geometric"`` and ``"adaptive"`` resolve to default-configured
    instances (this is what lets experiment runners and CLI surfaces accept
    a plain name); a :class:`SearchSchedule` instance passes through.
    """
    if schedule is None:
        return GeometricSchedule()
    if isinstance(schedule, SearchSchedule):
        return schedule
    if isinstance(schedule, str):
        named = {"geometric": GeometricSchedule, "adaptive": AdaptiveSchedule}
        if schedule in named:
            return named[schedule]()
        raise ValidationError(
            f"unknown schedule {schedule!r}; known: {sorted(named)}"
        )
    raise ValidationError(
        f"schedule must be None, a name, or a SearchSchedule, got {type(schedule).__name__}"
    )
