"""Controlled bias injection and measurement on existing datasets.

The explaining-unfairness literature distinguishes several mechanisms by which
bias enters a machine-learning pipeline (Section I of the paper): direct
dependence on the sensitive attribute, proxy attributes, label bias, and
selection/representation bias.  These helpers inject each mechanism into a
:class:`~fairexp.datasets.Dataset` so explanation methods can be evaluated
against a known ground-truth bias source.
"""

from __future__ import annotations

import numpy as np

from ..utils import check_random_state
from .schema import Dataset

__all__ = [
    "inject_label_bias",
    "inject_selection_bias",
    "inject_proxy_feature",
    "inject_measurement_bias",
    "proxy_correlation",
]


def inject_label_bias(
    dataset: Dataset, *, flip_rate: float = 0.2, random_state=None
) -> Dataset:
    """Flip a fraction of favourable labels to unfavourable for the protected group.

    Models historical/societal labelling bias: qualified protected individuals
    are recorded with a negative outcome.
    """
    rng = check_random_state(random_state)
    y = dataset.y.copy()
    candidates = np.flatnonzero(dataset.protected_mask & (y == 1))
    n_flip = int(round(flip_rate * candidates.shape[0]))
    if n_flip > 0:
        flip_idx = rng.choice(candidates, size=n_flip, replace=False)
        y[flip_idx] = 0
    return dataset.with_values(y=y)


def inject_selection_bias(
    dataset: Dataset, *, keep_rate: float = 0.5, random_state=None
) -> Dataset:
    """Under-sample favourable-outcome protected individuals.

    Models selection/representation bias in data collection: successful
    members of the protected group are under-represented in the sample.
    """
    rng = check_random_state(random_state)
    drop_candidates = np.flatnonzero(dataset.protected_mask & (dataset.y == 1))
    n_keep = int(round(keep_rate * drop_candidates.shape[0]))
    keep_from_candidates = rng.choice(drop_candidates, size=n_keep, replace=False)
    keep_mask = np.ones(dataset.n_samples, dtype=bool)
    keep_mask[drop_candidates] = False
    keep_mask[keep_from_candidates] = True
    return dataset.subset(keep_mask)


def inject_proxy_feature(
    dataset: Dataset,
    *,
    feature: str,
    strength: float = 0.8,
    random_state=None,
) -> Dataset:
    """Overwrite ``feature`` with a noisy copy of the sensitive attribute.

    After injection, ``corr(feature, sensitive) ≈ strength`` so the feature
    acts as a proxy (zip-code-like) even if the sensitive attribute is removed
    from training.
    """
    rng = check_random_state(random_state)
    X = dataset.X.copy()
    j = dataset.index_of(feature)
    sensitive = dataset.sensitive_values.astype(float)
    original = X[:, j]
    scale = original.std() if original.std() > 0 else 1.0
    direction = -1.0  # proxy lowers the feature for the protected group
    noise = rng.normal(0, np.sqrt(max(1e-9, 1 - strength**2)), dataset.n_samples)
    standardized = strength * (
        direction * (sensitive - sensitive.mean()) / max(sensitive.std(), 1e-9)
    ) + noise
    X[:, j] = original.mean() + scale * standardized
    return dataset.with_values(X=X)


def inject_measurement_bias(
    dataset: Dataset, *, feature: str, shift: float = -1.0
) -> Dataset:
    """Shift a feature's measured value for the protected group by ``shift`` std-devs.

    Models mis-measurement (e.g. credit histories that systematically
    under-record protected individuals' assets).
    """
    X = dataset.X.copy()
    j = dataset.index_of(feature)
    scale = X[:, j].std() if X[:, j].std() > 0 else 1.0
    X[dataset.protected_mask, j] += shift * scale
    return dataset.with_values(X=X)


def proxy_correlation(dataset: Dataset, feature: str) -> float:
    """Pearson correlation between a feature and the sensitive attribute."""
    values = dataset.column(feature)
    sensitive = dataset.sensitive_values.astype(float)
    if values.std() == 0 or sensitive.std() == 0:
        return 0.0
    return float(np.corrcoef(values, sensitive)[0, 1])
