"""Tests for probability calibration and model selection utilities."""

import numpy as np
import pytest

from fairexp.exceptions import NotFittedError, ValidationError
from fairexp.models import (
    CalibratedClassifier,
    GaussianNaiveBayes,
    LogisticRegression,
    PlattCalibrator,
    cross_val_score,
    expected_calibration_error,
    GridSearch,
    k_fold_indices,
)
from fairexp.utils import sigmoid


class TestPlattCalibrator:
    def test_improves_overconfident_scores(self, rng):
        # True probability is sigmoid(z); scores are overconfident sigmoid(3z).
        z = rng.normal(0, 1.5, 3000)
        y = (rng.random(3000) < sigmoid(z)).astype(int)
        overconfident = sigmoid(3 * z)
        calibrated = PlattCalibrator(n_iter=800).fit(overconfident, y).transform(overconfident)
        assert expected_calibration_error(y, calibrated) < expected_calibration_error(
            y, overconfident
        )

    def test_transform_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            PlattCalibrator().transform([0.5])

    def test_output_in_unit_interval(self, rng):
        scores = rng.random(100)
        y = rng.integers(0, 2, 100)
        out = PlattCalibrator(n_iter=100).fit(scores, y).transform(scores)
        assert np.all((out >= 0) & (out <= 1))


class TestCalibratedClassifier:
    def test_wraps_fitted_model_and_keeps_accuracy(self, loan_data, loan_model):
        _, train, test = loan_data
        calibrated = CalibratedClassifier(loan_model).fit(train.X, train.y)
        base_accuracy = loan_model.score(test.X, test.y)
        assert calibrated.score(test.X, test.y) >= base_accuracy - 0.1

    def test_predict_proba_distribution(self, loan_data, loan_model):
        _, train, test = loan_data
        calibrated = CalibratedClassifier(loan_model).fit(train.X, train.y)
        proba = calibrated.predict_proba(test.X)
        assert np.allclose(proba.sum(axis=1), 1.0)


class TestExpectedCalibrationError:
    def test_perfectly_calibrated_is_small(self, rng):
        proba = rng.random(5000)
        y = (rng.random(5000) < proba).astype(int)
        assert expected_calibration_error(y, proba) < 0.05

    def test_anticalibrated_is_large(self, rng):
        proba = rng.random(2000)
        y = (rng.random(2000) < (1 - proba)).astype(int)
        assert expected_calibration_error(y, proba) > 0.3


class TestKFold:
    def test_partitions_all_indices(self):
        splits = k_fold_indices(50, n_folds=5, random_state=0)
        assert len(splits) == 5
        all_test = np.sort(np.concatenate([test for _, test in splits]))
        assert np.array_equal(all_test, np.arange(50))

    def test_train_test_disjoint(self):
        for train, test in k_fold_indices(30, n_folds=3, random_state=1):
            assert len(np.intersect1d(train, test)) == 0

    def test_invalid_folds(self):
        with pytest.raises(ValidationError):
            k_fold_indices(5, n_folds=1)
        with pytest.raises(ValidationError):
            k_fold_indices(5, n_folds=10)


class TestCrossValAndGridSearch:
    def test_cross_val_score_reasonable(self, rng):
        X = np.vstack([rng.normal(-2, 1, (100, 2)), rng.normal(2, 1, (100, 2))])
        y = np.array([0] * 100 + [1] * 100)
        scores = cross_val_score(GaussianNaiveBayes(), X, y, n_folds=4, random_state=0)
        assert scores.shape == (4,)
        assert scores.mean() > 0.9

    def test_grid_search_finds_better_params(self, rng):
        X = np.vstack([rng.normal(-1, 1, (100, 2)), rng.normal(1, 1, (100, 2))])
        y = np.array([0] * 100 + [1] * 100)
        search = GridSearch(
            lambda **p: LogisticRegression(n_iter=300, **p),
            {"l2": [0.0, 10.0]},
            n_folds=3,
            random_state=0,
        ).fit(X, y)
        assert search.best_params_ is not None
        assert search.best_model_ is not None
        assert len(search.results_) == 2
        assert search.best_score_ == max(r["mean_score"] for r in search.results_)
