"""E3: PreCoF [71] separates explicit from implicit (proxy) bias."""

from conftest import record

from fairexp.experiments import run_e3_precof


def test_precof_explicit_and_implicit_bias(benchmark):
    results = record(benchmark, benchmark.pedantic(
        run_e3_precof, kwargs={"n_samples": 600, "audit_size": 80}, rounds=1, iterations=1,
    ), experiment="E3")
    # With the sensitive attribute available and mutable, a substantial share of
    # protected-group counterfactuals change it (explicit bias signal).
    assert results["explicit_sensitive_change_rate"] > 0.1
    # With the sensitive attribute removed from training, the change-frequency gap
    # points at a group-shifted proxy attribute (implicit bias signal).
    assert results["implicit_top_attribute"] in {
        "occupation_score", "hours_per_week", "education_years", "capital_gain",
    }
    assert results["implicit_top_gap"] > 0.1
