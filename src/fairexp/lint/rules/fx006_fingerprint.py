"""FX006 — constructor parameters must be fingerprint-visible or declared.

``generator_config`` (PR 2) fingerprints a generator by introspecting
its ``__init__`` signature and reading the *same-named attributes* off
the instance; the store's population fingerprints, the session memo and
the sweep journals all build on it.  A keyword parameter that changes
outputs but is never stored as ``self.<param>`` is therefore invisible
to the fingerprint — the exact aliasing-bug class PRs 6 and 9 fixed by
hand (schedules and kernel tiers silently aliasing store entries).

The rule applies to generator-like classes (bases or name containing
``CounterfactualGenerator``, or defining ``generate_batch_aligned``) and
to the two orchestrators (``CounterfactualEngine``/``AuditSession``).
Every ``__init__`` parameter must either be assigned to ``self.<param>``
somewhere in the class or be listed in a class-level
``FINGERPRINT_INVARIANT`` tuple — an explicit, reviewable declaration
that the parameter cannot alter stored outputs::

    class MyGenerator(BaseCounterfactualGenerator):
        # verbose only changes logging, never the search trajectory
        FINGERPRINT_INVARIANT = ("verbose",)
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING

from ..engine import Rule
from .common import class_constant_names, is_test_path, self_attribute

if TYPE_CHECKING:  # pragma: no cover - typing only
    from collections.abc import Iterable

    from ..engine import FileContext, Finding

_ORCHESTRATORS = frozenset({"CounterfactualEngine", "AuditSession"})
# model/background are fingerprinted through dedicated channels (the
# model dispatch token and the background data hash), not generator_config.
_SKIP_PARAMS = frozenset({"self", "model", "background"})


def _forwarded_to_super(init: ast.FunctionDef) -> frozenset[str]:
    """Params passed same-named into ``super().__init__`` (stored there).

    ``super().__init__(model, background, random_state=random_state)``
    makes ``random_state`` fingerprint-visible through the base class, so
    the subclass need not re-store it.
    """
    names: set[str] = set()
    for call in ast.walk(init):
        if not isinstance(call, ast.Call):
            continue
        func = call.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr == "__init__"
            and isinstance(func.value, ast.Call)
            and isinstance(func.value.func, ast.Name)
            and func.value.func.id == "super"
        ):
            continue
        for arg in call.args:
            if isinstance(arg, ast.Name):
                names.add(arg.id)
        for keyword in call.keywords:
            if (
                keyword.arg is not None
                and isinstance(keyword.value, ast.Name)
                and keyword.value.id == keyword.arg
            ):
                names.add(keyword.arg)
    return frozenset(names)


def _is_target_class(cls: ast.ClassDef) -> bool:
    """Generator-like classes plus the engine/session orchestrators."""
    if cls.name in _ORCHESTRATORS or "CounterfactualGenerator" in cls.name:
        return True
    for base in cls.bases:
        if "CounterfactualGenerator" in ast.unparse(base):
            return True
    return any(
        isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        and stmt.name == "generate_batch_aligned"
        for stmt in cls.body
    )


class FingerprintCoverageRule(Rule):
    """Flag constructor params invisible to the store fingerprint."""

    code = "FX006"
    summary = (
        "generator/engine/session constructor params must be stored as "
        "self.<param> or declared in FINGERPRINT_INVARIANT"
    )
    node_types = (ast.ClassDef,)

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        """Check one class's ``__init__`` parameters for coverage."""
        assert isinstance(node, ast.ClassDef)
        if is_test_path(ctx.path) or not _is_target_class(node):
            return
        init = next(
            (
                stmt
                for stmt in node.body
                if isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__"
            ),
            None,
        )
        if init is None:
            return  # inherited __init__: covered where it is defined
        declared = class_constant_names(node, "FINGERPRINT_INVARIANT") or (
            frozenset()
        )
        stored = self._stored_attributes(node, ctx) | _forwarded_to_super(init)
        params = init.args.posonlyargs + init.args.args + init.args.kwonlyargs
        for param in params:
            name = param.arg
            if name in _SKIP_PARAMS or name.startswith("_"):
                continue
            if name in stored or name in declared:
                continue
            yield self.finding(
                ctx,
                init,
                f"constructor parameter '{name}' of {node.name} is neither "
                f"stored as self.{name} (fingerprint-visible via "
                "generator_config) nor declared in FINGERPRINT_INVARIANT",
            )

    @staticmethod
    def _stored_attributes(cls: ast.ClassDef, ctx: FileContext) -> frozenset[str]:
        """Every attribute assigned as ``self.<attr>`` within this class."""
        names: set[str] = set()
        for stmt in ast.walk(cls):
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                targets = [stmt.target]
            else:
                continue
            if ctx.enclosing_class(stmt) is not cls:
                continue
            for target in targets:
                if isinstance(target, ast.Tuple):
                    elements = target.elts
                else:
                    elements = [target]
                for element in elements:
                    attr = self_attribute(element)
                    if attr is not None:
                        names.add(attr)
        return frozenset(names)
