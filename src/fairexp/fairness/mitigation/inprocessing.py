"""In-processing mitigation: train models whose objective penalizes unfairness.

* :class:`FairLogisticRegression` — logistic regression with a statistical-
  parity (covariance) penalty, in the spirit of prejudice-remover /
  Zafar-style constraints.
* :class:`RecourseRegularizedClassifier` — the recourse-equalizing classifier
  of Gupta et al. [79]: the objective additionally penalizes the difference
  in average distance-to-boundary (recourse) between groups among negatively
  classified individuals.
"""

from __future__ import annotations

import numpy as np

from ...exceptions import ValidationError
from ...models.base import BaseClassifier
from ...models.logistic import LogisticRegression
from ...utils import check_random_state, sigmoid
from ..groups import group_masks

__all__ = ["FairLogisticRegression", "RecourseRegularizedClassifier"]


class FairLogisticRegression(BaseClassifier):
    """Logistic regression with a group-parity penalty.

    The penalty is the squared covariance between group membership and the
    decision score, a smooth surrogate for statistical parity difference.

    Parameters
    ----------
    fairness_weight:
        Strength of the parity penalty; 0 reduces to ordinary logistic
        regression.
    """

    def __init__(
        self,
        fairness_weight: float = 1.0,
        learning_rate: float = 0.1,
        n_iter: int = 2000,
        l2: float = 1e-4,
        random_state: int | None = 0,
    ) -> None:
        super().__init__()
        self.fairness_weight = fairness_weight
        self.learning_rate = learning_rate
        self.n_iter = n_iter
        self.l2 = l2
        self.random_state = random_state
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, X, y, sensitive=None, sample_weight=None) -> "FairLogisticRegression":
        """Fit with the fairness penalty active; returns ``self``."""
        if sensitive is None:
            raise ValidationError("FairLogisticRegression.fit requires the sensitive vector")
        X, y = self._validate_fit_input(X, y)
        y = y.astype(float)
        sensitive = np.asarray(sensitive, dtype=float)
        group_masks(sensitive)  # validates two groups exist
        centered_group = sensitive - sensitive.mean()
        n_samples, n_features = X.shape
        if sample_weight is None:
            sample_weight = np.ones(n_samples)
        else:
            sample_weight = np.asarray(sample_weight, dtype=float)
        sample_weight = sample_weight / sample_weight.mean()

        # Train in standardized space; fold coefficients back at the end.
        mean = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0] = 1.0
        Z = (X - mean) / scale

        rng = check_random_state(self.random_state)
        coef = rng.normal(scale=0.01, size=n_features)
        intercept = 0.0

        for _ in range(self.n_iter):
            scores = Z @ coef + intercept
            probabilities = sigmoid(scores)
            error = sample_weight * (probabilities - y)
            grad_coef = Z.T @ error / n_samples + self.l2 * coef
            grad_intercept = float(error.mean())

            # Parity penalty: (cov(group, score))^2 — gradient via chain rule.
            covariance = float(np.mean(centered_group * scores))
            grad_coef += self.fairness_weight * 2.0 * covariance * (
                Z.T @ centered_group / n_samples
            )
            grad_intercept += self.fairness_weight * 2.0 * covariance * float(
                centered_group.mean()
            )

            coef -= self.learning_rate * grad_coef
            intercept -= self.learning_rate * grad_intercept

        self.coef_ = coef / scale
        self.intercept_ = intercept - float(np.sum(coef * mean / scale))
        self.classes_ = np.array([0, 1])
        self._fitted = True
        return self

    def decision_function(self, X) -> np.ndarray:
        """Signed decision scores for each row of ``X``."""
        X = self._validate_predict_input(X)
        return X @ self.coef_ + self.intercept_

    def predict_proba(self, X) -> np.ndarray:
        """Class-membership probabilities for each row of ``X``."""
        positive = sigmoid(self.decision_function(X))
        return np.column_stack([1 - positive, positive])

    def predict(self, X) -> np.ndarray:
        """Predicted class labels for ``X``."""
        return (self.decision_function(X) >= 0).astype(int)


class RecourseRegularizedClassifier(BaseClassifier):
    """Classifier that equalizes *recourse* (distance to the boundary) across groups.

    Following Gupta et al. [79], individual recourse is the distance of a
    negatively classified individual from the decision boundary, and group
    recourse is the average over the group.  The training objective is

    ``log-loss + recourse_weight * (recourse(G+) - recourse(G-))^2``

    using a smooth hinge of the negative margin as the per-sample recourse
    surrogate.
    """

    def __init__(
        self,
        recourse_weight: float = 1.0,
        learning_rate: float = 0.1,
        n_iter: int = 2000,
        l2: float = 1e-4,
        random_state: int | None = 0,
    ) -> None:
        super().__init__()
        self.recourse_weight = recourse_weight
        self.learning_rate = learning_rate
        self.n_iter = n_iter
        self.l2 = l2
        self.random_state = random_state
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, X, y, sensitive=None, sample_weight=None) -> "RecourseRegularizedClassifier":
        """Fit with the recourse regularizer active; returns ``self``."""
        if sensitive is None:
            raise ValidationError(
                "RecourseRegularizedClassifier.fit requires the sensitive vector"
            )
        X, y = self._validate_fit_input(X, y)
        y = y.astype(float)
        sensitive = np.asarray(sensitive, dtype=float)
        masks = group_masks(sensitive)
        n_samples, n_features = X.shape
        if sample_weight is None:
            sample_weight = np.ones(n_samples)
        sample_weight = np.asarray(sample_weight, dtype=float)
        sample_weight = sample_weight / sample_weight.mean()

        # Train in standardized space; fold coefficients back at the end.
        mean = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0] = 1.0
        Z = (X - mean) / scale

        rng = check_random_state(self.random_state)
        coef = rng.normal(scale=0.01, size=n_features)
        intercept = 0.0
        protected = masks.protected.astype(float)
        reference = masks.reference.astype(float)

        for _ in range(self.n_iter):
            scores = Z @ coef + intercept
            probabilities = sigmoid(scores)
            error = sample_weight * (probabilities - y)
            grad_coef = Z.T @ error / n_samples + self.l2 * coef
            grad_intercept = float(error.mean())

            # Smooth per-sample "cost of recourse": softplus(-score), which is
            # large for individuals deep on the unfavourable side.
            softplus = np.logaddexp(0.0, -scores)
            d_softplus = -sigmoid(-scores)
            recourse_protected = float(np.sum(protected * softplus) / max(protected.sum(), 1.0))
            recourse_reference = float(np.sum(reference * softplus) / max(reference.sum(), 1.0))
            gap = recourse_protected - recourse_reference

            weight_vector = (
                protected / max(protected.sum(), 1.0) - reference / max(reference.sum(), 1.0)
            )
            d_gap_scores = weight_vector * d_softplus
            grad_coef += self.recourse_weight * 2.0 * gap * (Z.T @ d_gap_scores)
            grad_intercept += self.recourse_weight * 2.0 * gap * float(d_gap_scores.sum())

            coef -= self.learning_rate * grad_coef
            intercept -= self.learning_rate * grad_intercept

        self.coef_ = coef / scale
        self.intercept_ = intercept - float(np.sum(coef * mean / scale))
        self.classes_ = np.array([0, 1])
        self._fitted = True
        return self

    def decision_function(self, X) -> np.ndarray:
        """Signed decision scores for each row of ``X``."""
        X = self._validate_predict_input(X)
        return X @ self.coef_ + self.intercept_

    def predict_proba(self, X) -> np.ndarray:
        """Class-membership probabilities for each row of ``X``."""
        positive = sigmoid(self.decision_function(X))
        return np.column_stack([1 - positive, positive])

    def predict(self, X) -> np.ndarray:
        """Predicted class labels for ``X``."""
        return (self.decision_function(X) >= 0).astype(int)

    def distance_to_boundary(self, X) -> np.ndarray:
        """Signed Euclidean distance to the learned hyperplane (see Gupta et al.)."""
        X = self._validate_predict_input(X)
        norm = float(np.linalg.norm(self.coef_))
        if norm == 0:
            return np.zeros(X.shape[0])
        return (X @ self.coef_ + self.intercept_) / norm

    def group_recourse_gap(self, X, sensitive) -> float:
        """|average recourse(G+) - average recourse(G-)| over negatively classified samples."""
        X = np.asarray(X, dtype=float)
        sensitive = np.asarray(sensitive)
        distances = self.distance_to_boundary(X)
        negative = self.predict(X) == 0
        masks = group_masks(sensitive)
        protected_negative = negative & masks.protected
        reference_negative = negative & masks.reference
        recourse_protected = (
            float(np.abs(distances[protected_negative]).mean()) if protected_negative.any() else 0.0
        )
        recourse_reference = (
            float(np.abs(distances[reference_negative]).mean()) if reference_negative.any() else 0.0
        )
        return abs(recourse_protected - recourse_reference)
