"""Exit-code, JSON and baseline-workflow tests for ``fairexp lint``."""

import json
import textwrap

import pytest

from fairexp.cli import main

VIOLATING = textwrap.dedent("""
    import numpy as np


    def sample(n, items=[]):
        items.append(np.random.rand(n))
        return items
""")

CLEAN = textwrap.dedent("""
    import numpy as np


    def sample(n, random_state):
        rng = np.random.default_rng(random_state)
        return rng.random(n)
""")


@pytest.fixture
def tree(tmp_path):
    """A tiny lintable tree with one violating and one clean module."""
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "bad.py").write_text(VIOLATING)
    (pkg / "good.py").write_text(CLEAN)
    return pkg


def test_fresh_findings_exit_1(tree, capsys):
    assert main(["lint", str(tree)]) == 1
    out = capsys.readouterr().out
    assert "FX002" in out and "FX003" in out
    assert "2 fresh findings" in out


def test_clean_tree_exits_0(tree, capsys):
    assert main(["lint", str(tree / "good.py")]) == 0
    assert "0 fresh findings" in capsys.readouterr().out


def test_json_report_shape(tree, capsys):
    assert main(["lint", str(tree), "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["files"] == 2
    assert payload["baseline_size"] == 0
    rules = sorted(f["rule"] for f in payload["fresh"])
    assert rules == ["FX002", "FX003"]
    for finding in payload["findings"]:
        assert set(finding) == {"rule", "path", "line", "col", "message"}


def test_baseline_write_then_check_roundtrip(tree, tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    assert main(["lint", str(tree), "--baseline", "write",
                 "--baseline-file", str(baseline)]) == 0
    assert "2 findings grandfathered" in capsys.readouterr().out
    # Grandfathered debt no longer fails the build ...
    assert main(["lint", str(tree), "--baseline", "check",
                 "--baseline-file", str(baseline)]) == 0
    # ... but a NEW violation beyond the baseline does.
    (tree / "worse.py").write_text("import subprocess\n")
    assert main(["lint", str(tree), "--baseline", "check",
                 "--baseline-file", str(baseline)]) == 1
    out = capsys.readouterr().out.splitlines()
    assert any("FX008" in line for line in out)
    assert any("2 baselined" in line for line in out)


def test_baseline_check_with_missing_file_means_empty(tree, tmp_path):
    assert main(["lint", str(tree), "--baseline", "check",
                 "--baseline-file", str(tmp_path / "absent.json")]) == 1


def test_noqa_suppression_reaches_exit_code(tmp_path, capsys):
    module = tmp_path / "mod.py"
    module.write_text(
        "import time\n\n\ndef tick():\n"
        "    time.sleep(0.1)  # fairexp: noqa[FX007] cadence is the contract\n"
    )
    assert main(["lint", str(module)]) == 0
    assert "1 suppressed" in capsys.readouterr().out
