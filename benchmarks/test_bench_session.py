"""Shared-pass AuditSession: the PR's acceptance criteria on the E1-E3 workload.

Two claims are asserted here:

* a burden + NAWB + PreCoF sweep through ONE :class:`~fairexp.explanations.AuditSession`
  issues strictly fewer ``model.predict`` calls than the same three audits
  run independently (result-level sharing: the three audits consume
  overlapping slices of the same population's counterfactual matrix, which
  the session computes once);
* sharded generation (``n_jobs=4``) produces bitwise-identical
  counterfactuals to the sequential ``n_jobs=1`` path under fixed seeds.
"""

import numpy as np

from conftest import record

from fairexp.core import BurdenExplainer, NAWBExplainer, PreCoFExplainer
from fairexp.datasets import make_loan_dataset
from fairexp.explanations import (
    ActionabilityConstraints,
    AuditSession,
    GrowingSpheresCounterfactual,
)
from fairexp.models import LogisticRegression


def _workload(n_samples=600, audit_size=80):
    dataset = make_loan_dataset(n_samples, direct_bias=1.2, recourse_gap=1.0, random_state=0)
    train, test = dataset.split(test_size=0.3, random_state=1)
    model = LogisticRegression(n_iter=1200, random_state=0).fit(train.X, train.y)
    constraints = ActionabilityConstraints.from_feature_specs(dataset.features)
    subset = test.subset(np.arange(min(audit_size, test.n_samples)))
    return dataset, train, subset, model, constraints


def _generator(model, train, constraints):
    return GrowingSpheresCounterfactual(model, train.X, constraints=constraints,
                                        random_state=0)


def test_session_sweep_beats_independent_audits(benchmark):
    dataset, train, subset, model, constraints = _workload()

    def build_explainers(session=None):
        """Burden + NAWB + PreCoF; private per-audit sessions when None."""
        if session is None:
            burden = BurdenExplainer(_generator(model, train, constraints))
            nawb = NAWBExplainer(_generator(model, train, constraints))
            precof = PreCoFExplainer(_generator(model, train, constraints),
                                     dataset.feature_names, dataset.sensitive)
        else:
            burden = BurdenExplainer(session=session)
            nawb = NAWBExplainer(session=session)
            precof = PreCoFExplainer(feature_names=dataset.feature_names,
                                     sensitive_feature=dataset.sensitive,
                                     session=session)
        return burden, nawb, precof

    def run_audits(explainers):
        burden, nawb, precof = explainers
        return (
            burden.explain(subset.X, subset.sensitive_values),
            nawb.explain(subset.X, subset.y, subset.sensitive_values),
            precof.explain(subset.X, subset.sensitive_values),
        )

    # Independent baseline: each audit builds a private session around its
    # own generator and pays for its own engine pass.
    independent_explainers = build_explainers()
    independent = run_audits(independent_explainers)
    independent_calls = sum(e.session.predict_call_count for e in independent_explainers)

    shared_session = AuditSession(_generator(model, train, constraints))
    shared = benchmark.pedantic(
        lambda: run_audits(build_explainers(shared_session)), rounds=1, iterations=1,
    )

    # Identical audit numbers ...
    assert shared[0].gap == independent[0].gap
    assert shared[1].gap == independent[1].gap
    assert shared[2].frequency_gap == independent[2].frequency_gap

    # ... at strictly fewer predict calls (the acceptance criterion).
    shared_calls = shared_session.predict_call_count
    assert 0 < shared_calls < independent_calls, (
        f"shared session: {shared_calls} calls, independent: {independent_calls}"
    )
    stats = shared_session.stats()
    # Genuine cross-audit reuse happened (NAWB's false negatives and PreCoF's
    # negatives were served from burden's pass).
    assert stats["n_results_reused"] > 0
    record(benchmark, {
        "independent_predict_calls": independent_calls,
        "shared_predict_calls": shared_calls,
        "sharing_factor": independent_calls / max(shared_calls, 1),
        "counterfactual_results_reused": stats["n_results_reused"],
        "prediction_cache_hits": stats["predict_cache_hits"],
    }, adapter=shared_session, experiment="SESSION")


def test_sharded_generation_bitwise_equal(benchmark):
    _, train, subset, model, constraints = _workload()
    rejected = subset.X[model.predict(subset.X) == 0]

    sequential_session = AuditSession(_generator(model, train, constraints), n_jobs=1)
    sequential = sequential_session.engine.generate_aligned(rejected)

    sharded_session = AuditSession(_generator(model, train, constraints), n_jobs=4)
    sharded = benchmark.pedantic(
        lambda: sharded_session.engine.generate_aligned(rejected), rounds=1, iterations=1,
    )

    assert len(sharded) == len(sequential)
    for seq, par in zip(sequential, sharded):
        assert (seq is None) == (par is None)
        if seq is None:
            continue
        assert np.array_equal(seq.counterfactual, par.counterfactual)
        assert seq.changed_features == par.changed_features
        assert seq.distance == par.distance
    record(benchmark, {
        "n_instances": len(rejected),
        "sequential_predict_calls": sequential_session.predict_call_count,
        "sharded_predict_calls": sharded_session.predict_call_count,
    }, experiment="SESSION_SHARDED")
