"""Persistent counterfactual store: the PR's acceptance criteria.

Two claims are asserted here:

* a warm-start :class:`~fairexp.explanations.AuditSession` sweep in a
  **fresh process** performs **0 engine predict calls** — every population's
  counterfactual matrix is served from the on-disk store a cold process
  published, and the audit numbers are identical;
* ``executor="process"`` sharding produces **bitwise-identical**
  counterfactual matrices to the sequential path under fixed seeds (the
  shard specs rebuild the generator in each worker, and every instance owns
  its freshly seeded random stream).

Cold and warm wall times are recorded into ``BENCH_STORE.json`` so the
trajectory tracks the warm-start speedup, not just correctness.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np

from conftest import record

from fairexp.explanations import CounterfactualEngine, CounterfactualStore

from store_workload import build_session, run_sweep, timed_sweep

WORKLOAD_SCRIPT = Path(__file__).resolve().parent / "store_workload.py"
SRC_DIR = Path(__file__).resolve().parent.parent / "src"


def _fresh_process_sweep(store_dir) -> dict:
    """Run the sweep in a brand-new interpreter against ``store_dir``."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("FAIREXP_STORE_DIR", None)  # the argument, not the env, decides
    completed = subprocess.run(
        [sys.executable, str(WORKLOAD_SCRIPT), str(store_dir)],
        capture_output=True, text=True, timeout=300, env=env,
    )
    assert completed.returncode == 0, completed.stderr
    return json.loads(completed.stdout)


def _payload_compression(store_dir) -> dict:
    """Bytes-on-disk of the store's (compressed) payloads vs the uncompressed
    npz equivalent of the same arrays — the satellite's recorded saving."""
    import io

    compressed = uncompressed = 0
    for payload_path in Path(store_dir).glob("*.npz"):
        compressed += payload_path.stat().st_size
        with np.load(payload_path) as payload:
            buffer = io.BytesIO()
            np.savez(buffer, **{key: payload[key] for key in payload.files})
            uncompressed += len(buffer.getvalue())
    return {
        "store_payload_bytes_compressed": compressed,
        "store_payload_bytes_uncompressed": uncompressed,
        "store_compression_ratio": uncompressed / max(compressed, 1),
    }


def test_warm_start_sweep_has_zero_engine_predict_calls(benchmark, tmp_path):
    store_dir = tmp_path / "store"

    # Cold pass: an empty store, every population pays its engine passes.
    cold = timed_sweep(store_dir)
    assert cold["engine_predict_calls"] > 0
    assert cold["store_row_hits"] == 0
    assert cold["store_entries"] >= 1
    compression = _payload_compression(store_dir)
    assert compression["store_compression_ratio"] > 1.0  # compressed on disk

    # Warm pass, FRESH process: zero engine predict calls, identical numbers.
    warm = benchmark.pedantic(lambda: _fresh_process_sweep(store_dir),
                              rounds=1, iterations=1)
    assert warm["engine_predict_calls"] == 0, (
        f"warm start still paid {warm['engine_predict_calls']} engine predict calls"
    )
    assert warm["store_row_hits"] > 0
    for key in ("burden_gap", "nawb_gap", "precof_sensitive_change_rate"):
        assert warm[key] == cold[key], key

    record(benchmark, {
        "cold_wall_time_seconds": cold["sweep_wall_time_seconds"],
        "warm_wall_time_seconds": warm["sweep_wall_time_seconds"],
        "warm_speedup": cold["sweep_wall_time_seconds"]
        / max(warm["sweep_wall_time_seconds"], 1e-9),
        "cold_engine_predict_calls": cold["engine_predict_calls"],
        "warm_engine_predict_calls": warm["engine_predict_calls"],
        "warm_store_row_hits": warm["store_row_hits"],
        "warm_store_bytes_read": warm.get("store_bytes_read", 0),
        "store_entries": warm["store_entries"],
        **compression,
    }, experiment="STORE")


def test_corrupted_store_recovers_by_recomputing(tmp_path):
    """Damage every manifest after the cold pass: the warm process must fall
    back to recomputation (non-zero engine calls) yet report the same gaps."""
    store_dir = tmp_path / "store"
    cold = timed_sweep(store_dir)
    for manifest in Path(store_dir).glob("*.json"):
        manifest.write_text("{ definitely not json")
    recovered = _fresh_process_sweep(store_dir)
    assert recovered["engine_predict_calls"] > 0
    for key in ("burden_gap", "nawb_gap", "precof_sensitive_change_rate"):
        assert recovered[key] == cold[key], key


def test_process_executor_sharding_bitwise_equal(benchmark, tmp_path):
    session_seq, dataset, subset = build_session(tmp_path / "s1", n_jobs=1)
    rejected = subset.X[session_seq.predict(subset.X) == 0]
    sequential = session_seq.engine.generate_aligned(rejected)

    session_proc, _, _ = build_session(tmp_path / "s2", n_jobs=2, executor="process")
    sharded = benchmark.pedantic(
        lambda: session_proc.engine.generate_aligned(rejected), rounds=1, iterations=1,
    )

    assert len(sharded) == len(sequential)
    for seq, par in zip(sequential, sharded):
        assert (seq is None) == (par is None)
        if seq is None:
            continue
        assert np.array_equal(seq.counterfactual, par.counterfactual)
        assert seq.changed_features == par.changed_features
        assert seq.distance == par.distance
    record(benchmark, {
        "n_instances": len(rejected),
        "sequential_predict_calls": session_seq.predict_call_count,
        "process_sharded_predict_calls": session_proc.predict_call_count,
    }, experiment="STORE_PROCESS")


def test_store_population_results_survive_round_trip(tmp_path):
    """The store path feeds audits bit-identical results: a sweep through a
    freshly reloaded store entry equals the in-memory originals row by row."""
    session, dataset, subset = build_session(tmp_path / "store")
    run_sweep(session, dataset, subset)
    [fingerprint] = CounterfactualStore(tmp_path / "store").entries()
    reloaded = CounterfactualStore(tmp_path / "store").load(fingerprint)
    original = session._results[session.population_key(subset.X)]
    assert set(reloaded) == set(original)
    for index, result in original.items():
        if result is None:
            assert reloaded[index] is None
            continue
        assert np.array_equal(reloaded[index].counterfactual, result.counterfactual)
        assert reloaded[index].distance == result.distance
        assert reloaded[index].changed_features == result.changed_features
