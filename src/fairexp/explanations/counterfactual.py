"""Counterfactual explanation generation.

A counterfactual explanation for an instance ``x`` with prediction
``f(x) = 0`` is a nearby point ``x'`` with ``f(x') = 1`` (Wachter et al.),
formally ``x' = argmin distance(x, x') s.t. f(x') != f(x)``.

Three search strategies are provided (and ablated against each other in the
benchmarks):

* :class:`RandomSearchCounterfactual` — rejection sampling around ``x`` with a
  growing radius, followed by greedy sparsification;
* :class:`GrowingSpheresCounterfactual` — the growing-spheres algorithm
  (uniform sampling in expanding L2 shells, then feature-wise projection);
* :class:`GradientCounterfactual` — gradient ascent on the favourable-class
  probability for models exposing ``gradient_input``.

All generators honour per-feature actionability constraints
(:class:`ActionabilityConstraints`), which encode the immutability, bounds,
and monotonicity information carried by :class:`fairexp.datasets.FeatureSpec`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..datasets.schema import FeatureSpec
from ..exceptions import InfeasibleRecourseError, ValidationError
from ..utils import check_random_state
from .base import Counterfactual, ExplainerInfo

__all__ = [
    "ActionabilityConstraints",
    "counterfactual_distance",
    "BaseCounterfactualGenerator",
    "RandomSearchCounterfactual",
    "GrowingSpheresCounterfactual",
    "GradientCounterfactual",
]


@dataclass
class ActionabilityConstraints:
    """Per-feature constraints that a counterfactual must respect.

    Attributes
    ----------
    immutable:
        Boolean mask of features that must keep their original value.
    lower, upper:
        Plausibility bounds per feature (NaN = unbounded).
    monotone:
        +1 (may only increase), -1 (may only decrease), 0 (free) per feature.
    """

    immutable: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    monotone: np.ndarray

    @classmethod
    def unconstrained(cls, n_features: int) -> "ActionabilityConstraints":
        return cls(
            immutable=np.zeros(n_features, dtype=bool),
            lower=np.full(n_features, -np.inf),
            upper=np.full(n_features, np.inf),
            monotone=np.zeros(n_features, dtype=int),
        )

    @classmethod
    def from_feature_specs(cls, specs: Sequence[FeatureSpec]) -> "ActionabilityConstraints":
        """Build constraints from dataset feature metadata.

        Immutable *or* non-actionable features are frozen; numeric bounds and
        monotonicity directions are carried over.
        """
        n = len(specs)
        constraints = cls.unconstrained(n)
        for j, spec in enumerate(specs):
            constraints.immutable[j] = spec.immutable or not spec.actionable
            constraints.lower[j] = -np.inf if spec.lower is None else spec.lower
            constraints.upper[j] = np.inf if spec.upper is None else spec.upper
            constraints.monotone[j] = spec.monotone
        return constraints

    def project(self, x_original: np.ndarray, candidate: np.ndarray) -> np.ndarray:
        """Project a candidate counterfactual onto the feasible set."""
        projected = np.asarray(candidate, dtype=float).copy()
        x_original = np.asarray(x_original, dtype=float)
        projected = np.clip(projected, self.lower, self.upper)
        increase_only = self.monotone == 1
        decrease_only = self.monotone == -1
        projected[increase_only] = np.maximum(projected[increase_only], x_original[increase_only])
        projected[decrease_only] = np.minimum(projected[decrease_only], x_original[decrease_only])
        projected[self.immutable] = x_original[self.immutable]
        return projected

    def is_feasible(self, x_original: np.ndarray, candidate: np.ndarray, *, atol=1e-9) -> bool:
        """Check whether ``candidate`` satisfies all constraints relative to ``x_original``."""
        return bool(np.allclose(candidate, self.project(x_original, candidate), atol=atol))


def counterfactual_distance(
    x: np.ndarray, x_prime: np.ndarray, *, scale: np.ndarray | None = None, metric: str = "l1"
) -> float:
    """Distance between an instance and its counterfactual.

    ``metric`` is ``"l1"`` (MAD-style, the default used for burden), ``"l2"``
    or ``"l0"`` (number of changed features).  ``scale`` normalizes features
    (e.g. per-feature standard deviation or median absolute deviation).
    """
    x = np.asarray(x, dtype=float)
    x_prime = np.asarray(x_prime, dtype=float)
    delta = x_prime - x
    if scale is not None:
        scale = np.asarray(scale, dtype=float).copy()
        scale[scale == 0] = 1.0
        delta = delta / scale
    if metric == "l1":
        return float(np.sum(np.abs(delta)))
    if metric == "l2":
        return float(np.linalg.norm(delta))
    if metric == "l0":
        return float(np.sum(~np.isclose(delta, 0.0)))
    raise ValidationError(f"unknown metric {metric!r}")


class BaseCounterfactualGenerator:
    """Shared machinery for counterfactual generators.

    Parameters
    ----------
    model:
        Classifier with ``predict`` (and ``predict_proba`` where needed).
    background:
        Reference data used to scale distances and bound the search.
    constraints:
        Optional :class:`ActionabilityConstraints`.
    target_class:
        The favourable outcome to reach (default 1).
    metric:
        Distance metric reported on the returned counterfactuals.
    """

    info = ExplainerInfo(
        stage="post-hoc",
        access="black-box",
        agnostic=True,
        coverage="local",
        explanation_type="example",
        multiplicity="single",
    )

    def __init__(
        self,
        model,
        background: np.ndarray,
        *,
        constraints: ActionabilityConstraints | None = None,
        target_class: int = 1,
        metric: str = "l1",
        random_state=None,
    ) -> None:
        self.model = model
        self.background = np.asarray(background, dtype=float)
        self.constraints = constraints or ActionabilityConstraints.unconstrained(
            self.background.shape[1]
        )
        self.target_class = target_class
        self.metric = metric
        self.random_state = random_state
        self.scale_ = self.background.std(axis=0)
        self.scale_[self.scale_ == 0] = 1.0

    # ------------------------------------------------------------- helpers
    def _predict(self, X: np.ndarray) -> np.ndarray:
        return np.asarray(self.model.predict(np.atleast_2d(X)))

    def _make_result(self, x: np.ndarray, candidate: np.ndarray) -> Counterfactual:
        candidate = self.constraints.project(x, candidate)
        changed = tuple(int(j) for j in np.flatnonzero(~np.isclose(candidate, x)))
        return Counterfactual(
            original=np.asarray(x, dtype=float).copy(),
            counterfactual=candidate,
            original_prediction=int(self._predict(x)[0]),
            counterfactual_prediction=int(self._predict(candidate)[0]),
            changed_features=changed,
            distance=counterfactual_distance(x, candidate, scale=self.scale_, metric=self.metric),
            feasible=self.constraints.is_feasible(x, candidate),
        )

    def _sparsify(self, x: np.ndarray, candidate: np.ndarray) -> np.ndarray:
        """Greedily revert changed features back to their original value while
        the counterfactual still reaches the target class."""
        candidate = candidate.copy()
        changed = np.flatnonzero(~np.isclose(candidate, x))
        order = changed[np.argsort(np.abs((candidate - x) / self.scale_)[changed])]
        for j in order:
            trial = candidate.copy()
            trial[j] = x[j]
            if int(self._predict(trial)[0]) == self.target_class:
                candidate = trial
        return candidate

    def generate(self, x: np.ndarray) -> Counterfactual:
        """Return one counterfactual for ``x``; raises if none is found."""
        raise NotImplementedError

    def generate_batch(self, X: np.ndarray, *, skip_failures: bool = True) -> list[Counterfactual]:
        """Generate counterfactuals for many instances.

        Instances already classified as the target class are skipped.  With
        ``skip_failures`` infeasible instances are dropped instead of raising.
        """
        X = np.asarray(X, dtype=float)
        results = []
        predictions = self._predict(X)
        for i in range(X.shape[0]):
            if int(predictions[i]) == self.target_class:
                continue
            try:
                results.append(self.generate(X[i]))
            except InfeasibleRecourseError:
                if not skip_failures:
                    raise
        return results


class RandomSearchCounterfactual(BaseCounterfactualGenerator):
    """Rejection sampling with a growing Gaussian radius plus greedy sparsification."""

    def __init__(self, model, background, *, n_samples: int = 300, max_radius: float = 4.0,
                 n_radii: int = 8, **kwargs) -> None:
        super().__init__(model, background, **kwargs)
        self.n_samples = n_samples
        self.max_radius = max_radius
        self.n_radii = n_radii

    def generate(self, x: np.ndarray) -> Counterfactual:
        x = np.asarray(x, dtype=float).ravel()
        rng = check_random_state(self.random_state)
        for radius in np.linspace(self.max_radius / self.n_radii, self.max_radius, self.n_radii):
            noise = rng.normal(0.0, radius, (self.n_samples, x.shape[0])) * self.scale_
            candidates = x[None, :] + noise
            candidates = np.vstack([
                self.constraints.project(x, candidate) for candidate in candidates
            ])
            predictions = self._predict(candidates)
            hits = np.flatnonzero(predictions == self.target_class)
            if hits.size == 0:
                continue
            distances = np.array([
                counterfactual_distance(x, candidates[i], scale=self.scale_, metric=self.metric)
                for i in hits
            ])
            best = candidates[hits[np.argmin(distances)]]
            best = self._sparsify(x, best)
            return self._make_result(x, best)
        raise InfeasibleRecourseError("random search found no counterfactual within the radius")


class GrowingSpheresCounterfactual(BaseCounterfactualGenerator):
    """Growing-spheres search: uniform sampling in expanding L2 shells."""

    def __init__(self, model, background, *, n_samples_per_shell: int = 200,
                 initial_radius: float = 0.1, growth: float = 1.5, max_shells: int = 12,
                 **kwargs) -> None:
        super().__init__(model, background, **kwargs)
        self.n_samples_per_shell = n_samples_per_shell
        self.initial_radius = initial_radius
        self.growth = growth
        self.max_shells = max_shells

    def _sample_shell(self, rng, x, inner: float, outer: float) -> np.ndarray:
        n_features = x.shape[0]
        directions = rng.normal(size=(self.n_samples_per_shell, n_features))
        directions /= np.linalg.norm(directions, axis=1, keepdims=True) + 1e-12
        radii = rng.uniform(inner, outer, self.n_samples_per_shell)
        return x[None, :] + directions * radii[:, None] * self.scale_

    def generate(self, x: np.ndarray) -> Counterfactual:
        x = np.asarray(x, dtype=float).ravel()
        rng = check_random_state(self.random_state)
        inner, outer = 0.0, self.initial_radius
        for _ in range(self.max_shells):
            candidates = self._sample_shell(rng, x, inner, outer)
            candidates = np.vstack([
                self.constraints.project(x, candidate) for candidate in candidates
            ])
            predictions = self._predict(candidates)
            hits = np.flatnonzero(predictions == self.target_class)
            if hits.size > 0:
                distances = np.array([
                    counterfactual_distance(x, candidates[i], scale=self.scale_,
                                            metric=self.metric)
                    for i in hits
                ])
                best = candidates[hits[np.argmin(distances)]]
                best = self._sparsify(x, best)
                return self._make_result(x, best)
            inner, outer = outer, outer * self.growth
        raise InfeasibleRecourseError("growing spheres exhausted the search radius")


class GradientCounterfactual(BaseCounterfactualGenerator):
    """Gradient ascent on the target-class probability (gradient-access models).

    Requires the model to expose ``gradient_input(X)`` returning the gradient
    of the positive-class probability with respect to the features
    (``LogisticRegression`` and ``MLPClassifier`` do).
    """

    info = ExplainerInfo(
        stage="post-hoc",
        access="gradient",
        agnostic=False,
        coverage="local",
        explanation_type="example",
        multiplicity="single",
    )

    def __init__(self, model, background, *, step_size: float = 0.25, max_iter: int = 300,
                 **kwargs) -> None:
        super().__init__(model, background, **kwargs)
        if not hasattr(model, "gradient_input"):
            raise ValidationError("GradientCounterfactual requires model.gradient_input")
        self.step_size = step_size
        self.max_iter = max_iter

    def generate(self, x: np.ndarray) -> Counterfactual:
        x = np.asarray(x, dtype=float).ravel()
        candidate = x.copy()
        sign = 1.0 if self.target_class == 1 else -1.0
        # Anchor for plateau escapes: the centroid of background points already
        # classified as the target class (gradients vanish far from the
        # boundary of a well-separated model, so pure gradient steps can stall).
        background_predictions = self._predict(self.background)
        target_rows = self.background[background_predictions == self.target_class]
        anchor = target_rows.mean(axis=0) if target_rows.shape[0] else self.background.mean(axis=0)
        for _ in range(self.max_iter):
            if int(self._predict(candidate)[0]) == self.target_class:
                candidate = self._sparsify(x, candidate)
                return self._make_result(x, candidate)
            gradient = np.asarray(self.model.gradient_input(candidate[None, :]))[0]
            step = sign * self.step_size * gradient * self.scale_**2
            norm = np.linalg.norm(step / self.scale_)
            if norm < 1e-4:
                # Plateau: move a fixed fraction of the way toward the anchor.
                step = 0.2 * (anchor - candidate)
            candidate = self.constraints.project(x, candidate + step)
        if int(self._predict(candidate)[0]) == self.target_class:
            return self._make_result(x, candidate)
        raise InfeasibleRecourseError("gradient search did not cross the decision boundary")
